"""EXP-F7 — regenerate Fig. 7 (speedup and error of TSLC vs. E2MC)."""

from repro.experiments import format_fig7, run_fig7


def test_bench_fig7_speedup_and_error(benchmark, slc_scale, slc_workloads):
    """TSLC-SIMP/PRED/OPT vs. the E2MC baseline, 16 B threshold, 32 B MAG."""

    def run():
        return run_fig7(workload_names=slc_workloads, scale=slc_scale)

    rows, study = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_fig7(rows))

    gm_speedup = study.geomean("speedup", "TSLC-OPT")
    # Paper shape: TSLC-OPT is faster than the lossless baseline on average
    # (the paper reports a ~9.7 % geometric-mean speedup).
    assert gm_speedup > 1.0
    # Prediction keeps the error moderate: no benchmark error should explode.
    for row in rows:
        if row.workload != "GM" and row.scheme != "TSLC-SIMP":
            assert row.error_percent < 25.0
