"""BENCH-R — vectorized trace replay vs. the per-access scalar loop.

Measures the kernel-execution phase of the simulator — L2 lookups plus the
memory-controller/MDC/DRAM miss path — over all nine paper workloads,
comparing the array engine (:mod:`repro.replay`) against the scalar
reference loop it replaces, plus the end-to-end effect on a memory-heavy
campaign job.  Full mode (the default) sweeps all nine workloads at a
trace-heavy scale and asserts the ≥5× geomean speedup target;
``--replay-quick`` is the CI smoke mode (three workloads, benchmark-default
scale, relaxed floor) so the vectorized path is exercised on every push.
"""

from __future__ import annotations

import dataclasses
import time

from repro.campaign.spec import Job
from repro.campaign.worker import build_backend, simulate_job
from repro.compression.stats import geometric_mean
from repro.obs.metrics import measure_peak_mib
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig
from repro.gpu.memory_controller import MemoryController
from repro.gpu.simulator import GPUSimulator
from repro.replay import replay_trace, replay_trace_scalar
from repro.utils.blocks import array_to_blocks
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

QUICK_WORKLOADS = ("NN", "FWT", "DCT")
#: trace-heavy scale for the full sweep (traces of 1k–30k accesses)
FULL_SCALE = 1.0 / 64.0
#: benchmark-default scale for the CI smoke run
QUICK_SCALE = 1.0 / 512.0
#: acceptance target for the full 9-workload sweep slice
FULL_SPEEDUP_FLOOR = 5.0
#: relaxed floor for the CI smoke run (shared runners are noisy)
QUICK_SPEEDUP_FLOOR = 2.0
#: end-to-end acceptance target on a memory-heavy job (full mode)
FULL_END_TO_END_FLOOR = 2.0
#: chunk budgets (compiled RLE entries) for the bounded-memory replay bench —
#: small enough that the full-mode trace spans many chunks
FULL_CHUNK_ACCESSES = 128
QUICK_CHUNK_ACCESSES = 32


class _ReplayContext:
    """Everything ``GPUSimulator.run`` sets up before the replay phase.

    The expensive one-time stages (data generation, kernel execution,
    backend training, trace construction) run once; :meth:`fresh_state`
    rebuilds the mutable state (L2 + controllers with the host-to-device
    copy applied) so each timed replay starts from an identical machine
    state with setup excluded from the measurement.
    """

    def __init__(self, name: str, scale: float, scheme: str = "E2MC") -> None:
        self.config = GPUConfig()
        workload = get_workload(name, scale=scale, seed=2019)
        self.backend = build_backend(scheme, self.config)
        simulator = GPUSimulator(config=self.config)
        self.input_regions = workload.generate()
        exact = workload.run(workload.input_arrays(self.input_regions))
        self.all_regions = dict(self.input_regions)
        self.all_regions.update(workload.output_regions(exact))
        self.region_blocks = {
            name: array_to_blocks(region.array, self.config.block_size_bytes)
            for name, region in self.all_regions.items()
        }
        self.base_addresses = simulator._layout(self.all_regions, self.region_blocks)
        simulator._train_backend(self.backend, self.input_regions, self.region_blocks)
        self.trace = workload.trace(
            self.all_regions, block_size_bytes=self.config.block_size_bytes
        )
        self.interleave = simulator.CHANNEL_INTERLEAVE_BLOCKS

    def fresh_state(self) -> tuple[SetAssociativeCache, list[MemoryController]]:
        config = self.config
        controllers = [
            MemoryController(
                controller_id=i,
                backend=self.backend,
                mag_bytes=config.mag_bytes,
                block_size_bytes=config.block_size_bytes,
            )
            for i in range(config.num_memory_controllers)
        ]
        for name, region in self.input_regions.items():
            base = self.base_addresses[name]
            stored_blocks = self.backend.store_batch(
                self.region_blocks[name], approximable=region.approximable
            )
            for index, stored in enumerate(stored_blocks):
                address = base + index
                controllers[(address // self.interleave) % len(controllers)].record_stored(
                    address, stored, count_traffic=False
                )
        l2 = SetAssociativeCache(
            size_bytes=config.l2_cache_kb * 1024,
            line_bytes=config.l2_line_bytes,
            ways=config.l2_ways,
        )
        return l2, controllers

    def time_replay(self, engine, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            l2, controllers = self.fresh_state()
            start = time.perf_counter()
            engine(
                self.trace,
                all_regions=self.all_regions,
                region_blocks=self.region_blocks,
                base_addresses=self.base_addresses,
                l2=l2,
                controllers=controllers,
                interleave_blocks=self.interleave,
            )
            best = min(best, time.perf_counter() - start)
        return best


def _time(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_replay_phase_speedup(benchmark, replay_quick, bench_record):
    """Vectorized vs. scalar replay phase over a paper-workload sweep slice."""
    names = QUICK_WORKLOADS if replay_quick else PAPER_WORKLOAD_ORDER
    scale = QUICK_SCALE if replay_quick else FULL_SCALE
    floor = QUICK_SPEEDUP_FLOOR if replay_quick else FULL_SPEEDUP_FLOOR

    speedups: dict[str, float] = {}
    rows = []
    for name in names:
        context = _ReplayContext(name, scale)
        scalar_s = context.time_replay(replay_trace_scalar)
        vector_s = context.time_replay(replay_trace)
        speedups[name] = scalar_s / vector_s
        rows.append(
            f"{name:<8} {len(context.trace):>7} accesses  "
            f"scalar {scalar_s * 1e3:8.2f} ms  vector {vector_s * 1e3:7.2f} ms  "
            f"speedup {speedups[name]:6.1f}x"
        )

    gm = geometric_mean(list(speedups.values()))
    print()
    print("BENCH-R — vectorized trace replay vs. per-access scalar loop")
    for row in rows:
        print(row)
    print(f"{'GM':<8} {'':>17}  speedup {gm:6.1f}x  (floor {floor:.0f}x)")
    bench_record(f"replay_gm_speedup{'_quick' if replay_quick else ''}", gm)

    # time the vectorized engine once more under pytest-benchmark
    context = _ReplayContext(names[0], scale)
    benchmark.pedantic(
        lambda: context.time_replay(replay_trace, repeats=1), rounds=3, iterations=1
    )

    assert gm >= floor, f"vectorized replay only {gm:.1f}x over scalar (floor {floor}x)"


def test_bench_replay_chunked_peak_memory(replay_quick, bench_record):
    """Chunked replay must bound the replay working set without changing
    a single counter.

    Peak is tracemalloc over the replay call only (machine state is built
    before measurement starts), so it captures exactly what chunking
    bounds: the compiled trace arrays and the per-window scratch.
    """
    scale = QUICK_SCALE if replay_quick else FULL_SCALE
    chunk = QUICK_CHUNK_ACCESSES if replay_quick else FULL_CHUNK_ACCESSES
    context = _ReplayContext("TP", scale)

    def run(chunk_accesses):
        l2, controllers = context.fresh_state()
        _, peak = measure_peak_mib(
            replay_trace,
            context.trace,
            all_regions=context.all_regions,
            region_blocks=context.region_blocks,
            base_addresses=context.base_addresses,
            l2=l2,
            controllers=controllers,
            interleave_blocks=context.interleave,
            chunk_accesses=chunk_accesses,
        )
        counters = {
            "l2": dataclasses.asdict(l2.stats),
            "controllers": [dataclasses.asdict(c.stats) for c in controllers],
        }
        return peak, counters

    whole_peak, whole_counters = run(None)
    chunked_peak, chunked_counters = run(chunk)
    assert chunked_counters == whole_counters, (
        "chunked replay changed counters — chunking must be invisible"
    )
    print(
        f"\nchunked replay peak (TP, {len(context.trace)} compiled-entry trace, "
        f"chunk {chunk}): unchunked {whole_peak:.2f} MiB, "
        f"chunked {chunked_peak:.2f} MiB"
    )
    bench_record(
        f"replay_peak_mib{'_quick' if replay_quick else ''}",
        chunked_peak, unit="MiB", higher_is_better=False, gate=False,
    )
    if not replay_quick:
        # The full-mode trace spans many chunks, so the bounded working set
        # must come in visibly below the whole-trace compile.
        assert len(context.trace) > 4 * chunk
        assert chunked_peak < whole_peak


def test_bench_replay_end_to_end_job(replay_quick, bench_record):
    """A memory-heavy campaign job must get markedly faster end to end."""
    scale = QUICK_SCALE if replay_quick else FULL_SCALE
    job = Job(
        workload="TP",
        scheme="E2MC",
        scale=scale,
        seed=2019,
        compute_error=False,
    )
    vector_s = _time(lambda: simulate_job(job, replay_mode="vectorized"))
    scalar_s = _time(lambda: simulate_job(job, replay_mode="scalar"))
    speedup = scalar_s / vector_s
    print(
        f"\nend-to-end TP/E2MC job: scalar {scalar_s * 1e3:.1f} ms, "
        f"vectorized {vector_s * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    # Absolute seconds are machine-dependent: trajectory context, not a gate.
    # Quick mode runs at the same scale obs.bench measures, so the name
    # matches; the full-mode trace-heavy scale gets its own name.
    bench_record(
        "job_tp_e2mc_s" if replay_quick else "job_tp_e2mc_full_s",
        vector_s, unit="s", higher_is_better=False, gate=False,
    )
    if replay_quick:
        # Smoke mode: traces are tiny, so just guard against regression.
        assert vector_s <= scalar_s * 1.10
    else:
        assert speedup >= FULL_END_TO_END_FLOOR, (
            f"end-to-end only {speedup:.2f}x (floor {FULL_END_TO_END_FLOOR}x)"
        )
