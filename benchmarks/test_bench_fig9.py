"""EXP-F9 / EXP-S5C — regenerate Fig. 9 (MAG sensitivity) and Section V-C."""

from repro.experiments import format_fig9, run_fig9
from repro.experiments.fig9_mag_sensitivity import run_effective_ratio_by_mag


def test_bench_fig9_mag_sensitivity(benchmark, slc_scale, slc_workloads):
    """TSLC-OPT speedup/error with MAGs of 16, 32 and 64 B (threshold MAG/2)."""

    def run():
        return run_fig9(workload_names=slc_workloads, scale=slc_scale)

    rows, studies = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_fig9(rows))

    # Paper shape: SLC provides a speedup across MAGs at the geometric mean,
    # with larger variations at 64 B.
    for mag, study in studies.items():
        assert study.geomean("speedup", "TSLC-OPT") > 0.97
    speedups_64 = [r.speedup for r in rows if r.mag_bytes == 64 and r.workload != "GM"]
    speedups_16 = [r.speedup for r in rows if r.mag_bytes == 16 and r.workload != "GM"]
    if speedups_64 and speedups_16:
        spread_64 = max(speedups_64) - min(speedups_64)
        spread_16 = max(speedups_16) - min(speedups_16)
        assert spread_64 >= spread_16 * 0.5


def test_bench_section5c_effective_ratio_by_mag(benchmark, slc_scale, slc_workloads):
    """E2MC effective compression ratio for MAGs of 16/32/64 B (Section V-C)."""

    def run():
        return run_effective_ratio_by_mag(workload_names=slc_workloads, scale=slc_scale)

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for mag in sorted(ratios):
        print(
            f"MAG {mag:>3} B: raw GM = {ratios[mag]['raw']:.2f}, "
            f"effective GM = {ratios[mag]['effective']:.2f}"
        )
    # Paper shape: effective ratio decreases as MAG grows (1.41/1.31/1.16 in
    # the paper); the raw ratio does not depend on MAG.
    assert ratios[16]["effective"] >= ratios[32]["effective"] >= ratios[64]["effective"]
