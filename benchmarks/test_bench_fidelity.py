"""BENCH-F — throughput of the statistical fidelity metric kernels.

Times one full :func:`repro.metrics.fidelity.fidelity_panel` evaluation
(Pearson + two-sample KS + IQR-normalized errors) over a large synthetic
exact/approx pair and reports element throughput.  The fidelity study
evaluates the panel for every lossy grid cell, so the panel must stay
vectorized — a per-element regression would dominate small-scale sweeps.

Full mode times a ~4M-element pair; ``--fidelity-quick`` is the CI smoke
mode (1M elements, relaxed floor).  The measured throughput is recorded
``gate=False`` — it is an absolute, machine-dependent number, useful as a
trajectory but meaningless to gate across runner generations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.metrics.fidelity import fidelity_panel

#: elements in the synthetic pair (full / quick mode)
FULL_ELEMS = 4 * 1024 * 1024
QUICK_ELEMS = 1024 * 1024

#: sanity floors in Melem/s — a vectorized panel clears these by an order
#: of magnitude; only a fallback into per-element Python could miss them
FULL_FLOOR = 1.0
QUICK_FLOOR = 0.5


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_fidelity_panel_throughput(benchmark, fidelity_quick, bench_record):
    """fidelity_panel throughput over a noisy synthetic pair."""
    n = QUICK_ELEMS if fidelity_quick else FULL_ELEMS
    floor = QUICK_FLOOR if fidelity_quick else FULL_FLOOR
    rng = np.random.default_rng(2019)
    exact = rng.normal(size=n).astype(np.float32)
    approx = exact + rng.normal(scale=0.01, size=n).astype(np.float32)

    best_s = _time(lambda: fidelity_panel(exact, approx))
    melems = n / best_s / 1e6
    print(
        f"\nBENCH-F — fidelity panel over {n / 1e6:.0f}M elements: "
        f"{best_s * 1e3:.1f} ms, {melems:.1f} Melem/s (floor {floor} Melem/s)"
    )
    suffix = "_quick" if fidelity_quick else ""
    bench_record(
        f"fidelity_melems_per_s{suffix}", melems, unit="Melem/s", gate=False
    )

    benchmark.pedantic(lambda: fidelity_panel(exact, approx), rounds=3, iterations=1)

    assert melems >= floor, (
        f"fidelity panel only {melems:.2f} Melem/s (floor {floor}) — "
        "did a metric fall back to per-element Python?"
    )
