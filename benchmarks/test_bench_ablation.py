"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the individual SLC mechanisms:
the lossy-threshold sweep, the value predictor and the TSLC-OPT extra tree
nodes, plus the raw throughput of the compressor implementations.
"""

import numpy as np

from repro.compression import get_compressor
from repro.core import SLCCompressor, SLCConfig, SLCMode, SLCVariant
from repro.studies import ThresholdAblationStudy, workload_blocks
from repro.utils.sampling import sample_evenly


def _blocks(scale):
    return workload_blocks("FWT", scale=scale)


def test_bench_threshold_sweep(benchmark, slc_scale):
    """How the lossy threshold trades converted blocks for DRAM bursts.

    The sweep is the registered threshold-ablation study, run end-to-end
    through the simulator on the campaign engine (the same declarative
    pipeline ``repro study run ablation-threshold`` drives).
    """
    study = ThresholdAblationStudy(scale=slc_scale)

    def sweep():
        return study.run().data

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for threshold, (fraction, bursts) in results.items():
        print(f"threshold {threshold:>2} B: lossy fraction {fraction:5.1%}, bursts {bursts}")
    # A higher threshold can only convert more blocks and never costs bursts.
    fractions = [results[t][0] for t in sorted(results)]
    bursts = [results[t][1] for t in sorted(results)]
    assert fractions == sorted(fractions)
    assert bursts == sorted(bursts, reverse=True)
    assert results[0][0] == 0.0


def test_bench_predictor_ablation(benchmark, slc_scale):
    """Zero fill (SIMP) vs. lane-aware value prediction (PRED) reconstruction error."""
    blocks = _blocks(slc_scale)

    def measure():
        errors = {}
        for variant in (SLCVariant.SIMP, SLCVariant.PRED):
            slc = SLCCompressor(SLCConfig(variant=variant))
            slc.train(sample_evenly(blocks, 1024))
            total = 0.0
            count = 0
            for block in blocks:
                decision = slc.analyze(block)
                if decision.mode is not SLCMode.LOSSY:
                    continue
                original = np.frombuffer(block, dtype=np.float32).astype(np.float64)
                degraded = np.frombuffer(
                    slc.apply_decision(block, decision), dtype=np.float32
                ).astype(np.float64)
                total += float(np.mean(np.abs(original - degraded)))
                count += 1
            errors[variant.value] = total / max(1, count)
        return errors

    errors = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for variant, error in errors.items():
        print(f"{variant}: mean per-block absolute error {error:.4f}")
    assert errors["tslc-pred"] <= errors["tslc-simp"]


def test_bench_opt_tree_ablation(benchmark, slc_scale):
    """Over-approximation (overshoot bits) with and without the extra nodes."""
    blocks = _blocks(slc_scale)

    def measure():
        overshoot = {}
        for variant in (SLCVariant.PRED, SLCVariant.OPT):
            slc = SLCCompressor(SLCConfig(variant=variant))
            slc.train(sample_evenly(blocks, 1024))
            overshoot[variant.value] = sum(
                slc.analyze(block).overshoot_bits for block in blocks
            )
        return overshoot

    overshoot = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for variant, bits in overshoot.items():
        print(f"{variant}: total overshoot {bits} bits")
    assert overshoot["tslc-opt"] <= overshoot["tslc-pred"]


def test_bench_compressor_throughput(benchmark, slc_scale):
    """Blocks-per-second throughput of the lossless compressor implementations."""
    blocks = _blocks(slc_scale)[:256]

    def compress_all():
        totals = {}
        for name in ("bdi", "fpc", "cpack", "e2mc"):
            compressor = get_compressor(name)
            compressor.train(sample_evenly(blocks, 256))
            totals[name] = sum(
                compressor.compress(block).compressed_size_bits for block in blocks
            )
        return totals

    totals = benchmark.pedantic(compress_all, rounds=1, iterations=1)
    print()
    for name, bits in totals.items():
        print(f"{name}: {bits / 8 / len(blocks):.1f} B/block average")
    assert all(bits > 0 for bits in totals.values())
