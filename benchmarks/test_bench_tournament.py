"""BENCH-T — batched lossless size kernels vs. the per-block scalar path.

The tournament study runs every registry scheme over every workload, which
is only tractable because the classic schemes (BDI, FPC, C-Pack, BPC) now
size whole regions through the vectorized kernels of
:mod:`repro.kernels.lossless` instead of bit-encoding block by block in
Python.  This benchmark measures that promotion per scheme over real
workload blocks and asserts a geometric-mean speedup floor, plus a smoke of
the tournament study itself at a tiny scale.  ``--tournament-quick`` is the
CI smoke mode (fewer workloads, relaxed floor).
"""

from __future__ import annotations

import time

from repro.compression.registry import get_compressor
from repro.compression.stats import geometric_mean
from repro.studies.tournament import TournamentStudy
from repro.utils.blocks import array_to_blocks
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

SCHEMES = ("bdi", "fpc", "cpack", "bpc")
QUICK_WORKLOADS = ("NN", "SRAD1")
FULL_WORKLOADS = ("BS", "NN", "FWT", "DCT", "SRAD1")
#: acceptance target for the full sweep slice
FULL_SPEEDUP_FLOOR = 5.0
#: relaxed floor for the CI smoke run (shared runners are noisy)
QUICK_SPEEDUP_FLOOR = 2.0


def _workload_blocks(name: str, scale: float) -> list[bytes]:
    workload = get_workload(name, scale=scale, seed=2019)
    return [
        block
        for region in workload.generate().values()
        for block in array_to_blocks(region.array)
    ]


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_lossless_size_kernels(benchmark, slc_scale, tournament_quick,
                                     bench_record):
    """Batched size analysis vs. per-block compress for the classic schemes."""
    names = QUICK_WORKLOADS if tournament_quick else FULL_WORKLOADS
    floor = QUICK_SPEEDUP_FLOOR if tournament_quick else FULL_SPEEDUP_FLOOR

    blocks = [
        block for name in names for block in _workload_blocks(name, slc_scale)
    ]
    speedups: dict[str, float] = {}
    rows = []
    for scheme in SCHEMES:
        compressor = get_compressor(scheme)
        scalar_s = _time(
            lambda: [
                compressor.compress(block).compressed_size_bits for block in blocks
            ],
            repeats=2,
        )
        batch_s = _time(lambda: compressor.compressed_size_bits_batch(blocks))
        speedups[scheme] = scalar_s / batch_s
        rows.append(
            f"{scheme:<6} {len(blocks):>6} blocks  scalar {scalar_s * 1e3:8.2f} ms  "
            f"batch {batch_s * 1e3:8.2f} ms  speedup {speedups[scheme]:6.1f}x"
        )

    gm = geometric_mean(list(speedups.values()))
    print()
    print("BENCH-T — batched lossless size kernels vs. per-block compress")
    for row in rows:
        print(row)
    print(f"{'GM':<6} {'':>14}  speedup {gm:6.1f}x  (floor {floor:.0f}x)")
    bench_record(
        f"lossless_kernels_gm_speedup{'_quick' if tournament_quick else ''}", gm
    )

    # time one batched pass under pytest-benchmark for the report
    bdi = get_compressor("bdi")
    benchmark.pedantic(
        lambda: bdi.compressed_size_bits_batch(blocks), rounds=3, iterations=1
    )

    assert gm >= floor, f"batched size kernels only {gm:.1f}x over scalar (floor {floor}x)"


def test_bench_tournament_study_smoke(slc_scale, tournament_quick):
    """The tournament study end-to-end: every scheme cell present and sane."""
    workloads = QUICK_WORKLOADS if tournament_quick else FULL_WORKLOADS
    study = TournamentStudy(
        workloads=workloads,
        mags=(32,),
        scale=min(slc_scale, 1.0 / 1024.0),
        compute_error=False,
    )
    start = time.perf_counter()
    result = study.run()
    elapsed = time.perf_counter() - start
    cells = [r for r in result.rows if r["workload"] != "GM"]
    print(
        f"\ntournament: {len(cells)} cells over {len(workloads)} workloads "
        f"in {elapsed:.1f} s; frontier @32B = {result.data['frontier'][32]}"
    )
    assert len(cells) == len(workloads) * len(study.schemes)
    assert result.data["frontier"][32]
