"""EXP-F2 — regenerate Fig. 2 (distribution of compressed blocks above MAG)."""

from repro.experiments import format_fig2, run_fig2


def test_bench_fig2_distribution(benchmark, slc_scale, slc_workloads):
    """Heat map of how far above a MAG multiple blocks compress (E2MC)."""

    def run():
        return run_fig2(workload_names=slc_workloads, scale=slc_scale)

    distribution = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_fig2(distribution))

    # Paper shape: a significant share of blocks sits a few bytes above a MAG
    # multiple — the opportunity SLC exploits (16 B threshold).
    fractions = [
        distribution.fraction_within_threshold(name, 16)
        for name in distribution.per_workload
    ]
    assert any(fraction > 0.05 for fraction in fractions)
