"""BENCH-K — batched analysis kernels vs. the per-block scalar path.

Measures the SLC analysis hot path — code lengths, Fig. 4 decision, adder
tree — over all blocks of each paper workload's regions, comparing the
vectorized ``analyze_batch`` kernels (:mod:`repro.kernels`) against the
per-block scalar ``analyze`` loop they replace, plus the end-to-end effect on
one campaign job.  Full mode (the default) sweeps all nine workloads and
asserts the ≥5× speedup target; ``--kernels-quick`` is the CI smoke mode
(three workloads, relaxed floor) so the batch path is exercised on every
push.
"""

from __future__ import annotations

import time

from repro.campaign.spec import Job
from repro.campaign.worker import simulate_job
from repro.compression.stats import geometric_mean
from repro.core.config import SLCConfig, SLCVariant
from repro.core.slc import SLCCompressor
from repro.utils.blocks import array_to_blocks
from repro.utils.sampling import sample_evenly
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

QUICK_WORKLOADS = ("NN", "FWT", "DCT")
#: acceptance target for the full 9-workload sweep slice
FULL_SPEEDUP_FLOOR = 5.0
#: relaxed floor for the CI smoke run (shared runners are noisy)
QUICK_SPEEDUP_FLOOR = 2.0


def _workload_blocks(name: str, scale: float) -> list[bytes]:
    workload = get_workload(name, scale=scale, seed=2019)
    return [
        block
        for region in workload.generate().values()
        for block in array_to_blocks(region.array)
    ]


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_kernels_analyze_speedup(benchmark, slc_scale, kernels_quick,
                                       bench_record):
    """analyze_batch vs. per-block analyze over a paper-workload sweep slice."""
    names = QUICK_WORKLOADS if kernels_quick else PAPER_WORKLOAD_ORDER
    floor = QUICK_SPEEDUP_FLOOR if kernels_quick else FULL_SPEEDUP_FLOOR
    config = SLCConfig(variant=SLCVariant.OPT)

    speedups: dict[str, float] = {}
    rows = []
    for name in names:
        blocks = _workload_blocks(name, slc_scale)
        slc = SLCCompressor(config)
        slc.train(sample_evenly(blocks, 1024))

        scalar_s = _time(lambda: [slc.analyze(block) for block in blocks])
        batch_s = _time(lambda: slc.analyze_batch(blocks))
        speedups[name] = scalar_s / batch_s
        rows.append(
            f"{name:<8} {len(blocks):>6} blocks  scalar {scalar_s * 1e3:8.2f} ms  "
            f"batch {batch_s * 1e3:8.2f} ms  speedup {speedups[name]:6.1f}x"
        )

    gm = geometric_mean(list(speedups.values()))
    print()
    print("BENCH-K — batched SLC analysis vs. per-block scalar path")
    for row in rows:
        print(row)
    print(f"{'GM':<8} {'':>14}  speedup {gm:6.1f}x  (floor {floor:.0f}x)")
    bench_record(f"kernels_gm_speedup{'_quick' if kernels_quick else ''}", gm)

    # time the batch kernel once more under pytest-benchmark for the report
    blocks = _workload_blocks(names[0], slc_scale)
    slc = SLCCompressor(config)
    slc.train(sample_evenly(blocks, 1024))
    benchmark.pedantic(lambda: slc.analyze_batch(blocks), rounds=3, iterations=1)

    assert gm >= floor, f"batched kernels only {gm:.1f}x over scalar (floor {floor}x)"


def test_bench_kernels_end_to_end_job(slc_scale, kernels_quick):
    """Batched store phase must not slow down a full campaign job."""
    job = Job(
        workload="NN",
        scheme="TSLC-OPT",
        scale=slc_scale,
        seed=2019,
        compute_error=False,
    )
    batch_s = _time(lambda: simulate_job(job, batch_store=True), repeats=2)
    scalar_s = _time(lambda: simulate_job(job, batch_store=False), repeats=2)
    print(
        f"\nend-to-end NN/TSLC-OPT job: scalar {scalar_s * 1e3:.1f} ms, "
        f"batch {batch_s * 1e3:.1f} ms ({scalar_s / batch_s:.2f}x)"
    )
    # The store phase is only part of a job (trace replay, training and the
    # workload kernel are unchanged), so the end-to-end win is smaller than
    # the kernel-level one; it must at minimum never be a regression.
    assert batch_s <= scalar_s * 1.10
