"""BENCH-C — batched payload codec vs. the per-symbol scalar path.

Measures bit-level payload materialization — Huffman compress + decompress of
every block of each paper workload's regions — comparing the vectorized codec
(:mod:`repro.kernels.codec` via ``compress_batch``/``decompress_batch``)
against the per-symbol ``BitWriter``/``BitReader`` loops it replaces, plus
the end-to-end effect of the batched ``apply_decision`` path on a TSLC-OPT
campaign job.  Full mode (the default) sweeps all nine workloads and asserts
the ≥5× codec / ≥1.5× job floors; ``--codec-quick`` is the CI smoke mode
(three workloads, relaxed floors) so the codec path is exercised on every
push.
"""

from __future__ import annotations

import time

from repro.campaign.spec import Job
from repro.campaign.worker import simulate_job
from repro.compression.stats import geometric_mean
from repro.core.config import SLCConfig, SLCVariant
from repro.core.slc import SLCCompressor
from repro.utils.blocks import array_to_blocks
from repro.utils.sampling import sample_evenly
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

QUICK_WORKLOADS = ("NN", "FWT", "DCT")
#: acceptance target for the full 9-workload sweep slice
FULL_CODEC_FLOOR = 5.0
#: relaxed floor for the CI smoke run (shared runners are noisy)
QUICK_CODEC_FLOOR = 2.0
#: end-to-end TSLC-OPT job floors (codec is one phase of a job); quick mode
#: allows 10% regression headroom for noisy shared runners, matching the
#: replay benchmark's smoke-mode convention
FULL_JOB_FLOOR = 1.5
QUICK_JOB_FLOOR = 0.9
#: per-workload block cap: the scalar path is ~1 ms/block, so the full
#: sweep stays a few seconds while the geometric mean stays representative
MAX_BLOCKS = 384


def _workload_blocks(name: str, scale: float) -> list[bytes]:
    workload = get_workload(name, scale=scale, seed=2019)
    blocks = [
        block
        for region in workload.generate().values()
        for block in array_to_blocks(region.array)
    ]
    return sample_evenly(blocks, MAX_BLOCKS)


def _time(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_codec_roundtrip_speedup(benchmark, slc_scale, codec_quick,
                                       bench_record):
    """compress_batch + decompress_batch vs. the per-block scalar codec."""
    names = QUICK_WORKLOADS if codec_quick else PAPER_WORKLOAD_ORDER
    floor = QUICK_CODEC_FLOOR if codec_quick else FULL_CODEC_FLOOR
    config = SLCConfig(variant=SLCVariant.OPT)

    speedups: dict[str, float] = {}
    rows = []
    for name in names:
        blocks = _workload_blocks(name, slc_scale)
        slc = SLCCompressor(config)
        slc.train(sample_evenly(blocks, 1024))

        def scalar() -> None:
            compressed = [slc.compress(block) for block in blocks]
            for block in compressed:
                slc.decompress(block)

        def batch() -> None:
            slc.decompress_batch(slc.compress_batch(blocks))

        scalar_s = _time(scalar)
        batch_s = _time(batch)
        speedups[name] = scalar_s / batch_s
        rows.append(
            f"{name:<8} {len(blocks):>4} blocks  scalar {scalar_s * 1e3:8.2f} ms  "
            f"batch {batch_s * 1e3:8.2f} ms  speedup {speedups[name]:6.1f}x"
        )

    gm = geometric_mean(list(speedups.values()))
    print()
    print("BENCH-C — batched payload codec vs. per-symbol scalar path")
    for row in rows:
        print(row)
    print(f"{'GM':<8} {'':>12}  speedup {gm:6.1f}x  (floor {floor:.0f}x)")
    bench_record(f"codec_gm_speedup{'_quick' if codec_quick else ''}", gm)

    # time the batch codec once more under pytest-benchmark for the report
    blocks = _workload_blocks(names[0], slc_scale)
    slc = SLCCompressor(config)
    slc.train(sample_evenly(blocks, 1024))
    benchmark.pedantic(
        lambda: slc.decompress_batch(slc.compress_batch(blocks)),
        rounds=3,
        iterations=1,
    )

    assert gm >= floor, f"batched codec only {gm:.1f}x over scalar (floor {floor}x)"


def test_bench_codec_end_to_end_job(slc_scale, codec_quick, bench_record):
    """The batched apply_decision path must speed up a full TSLC-OPT job.

    The payload codec runs in every store (host-to-device copies and write
    misses), so with analysis and replay already vectorized it dominates
    TSLC job time; the batched path must clear the floor end to end.
    """
    floor = QUICK_JOB_FLOOR if codec_quick else FULL_JOB_FLOOR
    job = Job(
        workload="NN",
        scheme="TSLC-OPT",
        scale=slc_scale,
        seed=2019,
        compute_error=False,
    )
    batch_s = _time(lambda: simulate_job(job), repeats=2)
    scalar_s = _time(lambda: simulate_job(job, batch_codec=False), repeats=2)
    speedup = scalar_s / batch_s
    print(
        f"\nend-to-end NN/TSLC-OPT job: scalar codec {scalar_s * 1e3:.1f} ms, "
        f"batch codec {batch_s * 1e3:.1f} ms ({speedup:.2f}x, floor {floor:.1f}x)"
    )
    # Absolute seconds are machine-dependent: trajectory context, not a gate.
    bench_record(
        "job_nn_tslc_opt_s", batch_s, unit="s", higher_is_better=False, gate=False,
    )
    assert speedup >= floor, (
        f"batched codec job only {speedup:.2f}x over the scalar payload path "
        f"(floor {floor}x)"
    )
