"""BENCH-C — batched payload codec vs. the per-symbol scalar path.

Measures bit-level payload materialization — Huffman compress + decompress of
every block of each paper workload's regions — comparing the vectorized codec
(:mod:`repro.kernels.codec` via ``compress_batch``/``decompress_batch``)
against the per-symbol ``BitWriter``/``BitReader`` loops it replaces, plus
the end-to-end effect of the batched ``apply_decision`` path on a TSLC-OPT
campaign job.  Full mode (the default) sweeps all nine workloads and asserts
the ≥5× codec / ≥1.5× job floors; ``--codec-quick`` is the CI smoke mode
(three workloads, relaxed floors) so the codec path is exercised on every
push.
"""

from __future__ import annotations

import time

import numpy as np

from repro.campaign.spec import Job
from repro.campaign.worker import simulate_job
from repro.compression.e2mc import E2MCCompressor
from repro.compression.stats import geometric_mean
from repro.core.config import SLCConfig, SLCVariant
from repro.core.slc import SLCCompressor
from repro.utils.blocks import array_to_blocks
from repro.utils.sampling import sample_evenly
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

QUICK_WORKLOADS = ("NN", "FWT", "DCT")
#: acceptance target for the full 9-workload sweep slice
FULL_CODEC_FLOOR = 5.0
#: relaxed floor for the CI smoke run (shared runners are noisy)
QUICK_CODEC_FLOOR = 2.0
#: fused multi-symbol decode vs. the searchsorted lockstep oracle; the
#: trajectory gate (BENCH_0008) owns the headline ≥3x number — these floors
#: only catch a fused path that stopped helping at all
FULL_DECODE_FLOOR = 2.0
QUICK_DECODE_FLOOR = 1.2
#: decode-benchmark batch size: the fused decoder's advantage is steady from
#: a few thousand rows up, and 8192 rows keep one measurement under ~100 ms
DECODE_ROWS = 8192
QUICK_DECODE_ROWS = 2048
#: end-to-end TSLC-OPT job floors (codec is one phase of a job); quick mode
#: allows 10% regression headroom for noisy shared runners, matching the
#: replay benchmark's smoke-mode convention
FULL_JOB_FLOOR = 1.5
QUICK_JOB_FLOOR = 0.9
#: per-workload block cap: the scalar path is ~1 ms/block, so the full
#: sweep stays a few seconds while the geometric mean stays representative
MAX_BLOCKS = 384


def _workload_blocks(name: str, scale: float) -> list[bytes]:
    workload = get_workload(name, scale=scale, seed=2019)
    blocks = [
        block
        for region in workload.generate().values()
        for block in array_to_blocks(region.array)
    ]
    return sample_evenly(blocks, MAX_BLOCKS)


def _time(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_codec_roundtrip_speedup(benchmark, slc_scale, codec_quick,
                                       bench_record):
    """compress_batch + decompress_batch vs. the per-block scalar codec."""
    names = QUICK_WORKLOADS if codec_quick else PAPER_WORKLOAD_ORDER
    floor = QUICK_CODEC_FLOOR if codec_quick else FULL_CODEC_FLOOR
    config = SLCConfig(variant=SLCVariant.OPT)

    speedups: dict[str, float] = {}
    rows = []
    for name in names:
        blocks = _workload_blocks(name, slc_scale)
        slc = SLCCompressor(config)
        slc.train(sample_evenly(blocks, 1024))

        def scalar() -> None:
            compressed = [slc.compress(block) for block in blocks]
            for block in compressed:
                slc.decompress(block)

        def batch() -> None:
            slc.decompress_batch(slc.compress_batch(blocks))

        scalar_s = _time(scalar)
        batch_s = _time(batch)
        speedups[name] = scalar_s / batch_s
        rows.append(
            f"{name:<8} {len(blocks):>4} blocks  scalar {scalar_s * 1e3:8.2f} ms  "
            f"batch {batch_s * 1e3:8.2f} ms  speedup {speedups[name]:6.1f}x"
        )

    gm = geometric_mean(list(speedups.values()))
    print()
    print("BENCH-C — batched payload codec vs. per-symbol scalar path")
    for row in rows:
        print(row)
    print(f"{'GM':<8} {'':>12}  speedup {gm:6.1f}x  (floor {floor:.0f}x)")
    bench_record(f"codec_gm_speedup{'_quick' if codec_quick else ''}", gm)

    # time the batch codec once more under pytest-benchmark for the report
    blocks = _workload_blocks(names[0], slc_scale)
    slc = SLCCompressor(config)
    slc.train(sample_evenly(blocks, 1024))
    benchmark.pedantic(
        lambda: slc.decompress_batch(slc.compress_batch(blocks)),
        rounds=3,
        iterations=1,
    )

    assert gm >= floor, f"batched codec only {gm:.1f}x over scalar (floor {floor}x)"


def _decode_dataset(name: str, scale: float, n_rows: int):
    """Production-shaped decode inputs: train E2MC on a workload's blocks,
    compress them, and keep the compressible payloads (replicated up to
    ``n_rows`` so the batch is large enough for steady-state timing)."""
    blocks = _workload_blocks(name, scale)
    compressor = E2MCCompressor()
    compressor.train(sample_evenly(blocks, 1024))
    payloads: list[bytes] = []
    bits: list[int] = []
    for compressed in compressor.compress_batch(blocks):
        if compressed.is_compressed:
            data, payload_bits = compressed.payload
            payloads.append(data)
            bits.append(payload_bits)
    if not payloads:
        return None
    reps = -(-n_rows // len(payloads))
    payloads = (payloads * reps)[:n_rows]
    bits = (bits * reps)[:n_rows]
    lut = compressor.model.codec_table()
    bit_lengths = np.asarray(bits, dtype=np.int64)
    counts = np.full(len(payloads), compressor.symbols_per_block, dtype=np.int64)
    return lut, payloads, bit_lengths, counts


def test_bench_codec_decode_speedup(slc_scale, codec_quick, bench_record):
    """Fused multi-symbol Huffman decode vs. the searchsorted lockstep oracle.

    Decode is the payload codec's hot half (every read miss decompresses);
    the fused k-bit tables replace one searchsorted round per symbol slot
    with a handful of gathers per row.  Timed interleaved (oracle/fused
    alternating) so drift on shared runners hits both sides equally.
    """
    names = QUICK_WORKLOADS if codec_quick else PAPER_WORKLOAD_ORDER
    floor = QUICK_DECODE_FLOOR if codec_quick else FULL_DECODE_FLOOR
    n_rows = QUICK_DECODE_ROWS if codec_quick else DECODE_ROWS
    repeats = 3 if codec_quick else 5

    speedups: dict[str, float] = {}
    rows = []
    for name in names:
        dataset = _decode_dataset(name, slc_scale, n_rows)
        if dataset is None:  # pragma: no cover - every paper workload compresses
            continue
        lut, payloads, bit_lengths, counts = dataset
        fused = lut.decode_rows(payloads, bit_lengths, counts)
        oracle = lut.decode_rows_lockstep(payloads, bit_lengths, counts)
        assert np.array_equal(fused, oracle)

        best_fused = best_oracle = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            lut.decode_rows_lockstep(payloads, bit_lengths, counts)
            best_oracle = min(best_oracle, time.perf_counter() - start)
            start = time.perf_counter()
            lut.decode_rows(payloads, bit_lengths, counts)
            best_fused = min(best_fused, time.perf_counter() - start)
        speedups[name] = best_oracle / best_fused
        rows.append(
            f"{name:<8} {len(payloads):>5} rows  oracle {best_oracle * 1e3:8.2f} ms"
            f"  fused {best_fused * 1e3:8.2f} ms  speedup {speedups[name]:5.2f}x"
        )

    gm = geometric_mean(list(speedups.values()))
    print()
    print("BENCH-C — fused multi-symbol decode vs. searchsorted oracle")
    for row in rows:
        print(row)
    print(f"{'GM':<8} {'':>12}   speedup {gm:5.2f}x  (floor {floor:.1f}x)")
    bench_record(f"decode_gm_speedup{'_quick' if codec_quick else ''}", gm)
    assert gm >= floor, (
        f"fused decode only {gm:.2f}x over the searchsorted oracle "
        f"(floor {floor}x)"
    )


def test_bench_codec_end_to_end_job(slc_scale, codec_quick, bench_record):
    """The batched apply_decision path must speed up a full TSLC-OPT job.

    The payload codec runs in every store (host-to-device copies and write
    misses), so with analysis and replay already vectorized it dominates
    TSLC job time; the batched path must clear the floor end to end.
    """
    floor = QUICK_JOB_FLOOR if codec_quick else FULL_JOB_FLOOR
    job = Job(
        workload="NN",
        scheme="TSLC-OPT",
        scale=slc_scale,
        seed=2019,
        compute_error=False,
    )
    batch_s = _time(lambda: simulate_job(job), repeats=2)
    scalar_s = _time(lambda: simulate_job(job, batch_codec=False), repeats=2)
    speedup = scalar_s / batch_s
    print(
        f"\nend-to-end NN/TSLC-OPT job: scalar codec {scalar_s * 1e3:.1f} ms, "
        f"batch codec {batch_s * 1e3:.1f} ms ({speedup:.2f}x, floor {floor:.1f}x)"
    )
    # Absolute seconds are machine-dependent: trajectory context, not a gate.
    bench_record(
        "job_nn_tslc_opt_s", batch_s, unit="s", higher_is_better=False, gate=False,
    )
    assert speedup >= floor, (
        f"batched codec job only {speedup:.2f}x over the scalar payload path "
        f"(floor {floor}x)"
    )
