"""EXP-F1 — regenerate Fig. 1 (raw vs. effective compression ratio)."""

from repro.experiments import format_fig1, run_fig1


def test_bench_fig1_compression_ratio(benchmark, slc_scale, slc_workloads):
    """Raw and effective ratios of BDI, FPC, C-PACK and E2MC per benchmark."""

    def run():
        return run_fig1(workload_names=slc_workloads, scale=slc_scale)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_fig1(rows))

    gm_rows = {row.compressor: row for row in rows if row.workload == "GM"}
    # Paper shape: every scheme loses ratio to MAG; E2MC has the highest raw
    # ratio of the four techniques.
    for row in gm_rows.values():
        assert row.effective_ratio < row.raw_ratio
    assert gm_rows["e2mc"].raw_ratio >= max(
        gm_rows[name].raw_ratio for name in ("bdi", "fpc", "cpack")
    )
