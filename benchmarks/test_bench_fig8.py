"""EXP-F8 — regenerate Fig. 8 (bandwidth, energy and EDP vs. E2MC)."""

from repro.experiments import format_fig8, run_fig8


def test_bench_fig8_bandwidth_energy_edp(benchmark, slc_scale, slc_workloads):
    """Normalized off-chip traffic, energy and EDP of the TSLC variants."""

    def run():
        return run_fig8(workload_names=slc_workloads, scale=slc_scale)

    rows, study = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_fig8(rows))

    # Paper shape: TSLC reduces traffic, energy and EDP at the geometric mean
    # (the paper reports about -14 %, -8.3 % and -17.5 % respectively).
    assert study.geomean("bandwidth", "TSLC-OPT") < 1.0
    assert study.geomean("energy", "TSLC-OPT") < 1.0
    assert study.geomean("edp", "TSLC-OPT") < 1.0
