"""Shared settings for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures.  The full
paper-scale inputs would take hours in pure Python, so the benchmarks run the
complete pipeline at a reduced input scale (the same code path, fewer
blocks); pass ``--slc-scale`` to change it.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--slc-scale",
        action="store",
        default=str(1.0 / 512.0),
        help="workload input scale used by the figure benchmarks",
    )
    parser.addoption(
        "--slc-workloads",
        action="store",
        default="",
        help="comma-separated subset of benchmarks (default: all nine)",
    )
    parser.addoption(
        "--kernels-quick",
        action="store_true",
        default=False,
        help="kernels microbenchmark smoke mode: fewer workloads, relaxed "
        "speedup floor (used by CI)",
    )
    parser.addoption(
        "--replay-quick",
        action="store_true",
        default=False,
        help="replay microbenchmark smoke mode: fewer workloads, smaller "
        "traces, relaxed speedup floor (used by CI)",
    )
    parser.addoption(
        "--codec-quick",
        action="store_true",
        default=False,
        help="payload-codec microbenchmark smoke mode: fewer workloads, "
        "relaxed speedup floors (used by CI)",
    )
    parser.addoption(
        "--tournament-quick",
        action="store_true",
        default=False,
        help="lossless-kernels microbenchmark smoke mode: fewer workloads, "
        "relaxed speedup floor (used by CI)",
    )
    parser.addoption(
        "--distributed-quick",
        action="store_true",
        default=False,
        help="distributed-campaign benchmark smoke mode: tiny grid, "
        "loopback coordinator + thread workers (used by CI)",
    )
    parser.addoption(
        "--fidelity-quick",
        action="store_true",
        default=False,
        help="fidelity metric-kernel benchmark smoke mode: smaller arrays, "
        "relaxed throughput floor (used by CI)",
    )
    parser.addoption(
        "--bench-record",
        action="store",
        default=None,
        metavar="PATH",
        help="merge measured GM speedups / job times into a recorded-metrics "
        "JSON consumable by 'repro bench check/snapshot --from'",
    )


@pytest.fixture(scope="session")
def slc_scale(request) -> float:
    """Workload input scale for the figure benchmarks."""
    return float(request.config.getoption("--slc-scale"))


@pytest.fixture(scope="session")
def kernels_quick(request) -> bool:
    """Whether the kernels microbenchmark runs in CI smoke mode."""
    return bool(request.config.getoption("--kernels-quick"))


@pytest.fixture(scope="session")
def replay_quick(request) -> bool:
    """Whether the replay microbenchmark runs in CI smoke mode."""
    return bool(request.config.getoption("--replay-quick"))


@pytest.fixture(scope="session")
def codec_quick(request) -> bool:
    """Whether the payload-codec microbenchmark runs in CI smoke mode."""
    return bool(request.config.getoption("--codec-quick"))


@pytest.fixture(scope="session")
def tournament_quick(request) -> bool:
    """Whether the lossless-kernels microbenchmark runs in CI smoke mode."""
    return bool(request.config.getoption("--tournament-quick"))


@pytest.fixture(scope="session")
def distributed_quick(request) -> bool:
    """Whether the distributed-campaign benchmark runs in CI smoke mode."""
    return bool(request.config.getoption("--distributed-quick"))


@pytest.fixture(scope="session")
def fidelity_quick(request) -> bool:
    """Whether the fidelity metric-kernel benchmark runs in CI smoke mode."""
    return bool(request.config.getoption("--fidelity-quick"))


@pytest.fixture(scope="session")
def bench_record(request):
    """Callable recording one measured metric for the perf-trajectory gate.

    A no-op unless ``--bench-record PATH`` was given.  Quick-mode callers
    suffix their metric names ``_quick`` themselves — quick and full
    measurements are not comparable, so they must never gate each other.
    """
    path = request.config.getoption("--bench-record")

    def _record(
        name: str,
        value: float,
        unit: str = "x",
        higher_is_better: bool = True,
        gate: bool = True,
    ) -> None:
        if path is None:
            return
        from repro.obs import trajectory

        trajectory.record(
            path, name, value, unit=unit,
            higher_is_better=higher_is_better, gate=gate,
        )

    return _record


@pytest.fixture(scope="session")
def slc_workloads(request) -> list[str] | None:
    """Optional subset of benchmarks to run."""
    raw = request.config.getoption("--slc-workloads").strip()
    if not raw:
        return None
    return [name.strip().upper() for name in raw.split(",") if name.strip()]
