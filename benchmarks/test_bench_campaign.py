"""Benchmarks for the campaign engine itself.

Quantifies the two properties the subsystem exists for: parallel fan-out of
a sweep over worker processes, and the persistent content-addressed cache
that turns a re-run of an identical campaign into pure store lookups.
"""

from __future__ import annotations

from repro.campaign import CampaignSpec, ResultStore, run_campaign


def _spec(scale: float, workloads=("BS", "NN")) -> CampaignSpec:
    return CampaignSpec(
        name="bench",
        workloads=tuple(workloads),
        schemes=("E2MC", "TSLC-OPT"),
        scales=(scale,),
        compute_error=False,
    )


def test_bench_campaign_parallel(benchmark, slc_scale):
    """Wall-clock of a small sweep fanned out over two worker processes."""
    spec = _spec(slc_scale)

    def run():
        outcome = run_campaign(spec, workers=2)
        outcome.raise_for_failures()
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.n_total == 4
    assert outcome.n_executed == 4
    assert outcome.n_failed == 0


def test_bench_campaign_cache_hits(benchmark, slc_scale, tmp_path):
    """A warm re-run of an identical campaign must simulate nothing."""
    spec = _spec(slc_scale)
    cold = run_campaign(spec, store=ResultStore(tmp_path))
    cold.raise_for_failures()
    cold_time = sum(record.elapsed_s for record in cold.records.values())

    def rerun():
        return run_campaign(spec, store=ResultStore(tmp_path))

    warm = benchmark.pedantic(rerun, rounds=1, iterations=1)
    print(f"\ncold simulation time {cold_time:.2f}s, warm run: all cached")
    assert warm.n_cached == warm.n_total == 4
    assert warm.n_executed == 0
