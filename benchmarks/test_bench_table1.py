"""EXP-T1 — regenerate Table I (frequency, area, power of the SLC hardware)."""

from repro.experiments import format_table1, run_table1
from repro.experiments.table1_hardware import run_overhead_summary


def test_bench_table1_hardware(benchmark):
    """Analytic 32 nm synthesis of the TSLC compressor/decompressor."""
    results = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    print()
    print(format_table1(results))

    summary = run_overhead_summary()
    # Paper shape: the overhead is a vanishing fraction of a GTX580 and only
    # a few percent of the E2MC hardware it extends.
    assert summary["area_percent_of_gtx580"] < 0.02
    assert summary["power_percent_of_gtx580"] < 0.02
    assert results["decompressor"].area_mm2 < results["compressor"].area_mm2
