"""Benchmark for the distributed campaign path: coordination overhead.

Runs the same tiny sweep twice — once on the in-process pool, once through
a loopback coordinator with two thread workers driving the real HTTP
protocol (join/lease/heartbeat/complete) — and reports the wall-clock
overhead the lease machinery adds.  The metric is informational
(``gate=False``): loopback latency says nothing about a real network, but
a sudden regression here would flag protocol bloat (e.g. chatty polling or
a serialization slip) before it hits a real cluster.
"""

from __future__ import annotations

import threading
import time

from repro.campaign import (
    CampaignCoordinator,
    CampaignSpec,
    run_campaign,
    run_worker,
)


def _spec(scale: float, workloads=("BS", "NN")) -> CampaignSpec:
    return CampaignSpec(
        name="bench-dist",
        workloads=tuple(workloads),
        schemes=("E2MC", "TSLC-OPT"),
        scales=(scale,),
        compute_error=False,
    )


def _run_distributed(spec: CampaignSpec, n_workers: int = 2):
    coordinator = CampaignCoordinator(
        spec.expand(), spec=spec, port=0,
        lease_timeout_s=30, fallback_workers=0, poll_s=0.02,
    )
    coordinator.start()
    threads = [
        threading.Thread(
            target=run_worker,
            args=(coordinator.url,),
            kwargs={"worker_id": f"bench-w{i}", "poll_s": 0.02},
            daemon=True,
        )
        for i in range(n_workers)
    ]
    for thread in threads:
        thread.start()
    outcome = coordinator.serve()
    for thread in threads:
        thread.join(timeout=30)
    return outcome


def test_bench_distributed_loopback_overhead(benchmark, slc_scale,
                                             distributed_quick, bench_record):
    """Loopback distributed run vs the in-process pool on the same grid."""
    scale = 1.0 / 2048.0 if distributed_quick else slc_scale
    workloads = ("NN",) if distributed_quick else ("BS", "NN")
    spec = _spec(scale, workloads)
    n_jobs = len(spec.expand())

    start = time.perf_counter()
    local = run_campaign(spec, workers=2)
    local_s = time.perf_counter() - start
    local.raise_for_failures()

    outcome = benchmark.pedantic(
        lambda: _run_distributed(spec), rounds=1, iterations=1)
    distributed_s = benchmark.stats.stats.mean

    assert outcome.n_missing == 0
    assert outcome.n_failed == 0
    assert outcome.n_executed == n_jobs
    assert outcome.queue_stats["completions"] == n_jobs
    assert outcome.queue_stats["leases_expired"] == 0  # healthy workers

    overhead_s = max(0.0, distributed_s - local_s)
    per_job_ms = 1000.0 * overhead_s / n_jobs
    print(
        f"\nin-process {local_s:.2f}s, distributed loopback "
        f"{distributed_s:.2f}s over {n_jobs} jobs "
        f"(overhead {per_job_ms:.0f}ms/job)"
    )
    suffix = "_quick" if distributed_quick else ""
    bench_record(
        f"distributed_loopback_overhead_per_job_ms{suffix}",
        per_job_ms, unit="ms", higher_is_better=False, gate=False,
    )
