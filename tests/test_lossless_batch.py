"""Scalar-vs-batch equivalence for the promoted lossless schemes.

PR 2–4 promoted E2MC and SLC to vectorized kernels with the scalar paths as
n=1 oracles; this suite pins the same contract for BDI, FPC, C-Pack and BPC
(:mod:`repro.kernels.lossless`): the batched size analysis must reproduce
per-block :meth:`compress` bit-exactly on random bytes, structured blocks
and real workload regions, and the backend/registry wiring on top of it
(protocol dispatch, per-scheme latencies, duplicate rejection, copy-free
stores) must behave as documented.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.spec import LOSSLESS_SCHEMES
from repro.campaign.worker import build_backend
from repro.compression import available_compressors, get_compressor, scheme_latency
from repro.compression.base import BlockCompressor, CompressedBlock
from repro.compression.registry import register_compressor
from repro.gpu.backends import LosslessBackend, NoCompressionBackend
from repro.gpu.config import GPUConfig
from repro.utils.blocks import array_to_blocks
from repro.workloads.registry import get_workload

from tests.conftest import make_float_blocks, make_mixed_blocks

BATCHED_SCHEMES = ("bdi", "fpc", "cpack", "bpc")


def _structured_blocks(seed: int = 3, count: int = 48) -> list[bytes]:
    """Blocks hitting every encoder branch: zeros, repeats, deltas, noise."""
    rng = np.random.default_rng(seed)
    blocks: list[bytes] = []
    for index in range(count):
        kind = index % 6
        if kind == 0:
            blocks.append(bytes(128))
        elif kind == 1:
            blocks.append(rng.integers(0, 1 << 32, dtype=np.uint64).tobytes() * 16)
        elif kind == 2:
            base = rng.integers(0, 1 << 30, dtype=np.uint32)
            blocks.append((base + np.arange(32, dtype=np.uint32)).tobytes())
        elif kind == 3:
            blocks.append(rng.integers(0, 256, size=32, dtype=np.uint32).tobytes())
        elif kind == 4:
            words = np.repeat(rng.integers(0, 1 << 32, size=4, dtype=np.uint32), 8)
            blocks.append(words.tobytes())
        else:
            blocks.append(rng.bytes(128))
    return blocks


def _scalar_sizes(compressor, blocks: list[bytes]) -> list[int]:
    return [compressor.compress(block).compressed_size_bits for block in blocks]


# --------------------------------------------------------------------- #
# kernel vs. scalar oracle


@pytest.mark.parametrize("scheme", BATCHED_SCHEMES)
def test_batch_sizes_match_scalar_structured(scheme):
    compressor = get_compressor(scheme)
    assert compressor.batched_analysis
    blocks = _structured_blocks() + make_float_blocks() + make_mixed_blocks()
    assert compressor.compressed_size_bits_batch(blocks).tolist() == _scalar_sizes(
        compressor, blocks
    )


@pytest.mark.parametrize("scheme", BATCHED_SCHEMES)
@settings(max_examples=30, deadline=None)
@given(data=st.binary(min_size=128 * 4, max_size=128 * 4))
def test_batch_sizes_match_scalar_random(scheme, data):
    compressor = get_compressor(scheme)
    blocks = [data[i : i + 128] for i in range(0, len(data), 128)]
    assert compressor.compressed_size_bits_batch(blocks).tolist() == _scalar_sizes(
        compressor, blocks
    )


@pytest.mark.parametrize("scheme", BATCHED_SCHEMES)
@pytest.mark.parametrize("block_size", [16, 32, 64, 256])
def test_batch_sizes_match_scalar_other_block_sizes(scheme, block_size):
    compressor = get_compressor(scheme, block_size_bytes=block_size)
    rng = np.random.default_rng(block_size)
    blocks = [
        bytes(block_size),
        rng.integers(0, 200, size=block_size // 4, dtype=np.uint32).tobytes(),
        rng.bytes(block_size),
    ]
    assert compressor.compressed_size_bits_batch(blocks).tolist() == _scalar_sizes(
        compressor, blocks
    )


@pytest.mark.parametrize("scheme", BATCHED_SCHEMES)
def test_batch_sizes_match_scalar_real_regions(scheme):
    workload = get_workload("SRAD1", scale=1.0 / 1024.0, seed=5)
    compressor = get_compressor(scheme)
    for region in workload.generate().values():
        blocks = array_to_blocks(region.array)
        assert compressor.compressed_size_bits_batch(blocks).tolist() == (
            _scalar_sizes(compressor, blocks)
        )


@pytest.mark.parametrize("scheme", BATCHED_SCHEMES)
def test_batch_empty_and_bad_geometry(scheme):
    compressor = get_compressor(scheme)
    assert compressor.compressed_size_bits_batch([]).tolist() == []
    with pytest.raises(Exception):
        compressor.compressed_size_bits_batch([bytes(64), bytes(128)])


def test_unaligned_block_size_falls_back_to_scalar():
    """Word-based kernels refuse odd geometries; the default loop covers them."""
    compressor = get_compressor("fpc", block_size_bytes=12)
    blocks = [bytes(12), b"\x01\x02\x03" * 4]
    assert compressor.analyze_batch(blocks).tolist() == _scalar_sizes(
        compressor, blocks
    )


def test_bpc_large_block_falls_back_to_scalar():
    compressor = get_compressor("bpc", block_size_bytes=512)
    rng = np.random.default_rng(0)
    blocks = [bytes(512), rng.bytes(512)]
    assert compressor.analyze_batch(blocks).tolist() == _scalar_sizes(
        compressor, blocks
    )


# --------------------------------------------------------------------- #
# backend protocol dispatch


@pytest.mark.parametrize("scheme", BATCHED_SCHEMES)
def test_backend_store_batch_matches_scalar_store(scheme):
    blocks = _structured_blocks(seed=9) + make_float_blocks(seed=13)
    backend = LosslessBackend(get_compressor(scheme))
    assert backend.store_batch(blocks) == [backend.store(b) for b in blocks]


def test_backend_dispatches_scalar_compressors_too():
    """A compressor without kernels still works through the one protocol."""

    class HalfCompressor(BlockCompressor):
        name = "half"

        def compress(self, block: bytes) -> CompressedBlock:
            self._check_block(block)
            return CompressedBlock(
                algorithm=self.name,
                original_size_bits=self.block_size_bits,
                compressed_size_bits=self.block_size_bits // 2,
                payload=block,
            )

        def decompress(self, compressed: CompressedBlock) -> bytes:
            return bytes(compressed.payload)

    backend = LosslessBackend(HalfCompressor())
    blocks = [bytes(128), bytes(range(128))]
    stored = backend.store_batch(blocks)
    assert stored == [backend.store(b) for b in blocks]
    assert all(s.stored_bits == 512 for s in stored)
    # unregistered name: the E2MC fallback latencies apply
    assert backend.compress_latency_cycles == 46
    assert backend.decompress_latency_cycles == 20


# --------------------------------------------------------------------- #
# registry latencies


def test_registry_latencies_reach_backends():
    for scheme in BATCHED_SCHEMES + ("e2mc",):
        compress_cycles, decompress_cycles = scheme_latency(scheme)
        backend = LosslessBackend(get_compressor(scheme))
        assert backend.compress_latency_cycles == compress_cycles
        assert backend.decompress_latency_cycles == decompress_cycles


def test_explicit_latency_overrides_registry():
    backend = LosslessBackend(get_compressor("bdi"), compress_cycles=99)
    assert backend.compress_latency_cycles == 99
    assert backend.decompress_latency_cycles == scheme_latency("bdi")[1]


def test_scheme_latency_unknown_name():
    with pytest.raises(KeyError):
        scheme_latency("gzip")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_compressor(
            "BDI", lambda **kw: None, compress_cycles=1, decompress_cycles=1
        )
    # the registry is untouched by the failed attempt
    assert "bdi" in available_compressors()
    assert get_compressor("bdi").name == "bdi"


# --------------------------------------------------------------------- #
# campaign wiring


@pytest.mark.parametrize("scheme", LOSSLESS_SCHEMES)
def test_build_backend_lossless_schemes(scheme):
    backend = build_backend(scheme, GPUConfig(), mag_bytes=32)
    assert isinstance(backend, LosslessBackend)
    assert backend.name == scheme.lower()
    assert (backend.compress_latency_cycles, backend.decompress_latency_cycles) == (
        scheme_latency(scheme)
    )


# --------------------------------------------------------------------- #
# copy-free stores


def test_stored_block_keeps_bytes_without_copy():
    block = bytes(range(128))
    lossless = LosslessBackend(get_compressor("bdi"))
    assert lossless.store(block).data is block
    assert lossless.store_batch([block])[0].data is block
    raw = NoCompressionBackend()
    assert raw.store(block).data is block


def test_stored_block_copies_non_bytes_input():
    block = bytearray(128)
    stored = NoCompressionBackend().store(block)
    assert isinstance(stored.data, bytes)
    assert stored.data == bytes(block)
