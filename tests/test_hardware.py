"""Tests for the analytic hardware cost model (Table I)."""

import pytest

from repro.hardware import (
    E2MC_REFERENCE,
    GTX580_REFERENCE,
    GateCount,
    GateLibrary,
    overhead_summary,
    synthesize_tslc_compressor,
    synthesize_tslc_decompressor,
    table1,
)


def test_gate_count_accumulation():
    count = GateCount(GateLibrary())
    count.add_adder(8)
    count.add_registers(16)
    count.add_comparator(8, count=2)
    count.add_mux(4, inputs=4)
    count.add_priority_encoder(16)
    count.add_raw_gates(10)
    assert count.gates > 0
    assert count.area_mm2() == pytest.approx(count.gates * 1.0e-6)
    assert count.power_mw(1.0) > 0


def test_gate_count_power_validation():
    count = GateCount(GateLibrary())
    count.add_raw_gates(100)
    with pytest.raises(ValueError):
        count.power_mw(0.0)
    with pytest.raises(ValueError):
        count.power_mw(1.0, activity=0.0)


def test_compressor_synthesis_in_table1_range():
    result = synthesize_tslc_compressor()
    # The paper reports 0.0083 mm^2 / 1.62 mW at 1.43 GHz; the analytic model
    # should land in the same order of magnitude.
    assert 0.003 < result.area_mm2 < 0.03
    assert 0.3 < result.power_mw < 6.0
    assert 0.7 < result.frequency_ghz < 2.5


def test_decompressor_synthesis_much_smaller_than_compressor():
    compressor = synthesize_tslc_compressor()
    decompressor = synthesize_tslc_decompressor()
    assert decompressor.area_mm2 < compressor.area_mm2 / 5
    assert decompressor.power_mw < compressor.power_mw
    assert decompressor.frequency_ghz <= 0.8 + 1e-9


def test_compressor_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        synthesize_tslc_compressor(n_symbols=60)


def test_table1_has_both_units():
    results = table1()
    assert set(results) == {"compressor", "decompressor"}
    assert results["compressor"].unit == "tslc-compressor"


def test_overhead_negligible_vs_gtx580():
    summary = overhead_summary()
    # Section III-H: 0.0015 % of area and 0.0008 % of power of a GTX580.
    assert summary["area_percent_of_gtx580"] < 0.02
    assert summary["power_percent_of_gtx580"] < 0.02
    assert summary["area_percent_of_e2mc"] < 25.0


def test_percent_helpers():
    result = synthesize_tslc_compressor()
    assert result.area_percent_of(GTX580_REFERENCE) == pytest.approx(
        result.area_mm2 / 520.0 * 100.0
    )
    assert result.power_percent_of(E2MC_REFERENCE) > 0


def test_extra_nodes_increase_area():
    plain = synthesize_tslc_compressor(extra_nodes={})
    optimized = synthesize_tslc_compressor(extra_nodes={2: 8, 3: 4})
    assert optimized.area_mm2 > plain.area_mm2
    # ... but only slightly (the paper: TSLC is 5.6 % of E2MC in total)
    assert optimized.area_mm2 < plain.area_mm2 * 1.3
