"""Tests for the analytic hardware cost model (Table I)."""

import pytest

from repro.campaign.spec import KNOWN_SCHEMES
from repro.hardware import (
    E2MC_REFERENCE,
    GTX580_REFERENCE,
    GateCount,
    GateLibrary,
    overhead_summary,
    scheme_hardware_cost,
    synthesize_bdi,
    synthesize_bpc,
    synthesize_cpack,
    synthesize_fpc,
    synthesize_tslc_compressor,
    synthesize_tslc_decompressor,
    table1,
)


def test_gate_count_accumulation():
    count = GateCount(GateLibrary())
    count.add_adder(8)
    count.add_registers(16)
    count.add_comparator(8, count=2)
    count.add_mux(4, inputs=4)
    count.add_priority_encoder(16)
    count.add_raw_gates(10)
    assert count.gates > 0
    assert count.area_mm2() == pytest.approx(count.gates * 1.0e-6)
    assert count.power_mw(1.0) > 0


def test_gate_count_power_validation():
    count = GateCount(GateLibrary())
    count.add_raw_gates(100)
    with pytest.raises(ValueError):
        count.power_mw(0.0)
    with pytest.raises(ValueError):
        count.power_mw(1.0, activity=0.0)


def test_compressor_synthesis_in_table1_range():
    result = synthesize_tslc_compressor()
    # The paper reports 0.0083 mm^2 / 1.62 mW at 1.43 GHz; the analytic model
    # should land in the same order of magnitude.
    assert 0.003 < result.area_mm2 < 0.03
    assert 0.3 < result.power_mw < 6.0
    assert 0.7 < result.frequency_ghz < 2.5


def test_decompressor_synthesis_much_smaller_than_compressor():
    compressor = synthesize_tslc_compressor()
    decompressor = synthesize_tslc_decompressor()
    assert decompressor.area_mm2 < compressor.area_mm2 / 5
    assert decompressor.power_mw < compressor.power_mw
    assert decompressor.frequency_ghz <= 0.8 + 1e-9


def test_compressor_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        synthesize_tslc_compressor(n_symbols=60)


def test_table1_has_both_units():
    results = table1()
    assert set(results) == {"compressor", "decompressor"}
    assert results["compressor"].unit == "tslc-compressor"


def test_overhead_negligible_vs_gtx580():
    summary = overhead_summary()
    # Section III-H: 0.0015 % of area and 0.0008 % of power of a GTX580.
    assert summary["area_percent_of_gtx580"] < 0.02
    assert summary["power_percent_of_gtx580"] < 0.02
    assert summary["area_percent_of_e2mc"] < 25.0


def test_percent_helpers():
    result = synthesize_tslc_compressor()
    assert result.area_percent_of(GTX580_REFERENCE) == pytest.approx(
        result.area_mm2 / 520.0 * 100.0
    )
    assert result.power_percent_of(E2MC_REFERENCE) > 0


def test_extra_nodes_increase_area():
    plain = synthesize_tslc_compressor(extra_nodes={})
    optimized = synthesize_tslc_compressor(extra_nodes={2: 8, 3: 4})
    assert optimized.area_mm2 > plain.area_mm2
    # ... but only slightly (the paper: TSLC is 5.6 % of E2MC in total)
    assert optimized.area_mm2 < plain.area_mm2 * 1.3


# --------------------------------------------------------------------- #
# per-scheme costs (the tournament's hardware axis)


def test_every_campaign_scheme_has_a_cost():
    for scheme in KNOWN_SCHEMES:
        cost = scheme_hardware_cost(scheme)
        assert cost.scheme == scheme
        assert cost.area_mm2 > 0
        assert cost.power_mw > 0
        assert cost.gate_count > 0


def test_scheme_cost_is_case_insensitive_and_rejects_unknown():
    assert scheme_hardware_cost("bdi") == scheme_hardware_cost("BDI")
    with pytest.raises(KeyError):
        scheme_hardware_cost("gzip")
    with pytest.raises(KeyError):
        scheme_hardware_cost("TSLC-TURBO")


def test_e2mc_cost_is_the_published_reference():
    cost = scheme_hardware_cost("E2MC")
    assert cost.area_mm2 == E2MC_REFERENCE.area_mm2
    assert cost.power_mw == E2MC_REFERENCE.power_w * 1000.0


def test_tslc_costs_order_simp_pred_opt():
    """Each variant adds hardware: SIMP < PRED < OPT, all above bare E2MC."""
    e2mc = scheme_hardware_cost("E2MC").area_mm2
    simp = scheme_hardware_cost("TSLC-SIMP").area_mm2
    pred = scheme_hardware_cost("TSLC-PRED").area_mm2
    opt = scheme_hardware_cost("TSLC-OPT").area_mm2
    assert e2mc < simp < pred < opt
    # ... and the whole addition stays a few percent of E2MC (Section III-H)
    assert opt < e2mc * 1.25


def test_classic_schemes_cheaper_than_e2mc():
    """BDI/FPC/C-Pack/BPC are simple datapaths — far below an entropy coder."""
    e2mc = scheme_hardware_cost("E2MC")
    for scheme in ("BDI", "FPC", "CPACK", "BPC"):
        assert scheme_hardware_cost(scheme).area_mm2 < e2mc.area_mm2
        assert scheme_hardware_cost(scheme).area_percent_of_e2mc() < 100.0


def test_classic_synthesis_results_are_wellformed():
    for synthesize, unit in (
        (synthesize_bdi, "bdi"),
        (synthesize_fpc, "fpc"),
        (synthesize_cpack, "cpack"),
        (synthesize_bpc, "bpc"),
    ):
        result = synthesize()
        assert result.unit == unit
        assert result.frequency_ghz == 1.0
        assert result.area_mm2 == pytest.approx(result.gate_count * 1.0e-6)
        # larger blocks mean wider datapaths
        assert synthesize(block_size_bytes=256).gate_count > result.gate_count
