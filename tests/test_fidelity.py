"""Property and unit tests for the statistical fidelity metrics.

The hypothesis suite pins the mathematical contracts of
:mod:`repro.metrics.fidelity` — bounds, identity cases, the affine
invariance of the IQR-normalized error — and the explicit ValueError
behaviour on malformed inputs (shape mismatch, empty arrays, NaN/inf).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.fidelity import (
    fidelity_panel,
    fidelity_summary,
    iqr_normalized_errors,
    ks_statistic,
    pearson_correlation,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


def arrays(min_size=1, max_size=64):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=min_size, max_value=max_size),
        elements=finite_floats,
    )


def array_pairs(min_size=1, max_size=64):
    """Two same-shaped finite arrays."""
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(
            hnp.arrays(dtype=np.float64, shape=n, elements=finite_floats),
            hnp.arrays(dtype=np.float64, shape=n, elements=finite_floats),
        )
    )


# --------------------------------------------------------------------- #
# bounds


@settings(max_examples=200, deadline=None)
@given(array_pairs())
def test_pearson_bounded(pair):
    exact, approx = pair
    r = pearson_correlation(exact, approx)
    assert -1.0 <= r <= 1.0


@settings(max_examples=200, deadline=None)
@given(array_pairs())
def test_ks_bounded(pair):
    exact, approx = pair
    ks = ks_statistic(exact, approx)
    assert 0.0 <= ks <= 1.0


@settings(max_examples=200, deadline=None)
@given(array_pairs())
def test_iqr_errors_nonnegative_and_ordered(pair):
    exact, approx = pair
    mean_err, max_err = iqr_normalized_errors(exact, approx)
    assert mean_err >= 0.0
    assert max_err >= mean_err
    assert np.isfinite(mean_err) and np.isfinite(max_err)


# --------------------------------------------------------------------- #
# identity: exact == approx


@settings(max_examples=100, deadline=None)
@given(arrays())
def test_identical_arrays_are_perfect(exact):
    assert pearson_correlation(exact, exact) == 1.0
    assert ks_statistic(exact, exact) == 0.0
    assert iqr_normalized_errors(exact, exact) == (0.0, 0.0)
    panel = fidelity_panel(exact, exact)
    assert panel == {"pearson": 1.0, "ks": 0.0, "iqr_mean": 0.0, "iqr_max": 0.0}


# --------------------------------------------------------------------- #
# invariance of the IQR-normalized error under affine maps of both sides


@settings(max_examples=100, deadline=None)
@given(
    array_pairs(min_size=4),
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)
def test_iqr_error_affine_invariant(pair, a, b):
    exact, approx = pair
    # needs a non-degenerate IQR so the normalizer doesn't switch branches
    if np.percentile(exact, 75) - np.percentile(exact, 25) <= 1e-6:
        return
    base = iqr_normalized_errors(exact, approx)
    mapped = iqr_normalized_errors(a * exact + b, a * approx + b)
    assert mapped[0] == pytest.approx(base[0], rel=1e-9, abs=1e-12)
    assert mapped[1] == pytest.approx(base[1], rel=1e-9, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(arrays(min_size=2), st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
def test_pearson_shift_invariant(exact, shift):
    r = pearson_correlation(exact, exact + shift)
    if np.ptp(exact) == 0.0:
        # constant fields: equality convention, see below
        assert r in (0.0, 1.0)
    else:
        assert r == pytest.approx(1.0, abs=1e-9)


# --------------------------------------------------------------------- #
# constant-field conventions


def test_constant_fields_equal():
    const = np.full(32, 3.5)
    assert pearson_correlation(const, const.copy()) == 1.0
    assert ks_statistic(const, const.copy()) == 0.0
    assert iqr_normalized_errors(const, const.copy()) == (0.0, 0.0)


def test_constant_fields_differ():
    exact = np.full(32, 3.5)
    approx = np.full(32, 4.0)
    # no variance on either side: correlation is undefined, reported as 0
    assert pearson_correlation(exact, approx) == 0.0
    # disjoint point masses: maximal distribution distance
    assert ks_statistic(exact, approx) == 1.0
    # IQR and range are both zero; the scale falls back to max(|value|, 1)
    mean_err, max_err = iqr_normalized_errors(exact, approx)
    assert mean_err == pytest.approx(0.5 / 3.5)
    assert max_err == pytest.approx(0.5 / 3.5)


def test_zero_constant_fallback_scale_is_one():
    exact = np.zeros(8)
    approx = np.full(8, 0.25)
    mean_err, _ = iqr_normalized_errors(exact, approx)
    assert mean_err == pytest.approx(0.25)


# --------------------------------------------------------------------- #
# known-value sanity


def test_pearson_perfect_anticorrelation():
    x = np.arange(16.0)
    assert pearson_correlation(x, -x) == pytest.approx(-1.0)


def test_ks_disjoint_supports():
    a = np.arange(16.0)
    b = np.arange(16.0) + 100.0
    assert ks_statistic(a, b) == 1.0


def test_ks_matches_half_overlap():
    # [0,1] vs [0.5, 1.5] uniform grids: KS = 0.5 at the support edge
    a = np.linspace(0.0, 1.0, 101)
    b = np.linspace(0.5, 1.5, 101)
    assert ks_statistic(a, b) == pytest.approx(0.5, abs=0.02)


# --------------------------------------------------------------------- #
# error handling


@pytest.mark.parametrize(
    "fn",
    [pearson_correlation, ks_statistic, iqr_normalized_errors, fidelity_panel],
)
def test_shape_mismatch_raises(fn):
    with pytest.raises(ValueError, match="shape"):
        fn(np.zeros(4), np.zeros(5))


@pytest.mark.parametrize(
    "fn",
    [pearson_correlation, ks_statistic, iqr_normalized_errors, fidelity_panel],
)
def test_empty_raises(fn):
    with pytest.raises(ValueError, match="empty"):
        fn(np.zeros(0), np.zeros(0))


@pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
@pytest.mark.parametrize(
    "fn",
    [pearson_correlation, ks_statistic, iqr_normalized_errors, fidelity_panel],
)
def test_non_finite_raises(fn, bad):
    good = np.ones(4)
    poisoned = good.copy()
    poisoned[2] = bad
    with pytest.raises(ValueError, match="finite"):
        fn(poisoned, good)
    with pytest.raises(ValueError, match="finite"):
        fn(good, poisoned)


def test_multidimensional_inputs_are_flattened():
    exact = np.arange(24.0).reshape(2, 3, 4)
    assert pearson_correlation(exact, exact) == 1.0
    assert fidelity_panel(exact, exact)["ks"] == 0.0


# --------------------------------------------------------------------- #
# fidelity_summary (worst case over regions)


def test_summary_worst_case_over_regions():
    rng = np.random.default_rng(7)
    clean = rng.normal(size=256)
    noisy = clean + rng.normal(scale=0.5, size=256)
    exact = {"a": clean, "b": clean}
    approx = {"a": clean.copy(), "b": noisy}
    summary = fidelity_summary(exact, approx)
    panel_b = fidelity_panel(clean, noisy)
    assert summary["fidelity_pearson"] == panel_b["pearson"]
    assert summary["fidelity_ks"] == panel_b["ks"]
    assert summary["fidelity_iqr_mean"] == panel_b["iqr_mean"]
    assert summary["fidelity_iqr_max"] == panel_b["iqr_max"]


def test_summary_key_mismatch_raises():
    with pytest.raises(ValueError):
        fidelity_summary({"a": np.ones(4)}, {"b": np.ones(4)})


def test_summary_empty_raises():
    with pytest.raises(ValueError):
        fidelity_summary({}, {})
