"""The pluggable kernel execution backend (``REPRO_KERNEL_BACKEND``).

Pins the selection logic (environment parsing, numba fallback), the shard
helper's contract, and — most importantly — that the threaded backend is
bit-exact against the default NumPy path for every kernel that routes
through it: the lossless size kernels, the Fig. 4 decision kernel and the
Huffman payload codec.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.e2mc import SymbolModel
from repro.core.config import SLCConfig
from repro.kernels import backend
from repro.kernels.decision import analyze_code_lengths
from repro.kernels.lossless import (
    bdi_size_bits,
    bpc_size_bits,
    cpack_size_bits,
    fpc_size_bits,
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)


# --------------------------------------------------------------------- #
# selection


def test_default_backend_is_numpy():
    assert backend.requested_backend() == "numpy"
    assert backend.active_backend() == "numpy"


@pytest.mark.parametrize("name", backend.VALID_BACKENDS)
def test_valid_backends_are_accepted(monkeypatch, name):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", f"  {name.upper()} ")
    assert backend.requested_backend() == name


def test_invalid_backend_falls_back_to_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
    assert backend.requested_backend() == "numpy"
    assert backend.active_backend() == "numpy"


def test_numba_request_degrades_silently_when_unavailable(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
    monkeypatch.setattr(backend, "numba_available", lambda: False)
    assert backend.requested_backend() == "numba"
    assert backend.active_backend() == "numpy"


def test_numba_request_sticks_when_available(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
    monkeypatch.setattr(backend, "numba_available", lambda: True)
    assert backend.active_backend() == "numba"


def test_thread_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
    assert backend.thread_workers() == 3
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "garbage")
    assert backend.thread_workers() >= 1


# --------------------------------------------------------------------- #
# shard helper


def test_shard_ranges_cover_exactly():
    for n in (1, 2, 7, 100, 1000):
        for parts in (1, 2, 3, 8, n + 5):
            ranges = backend.shard_ranges(n, parts)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == n
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo
            assert all(hi > lo for lo, hi in ranges)
            assert len(ranges) <= min(parts, n)


def test_run_sharded_is_none_on_numpy_backend():
    assert backend.run_sharded(lambda lo, hi: (lo, hi), 10_000) is None


def test_run_sharded_is_none_below_threshold(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
    assert backend.run_sharded(lambda lo, hi: (lo, hi), 8) is None


def test_run_sharded_splits_and_orders(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "4")
    shards = backend.run_sharded(lambda lo, hi: (lo, hi), 1000)
    assert shards is not None and len(shards) == 4
    assert shards[0][0] == 0 and shards[-1][1] == 1000
    flattened = [bound for shard in shards for bound in shard]
    assert flattened == sorted(flattened)


def test_run_sharded_propagates_worker_exception(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "2")

    def boom(lo, hi):
        raise RuntimeError("shard failed")

    with pytest.raises(RuntimeError, match="shard failed"):
        backend.run_sharded(boom, 10_000)


# --------------------------------------------------------------------- #
# bit-exactness of the threaded backend


def _random_blocks(n: int, block_bytes: int = 128) -> list[bytes]:
    rng = np.random.default_rng(7)
    # a mix of compressible (low-entropy) and incompressible blocks
    raw = rng.integers(0, 256, size=(n, block_bytes), dtype=np.uint8)
    raw[:: 3] >>= 6
    raw[1::5] = 0
    return [row.tobytes() for row in raw]


@pytest.mark.parametrize(
    "kernel", [bdi_size_bits, fpc_size_bits, cpack_size_bits, bpc_size_bits]
)
def test_lossless_kernels_threaded_bit_exact(monkeypatch, kernel):
    blocks = _random_blocks(700)
    expected = kernel(blocks)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "4")
    assert np.array_equal(kernel(blocks), expected)


def test_decision_kernel_threaded_bit_exact(monkeypatch):
    rng = np.random.default_rng(11)
    config = SLCConfig()
    lengths = rng.integers(1, 17, size=(900, config.symbols_per_block)).astype(
        np.int64
    )
    expected = analyze_code_lengths(config, lengths, trained=True)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "4")
    sharded = analyze_code_lengths(config, lengths, trained=True)
    for field in (
        "mode",
        "comp_size_bits",
        "stored_size_bits",
        "bit_budget_bits",
        "extra_bits",
        "bursts",
        "approx_start",
        "approx_count",
        "bits_removed",
        "used_extra_node",
    ):
        assert np.array_equal(getattr(sharded, field), getattr(expected, field)), field


def test_codec_threaded_bit_exact(monkeypatch):
    rng = np.random.default_rng(13)
    model = SymbolModel(max_table_entries=64, max_code_length=12)
    model.fit_counts({symbol: 1 << min(symbol, 20) for symbol in range(48)})
    lut = model.codec_table()
    # mostly tabled symbols, with a sprinkle of escapes (>= 48 is untabled)
    rows = [rng.integers(0, 56, size=64).astype(np.int64) for _ in range(600)]
    flat = np.concatenate(rows)
    counts = np.asarray([row.size for row in rows], dtype=np.int64)
    packed, row_bits = lut.encode_rows(flat.astype(np.uint16), counts)
    payloads = [data for data, _ in lut.payloads_from_rows(packed, row_bits)]
    expected = lut.decode_rows(payloads, row_bits, counts)

    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "4")
    assert np.array_equal(lut.decode_rows(payloads, row_bits, counts), expected)
    packed_threaded, bits_threaded = lut.encode_rows(flat.astype(np.uint16), counts)
    assert np.array_equal(bits_threaded, row_bits)
    assert np.array_equal(packed_threaded, packed)
