"""Tests for the campaign subsystem (spec, worker, store, executor, CLI)."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    BASELINE_SCHEME,
    CampaignSpec,
    Job,
    ResultStore,
    config_to_overrides,
    overrides_to_config,
    run_campaign,
    run_jobs,
    simulate_job,
)
from repro.campaign.cli import main as cli_main
from repro.campaign.store import JobRecord
from repro.core.config import SLCVariant
from repro.experiments.runner import (
    VARIANT_LABELS,
    make_e2mc_backend,
    make_slc_backend,
    run_slc_study,
)
from repro.gpu.config import GPUConfig, LatencyConfig
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

TINY = 1.0 / 1024.0

#: the full paper grid of the acceptance criteria
ALL_SCHEMES = ("E2MC", "TSLC-SIMP", "TSLC-PRED", "TSLC-OPT")


# --------------------------------------------------------------------- #
# jobs and specs


def test_job_content_hash_stable_and_parameter_sensitive():
    job = Job(workload="BS", scheme="TSLC-OPT", scale=TINY)
    assert job.content_hash == Job(workload="BS", scheme="TSLC-OPT", scale=TINY).content_hash
    # every axis must contribute to the hash
    variations = [
        Job(workload="NN", scheme="TSLC-OPT", scale=TINY),
        Job(workload="BS", scheme="E2MC", scale=TINY, compute_error=False),
        Job(workload="BS", scheme="TSLC-OPT", scale=TINY, lossy_threshold_bytes=8),
        Job(workload="BS", scheme="TSLC-OPT", scale=TINY, mag_bytes=64),
        Job(workload="BS", scheme="TSLC-OPT", scale=TINY / 2),
        Job(workload="BS", scheme="TSLC-OPT", scale=TINY, seed=7),
        Job(workload="BS", scheme="TSLC-OPT", scale=TINY, compute_error=False),
        Job(workload="BS", scheme="TSLC-OPT", scale=TINY,
            config_overrides=(("num_sms", 8),)),
    ]
    hashes = {job.content_hash} | {v.content_hash for v in variations}
    assert len(hashes) == len(variations) + 1


def test_job_normalizes_case_for_cache_identity():
    lower = Job(workload="bs", scheme="tslc-opt", scale=TINY)
    upper = Job(workload="BS", scheme="TSLC-OPT", scale=TINY)
    assert lower == upper
    assert lower.content_hash == upper.content_hash


def test_job_normalizes_numeric_types_for_cache_identity():
    # scale=1 vs 1.0 (and int-ish thresholds) must hash identically, or the
    # worker dict round trip would re-key the record and defeat the cache
    a = Job(workload="NN", scheme="TSLC-OPT", scale=1, lossy_threshold_bytes=16.0)
    b = Job(workload="NN", scheme="TSLC-OPT", scale=1.0, lossy_threshold_bytes=16)
    assert a == b and a.content_hash == b.content_hash
    assert Job.from_dict(a.to_dict()).content_hash == a.content_hash


def test_baseline_job_is_threshold_independent():
    # E2MC ignores the lossy threshold, so every threshold addresses the
    # same cache entry (and the baseline never computes application error)
    a = Job(workload="BS", scheme="E2MC", lossy_threshold_bytes=8, scale=TINY)
    b = Job(workload="BS", scheme="E2MC", lossy_threshold_bytes=32, scale=TINY,
            compute_error=True)
    assert a == b and a.content_hash == b.content_hash
    assert a.compute_error is False


def test_job_dict_roundtrip_through_json():
    job = Job(
        workload="DCT",
        scheme="TSLC-PRED",
        lossy_threshold_bytes=8,
        mag_bytes=64,
        scale=0.125,
        seed=42,
        compute_error=False,
        config_overrides=(("latency.tslc_compress_cycles", 70), ("num_sms", 8)),
    )
    restored = Job.from_dict(json.loads(json.dumps(job.to_dict())))
    assert restored == job
    assert restored.content_hash == job.content_hash


def test_config_overrides_roundtrip():
    assert config_to_overrides(None) == ()
    assert config_to_overrides(GPUConfig()) == ()
    config = GPUConfig().scaled(
        num_sms=8,
        memory_bandwidth_gbps=100.0,
        latency=LatencyConfig(tslc_compress_cycles=70),
    )
    overrides = config_to_overrides(config)
    assert dict(overrides) == {
        "num_sms": 8,
        "memory_bandwidth_gbps": 100.0,
        "latency.tslc_compress_cycles": 70,
    }
    assert overrides_to_config(overrides) == config


def test_spec_expands_full_grid_in_deterministic_order():
    spec = CampaignSpec(
        workloads=("BS", "NN"),
        schemes=("E2MC", "TSLC-OPT"),
        lossy_thresholds=(8, 16),
        mags=(None, 64),
        scales=(TINY,),
        seeds=(1, 2),
    )
    jobs = spec.expand()
    # 32 raw cells, but the threshold-independent E2MC baseline aliases
    # across the two thresholds: 16 TSLC cells + 8 unique baseline cells
    assert len(jobs) == 16 + 8
    assert jobs == spec.expand()  # deterministic
    # innermost axis is the scheme, then workloads — so studies group cleanly
    assert [j.scheme for j in jobs[:4]] == ["E2MC", "TSLC-OPT", "E2MC", "TSLC-OPT"]
    assert [j.workload for j in jobs[:4]] == ["BS", "BS", "NN", "NN"]
    # the lossless baseline never computes application error
    for job in jobs:
        assert job.compute_error is (job.scheme != BASELINE_SCHEME)


def test_spec_rejects_unknown_axes():
    with pytest.raises(KeyError, match="unknown workload"):
        CampaignSpec(workloads=("NOPE",))
    with pytest.raises(KeyError, match="unknown scheme"):
        CampaignSpec(schemes=("ZLIB",))
    with pytest.raises(ValueError, match="at least one value"):
        CampaignSpec(workloads=())


def test_spec_dict_roundtrip():
    spec = CampaignSpec(
        name="x",
        workloads=("BS",),
        schemes=("E2MC",),
        lossy_thresholds=(4, 8),
        mags=(None, 16),
        scales=(None, 0.5),
        seeds=(3,),
        compute_error=False,
        config_overrides=(("num_sms", 4),),
    )
    assert CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


# --------------------------------------------------------------------- #
# result serialization and the store


def test_simulation_result_json_roundtrip():
    result = simulate_job(Job(workload="NN", scheme="TSLC-OPT", scale=TINY))
    restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result
    assert restored.energy == result.energy
    assert restored.edp == result.edp


def test_store_persists_and_reloads(tmp_path):
    job = Job(workload="NN", scheme="E2MC", scale=TINY, compute_error=False)
    record = JobRecord(job=job, status="ok", result=simulate_job(job), elapsed_s=0.5)
    store = ResultStore(tmp_path)
    store.put(record)

    reloaded = ResultStore(tmp_path)
    assert len(reloaded) == 1
    assert job.content_hash in reloaded
    fetched = reloaded.get(job.content_hash)
    assert fetched.ok and fetched.result == record.result and fetched.job == job


def test_store_skips_torn_trailing_line(tmp_path):
    job = Job(workload="NN", scheme="E2MC", scale=TINY, compute_error=False)
    store = ResultStore(tmp_path)
    store.put(JobRecord(job=job, status="error", error="boom"))
    with store.results_path.open("a") as handle:
        handle.write('{"job_hash": "truncated...')
    reloaded = ResultStore(tmp_path)
    assert len(reloaded) == 1


def test_store_spec_roundtrip(tmp_path):
    spec = CampaignSpec(workloads=("BS",), schemes=("E2MC",), scales=(TINY,))
    store = ResultStore(tmp_path)
    assert store.load_spec() is None
    store.save_spec(spec)
    assert ResultStore(tmp_path).load_spec() == spec


# --------------------------------------------------------------------- #
# executor


def test_failed_job_is_captured_not_fatal(tmp_path):
    spec = CampaignSpec(workloads=("NN",), schemes=("E2MC",), scales=(TINY,))
    good = Job(workload="NN", scheme="E2MC", scale=TINY, compute_error=False)
    bad = Job(workload="NN", scheme="BOGUS", scale=TINY)  # bypasses spec checks
    outcome = run_jobs(spec, [bad, good], store=ResultStore(tmp_path))
    assert outcome.n_total == 2 and outcome.n_failed == 1
    assert outcome.record_for(good).ok
    assert "unknown scheme" in outcome.record_for(bad).error
    with pytest.raises(RuntimeError, match="1 of 2 campaign jobs failed"):
        outcome.raise_for_failures()
    # failed records are retried on the next invocation, not served as cache
    retry = run_jobs(spec, [bad, good], store=ResultStore(tmp_path))
    assert retry.record_for(good).cached
    assert not retry.record_for(bad).cached


def test_progress_callback_sees_every_job():
    spec = CampaignSpec(
        workloads=("NN",), schemes=("E2MC", "TSLC-SIMP"), scales=(TINY,),
        compute_error=False,
    )
    seen = []
    run_campaign(spec, progress=lambda record, done, total: seen.append((done, total)))
    assert seen == [(1, 2), (2, 2)]


def test_progress_reporter_prints_rolling_eta():
    import io

    from repro.campaign.cli import ProgressReporter
    from repro.campaign.spec import Job

    stream = io.StringIO()
    reporter = ProgressReporter(workers=2, stream=stream)
    job = Job(workload="NN", scheme="E2MC", compute_error=False)
    # A cached cell reports but contributes no timing (and thus no ETA yet).
    reporter(JobRecord(job=job, status="ok", cached=True), 1, 5)
    # Executed cells feed the rolling mean; 3 jobs left at 4 s mean over
    # 2 workers -> ETA 6 s.
    reporter(JobRecord(job=job, status="ok", elapsed_s=4.0), 2, 5)
    lines = stream.getvalue().splitlines()
    assert lines[0].startswith("[1/5]")
    assert "ETA" not in lines[0]
    assert "avg 4.00s/job" in lines[1]
    assert "ETA 6s" in lines[1]
    # Failed jobs abort early and must not drag the mean toward zero.
    reporter(JobRecord(job=job, status="error", elapsed_s=0.001), 3, 5)
    assert "avg 4.00s/job" in stream.getvalue().splitlines()[-1]
    # The final job prints no ETA (nothing remaining).
    reporter(JobRecord(job=job, status="ok", elapsed_s=2.0), 5, 5)
    assert "ETA" not in stream.getvalue().splitlines()[-1]


def test_progress_reporter_is_a_valid_campaign_progress_hook():
    import io

    from repro.campaign.cli import ProgressReporter

    stream = io.StringIO()
    spec = CampaignSpec(
        workloads=("NN",), schemes=("E2MC", "TSLC-SIMP"), scales=(TINY,),
        compute_error=False,
    )
    run_campaign(spec, progress=ProgressReporter(stream=stream))
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("[1/2]")
    assert "ETA" in lines[0]  # one job remaining after the first completes
    assert lines[1].startswith("[2/2]")


def test_timing_only_request_served_from_error_computed_record(tmp_path):
    """A stored result that computed the application error is a strict
    superset of a timing-only request for the same cell."""
    full = CampaignSpec(workloads=("NN",), schemes=("TSLC-OPT",), scales=(TINY,))
    first = run_campaign(full, store=ResultStore(tmp_path))
    first.raise_for_failures()

    timing_only = CampaignSpec(
        workloads=("NN",), schemes=("TSLC-OPT",), scales=(TINY,), compute_error=False
    )
    second = run_campaign(timing_only, store=ResultStore(tmp_path))
    assert second.n_cached == 1 and second.n_executed == 0
    served = second.record_for(timing_only.expand()[0])
    assert served.result.error_percent >= 0.0  # the superset record


def test_full_paper_grid_parallel_then_all_cache_hits(tmp_path):
    """Acceptance: 9 workloads x 4 schemes with workers>1 persists to disk and
    an identical second invocation re-runs zero simulations."""
    spec = CampaignSpec(
        name="full-grid",
        workloads=PAPER_WORKLOAD_ORDER,
        schemes=ALL_SCHEMES,
        scales=(TINY,),
        compute_error=False,
    )
    outcome = run_campaign(spec, store=ResultStore(tmp_path), workers=2)
    outcome.raise_for_failures()
    assert outcome.n_total == 9 * 4
    assert outcome.n_executed == 36 and outcome.n_cached == 0
    assert (tmp_path / "results.jsonl").exists()

    rerun = run_campaign(spec, store=ResultStore(tmp_path), workers=2)
    assert rerun.n_cached == 36 and rerun.n_executed == 0 and rerun.n_failed == 0
    for job, record in rerun.iter_records():
        assert record.cached and record.result == outcome.record_for(job).result


# --------------------------------------------------------------------- #
# run_slc_study on the campaign engine


def _serial_seed_study(workload_names, variants, scale, seed):
    """The seed repo's serial loop, inlined as the regression reference."""
    config = GPUConfig()
    simulator = GPUSimulator(config=config)
    results = {}
    for name in workload_names:
        per_scheme = {}
        workload = get_workload(name, seed=seed, scale=scale)
        per_scheme["E2MC"] = simulator.run(
            workload, make_e2mc_backend(config), compute_error=False
        )
        for variant in variants:
            workload = get_workload(name, seed=seed, scale=scale)
            per_scheme[VARIANT_LABELS[variant]] = simulator.run(
                workload, make_slc_backend(config, variant), compute_error=True
            )
        results[name] = per_scheme
    return results


def test_run_slc_study_matches_serial_seed_semantics():
    """Acceptance: the campaign-backed study returns metrics identical to the
    seed's serial implementation for a fixed seed."""
    workloads = ["BS", "NN"]
    variants = [SLCVariant.SIMP, SLCVariant.OPT]
    study = run_slc_study(workload_names=workloads, variants=variants, scale=TINY)
    reference = _serial_seed_study(workloads, variants, TINY, seed=2019)
    assert study.workloads() == workloads
    for name in workloads:
        assert list(study.results[name]) == list(reference[name])
        for scheme, expected in reference[name].items():
            assert study.results[name][scheme] == expected


def test_run_slc_study_parallel_matches_serial():
    serial = run_slc_study(workload_names=["BS"], variants=[SLCVariant.OPT], scale=TINY)
    parallel = run_slc_study(
        workload_names=["BS"], variants=[SLCVariant.OPT], scale=TINY, workers=2
    )
    assert serial.results == parallel.results


def test_run_slc_study_uses_store_cache(tmp_path):
    kwargs = dict(
        workload_names=["NN"], variants=[SLCVariant.OPT], scale=TINY,
        compute_error=False, store_dir=tmp_path,
    )
    first = run_slc_study(**kwargs)
    second = run_slc_study(**kwargs)
    assert first.results == second.results
    # two (workload, scheme) cells were persisted, none duplicated
    assert len(ResultStore(tmp_path)) == 2


def test_run_slc_study_preserves_caller_workload_names():
    study = run_slc_study(workload_names=["bs"], variants=[SLCVariant.OPT],
                          scale=TINY, compute_error=False)
    assert study.workloads() == ["bs"]
    assert study.speedup("bs", "TSLC-OPT") > 0


def test_study_schemes_returns_union_across_workloads():
    study = run_slc_study(workload_names=["BS"], variants=[SLCVariant.SIMP],
                          scale=TINY, compute_error=False)
    # a second workload simulated with a different variant set
    extra = run_slc_study(workload_names=["NN"], variants=[SLCVariant.OPT],
                          scale=TINY, compute_error=False)
    study.results.update(extra.results)
    assert study.schemes() == ["E2MC", "TSLC-SIMP", "TSLC-OPT"]


# --------------------------------------------------------------------- #
# CLI


def _run_cli(*argv):
    return cli_main(list(argv))


def test_cli_run_status_export(tmp_path, capsys):
    campaign_dir = str(tmp_path / "camp")
    code = _run_cli(
        "campaign", "run", "--dir", campaign_dir,
        "--workloads", "NN", "--schemes", "E2MC,TSLC-OPT",
        "--scale", str(TINY), "--no-error", "--quiet",
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "2 jobs" in out and "2 executed" in out and "0 failed" in out

    # identical re-run: everything served from the store
    code = _run_cli(
        "campaign", "run", "--dir", campaign_dir,
        "--workloads", "NN", "--schemes", "E2MC,TSLC-OPT",
        "--scale", str(TINY), "--no-error", "--quiet",
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "2 cached, 0 executed" in out

    code = _run_cli("campaign", "status", "--dir", campaign_dir)
    out = capsys.readouterr().out
    assert code == 0
    assert "2 complete, 0 failed, 0 missing" in out

    csv_path = tmp_path / "export.csv"
    code = _run_cli("campaign", "export", "--dir", campaign_dir, "--csv", str(csv_path))
    assert code == 0
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 3  # header + two result rows
    assert lines[0].startswith("workload,scheme,")
    assert any(line.startswith("NN,E2MC,") for line in lines[1:])
    assert any(line.startswith("NN,TSLC-OPT,") for line in lines[1:])


def test_cli_status_agrees_with_run_on_twin_cache(tmp_path, capsys):
    """A timing-only spec over a store populated with error-computing runs
    must report complete — the same policy `campaign run` serves cache by."""
    campaign_dir = str(tmp_path / "camp")
    assert _run_cli(
        "campaign", "run", "--dir", campaign_dir,
        "--workloads", "NN", "--schemes", "TSLC-OPT",
        "--scale", str(TINY), "--quiet",
    ) == 0
    capsys.readouterr()
    # re-declare the campaign as timing-only: run serves it from the twin...
    assert _run_cli(
        "campaign", "run", "--dir", campaign_dir,
        "--workloads", "NN", "--schemes", "TSLC-OPT",
        "--scale", str(TINY), "--no-error", "--quiet",
    ) == 0
    assert "1 cached, 0 executed" in capsys.readouterr().out
    # ...and status agrees instead of calling the same cells missing
    assert _run_cli("campaign", "status", "--dir", campaign_dir) == 0
    assert "1 complete, 0 failed, 0 missing" in capsys.readouterr().out


def test_cli_status_without_spec(tmp_path, capsys):
    assert _run_cli("campaign", "status", "--dir", str(tmp_path)) == 1
    assert "no campaign.json" in capsys.readouterr().out


def test_cli_version(capsys):
    from repro._version import __version__

    assert _run_cli("version") == 0
    assert capsys.readouterr().out.strip() == __version__
