"""Integration tests for the trace-driven GPU simulator."""

import pytest

from repro.core.config import SLCVariant
from repro.experiments.runner import make_e2mc_backend, make_slc_backend
from repro.gpu import GPUConfig, GPUSimulator, NoCompressionBackend
from repro.workloads import get_workload

SCALE = 1.0 / 1024.0


@pytest.fixture(scope="module")
def simulator():
    return GPUSimulator(GPUConfig())


@pytest.fixture(scope="module")
def results(simulator):
    """Simulate one workload under three backends (shared across tests)."""
    config = simulator.config
    out = {}
    out["none"] = simulator.run(
        get_workload("NN", scale=SCALE), NoCompressionBackend(), compute_error=False
    )
    out["e2mc"] = simulator.run(
        get_workload("NN", scale=SCALE), make_e2mc_backend(config), compute_error=False
    )
    out["slc"] = simulator.run(
        get_workload("NN", scale=SCALE),
        make_slc_backend(config, SLCVariant.OPT),
        compute_error=True,
    )
    return out


def test_simulator_validation():
    with pytest.raises(ValueError):
        GPUSimulator(overlap_penalty=2.0)
    with pytest.raises(ValueError):
        GPUSimulator(train_samples=0)


def test_result_fields_are_sane(results):
    for result in results.values():
        assert result.exec_time_s > 0
        assert result.total_bursts == result.read_bursts + result.write_bursts
        assert result.dram_bytes == result.total_bursts * 32
        assert result.l2_accesses > 0
        assert 0 <= result.l2_hit_rate <= 1
        assert result.stored_blocks > 0
        assert result.energy_j > 0
        assert result.edp == pytest.approx(result.energy_j * result.exec_time_s)
        assert 0 <= result.memory_bound_fraction <= 1


def test_compression_reduces_traffic(results):
    assert results["e2mc"].dram_bytes < results["none"].dram_bytes
    assert results["slc"].dram_bytes <= results["e2mc"].dram_bytes


def test_compression_reduces_execution_time(results):
    assert results["e2mc"].exec_time_s < results["none"].exec_time_s
    assert results["slc"].exec_time_s <= results["e2mc"].exec_time_s * 1.02


def test_slc_produces_lossy_blocks_and_bounded_error(results):
    slc = results["slc"]
    assert slc.lossy_blocks > 0
    assert 0.0 <= slc.error_percent < 50.0


def test_lossless_backends_report_zero_lossy_blocks(results):
    assert results["none"].lossy_blocks == 0
    assert results["e2mc"].lossy_blocks == 0
    assert results["none"].error_percent == 0.0


def test_normalized_helpers(results):
    baseline = results["e2mc"]
    slc = results["slc"]
    assert slc.speedup_over(baseline) == pytest.approx(
        baseline.exec_time_s / slc.exec_time_s
    )
    assert slc.bandwidth_ratio_over(baseline) <= 1.0
    assert slc.energy_ratio_over(baseline) == pytest.approx(
        slc.energy_j / baseline.energy_j
    )
    assert slc.edp_ratio_over(baseline) == pytest.approx(slc.edp / baseline.edp)


def test_uncompressed_baseline_uses_four_bursts_per_read(results):
    none = results["none"]
    reads = none.extra_metrics.get("mdc_extra_bursts", None)
    assert none.read_bursts % 4 == 0


def test_workload_and_backend_names_recorded(results):
    assert results["slc"].workload == "NN"
    assert results["slc"].backend.startswith("slc-")
    assert results["e2mc"].backend == "e2mc"
