"""Tests for the error and performance metrics."""

import numpy as np
import pytest

from repro.metrics import (
    bandwidth_reduction_percent,
    edp_reduction_percent,
    energy_reduction_percent,
    image_diff_percent,
    mean_relative_error_percent,
    miss_rate_percent,
    normalized_metric,
    nrmse_percent,
    speedup,
    summarize_geomean,
)


def test_mre_zero_for_identical():
    data = np.linspace(1, 10, 50)
    assert mean_relative_error_percent(data, data) == 0.0


def test_mre_simple_case():
    assert mean_relative_error_percent([100.0], [90.0]) == pytest.approx(10.0)


def test_mre_clips_unbounded_outliers():
    assert mean_relative_error_percent([1e-9], [1.0]) <= 100.0


def test_mre_empty_is_zero():
    assert mean_relative_error_percent([], []) == 0.0


def test_mre_shape_mismatch():
    with pytest.raises(ValueError):
        mean_relative_error_percent([1, 2], [1, 2, 3])


def test_nrmse_normalized_by_range():
    exact = np.array([0.0, 10.0])
    approx = np.array([1.0, 10.0])
    # rmse = sqrt(0.5), range = 10
    assert nrmse_percent(exact, approx) == pytest.approx(np.sqrt(0.5) / 10 * 100)


def test_nrmse_constant_signal_does_not_divide_by_zero():
    assert nrmse_percent([5.0, 5.0], [5.0, 5.0]) == 0.0
    assert np.isfinite(nrmse_percent([5.0, 5.0], [6.0, 6.0]))


def test_image_diff_is_nrmse():
    exact = np.arange(16, dtype=float).reshape(4, 4)
    approx = exact + 1.0
    assert image_diff_percent(exact, approx) == pytest.approx(nrmse_percent(exact, approx))


def test_miss_rate():
    assert miss_rate_percent([True, False, True, False], [True, True, True, False]) == 25.0
    assert miss_rate_percent([], []) == 0.0
    with pytest.raises(ValueError):
        miss_rate_percent([True], [True, False])


def test_speedup_and_normalized():
    assert speedup(2.0, 1.0) == 2.0
    assert normalized_metric(0.8, 1.0) == 0.8
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)
    with pytest.raises(ValueError):
        normalized_metric(1.0, 0.0)


def test_speedup_validates_both_operands():
    """Regression: the baseline operand must be validated like the other one."""
    for baseline, time_s in [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0), (1.0, -2.0)]:
        with pytest.raises(ValueError):
            speedup(baseline, time_s)


def test_normalized_metric_validates_both_operands():
    assert normalized_metric(0.0, 2.0) == 0.0  # a zeroed metric is a valid point
    with pytest.raises(ValueError):
        normalized_metric(1.0, -1.0)
    with pytest.raises(ValueError):
        normalized_metric(-1.0, 1.0)


def test_reduction_percentages():
    assert bandwidth_reduction_percent(100, 86) == pytest.approx(14.0)
    assert energy_reduction_percent(100, 91.7) == pytest.approx(8.3)
    assert edp_reduction_percent(100, 82.5) == pytest.approx(17.5)
    with pytest.raises(ValueError):
        bandwidth_reduction_percent(0, 10)


def test_reduction_percentages_validate_both_operands():
    """Both operands are checked: positive baselines, non-negative measurements."""
    for helper in (
        bandwidth_reduction_percent,
        energy_reduction_percent,
        edp_reduction_percent,
    ):
        assert helper(100.0, 0.0) == pytest.approx(100.0)  # full reduction is valid
        with pytest.raises(ValueError):
            helper(0.0, 10.0)
        with pytest.raises(ValueError):
            helper(-5.0, 10.0)
        with pytest.raises(ValueError):
            helper(100.0, -1.0)


def test_summarize_geomean():
    values = {"a": 1.1, "b": 1.1, "c": 1.1}
    assert summarize_geomean(values) == pytest.approx(1.1)
