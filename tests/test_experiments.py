"""Tests for the experiment harness (one per paper table/figure)."""

import math

import pytest

from repro.core.config import SLCVariant
from repro.experiments import (
    format_fig1,
    format_fig2,
    format_fig7,
    format_fig8,
    format_fig9,
    format_table1,
    run_fig1,
    run_fig2,
    run_fig7,
    run_fig8,
    run_fig9,
    run_slc_study,
    run_table1,
)
from repro.experiments.fig9_mag_sensitivity import run_effective_ratio_by_mag

SCALE = 1.0 / 1024.0
WORKLOADS = ["BS", "NN"]


@pytest.fixture(scope="module")
def study():
    """A small shared SLC study reused by the Fig. 7/8 tests."""
    return run_slc_study(
        workload_names=WORKLOADS,
        variants=[SLCVariant.SIMP, SLCVariant.OPT],
        scale=SCALE,
    )


# --------------------------------------------------------------------- #
# Fig. 1 / Fig. 2


def test_fig1_rows_cover_workloads_and_gm():
    rows = run_fig1(workload_names=WORKLOADS, scale=SCALE)
    workloads = {row.workload for row in rows}
    assert workloads == set(WORKLOADS) | {"GM"}
    compressors = {row.compressor for row in rows}
    assert compressors == {"bdi", "fpc", "cpack", "e2mc"}
    for row in rows:
        assert row.raw_ratio >= row.effective_ratio > 0
        assert 0 <= row.effective_loss_percent < 100
    assert "Fig. 1" in format_fig1(rows)


def test_fig1_effective_ratio_below_raw_at_gm():
    rows = run_fig1(workload_names=WORKLOADS, compressors=["e2mc"], scale=SCALE)
    gm_row = [row for row in rows if row.workload == "GM"][0]
    assert gm_row.effective_ratio < gm_row.raw_ratio


def test_fig2_distribution_sums_to_one():
    distribution = run_fig2(workload_names=WORKLOADS, scale=SCALE)
    for name, histogram in distribution.per_workload.items():
        assert sum(histogram.values()) == pytest.approx(1.0)
        assert all(0 <= key <= 32 for key in histogram)
    names, edges, matrix = distribution.heatmap()
    assert names == WORKLOADS
    assert edges[0] == 0 and edges[-1] == 32
    for row in matrix:
        assert sum(row) == pytest.approx(1.0)
    assert "Fig. 2" in format_fig2(distribution)


def test_fig2_blocks_exist_above_mag_multiples():
    """The paper's motivation: some blocks sit a few bytes above a multiple."""
    distribution = run_fig2(workload_names=WORKLOADS, scale=SCALE)
    for name in WORKLOADS:
        assert distribution.fraction_within_threshold(name, 16) > 0.0


# --------------------------------------------------------------------- #
# Table I


def test_table1_formatting():
    results = run_table1()
    text = format_table1(results)
    assert "compressor" in text
    assert "decompressor" in text
    assert "GTX580" in text


# --------------------------------------------------------------------- #
# Fig. 7 / Fig. 8


def test_fig7_rows_and_gm(study):
    rows, _ = run_fig7(study=study)
    schemes = {row.scheme for row in rows}
    assert schemes == {"TSLC-SIMP", "TSLC-PRED", "TSLC-OPT"} & schemes
    gm_rows = [row for row in rows if row.workload == "GM"]
    assert gm_rows
    for row in rows:
        if row.workload != "GM":
            assert row.speedup > 0.8
            assert row.error_percent >= 0.0
    assert "Fig. 7" in format_fig7(rows)


def test_fig8_rows_normalized_to_baseline(study):
    rows, _ = run_fig8(study=study)
    for row in rows:
        assert 0 < row.normalized_bandwidth <= 1.05
        assert 0 < row.normalized_energy <= 1.1
        assert 0 < row.normalized_edp <= 1.2
    assert "Fig. 8" in format_fig8(rows)


def test_study_geomean_consistency(study):
    speedups = [study.speedup(w, "TSLC-OPT") for w in study.workloads()]
    expected = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    assert study.geomean("speedup", "TSLC-OPT") == pytest.approx(expected)


def test_study_error_reported_for_variants(study):
    for workload in study.workloads():
        assert study.error_percent(workload, "TSLC-OPT") >= 0.0
        # the lossless baseline has no error by construction
        assert study.results[workload]["E2MC"].error_percent == 0.0


# --------------------------------------------------------------------- #
# Fig. 9 / Section V-C


def test_fig9_mag_sweep():
    rows, studies = run_fig9(workload_names=["NN"], mags=(32, 64), scale=SCALE)
    mags = {row.mag_bytes for row in rows}
    assert mags == {32, 64}
    assert set(studies) == {32, 64}
    assert "Fig. 9" in format_fig9(rows)


def test_effective_ratio_decreases_with_mag():
    ratios = run_effective_ratio_by_mag(workload_names=WORKLOADS, scale=SCALE)
    assert ratios[16]["effective"] >= ratios[32]["effective"] >= ratios[64]["effective"]
    raws = [ratios[mag]["raw"] for mag in (16, 32, 64)]
    assert max(raws) - min(raws) < 1e-9  # raw ratio does not depend on MAG
    for mag in (16, 32, 64):
        assert ratios[mag]["effective"] <= ratios[mag]["raw"]
