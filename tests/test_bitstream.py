"""Tests for the bit-level writer/reader."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitstream import BitReader, BitWriter


def test_write_and_read_single_field():
    writer = BitWriter()
    writer.write(0b1011, 4)
    reader = BitReader(writer.getvalue(), bit_length=4)
    assert reader.read(4) == 0b1011


def test_write_multiple_fields_msb_first():
    writer = BitWriter()
    writer.write(1, 1)
    writer.write(0, 2)
    writer.write(0b101, 3)
    assert writer.bit_length == 6
    reader = BitReader(writer.getvalue(), bit_length=6)
    assert reader.read(1) == 1
    assert reader.read(2) == 0
    assert reader.read(3) == 0b101


def test_value_too_large_for_width_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write(8, 3)


def test_negative_value_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write(-1, 4)


def test_negative_width_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write(0, -1)


def test_zero_width_writes_nothing():
    writer = BitWriter()
    writer.write(0, 0)
    assert writer.bit_length == 0


def test_write_bits_raw_list():
    writer = BitWriter()
    writer.write_bits([1, 0, 1, 1])
    assert writer.bits() == [1, 0, 1, 1]


def test_write_bits_rejects_non_binary():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write_bits([2])


def test_getvalue_pads_final_byte_with_zeros():
    writer = BitWriter()
    writer.write(0b1, 1)
    assert writer.getvalue() == bytes([0b1000_0000])


def test_reader_eof_raises():
    reader = BitReader(b"\xff", bit_length=3)
    reader.read(3)
    with pytest.raises(EOFError):
        reader.read(1)


def test_reader_bit_length_longer_than_data_raises():
    with pytest.raises(ValueError):
        BitReader(b"\xff", bit_length=9)


def test_reader_peek_does_not_consume():
    reader = BitReader(b"\xa5")
    assert reader.peek(4) == 0xA
    assert reader.position == 0
    assert reader.read(8) == 0xA5


def test_reader_from_bit_list():
    reader = BitReader([1, 0, 1])
    assert reader.read(3) == 0b101
    assert reader.remaining == 0


def test_read_bit_helper():
    reader = BitReader(b"\x80")
    assert reader.read_bit() == 1
    assert reader.read_bit() == 0


# --------------------------------------------------------------------- #
# boundary coverage: reads landing exactly on bit_length, zero-length ops


def test_read_landing_exactly_on_bit_length():
    """A read consuming the last available bit succeeds; the next fails."""
    writer = BitWriter()
    writer.write(0b10110, 5)
    writer.write(0b011, 3)
    writer.write(0b11111, 5)  # 13 bits total: not a byte multiple
    reader = BitReader(writer.getvalue(), bit_length=13)
    assert reader.read(5) == 0b10110
    assert reader.read(3) == 0b011
    assert reader.read(5) == 0b11111
    assert reader.remaining == 0
    assert reader.position == 13
    with pytest.raises(EOFError):
        reader.read(1)


def test_single_read_of_entire_bit_length():
    reader = BitReader(b"\xa5\xc0", bit_length=10)
    assert reader.read(10) == 0b1010_0101_11
    assert reader.remaining == 0


def test_zero_width_read_at_exact_end_returns_zero():
    reader = BitReader(b"\xff", bit_length=3)
    reader.read(3)
    assert reader.read(0) == 0
    assert reader.remaining == 0


def test_peek_width_equal_to_remaining():
    reader = BitReader(b"\xb4", bit_length=6)
    assert reader.peek(6) == 0b101101
    assert reader.position == 0
    assert reader.read(6) == 0b101101


def test_peek_past_bit_length_raises_and_restores_position():
    reader = BitReader(b"\xb4", bit_length=6)
    reader.read(2)
    with pytest.raises(EOFError):
        reader.peek(5)
    assert reader.position == 2
    assert reader.read(4) == 0b1101


def test_reader_with_zero_bit_length():
    reader = BitReader(b"\xff", bit_length=0)
    assert reader.remaining == 0
    assert reader.read(0) == 0
    with pytest.raises(EOFError):
        reader.read(1)


def test_empty_reader_from_empty_data():
    reader = BitReader(b"")
    assert reader.remaining == 0
    assert reader.read(0) == 0


def test_zero_length_write_between_fields_is_invisible():
    writer = BitWriter()
    writer.write(0b11, 2)
    writer.write(0, 0)
    writer.write_bits([])
    writer.write(0b01, 2)
    assert writer.bit_length == 4
    reader = BitReader(writer.getvalue(), bit_length=4)
    assert reader.read(4) == 0b1101


def test_zero_length_write_of_nonzero_value_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write(1, 0)


def test_empty_writer_produces_empty_payload():
    writer = BitWriter()
    assert writer.bit_length == 0
    assert writer.getvalue() == b""
    assert writer.bits() == []


def test_write_value_exactly_filling_width():
    """Values whose bit_length equals the width are the boundary case."""
    writer = BitWriter()
    writer.write(0b111, 3)
    writer.write(0b1000, 4)
    reader = BitReader(writer.getvalue(), bit_length=7)
    assert reader.read(3) == 0b111
    assert reader.read(4) == 0b1000


def test_bit_length_equal_to_data_length_is_accepted():
    reader = BitReader(b"\x0f", bit_length=8)
    assert reader.read(8) == 0x0F
    assert reader.remaining == 0


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**20), st.integers(1, 24)),
        min_size=1,
        max_size=30,
    )
)
def test_roundtrip_arbitrary_fields(fields):
    """Property: any sequence of (value, width) fields round-trips."""
    writer = BitWriter()
    normalized = []
    for value, width in fields:
        value = value & ((1 << width) - 1)
        writer.write(value, width)
        normalized.append((value, width))
    reader = BitReader(writer.getvalue(), bit_length=writer.bit_length)
    for value, width in normalized:
        assert reader.read(width) == value
    assert reader.remaining == 0
