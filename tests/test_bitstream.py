"""Tests for the bit-level writer/reader."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitstream import BitReader, BitWriter


def test_write_and_read_single_field():
    writer = BitWriter()
    writer.write(0b1011, 4)
    reader = BitReader(writer.getvalue(), bit_length=4)
    assert reader.read(4) == 0b1011


def test_write_multiple_fields_msb_first():
    writer = BitWriter()
    writer.write(1, 1)
    writer.write(0, 2)
    writer.write(0b101, 3)
    assert writer.bit_length == 6
    reader = BitReader(writer.getvalue(), bit_length=6)
    assert reader.read(1) == 1
    assert reader.read(2) == 0
    assert reader.read(3) == 0b101


def test_value_too_large_for_width_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write(8, 3)


def test_negative_value_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write(-1, 4)


def test_negative_width_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write(0, -1)


def test_zero_width_writes_nothing():
    writer = BitWriter()
    writer.write(0, 0)
    assert writer.bit_length == 0


def test_write_bits_raw_list():
    writer = BitWriter()
    writer.write_bits([1, 0, 1, 1])
    assert writer.bits() == [1, 0, 1, 1]


def test_write_bits_rejects_non_binary():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write_bits([2])


def test_getvalue_pads_final_byte_with_zeros():
    writer = BitWriter()
    writer.write(0b1, 1)
    assert writer.getvalue() == bytes([0b1000_0000])


def test_reader_eof_raises():
    reader = BitReader(b"\xff", bit_length=3)
    reader.read(3)
    with pytest.raises(EOFError):
        reader.read(1)


def test_reader_bit_length_longer_than_data_raises():
    with pytest.raises(ValueError):
        BitReader(b"\xff", bit_length=9)


def test_reader_peek_does_not_consume():
    reader = BitReader(b"\xa5")
    assert reader.peek(4) == 0xA
    assert reader.position == 0
    assert reader.read(8) == 0xA5


def test_reader_from_bit_list():
    reader = BitReader([1, 0, 1])
    assert reader.read(3) == 0b101
    assert reader.remaining == 0


def test_read_bit_helper():
    reader = BitReader(b"\x80")
    assert reader.read_bit() == 1
    assert reader.read_bit() == 0


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**20), st.integers(1, 24)),
        min_size=1,
        max_size=30,
    )
)
def test_roundtrip_arbitrary_fields(fields):
    """Property: any sequence of (value, width) fields round-trips."""
    writer = BitWriter()
    normalized = []
    for value, width in fields:
        value = value & ((1 << width) - 1)
        writer.write(value, width)
        normalized.append((value, width))
    reader = BitReader(writer.getvalue(), bit_length=writer.bit_length)
    for value, width in normalized:
        assert reader.read(width) == value
    assert reader.remaining == 0
