"""Tests shared by the lossless block compressors (BDI, FPC, C-PACK, BPC)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    BDICompressor,
    BPCCompressor,
    CPackCompressor,
    FPCCompressor,
    available_compressors,
    get_compressor,
)
from repro.compression.base import CompressionError

STATELESS_COMPRESSORS = [BDICompressor, FPCCompressor, CPackCompressor, BPCCompressor]


@pytest.fixture(params=STATELESS_COMPRESSORS, ids=lambda cls: cls.name)
def compressor(request):
    return request.param()


def test_registry_lists_all_schemes():
    names = available_compressors()
    for expected in ("bdi", "fpc", "cpack", "e2mc", "bpc"):
        assert expected in names


def test_registry_unknown_name():
    with pytest.raises(KeyError):
        get_compressor("gzip")


def test_registry_is_case_insensitive():
    assert get_compressor("BDI").name == "bdi"


def test_wrong_block_size_rejected(compressor):
    with pytest.raises(CompressionError):
        compressor.compress(bytes(64))


def test_zero_block_compresses_small(compressor):
    result = compressor.compress(bytes(128))
    assert result.compressed_size_bits < 128 * 8
    assert compressor.decompress(result) == bytes(128)


def test_repeated_word_block_compresses(compressor):
    block = (0x7B7B7B7B).to_bytes(4, "little") * 32
    result = compressor.compress(block)
    assert result.compressed_size_bits < 128 * 8
    assert compressor.decompress(result) == block


def test_small_integer_block_roundtrip(compressor):
    words = np.arange(32, dtype="<u4")
    block = words.tobytes()
    assert compressor.roundtrip(block) == block


def test_random_block_roundtrip_and_fallback(compressor):
    rng = np.random.default_rng(3)
    block = rng.bytes(128)
    result = compressor.compress(block)
    # Random data rarely compresses; whatever the outcome, the roundtrip and
    # the size accounting must hold.
    assert result.compressed_size_bits <= 128 * 8
    assert compressor.decompress(result) == block


def test_mixed_blocks_roundtrip(compressor, mixed_blocks):
    for block in mixed_blocks:
        assert compressor.roundtrip(block) == block


def test_float_blocks_roundtrip(compressor, float_blocks):
    for block in float_blocks[:32]:
        assert compressor.roundtrip(block) == block


def test_compressed_block_properties(compressor):
    block = bytes(128)
    result = compressor.compress(block)
    assert result.original_size_bytes == 128
    assert result.compressed_size_bytes == (result.compressed_size_bits + 7) // 8
    assert result.compression_ratio >= 1.0
    assert result.is_compressed
    assert result.lossless


def test_base_delta_small_deltas_compress_well():
    base = 1_000_000
    words = (base + np.arange(32, dtype=np.int64)).astype("<u4")
    result = BDICompressor().compress(words.tobytes())
    assert result.compressed_size_bits < 64 * 8
    assert result.metadata.get("encoding", "").startswith("base")


def test_fpc_sign_extended_patterns():
    words = np.array([0xFFFFFFFF, 0x00000001, 0x0000FFFF, 0x7FFF0000] * 8, dtype="<u4")
    compressor = FPCCompressor()
    block = words.tobytes()
    result = compressor.compress(block)
    assert compressor.decompress(result) == block
    assert result.compressed_size_bits < 128 * 8


def test_cpack_dictionary_matches():
    # Repeating a small set of words exercises the full-match dictionary path.
    pattern = [0x11223344, 0x55667788, 0x99AABBCC, 0x11223344] * 8
    block = np.array(pattern, dtype="<u4").tobytes()
    compressor = CPackCompressor()
    result = compressor.compress(block)
    assert result.compressed_size_bits < 80 * 8
    assert compressor.decompress(result) == block


def test_bpc_delta_friendly_data():
    words = (1000 + 3 * np.arange(32, dtype=np.int64)).astype("<u4")
    compressor = BPCCompressor()
    block = words.tobytes()
    result = compressor.compress(block)
    assert result.compressed_size_bits < 128 * 8
    assert compressor.decompress(result) == block


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=128, max_size=128))
@pytest.mark.parametrize("compressor_cls", STATELESS_COMPRESSORS, ids=lambda c: c.name)
def test_roundtrip_property(compressor_cls, block):
    """Property: compress/decompress is the identity for any 128 B block."""
    compressor = compressor_cls()
    assert compressor.roundtrip(block) == block


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=32, max_size=32),
    st.integers(0, 3),
)
def test_roundtrip_property_structured_words(words, which):
    """Property: word-structured blocks round-trip through every compressor."""
    block = np.array(words, dtype="<u4").tobytes()
    compressor = STATELESS_COMPRESSORS[which]()
    assert compressor.roundtrip(block) == block
