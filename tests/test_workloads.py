"""Tests for the benchmark registry: data generation, kernels, error metrics.

Covers the paper's nine benchmarks plus the extended families (WEATHER,
DNNACT) through the same parametrized contract suite, and the plugin
registration hook.
"""

import numpy as np
import pytest

from repro.workloads import (
    available_workloads,
    get_workload,
    register_workload,
    table3_rows,
    unregister_workload,
    workload_family,
)
from repro.workloads.registry import EXTENDED_WORKLOAD_ORDER, PAPER_WORKLOAD_ORDER

SMALL_SCALE = 1.0 / 1024.0

ALL_BUILTIN = (*PAPER_WORKLOAD_ORDER, *EXTENDED_WORKLOAD_ORDER)


@pytest.fixture(scope="module", params=ALL_BUILTIN)
def workload(request):
    return get_workload(request.param, scale=SMALL_SCALE, seed=7)


def test_registry_order_matches_paper():
    assert available_workloads() == list(ALL_BUILTIN)
    assert PAPER_WORKLOAD_ORDER == (
        "JM", "BS", "DCT", "FWT", "TP", "BP", "NN", "SRAD1", "SRAD2",
    )
    assert EXTENDED_WORKLOAD_ORDER == ("WEATHER", "DNNACT")


def test_registry_unknown_workload():
    with pytest.raises(KeyError):
        get_workload("matmul")


def test_registry_case_insensitive():
    assert get_workload("srad1", scale=SMALL_SCALE).name == "SRAD1"


def test_workload_families():
    for name in PAPER_WORKLOAD_ORDER:
        assert workload_family(name) == "paper"
    assert workload_family("WEATHER") == "science"
    assert workload_family("dnnact") == "dnn"
    with pytest.raises(KeyError):
        workload_family("matmul")


def test_register_workload_plugin_hook():
    from repro.workloads.weather import WeatherWorkload

    def factory(scale=SMALL_SCALE, seed=2019):
        plugin = WeatherWorkload(scale=scale, seed=seed, members=2)
        plugin.name = "WEATHER2"
        return plugin

    name = "WEATHER2"
    register_workload(name, factory)
    try:
        assert name in available_workloads()
        assert workload_family(name) == "user"
        assert get_workload("weather2", scale=SMALL_SCALE).name == "WEATHER2"
        # duplicate names are rejected, case-insensitively
        with pytest.raises(ValueError, match="already registered"):
            register_workload("weather2", factory)
        with pytest.raises(ValueError, match="already registered"):
            register_workload("WEATHER", factory)
    finally:
        unregister_workload(name)
    assert name not in available_workloads()


def test_unregister_builtin_rejected():
    with pytest.raises(ValueError):
        unregister_workload("NN")


def test_table3_rows_structure():
    rows = table3_rows(scale=SMALL_SCALE)
    assert len(rows) == len(ALL_BUILTIN)
    assert [row[0] for row in rows[:9]] == list(PAPER_WORKLOAD_ORDER)
    by_name = {row[0]: row for row in rows}
    assert by_name["JM"][3] == "Miss rate"
    assert by_name["BS"][4] == 4
    assert by_name["SRAD1"][4] == 8
    assert by_name["SRAD2"][4] == 6
    assert by_name["NN"][2] == "20 M records"
    assert by_name["WEATHER"][3] == "IQR error"
    assert by_name["DNNACT"][3] == "MRE"


def test_generate_is_deterministic(workload):
    again = get_workload(workload.name, scale=SMALL_SCALE, seed=7)
    regions_a = workload.__class__(scale=SMALL_SCALE, seed=7).generate()
    regions_b = again.generate()
    assert set(regions_a) == set(regions_b)
    for name in regions_a:
        np.testing.assert_array_equal(regions_a[name].array, regions_b[name].array)


def test_generate_has_approximable_regions(workload):
    regions = workload.generate()
    assert regions, "workload must allocate at least one region"
    assert any(region.approximable for region in regions.values())
    for region in regions.values():
        assert region.size_bytes > 0
        assert region.num_blocks() >= 1


def test_run_produces_outputs(workload):
    regions = workload.generate()
    outputs = workload.run(workload.input_arrays(regions))
    assert outputs.names()
    for name in outputs.names():
        array = outputs[name]
        assert np.all(np.isfinite(np.asarray(array, dtype=np.float64)))


def test_error_zero_for_identical_outputs(workload):
    regions = workload.generate()
    outputs = workload.run(workload.input_arrays(regions))
    assert workload.error(outputs, outputs) == pytest.approx(0.0)


def test_error_positive_for_perturbed_inputs(workload):
    regions = workload.generate()
    arrays = workload.input_arrays(regions)
    exact = workload.run(arrays)
    perturbed = {}
    rng = np.random.default_rng(3)
    for name, array in arrays.items():
        if np.issubdtype(array.dtype, np.floating):
            noise = rng.normal(0.0, 0.05 * (np.abs(array).mean() + 1e-3), size=array.shape)
            perturbed[name] = (array + noise).astype(array.dtype)
        else:
            perturbed[name] = array
    approx = workload.run(perturbed)
    assert workload.error(exact, approx) >= 0.0
    assert np.isfinite(workload.error(exact, approx))


def test_trace_covers_every_region(workload):
    regions = workload.generate()
    outputs = workload.run(workload.input_arrays(regions))
    all_regions = dict(regions)
    all_regions.update(workload.output_regions(outputs))
    trace = workload.trace(all_regions)
    assert set(trace.regions()) == set(all_regions)
    for access in trace:
        region = all_regions[access.region]
        assert 0 <= access.block_index < region.num_blocks()


def test_compute_ops_positive(workload):
    regions = workload.generate()
    assert workload.compute_ops(regions) > 0


def test_scale_changes_input_size(workload):
    small = workload.__class__(scale=SMALL_SCALE).generate()
    larger = workload.__class__(scale=SMALL_SCALE * 16).generate()
    small_bytes = sum(r.size_bytes for r in small.values())
    larger_bytes = sum(r.size_bytes for r in larger.values())
    assert larger_bytes > small_bytes


def test_invalid_scale_rejected(workload):
    with pytest.raises(ValueError):
        workload.__class__(scale=0.0)
