"""Chunked (bounded-memory) trace replay must be invisible in the results.

``--chunk-accesses`` / ``REPRO_CHUNK_ACCESSES`` bound replay's peak memory by
compiling and replaying the trace in windows of at most N compiled entries,
threading L2/MDC/DRAM state across window boundaries.  Chunking is purely an
execution strategy: every counter and the stored-payload digest must match
the unchunked pipeline — and therefore the committed golden fixture —
bit-exactly for *any* chunk size, including the degenerate chunk=1 and a
budget larger than the whole trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.worker import default_chunk_accesses, simulate_job
from repro.gpu.simulator import GPUSimulator
from repro.gpu.trace import AccessType, MemoryAccess, MemoryTrace
from repro.obs import metrics

from tests.test_golden_results import cell_job, cell_key

#: one cell per pipeline flavor: the lossless baseline, the strongest TSLC
#: variant (lossy truncation + payload codec), and a classic lossless scheme
#: (different backend class) — enough to cross every replay-visible subsystem
CELLS = [
    ("NN", "E2MC", 32),
    ("FWT", "TSLC-OPT", 16),
    ("BS", "BDI", 64),
]

#: chunk=1 (maximum boundary crossings), a mid size that lands mid-burst,
#: and a budget far larger than any reduced-scale trace (single chunk)
CHUNK_SIZES = (1, 64, 10**9)


def run_chunked(workload: str, scheme: str, mag: int, chunk: int) -> dict:
    return simulate_job(
        cell_job(workload, scheme, mag), chunk_accesses=chunk, payload_digest=True
    ).to_dict()


@pytest.mark.parametrize(
    ("workload", "scheme", "mag"),
    CELLS,
    ids=[cell_key(*cell) for cell in CELLS],
)
@pytest.mark.parametrize("chunk", CHUNK_SIZES)
def test_chunked_replay_matches_golden(golden_fixture, workload, scheme, mag, chunk):
    expected = golden_fixture["cells"][cell_key(workload, scheme, mag)]
    assert run_chunked(workload, scheme, mag, chunk) == expected


@pytest.fixture(scope="module")
def golden_fixture():
    import json

    from tests.test_golden_results import FIXTURE_PATH

    return json.loads(FIXTURE_PATH.read_text())


# --------------------------------------------------------------------- #
# compile_chunks: the trace-level building block


def _demo_trace() -> tuple[MemoryTrace, dict[str, int]]:
    """Mixed single accesses (with RLE repeats) and stream segments, so
    chunk boundaries land inside streams and between repeat runs."""
    trace = MemoryTrace()
    trace.append(MemoryAccess("a", 3, count=2))
    trace.add_stream("a", 7)
    trace.append(MemoryAccess("b", 1, AccessType.WRITE))
    trace.add_stream("b", 5, stride=2)
    trace.append(MemoryAccess("a", 9, count=3))
    bases = {"a": 0, "b": 1 << 20}
    return trace, bases


@pytest.mark.parametrize("chunk", (1, 2, 3, 7, 10**6))
def test_compile_chunks_concatenates_to_compile(chunk):
    trace, bases = _demo_trace()
    whole = trace.compile(bases)
    chunks = list(trace.compile_chunks(bases, chunk))
    assert all(len(c) <= chunk for c in chunks)
    for column in ("addresses", "is_write", "counts", "region_index",
                   "block_index"):
        whole_col = getattr(whole, column)
        parts = [getattr(c, column) for c in chunks]
        assert np.array_equal(np.concatenate(parts), whole_col), column
    assert all(c.regions == whole.regions for c in chunks)


def test_compile_chunks_empty_trace_yields_nothing():
    assert list(MemoryTrace().compile_chunks({}, 4)) == []


def test_compile_chunks_rejects_nonpositive_budget():
    trace, bases = _demo_trace()
    with pytest.raises(ValueError):
        list(trace.compile_chunks(bases, 0))


# --------------------------------------------------------------------- #
# plumbing: simulator validation, env propagation, observability


def test_simulator_rejects_nonpositive_chunk():
    with pytest.raises(ValueError):
        GPUSimulator(chunk_accesses=0)
    with pytest.raises(ValueError):
        GPUSimulator(chunk_accesses=-8)


def test_env_var_reaches_replay(monkeypatch, golden_fixture):
    """REPRO_CHUNK_ACCESSES is how --chunk-accesses crosses worker process
    boundaries; an explicit argument must still win over it."""
    workload, scheme, mag = CELLS[0]
    expected = golden_fixture["cells"][cell_key(workload, scheme, mag)]
    monkeypatch.setenv("REPRO_CHUNK_ACCESSES", "32")
    assert default_chunk_accesses() == 32
    result = simulate_job(cell_job(workload, scheme, mag), payload_digest=True)
    assert result.to_dict() == expected


@pytest.mark.parametrize("raw", ("0", "-3", "many"))
def test_malformed_chunk_env_raises(monkeypatch, raw):
    monkeypatch.setenv("REPRO_CHUNK_ACCESSES", raw)
    with pytest.raises(ValueError, match="REPRO_CHUNK_ACCESSES"):
        default_chunk_accesses()


def test_unset_chunk_env_is_none(monkeypatch):
    monkeypatch.delenv("REPRO_CHUNK_ACCESSES", raising=False)
    assert default_chunk_accesses() is None
    monkeypatch.setenv("REPRO_CHUNK_ACCESSES", "  ")
    assert default_chunk_accesses() is None


def test_chunked_replay_reports_chunk_metrics():
    workload, scheme, mag = CELLS[0]
    metrics.enable()
    try:
        metrics.clear()
        simulate_job(cell_job(workload, scheme, mag), chunk_accesses=16)
        snapshot = metrics.snapshot()
    finally:
        metrics.clear()
        metrics.disable()
    assert snapshot["counters"]["replay.chunks"] > 1
    assert snapshot["values"]["replay.peak_rss_mib"]["max"] > 0
