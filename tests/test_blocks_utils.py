"""Tests for array/block/symbol conversion helpers and sampling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.blocks import (
    array_to_blocks,
    block_to_symbols,
    blocks_to_array,
    bytes_to_words,
    symbols_to_block,
    words_to_bytes,
)
from repro.utils.sampling import sample_evenly


def test_array_to_blocks_pads_last_block():
    array = np.arange(40, dtype=np.float32)  # 160 bytes -> 2 blocks
    blocks = array_to_blocks(array, block_size=128)
    assert len(blocks) == 2
    assert all(len(block) == 128 for block in blocks)
    assert blocks[1][32:] == bytes(96)


def test_array_blocks_roundtrip():
    array = np.arange(100, dtype=np.float32).reshape(10, 10)
    blocks = array_to_blocks(array)
    rebuilt = blocks_to_array(blocks, array.dtype, array.shape)
    np.testing.assert_array_equal(rebuilt, array)


def test_blocks_to_array_insufficient_data_raises():
    with pytest.raises(ValueError):
        blocks_to_array([bytes(128)], np.float32, (1000,))


def test_array_to_blocks_invalid_block_size():
    with pytest.raises(ValueError):
        array_to_blocks(np.zeros(4, dtype=np.float32), block_size=0)


def test_block_to_symbols_little_endian():
    block = (0x0201).to_bytes(2, "little") + (0xFFEE).to_bytes(2, "little")
    assert block_to_symbols(block) == [0x0201, 0xFFEE]


def test_symbols_roundtrip():
    block = bytes(range(128))
    assert symbols_to_block(block_to_symbols(block)) == block


def test_block_to_symbols_bad_length():
    with pytest.raises(ValueError):
        block_to_symbols(b"\x00\x01\x02", symbol_bytes=2)


def test_symbols_to_block_range_check():
    with pytest.raises(ValueError):
        symbols_to_block([1 << 16])


def test_words_roundtrip():
    block = bytes(range(64)) * 2
    assert words_to_bytes(bytes_to_words(block)) == block


def test_sample_evenly_returns_all_when_small():
    assert sample_evenly([1, 2, 3], 10) == [1, 2, 3]


def test_sample_evenly_limits_count():
    samples = sample_evenly(list(range(1000)), 100)
    assert len(samples) == 100
    assert samples[0] == 0
    assert samples == sorted(samples)


def test_sample_evenly_rejects_bad_target():
    with pytest.raises(ValueError):
        sample_evenly([1, 2], 0)


@given(st.integers(1, 400), st.integers(1, 64))
def test_array_to_blocks_covers_all_bytes(n_elements, block_elems):
    """Property: every byte of the array appears in the blocks, in order."""
    array = np.arange(n_elements, dtype=np.int32)
    block_size = block_elems * 4
    blocks = array_to_blocks(array, block_size=block_size)
    joined = b"".join(blocks)
    assert joined[: array.nbytes] == array.tobytes()
    assert len(joined) % block_size == 0
