"""Tests for the ResultStore backends (dispatch, SQLite, compaction, diff)."""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.campaign import (
    CampaignSpec,
    Job,
    JobRecord,
    JSONLResultStore,
    ResultStore,
    SQLiteResultStore,
    open_store,
    simulate_job,
)
from repro.campaign.cli import main as cli_main

TINY = 1.0 / 1024.0


@pytest.fixture(scope="module")
def sample_record():
    """One real simulated record, shared by every store test in the module."""
    job = Job(workload="NN", scheme="E2MC", scale=TINY, compute_error=False)
    return JobRecord(job=job, status="ok", result=simulate_job(job), elapsed_s=0.25)


def _error_record(seed: int = 7) -> JobRecord:
    job = Job(workload="BS", scheme="TSLC-OPT", scale=TINY, seed=seed)
    return JobRecord(job=job, status="error", error="boom")


# --------------------------------------------------------------------- #
# backend dispatch


def test_dispatch_by_suffix_and_backend(tmp_path):
    assert isinstance(ResultStore(tmp_path / "a"), JSONLResultStore)
    assert isinstance(ResultStore(tmp_path / "b.sqlite"), SQLiteResultStore)
    assert isinstance(ResultStore(tmp_path / "c.db"), SQLiteResultStore)
    assert isinstance(ResultStore(tmp_path / "d", backend="sqlite"), SQLiteResultStore)
    assert isinstance(open_store(tmp_path / "e", backend="jsonl"), JSONLResultStore)
    with pytest.raises(ValueError, match="unknown store backend"):
        ResultStore(tmp_path / "f", backend="parquet")


def test_sqlite_directory_redetected_without_flag(tmp_path):
    """A dir once opened with backend='sqlite' keeps resolving to SQLite."""
    store = ResultStore(tmp_path / "camp", backend="sqlite")
    store.put(_error_record())
    reopened = ResultStore(tmp_path / "camp")
    assert isinstance(reopened, SQLiteResultStore)
    assert len(reopened) == 1


def test_backend_names(tmp_path):
    assert ResultStore(tmp_path / "a").backend_name == "jsonl"
    assert ResultStore(tmp_path / "b.sqlite").backend_name == "sqlite"


# --------------------------------------------------------------------- #
# SQLite backend semantics

def test_sqlite_roundtrip_and_spec(tmp_path, sample_record):
    store = ResultStore(tmp_path / "camp.sqlite")
    assert len(store) == 0
    store.put(sample_record)
    assert sample_record.job.content_hash in store
    fetched = store.get(sample_record.job.content_hash)
    assert fetched.ok
    assert fetched.result == sample_record.result
    assert fetched.job == sample_record.job

    spec = CampaignSpec(workloads=("NN",), schemes=("E2MC",), scales=(TINY,))
    assert store.load_spec() is None
    store.save_spec(spec)
    assert ResultStore(tmp_path / "camp.sqlite").load_spec() == spec


def test_sqlite_last_write_wins_and_insertion_order(tmp_path, sample_record):
    store = ResultStore(tmp_path / "camp.sqlite")
    first_error = _error_record()
    store.put(first_error)
    store.put(sample_record)
    # overwrite the first record: position is preserved, content replaced
    retried = JobRecord(job=first_error.job, status="ok", result=sample_record.result)
    store.put(retried)
    assert len(store) == 2
    records = store.records()
    assert [r.job.content_hash for r in records] == [
        first_error.job.content_hash,
        sample_record.job.content_hash,
    ]
    assert records[0].ok


def test_sqlite_lookup_serves_timing_only_from_error_twin(tmp_path):
    job = Job(workload="NN", scheme="TSLC-OPT", scale=TINY)
    store = ResultStore(tmp_path / "camp.sqlite")
    store.put(JobRecord(job=job, status="ok", result=simulate_job(job)))
    twin = Job(workload="NN", scheme="TSLC-OPT", scale=TINY, compute_error=False)
    assert store.lookup(twin) is not None


def test_jsonl_sqlite_equivalence(tmp_path, sample_record):
    """The same records stored in both backends read back identically."""
    jsonl = ResultStore(tmp_path / "jsonl")
    sqlite = ResultStore(tmp_path / "camp.sqlite")
    records = [sample_record, _error_record()]
    for record in records:
        jsonl.put(record)
        sqlite.put(record)
    assert len(jsonl) == len(sqlite) == 2
    by_hash_jsonl = {r.job.content_hash: r for r in jsonl.records()}
    by_hash_sqlite = {r.job.content_hash: r for r in sqlite.records()}
    assert by_hash_jsonl.keys() == by_hash_sqlite.keys()
    for job_hash, record in by_hash_jsonl.items():
        other = by_hash_sqlite[job_hash]
        assert record.to_dict() == other.to_dict()


def _write_records(args) -> int:
    """Worker: open the shared SQLite store and append N distinct records."""
    path, writer_id, count = args
    store = ResultStore(path)
    for index in range(count):
        job = Job(
            workload="NN",
            scheme="TSLC-OPT",
            scale=TINY,
            seed=writer_id * 1000 + index,
        )
        store.put(JobRecord(job=job, status="error", error=f"w{writer_id}:{index}"))
    return count


def test_sqlite_concurrent_writers_lose_no_records(tmp_path):
    """N processes appending simultaneously: every record survives."""
    path = str(tmp_path / "camp.sqlite")
    ResultStore(path)  # create the schema before the writers race
    writers, per_writer = 4, 8
    with ProcessPoolExecutor(max_workers=writers) as pool:
        written = list(
            pool.map(_write_records, [(path, w, per_writer) for w in range(writers)])
        )
    assert sum(written) == writers * per_writer
    store = ResultStore(path)
    assert len(store) == writers * per_writer
    seeds = {record.job.seed for record in store.records()}
    assert seeds == {w * 1000 + i for w in range(writers) for i in range(per_writer)}


# --------------------------------------------------------------------- #
# compaction


def test_jsonl_compact_drops_stale_lines(tmp_path, sample_record):
    store = ResultStore(tmp_path)
    store.put(_error_record())
    store.put(sample_record)
    # re-put the same hash three times: the file grows, the index doesn't
    for _ in range(3):
        store.put(sample_record)
    assert len(store) == 2
    assert sum(1 for _ in store.results_path.open()) == 5

    kept, dropped = store.compact()
    assert (kept, dropped) == (2, 3)
    assert sum(1 for _ in store.results_path.open()) == 2

    reloaded = ResultStore(tmp_path)
    assert len(reloaded) == 2
    assert reloaded.get(sample_record.job.content_hash).result == sample_record.result


def test_jsonl_compact_is_idempotent_and_preserves_index(tmp_path, sample_record):
    store = ResultStore(tmp_path)
    store.put(sample_record)
    before = {r.job.content_hash: r.to_dict() for r in store.records()}
    assert store.compact() == (1, 0)
    assert store.compact() == (1, 0)
    after = {r.job.content_hash: r.to_dict() for r in ResultStore(tmp_path).records()}
    assert before == after


def test_sqlite_compact_keeps_every_record(tmp_path, sample_record):
    store = ResultStore(tmp_path / "camp.sqlite")
    store.put(sample_record)
    store.put(sample_record)
    kept, dropped = store.compact()
    assert (kept, dropped) == (1, 0)
    assert len(ResultStore(tmp_path / "camp.sqlite")) == 1


def test_cli_compact(tmp_path, capsys, sample_record):
    store = ResultStore(tmp_path)
    store.put(sample_record)
    store.put(sample_record)
    assert cli_main(["campaign", "compact", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "kept 1 records" in out and "dropped 1" in out


# --------------------------------------------------------------------- #
# campaign diff


def _populated_store(path, records) -> ResultStore:
    store = ResultStore(path)
    for record in records:
        store.put(record)
    return store


def test_cli_diff_and_compact_refuse_missing_stores(tmp_path, capsys, sample_record):
    """A typo'd path must not become an empty store and a vacuous verdict."""
    _populated_store(tmp_path / "real", [sample_record])
    missing = tmp_path / "no-such-store"
    code = cli_main(["campaign", "diff", str(tmp_path / "real"), str(missing)])
    assert code == 2
    assert "result store at" in capsys.readouterr().err
    assert not missing.exists()  # nothing was created as a side effect
    assert cli_main(["campaign", "compact", "--dir", str(missing)]) == 2
    assert "result store at" in capsys.readouterr().err
    assert not missing.exists()


def test_cli_diff_refuses_backend_mismatch(tmp_path, capsys, sample_record):
    """Forcing --store-backend sqlite on JSONL-only dirs must error, not
    open fresh empty SQLite stores and report a vacuous 'no drift'."""
    _populated_store(tmp_path / "a", [sample_record])
    _populated_store(tmp_path / "b", [_error_record()])
    code = cli_main([
        "campaign", "diff", str(tmp_path / "a"), str(tmp_path / "b"),
        "--store-backend", "sqlite",
    ])
    assert code == 2
    assert "no sqlite result store" in capsys.readouterr().err
    assert not (tmp_path / "a" / "results.sqlite").exists()
    assert not (tmp_path / "b" / "results.sqlite").exists()
    assert cli_main([
        "campaign", "compact", "--dir", str(tmp_path / "a"),
        "--store-backend", "sqlite",
    ]) == 2
    assert not (tmp_path / "a" / "results.sqlite").exists()


def test_cli_diff_identical_stores_exit_zero(tmp_path, capsys, sample_record):
    _populated_store(tmp_path / "a", [sample_record])
    _populated_store(tmp_path / "b.sqlite", [sample_record])  # cross-backend diff
    code = cli_main(
        ["campaign", "diff", str(tmp_path / "a"), str(tmp_path / "b.sqlite")]
    )
    assert code == 0
    assert "1 common cells — 0 changed, 0 only in A, 0 only in B" in capsys.readouterr().out


def test_cli_diff_detects_missing_and_changed(tmp_path, capsys, sample_record):
    changed = JobRecord(
        job=sample_record.job,
        status="ok",
        result=sample_record.result.__class__.from_dict(
            {**sample_record.result.to_dict(), "total_bursts": 123456}
        ),
    )
    extra = _error_record()
    _populated_store(tmp_path / "a", [sample_record, extra])
    _populated_store(tmp_path / "b", [changed])
    code = cli_main(["campaign", "diff", str(tmp_path / "a"), str(tmp_path / "b")])
    out = capsys.readouterr().out
    assert code == 1
    assert "only in" in out
    assert "changed" in out and "total_bursts" in out


def test_cli_status_and_export_work_on_sqlite(tmp_path, capsys):
    campaign_dir = str(tmp_path / "camp")
    assert cli_main([
        "campaign", "run", "--dir", campaign_dir, "--store-backend", "sqlite",
        "--workloads", "NN", "--schemes", "E2MC",
        "--scale", str(TINY), "--no-error", "--quiet",
    ]) == 0
    assert (tmp_path / "camp" / "results.sqlite").exists()
    assert not (tmp_path / "camp" / "results.jsonl").exists()
    capsys.readouterr()
    # second run: served from the SQLite store without the flag (re-detected)
    assert cli_main([
        "campaign", "run", "--dir", campaign_dir,
        "--workloads", "NN", "--schemes", "E2MC",
        "--scale", str(TINY), "--no-error", "--quiet",
    ]) == 0
    assert "1 cached, 0 executed" in capsys.readouterr().out
    assert cli_main(["campaign", "status", "--dir", campaign_dir]) == 0
    assert "1 complete, 0 failed, 0 missing" in capsys.readouterr().out
    csv_path = tmp_path / "export.csv"
    assert cli_main(
        ["campaign", "export", "--dir", campaign_dir, "--csv", str(csv_path)]
    ) == 0
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 2 and lines[1].startswith("NN,E2MC,")


def test_progress_reporter_reports_cache_hits_and_wall_time():
    import io

    from repro.campaign.cli import ProgressReporter

    clock_values = iter([0.0, 10.0, 20.0, 30.0])
    stream = io.StringIO()
    reporter = ProgressReporter(workers=1, stream=stream, clock=lambda: next(clock_values))
    job = Job(workload="NN", scheme="E2MC", compute_error=False)
    reporter(JobRecord(job=job, status="ok", cached=True), 1, 3)
    reporter(JobRecord(job=job, status="ok", elapsed_s=4.0), 2, 3)
    lines = stream.getvalue().splitlines()
    assert "1 cached" in lines[0] and "10s elapsed" in lines[0]
    assert "ETA" not in lines[0]
    assert "avg 4.00s/job" in lines[1] and "ETA 4s" in lines[1]
    assert "1 cached" in lines[1] and "20s elapsed" in lines[1]
    assert reporter.n_cached == 1


# --------------------------------------------------------------------- #
# JSONL torn-write tolerance (a worker killed mid-append)


def test_jsonl_tolerates_truncated_final_line(tmp_path, caplog, monkeypatch):
    import logging

    # setup_logging() (run by any earlier CLI test) disables propagation on
    # the repro logger; caplog needs it back on to observe the warning
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
    store = ResultStore(tmp_path / "camp")
    store.put(_error_record(1))
    store.put(_error_record(2))
    text = store.results_path.read_text(encoding="utf-8")
    lines = text.splitlines(keepends=True)
    # tear the final line in half and drop its newline: the signature a
    # SIGKILLed writer leaves behind
    store.results_path.write_text(
        lines[0] + lines[1][: len(lines[1]) // 2], encoding="utf-8")

    with caplog.at_level(logging.WARNING, logger="repro.campaign.store"):
        reopened = ResultStore(tmp_path / "camp")
    assert len(reopened) == 1  # the torn record is a casualty, not a crash
    assert reopened.corrupt_lines == 1
    assert any("truncated write" in message for message in caplog.messages)

    # the next put heals the tail: it must not glue onto the partial line
    reopened.put(_error_record(3))
    again = ResultStore(tmp_path / "camp")
    assert len(again) == 2
    assert again.corrupt_lines == 1  # the torn line is still on disk

    # compact drops the partial line for good
    kept, _ = again.compact()
    assert kept == 2
    final = ResultStore(tmp_path / "camp")
    assert len(final) == 2 and final.corrupt_lines == 0


def test_jsonl_truncate_store_write_fault(tmp_path):
    from repro.campaign import faults

    store = ResultStore(tmp_path / "camp")
    store.put(_error_record(1))
    faults.activate(f"{faults.TRUNCATE_STORE_WRITE}:1")
    try:
        store.put(_error_record(2))  # dies mid-append: half a line, no index
    finally:
        faults.activate("")
    assert len(store) == 1  # the lost record is not pretended into the index
    reopened = ResultStore(tmp_path / "camp")
    assert len(reopened) == 1 and reopened.corrupt_lines == 1
    # both the faulted store object and a reopened one heal on the next put
    store.put(_error_record(3))
    assert len(ResultStore(tmp_path / "camp")) == 2


def test_cli_diff_allow_missing_subset(tmp_path, capsys, sample_record):
    """--allow-missing: a worker-local store holding a strict subset of the
    coordinator's cells is drift-free as long as shared cells agree."""
    full = [sample_record, _error_record()]
    _populated_store(tmp_path / "coordinator", full)
    _populated_store(tmp_path / "worker", [sample_record])
    strict = cli_main(["campaign", "diff",
                       str(tmp_path / "worker"), str(tmp_path / "coordinator")])
    assert strict == 1  # the missing cell is drift in strict mode
    relaxed = cli_main(["campaign", "diff", "--allow-missing",
                        str(tmp_path / "worker"), str(tmp_path / "coordinator")])
    assert relaxed == 0
    capsys.readouterr()
