"""Property tests for the batched payload codec (:mod:`repro.kernels.codec`).

Every batched entry point is pinned to its scalar n = 1 oracle on randomized
regions — including all-zero blocks, all-same-symbol blocks, blocks that pick
up maximum-length codewords / escapes, and non-approximable regions — across
all three TSLC variants and MAG ∈ {16, 32, 64}:

* ``decompress(compress(b))`` equals the scalar ``roundtrip`` oracle,
* ``compress_batch == [compress]`` (payload bytes, metadata and all),
* ``apply_decision_batch == [apply_decision]`` for analyzer-produced *and*
  synthetic decisions,
* bulk Huffman encode → decode is the identity and matches the scalar
  ``BitWriter``/``BitReader`` bitstreams exactly.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.base import CompressionError, DecompressionError
from repro.compression.e2mc import ESCAPE_SYMBOL, E2MCCompressor, SymbolModel
from repro.core.config import SLCConfig, SLCMode, SLCVariant
from repro.core.slc import SLCBlock, SLCCompressor, SLCDecision
from repro.gpu.backends import SLCBackend
from repro.kernels.codec import HuffmanCodecLUT, reconstruct_rows
from repro.kernels.symbols import BatchSymbolView
from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.blocks import block_to_symbols, symbols_to_block

from tests.conftest import make_float_blocks, make_mixed_blocks

BLOCK = 128
SPB = 64

ALL_VARIANTS = (SLCVariant.SIMP, SLCVariant.PRED, SLCVariant.OPT)
ALL_MAGS = (16, 32, 64)


@functools.lru_cache(maxsize=None)
def trained_slc(variant: SLCVariant, mag: int) -> SLCCompressor:
    slc = SLCCompressor(
        SLCConfig(variant=variant, mag_bytes=mag, lossy_threshold_bytes=mag // 2)
    )
    slc.train(make_float_blocks() + make_mixed_blocks())
    return slc


# --------------------------------------------------------------------- #
# block strategies

#: a small alphabet makes low-entropy (compressible, often lossy) blocks
_small_symbols = st.integers(min_value=0, max_value=7).map(lambda s: s * 257)

block_strategy = st.one_of(
    st.just(bytes(BLOCK)),  # all-zero
    st.integers(min_value=0, max_value=0xFFFF).map(  # all-same-symbol
        lambda s: symbols_to_block([s] * SPB)
    ),
    st.lists(_small_symbols, min_size=SPB, max_size=SPB).map(symbols_to_block),
    st.binary(min_size=BLOCK, max_size=BLOCK),  # incompressible / escapes
)

blocks_strategy = st.lists(block_strategy, min_size=1, max_size=12)


# --------------------------------------------------------------------- #
# SLC batched codec vs. scalar oracles


@settings(max_examples=30, deadline=None)
@given(blocks=blocks_strategy, data=st.data())
def test_compress_batch_matches_scalar(blocks, data):
    variant = data.draw(st.sampled_from(ALL_VARIANTS))
    mag = data.draw(st.sampled_from(ALL_MAGS))
    approximable = data.draw(st.booleans())
    slc = trained_slc(variant, mag)
    scalar = [slc.compress(b, approximable=approximable) for b in blocks]
    batch = slc.compress_batch(blocks, approximable=approximable)
    assert batch == scalar


@settings(max_examples=30, deadline=None)
@given(blocks=blocks_strategy, data=st.data())
def test_roundtrip_batch_matches_scalar_oracle(blocks, data):
    variant = data.draw(st.sampled_from(ALL_VARIANTS))
    mag = data.draw(st.sampled_from(ALL_MAGS))
    slc = trained_slc(variant, mag)
    compressed = slc.compress_batch(blocks)
    assert slc.decompress_batch(compressed) == [slc.roundtrip(b) for b in blocks]
    # scalar decompress agrees with batched decompress on the same payloads
    assert [slc.decompress(c) for c in compressed] == slc.decompress_batch(compressed)


@settings(max_examples=30, deadline=None)
@given(blocks=blocks_strategy, data=st.data())
def test_apply_decision_batch_matches_scalar(blocks, data):
    variant = data.draw(st.sampled_from(ALL_VARIANTS))
    mag = data.draw(st.sampled_from(ALL_MAGS))
    slc = trained_slc(variant, mag)
    decisions = [slc.analyze(b) for b in blocks]
    scalar = [slc.apply_decision(b, d) for b, d in zip(blocks, decisions)]
    assert slc.apply_decision_batch(blocks, decisions) == scalar
    # the arrays form feeds the same truncation/prediction kernel
    arrays = slc.analyze_batch_arrays(blocks)
    assert slc.apply_decision_batch(blocks, arrays) == scalar


@settings(max_examples=60, deadline=None)
@given(
    block=block_strategy,
    start=st.integers(min_value=0, max_value=SPB - 1),
    count=st.integers(min_value=1, max_value=SPB),
    data=st.data(),
)
def test_apply_decision_batch_synthetic_ranges(block, start, count, data):
    """Synthetic lossy decisions cover every (start, count) geometry,
    including ranges the analyzer would never produce (whole-block
    truncation, ranges past the max-approx cap)."""
    variant = data.draw(st.sampled_from(ALL_VARIANTS))
    count = min(count, SPB - start)
    slc = trained_slc(variant, 32)
    decision = SLCDecision(
        mode=SLCMode.LOSSY,
        comp_size_bits=0,
        stored_size_bits=0,
        bit_budget_bits=0,
        extra_bits=0,
        bursts=1,
        approx_start=start,
        approx_count=count,
    )
    scalar = slc.apply_decision(block, decision)
    assert slc.apply_decision_batch([block], [decision]) == [scalar]


def test_apply_decision_batch_length_mismatch():
    slc = trained_slc(SLCVariant.OPT, 32)
    with pytest.raises(CompressionError):
        slc.apply_decision_batch([bytes(BLOCK)], [])


def test_batch_codec_empty_region():
    slc = trained_slc(SLCVariant.OPT, 32)
    assert slc.compress_batch([]) == []
    assert slc.decompress_batch([]) == []
    assert slc.apply_decision_batch([], []) == []


def test_decompress_batch_whole_block_truncated():
    """A payload whose every symbol was truncated (nothing kept) must match
    the scalar oracle instead of crashing on the empty kept-symbol gather."""
    slc = trained_slc(SLCVariant.OPT, 32)
    block = SLCBlock(
        algorithm=slc.name,
        original_size_bits=slc.config.block_size_bits,
        compressed_size_bits=0,
        payload=(b"", 0, 0, SPB),
        lossless=False,
        mode=SLCMode.LOSSY,
        variant=slc.config.variant,
        approx_start=0,
        approx_count=SPB,
        mag_bytes=32,
    )
    scalar = slc.decompress(block)
    assert slc.decompress_batch([block]) == [scalar]
    assert scalar == bytes(BLOCK)


def test_untrained_slc_stores_raw():
    slc = SLCCompressor(SLCConfig())
    blocks = make_mixed_blocks()[:8]
    batch = slc.compress_batch(blocks)
    assert batch == [slc.compress(b) for b in blocks]
    assert all(c.mode is SLCMode.UNCOMPRESSED for c in batch)
    assert slc.decompress_batch(batch) == [bytes(b) for b in blocks]


@pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.value)
@pytest.mark.parametrize("mag", ALL_MAGS)
def test_full_grid_on_fixed_corpus(variant, mag):
    """Deterministic sweep of every MAG × variant over the shared corpus."""
    blocks = make_float_blocks() + make_mixed_blocks()
    slc = trained_slc(variant, mag)
    compressed = slc.compress_batch(blocks)
    assert compressed == [slc.compress(b) for b in blocks]
    assert slc.decompress_batch(compressed) == [slc.roundtrip(b) for b in blocks]
    decisions = slc.analyze_batch(blocks)
    assert slc.apply_decision_batch(blocks, decisions) == [
        slc.apply_decision(b, d) for b, d in zip(blocks, decisions)
    ]
    # the sweep is only meaningful if it exercises the lossy path
    assert any(c.mode is SLCMode.LOSSY for c in compressed)


def test_store_batch_matches_scalar_store_counters():
    """SLCBackend batched stores equal per-block stores, counters included."""
    blocks = make_float_blocks() + make_mixed_blocks()
    config = SLCConfig(variant=SLCVariant.OPT)
    scalar_backend = SLCBackend(SLCCompressor(config))
    batch_backend = SLCBackend(SLCCompressor(config))
    oracle_backend = SLCBackend(SLCCompressor(config), batch_codec=False)
    for backend in (scalar_backend, batch_backend, oracle_backend):
        backend.train(blocks)
    scalar = [scalar_backend.store(b) for b in blocks]
    assert batch_backend.store_batch(blocks) == scalar
    assert oracle_backend.store_batch(blocks) == scalar
    for backend in (batch_backend, oracle_backend):
        assert backend.total_blocks == scalar_backend.total_blocks
        assert backend.lossy_blocks == scalar_backend.lossy_blocks
        assert backend.total_overshoot_bits == scalar_backend.total_overshoot_bits
    assert scalar_backend.lossy_blocks > 0


# --------------------------------------------------------------------- #
# E2MC batched codec vs. scalar oracles


@settings(max_examples=30, deadline=None)
@given(blocks=blocks_strategy)
def test_e2mc_batch_matches_scalar(blocks):
    compressor = E2MCCompressor()
    compressor.train(make_float_blocks() + make_mixed_blocks())
    compressed = compressor.compress_batch(blocks)
    assert compressed == [compressor.compress(b) for b in blocks]
    decompressed = compressor.decompress_batch(compressed)
    assert decompressed == [compressor.decompress(c) for c in compressed]
    # E2MC is lossless: the roundtrip is the identity
    assert decompressed == [bytes(b) for b in blocks]


def test_e2mc_untrained_batch_stores_raw():
    compressor = E2MCCompressor()
    blocks = make_mixed_blocks()[:6]
    batch = compressor.compress_batch(blocks)
    assert batch == [compressor.compress(b) for b in blocks]
    assert all(c.metadata.get("uncompressed") for c in batch)


def test_e2mc_batch_view_input():
    compressor = E2MCCompressor()
    blocks = make_float_blocks()
    compressor.train(blocks)
    view = BatchSymbolView.from_blocks(blocks)
    assert compressor.compress_batch(view) == [compressor.compress(b) for b in blocks]


# --------------------------------------------------------------------- #
# HuffmanCodecLUT: bulk bitstreams vs. BitWriter/BitReader


def skewed_model(max_code_length: int = 8) -> SymbolModel:
    """A model whose code hits the length cap (max-length codewords) and
    leaves most of the 16-bit symbol space untabled (escape coverage)."""
    model = SymbolModel(max_table_entries=64, max_code_length=max_code_length)
    counts = {symbol: 1 << min(symbol, 24) for symbol in range(40)}
    model.fit_counts(counts)
    assert model.code.max_length() == max_code_length
    return model


def scalar_bitstream(model: SymbolModel, symbols: list[int]) -> tuple[bytes, int]:
    writer = BitWriter()
    for symbol in symbols:
        model.encode_symbol(writer, symbol)
    return writer.getvalue(), writer.bit_length


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=0, max_size=24),
        min_size=1,
        max_size=8,
    )
)
def test_codec_lut_encode_matches_bitwriter(rows):
    model = skewed_model()
    lut = model.codec_table()
    flat = np.asarray([s for row in rows for s in row], dtype=np.uint16)
    counts = np.asarray([len(row) for row in rows], dtype=np.int64)
    packed, row_bits = lut.encode_rows(flat, counts)
    payloads = lut.payloads_from_rows(packed, row_bits)
    for row, (data, bits) in zip(rows, payloads):
        assert (data, bits) == scalar_bitstream(model, row)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=0, max_size=24),
        min_size=1,
        max_size=8,
    )
)
def test_codec_lut_decode_identity(rows):
    model = skewed_model()
    lut = model.codec_table()
    flat = np.asarray([s for row in rows for s in row], dtype=np.uint16)
    counts = np.asarray([len(row) for row in rows], dtype=np.int64)
    packed, row_bits = lut.encode_rows(flat, counts)
    payloads = [data for data, _ in lut.payloads_from_rows(packed, row_bits)]
    decoded = lut.decode_rows(payloads, row_bits, counts)
    for index, row in enumerate(rows):
        assert decoded[index, : len(row)].tolist() == row
        # and the scalar reader agrees symbol by symbol
        reader = BitReader(payloads[index], bit_length=int(row_bits[index]))
        assert [model.decode_symbol(reader) for _ in row] == row


def test_codec_lut_max_length_codeword_is_exercised():
    """The skewed model's rarest tabled symbol carries a max-length codeword;
    encoding it and an untabled symbol round-trips through escape handling."""
    model = skewed_model()
    lut = model.codec_table()
    rarest = min(
        (s for s in model.code.lengths if s >= 0),
        key=lambda s: (-model.code.lengths[s], s),
    )
    assert model.code.lengths[rarest] == model.code.max_length()
    symbols = [rarest, 0xBEEF, rarest, ESCAPE_SYMBOL & 0xFFFF]
    packed, row_bits = lut.encode_rows(
        np.asarray(symbols, dtype=np.int64), np.asarray([len(symbols)])
    )
    [(data, bits)] = lut.payloads_from_rows(packed, row_bits)
    assert (data, bits) == scalar_bitstream(model, symbols)
    decoded = lut.decode_rows([data], row_bits, np.asarray([len(symbols)]))
    assert decoded[0].tolist() == symbols


# --------------------------------------------------------------------- #
# fused multi-symbol decode vs. the searchsorted lockstep oracle


def dominant_model() -> SymbolModel:
    """A model with a 1-bit dominant codeword, so one 16-bit fused probe
    emits many symbols at once (the table's multi-symbol fast path)."""
    model = SymbolModel(max_table_entries=8, max_code_length=8)
    model.fit_counts({0: 1 << 30, 1: 8, 2: 4, 3: 2, 4: 1})
    assert model.code.lengths[0] == 1
    return model


def _roundtrip_pair(model: SymbolModel, rows: list[list[int]]) -> None:
    """Encode ``rows`` and assert the fused decoder and the lockstep
    searchsorted oracle return identical symbol matrices."""
    lut = model.codec_table()
    assert lut.fused_supported()
    flat = np.asarray([s for row in rows for s in row], dtype=np.int64)
    counts = np.asarray([len(row) for row in rows], dtype=np.int64)
    packed, row_bits = lut.encode_rows(flat, counts)
    payloads = [data for data, _ in lut.payloads_from_rows(packed, row_bits)]
    fused = lut._decode_rows_fused(payloads, row_bits, counts)
    oracle = lut.decode_rows_lockstep(payloads, row_bits, counts)
    assert np.array_equal(fused, oracle)
    for index, row in enumerate(rows):
        assert fused[index, : len(row)].tolist() == row


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=0, max_size=48),
        min_size=1,
        max_size=12,
    )
)
def test_fused_decode_matches_oracle_on_skewed_code(rows):
    """Arbitrary 16-bit symbols through the capped skewed code: max-length
    codewords and escape emissions, fused vs. searchsorted bit-exact."""
    _roundtrip_pair(skewed_model(), rows)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(
            st.integers(min_value=0x100, max_value=0xFFFF),  # all untabled
            min_size=1,
            max_size=16,
        ),
        min_size=1,
        max_size=8,
    )
)
def test_fused_decode_matches_oracle_escape_heavy(rows):
    """Rows made entirely of escapes exercise the fused decoder's
    blocked-row path (escape emissions are longer than the probe width)."""
    _roundtrip_pair(skewed_model(), rows)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(
            st.integers(min_value=0, max_value=4).flatmap(
                lambda s: st.just(s) if s else st.just(0)
            ),
            min_size=1,
            max_size=64,
        ),
        min_size=1,
        max_size=8,
    ),
    data=st.data(),
)
def test_fused_decode_matches_oracle_dominant_runs(rows, data):
    """Long runs of a 1-bit dominant symbol pack up to 16 symbols into one
    fused probe — the widest multi-symbol commit the tables support."""
    # splice occasional rare symbols / escapes into the runs
    spiced = []
    for row in rows:
        row = list(row)
        if row and data.draw(st.booleans()):
            row[data.draw(st.integers(0, len(row) - 1))] = data.draw(
                st.sampled_from([1, 2, 3, 4, 0xBEEF])
            )
        spiced.append(row)
    _roundtrip_pair(dominant_model(), spiced)


@pytest.mark.parametrize("n_rows", [1, 3, 300])
def test_fused_decode_matches_oracle_uniform_runs(n_rows):
    """A large all-dominant batch takes the column-loop commit path
    (every row advances 16 symbols per probe)."""
    rows = [[0] * 64 for _ in range(n_rows)]
    rows[-1] = [0] * 7 + [0xBEEF] + [0] * 21
    _roundtrip_pair(dominant_model(), rows)


def test_codec_lut_untrained_raises():
    lut = HuffmanCodecLUT.from_model(SymbolModel())
    with pytest.raises(CompressionError):
        lut.encode_rows(np.zeros(1, dtype=np.int64), np.asarray([1]))
    with pytest.raises(DecompressionError):
        lut.decode_rows([b"\x00"], np.asarray([8]), np.asarray([1]))


def test_codec_lut_truncated_stream_raises():
    model = skewed_model()
    lut = model.codec_table()
    symbols = [0xBEEF] * 4  # escapes: long emissions
    packed, row_bits = lut.encode_rows(
        np.asarray(symbols, dtype=np.int64), np.asarray([len(symbols)])
    )
    [(data, bits)] = lut.payloads_from_rows(packed, row_bits)
    with pytest.raises(DecompressionError):
        lut.decode_rows([data[: len(data) // 2]], np.asarray([bits // 2]),
                        np.asarray([len(symbols)]))


def test_codec_lut_bit_length_beyond_payload_raises():
    """A claimed bit_length the payload bytes cannot back must fail cleanly
    (the scalar BitReader rejects it at construction), not run off the
    padded bit matrix."""
    model = skewed_model()
    lut = model.codec_table()
    symbols = [0xBEEF] * 8
    packed, row_bits = lut.encode_rows(
        np.asarray(symbols, dtype=np.int64), np.asarray([len(symbols)])
    )
    [(data, bits)] = lut.payloads_from_rows(packed, row_bits)
    with pytest.raises(DecompressionError):
        lut.decode_rows([data[:1]], np.asarray([bits]), np.asarray([len(symbols)]))


def test_decompress_batch_corrupt_payload_raises_cleanly():
    slc = trained_slc(SLCVariant.OPT, 32)
    blocks = make_float_blocks()
    compressed = slc.compress_batch(blocks)
    coded = next(c for c in compressed if c.mode is not SLCMode.UNCOMPRESSED)
    data, bits, start, count = coded.payload
    from dataclasses import replace

    corrupt = replace(coded, payload=(data[:1], bits, start, count))
    with pytest.raises(DecompressionError):
        slc.decompress_batch([corrupt])


def test_codec_lut_rejects_wide_symbols():
    with pytest.raises(ValueError):
        HuffmanCodecLUT.from_model(SymbolModel(symbol_bytes=4))


def test_codec_lut_row_count_mismatch():
    lut = skewed_model().codec_table()
    with pytest.raises(ValueError):
        lut.encode_rows(np.zeros(3, dtype=np.int64), np.asarray([1, 1]))


# --------------------------------------------------------------------- #
# vectorized truncated-symbol reconstruction vs. the scalar predictor


@settings(max_examples=80, deadline=None)
@given(
    symbols=st.lists(
        st.integers(min_value=0, max_value=0xFFFF), min_size=8, max_size=8
    ),
    start=st.integers(min_value=0, max_value=7),
    count=st.integers(min_value=0, max_value=8),
    use_prediction=st.booleans(),
    element_symbols=st.sampled_from([1, 2, 4]),
)
def test_reconstruct_rows_matches_scalar_predictor(
    symbols, start, count, use_prediction, element_symbols
):
    from repro.core.prediction import predict_truncated_symbols

    count = min(count, len(symbols) - start)
    kept = symbols[:start] + symbols[start + count:]
    expected = predict_truncated_symbols(
        kept, start, count, len(symbols),
        use_prediction=use_prediction, element_symbols=element_symbols,
    )
    matrix = np.asarray([symbols], dtype=np.int64)
    result = reconstruct_rows(
        matrix,
        np.asarray([start]),
        np.asarray([count]),
        use_prediction=use_prediction,
        element_symbols=element_symbols,
    )
    assert result[0].tolist() == expected
    # the input matrix is never mutated
    assert matrix[0].tolist() == symbols


def test_reconstruct_rows_validates_ranges():
    matrix = np.zeros((1, 8), dtype=np.int64)
    with pytest.raises(ValueError):
        reconstruct_rows(matrix, np.asarray([4]), np.asarray([8]),
                         use_prediction=True, element_symbols=2)
    with pytest.raises(ValueError):
        reconstruct_rows(matrix, np.asarray([0]), np.asarray([1]),
                         use_prediction=True, element_symbols=0)


# --------------------------------------------------------------------- #
# scalar-geometry fallbacks (symbol widths the dense tables cannot cover)


def test_wide_symbol_geometry_falls_back_to_scalar():
    config = SLCConfig(symbol_bytes=4, element_bytes=4)
    slc = SLCCompressor(config)
    blocks = make_float_blocks()[:16]
    slc.train(blocks)
    assert slc.symbol_view(blocks) is None
    compressed = slc.compress_batch(blocks)
    assert compressed == [slc.compress(b) for b in blocks]
    assert slc.decompress_batch(compressed) == [slc.roundtrip(b) for b in blocks]
    decisions = slc.analyze_batch(blocks)
    assert slc.apply_decision_batch(blocks, decisions) == [
        slc.apply_decision(b, d) for b, d in zip(blocks, decisions)
    ]


def test_apply_decision_batch_length_mismatch_on_fallback_geometry():
    """The scalar-geometry fallback must reject mismatched inputs just as
    loudly as the batched path instead of silently zip-truncating."""
    slc = SLCCompressor(SLCConfig(symbol_bytes=4, element_bytes=4))
    slc.train(make_float_blocks()[:8])
    assert slc.symbol_view([bytes(BLOCK)]) is None
    with pytest.raises(CompressionError):
        slc.apply_decision_batch([bytes(BLOCK)], [])
