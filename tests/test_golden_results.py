"""Golden-result regression suite for the payload codec and simulator.

Pins every :class:`SimulationResult` counter *and* a SHA-256 digest of the
stored payload bytes (address, bursts, stored bits, lossy flag, degraded
data) for the 9-workload × {E2MC, TSLC-SIMP, TSLC-PRED, TSLC-OPT} ×
MAG {16, 32, 64} grid — plus a lossless-scheme slice and the extended
families (WEATHER, DNNACT) × {E2MC, TSLC-OPT} — at a reduced input scale,
against values produced by
the fully scalar reference pipeline (per-block store, per-access trace
replay, per-symbol payload codec).  Both the scalar and the fully batched
path (vectorized kernels + replay engine + payload codec) must reproduce
the checked-in fixture bit-exactly, so any drift in either pipeline — or
any divergence between them — fails loudly.

Regenerate the fixture (only when simulation semantics intentionally
change) with::

    PYTHONPATH=src python tests/test_golden_results.py

which reruns the scalar reference over the grid and rewrites
``tests/golden_results.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign.spec import (
    BASELINE_SCHEME,
    LOSSLESS_SCHEMES,
    SCHEME_VARIANTS,
    Job,
)
from repro.campaign.worker import simulate_job
from repro.workloads.registry import EXTENDED_WORKLOAD_ORDER, PAPER_WORKLOAD_ORDER

FIXTURE_PATH = Path(__file__).parent / "golden_results.json"

#: reduced input scale: big enough that every workload exercises the lossy
#: path somewhere in the grid, small enough that the whole suite stays fast
SCALE = 1.0 / 2048.0
SEED = 2019

SCHEMES = (BASELINE_SCHEME, *SCHEME_VARIANTS)
MAGS = (16, 32, 64)
#: representative slice for the classic lossless schemes (BDI/FPC/CPACK/BPC):
#: one float-heavy, one integer-heavy and one mixed benchmark — full workload
#: coverage for them would double the suite for schemes whose size analysis
#: is already pinned exhaustively by tests/test_lossless_batch.py
LOSSLESS_WORKLOADS = ("BS", "NN", "SRAD1")
#: the extended families are pinned against the baseline and the strongest
#: TSLC variant — enough to catch drift in their data generation and in the
#: lossy path over their distributions without doubling the suite
EXTENDED_SCHEMES = (BASELINE_SCHEME, "TSLC-OPT")
GRID = [
    (workload, scheme, mag)
    for workload in PAPER_WORKLOAD_ORDER
    for scheme in SCHEMES
    for mag in MAGS
] + [
    (workload, scheme, mag)
    for workload in LOSSLESS_WORKLOADS
    for scheme in LOSSLESS_SCHEMES
    for mag in MAGS
] + [
    (workload, scheme, mag)
    for workload in EXTENDED_WORKLOAD_ORDER
    for scheme in EXTENDED_SCHEMES
    for mag in MAGS
]


def cell_key(workload: str, scheme: str, mag: int) -> str:
    return f"{workload}/{scheme}/mag{mag}"


def cell_job(workload: str, scheme: str, mag: int) -> Job:
    # Fig. 9 semantics: the lossy threshold scales with the MAG (MAG/2).
    return Job(
        workload=workload,
        scheme=scheme,
        scale=SCALE,
        seed=SEED,
        compute_error=False,
        mag_bytes=mag,
        lossy_threshold_bytes=mag // 2,
    )


def run_cell(workload: str, scheme: str, mag: int, scalar: bool) -> dict:
    """One grid cell through the scalar reference or the batched pipeline."""
    return simulate_job(
        cell_job(workload, scheme, mag),
        batch_store=not scalar,
        replay_mode="scalar" if scalar else "vectorized",
        batch_codec=not scalar,
        payload_digest=True,
    ).to_dict()


@pytest.fixture(scope="module")
def golden() -> dict:
    if not FIXTURE_PATH.exists():  # pragma: no cover - developer guidance
        pytest.fail(
            "tests/golden_results.json is missing; regenerate it with "
            "`PYTHONPATH=src python tests/test_golden_results.py`"
        )
    return json.loads(FIXTURE_PATH.read_text())


def test_fixture_matches_grid(golden):
    """The fixture covers exactly the declared grid at the declared scale."""
    assert golden["scale"] == SCALE
    assert golden["seed"] == SEED
    assert sorted(golden["cells"]) == sorted(cell_key(*cell) for cell in GRID)


def test_fixture_exercises_lossy_path(golden):
    """The grid would be meaningless if no cell ever truncated a symbol."""
    lossy = {
        key: cell["lossy_blocks"]
        for key, cell in golden["cells"].items()
        if "TSLC" in key
    }
    assert sum(lossy.values()) > 0
    # every TSLC variant truncates somewhere in the grid
    for scheme in SCHEME_VARIANTS:
        assert any(count for key, count in lossy.items() if scheme in key), scheme


@pytest.mark.parametrize(
    ("workload", "scheme", "mag"),
    GRID,
    ids=[cell_key(*cell) for cell in GRID],
)
def test_golden_cell(golden, workload, scheme, mag):
    """Scalar and batched pipelines both reproduce the fixture bit-exactly."""
    expected = golden["cells"][cell_key(workload, scheme, mag)]
    batched = run_cell(workload, scheme, mag, scalar=False)
    assert batched == expected, "batched pipeline diverged from golden fixture"
    scalar = run_cell(workload, scheme, mag, scalar=True)
    assert scalar == expected, "scalar reference diverged from golden fixture"


def regenerate() -> None:  # pragma: no cover - manual fixture refresh
    cells = {}
    for index, (workload, scheme, mag) in enumerate(GRID, 1):
        key = cell_key(workload, scheme, mag)
        cells[key] = run_cell(workload, scheme, mag, scalar=True)
        print(
            f"[{index:>3}/{len(GRID)}] {key:<22} "
            f"stored={cells[key]['stored_blocks']:>5} "
            f"lossy={cells[key]['lossy_blocks']:>5}"
        )
    payload = {"scale": SCALE, "seed": SEED, "cells": cells}
    FIXTURE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    lossy_total = sum(c["lossy_blocks"] for k, c in cells.items() if "TSLC" in k)
    print(f"wrote {FIXTURE_PATH} ({len(cells)} cells, {lossy_total} lossy blocks)")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
