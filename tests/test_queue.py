"""Unit tests for the lease queue, fault injector, and coordinator protocol.

Everything here is transport-free and clock-injected: the queue and the
:class:`~repro.campaign.service.CampaignService` are driven directly, so
every failure mode (expiry, strikes, quarantine, duplicate completion,
poison jobs) is exercised deterministically without sockets or sleeps.
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import faults
from repro.campaign.queue import STAT_KEYS, LeaseQueue
from repro.campaign.service import CampaignService
from repro.campaign.spec import Job

TINY = 1.0 / 1024.0


class FakeClock:
    """Injectable monotonic clock."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


def make_jobs(n: int) -> list[Job]:
    return [Job(workload="NN", scheme="E2MC", scale=TINY, seed=i)
            for i in range(n)]


def record_for(job: Job, status: str = "ok") -> dict:
    return {
        "job_hash": job.content_hash,
        "job": job.to_dict(),
        "status": status,
        "result": None,
        "error": None if status == "ok" else "boom",
        "elapsed_s": 0.01,
    }


# --------------------------------------------------------------------- #
# FaultInjector


def test_fault_injector_default_fires_first_invocation_only():
    injector = faults.FaultInjector("kill-worker-mid-job")
    assert injector.fire(faults.KILL_WORKER_MID_JOB) is True
    assert injector.fire(faults.KILL_WORKER_MID_JOB) is False
    assert injector.counts[faults.KILL_WORKER_MID_JOB] == 2
    assert injector.fired[faults.KILL_WORKER_MID_JOB] == 1


def test_fault_injector_exact_nth():
    injector = faults.FaultInjector("drop-response:3")
    assert [injector.fire(faults.DROP_RESPONSE) for _ in range(5)] == [
        False, False, True, False, False]


def test_fault_injector_from_nth_onwards():
    injector = faults.FaultInjector("stall-heartbeat:2+")
    assert [injector.fire(faults.STALL_HEARTBEAT) for _ in range(4)] == [
        False, True, True, True]


def test_fault_injector_always_and_multiple_rules():
    injector = faults.FaultInjector("truncate-store-write:*, drop-response:1")
    assert injector.fire(faults.TRUNCATE_STORE_WRITE)
    assert injector.fire(faults.TRUNCATE_STORE_WRITE)
    assert injector.fire(faults.DROP_RESPONSE)
    assert not injector.fire(faults.DROP_RESPONSE)
    # unconfigured sites never fire and cost only a dict lookup
    assert not injector.fire(faults.KILL_WORKER_MID_JOB)


def test_fault_injector_empty_spec_never_fires():
    injector = faults.FaultInjector("")
    for site in (faults.KILL_WORKER_MID_JOB, faults.DROP_RESPONSE,
                 faults.STALL_HEARTBEAT, faults.TRUNCATE_STORE_WRITE):
        assert injector.fire(site) is False
    assert injector.fired == {}


def test_fault_injector_rejects_nonpositive_trigger():
    with pytest.raises(ValueError):
        faults.FaultInjector("drop-response:0")


def test_fault_injector_env_activation(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "drop-response:2")
    faults.activate("")  # clear whatever earlier tests installed
    monkeypatch.setattr(faults, "_injector", None)  # force re-read of env
    assert not faults.fire(faults.DROP_RESPONSE)
    assert faults.fire(faults.DROP_RESPONSE)
    faults.activate("")  # leave no armed injector behind


# --------------------------------------------------------------------- #
# LeaseQueue basics


def test_lease_grant_complete_drain():
    jobs = make_jobs(3)
    queue = LeaseQueue(jobs, lease_timeout_s=30, clock=FakeClock())
    granted = queue.lease("w1", max_jobs=2)
    assert [j.content_hash for j in granted] == [j.content_hash for j in jobs[:2]]
    for job in granted:
        reply = queue.complete("w1", record_for(job))
        assert reply == {"accepted": True, "final": True}
    assert not queue.finished()
    (last,) = queue.lease("w1", max_jobs=5)
    queue.complete("w1", record_for(last))
    assert queue.finished()
    assert queue.state == "done"
    drained = queue.drain_done()
    assert sorted(r["job_hash"] for r in drained) == sorted(
        j.content_hash for j in jobs)
    assert queue.drain_done() == []  # each record exactly once
    assert queue.stats["leases_granted"] == 3
    assert queue.stats["completions"] == 3
    assert queue.stats["duplicates"] == 0


def test_lease_expiry_requeues_and_strikes():
    clock = FakeClock()
    jobs = make_jobs(1)
    queue = LeaseQueue(jobs, lease_timeout_s=10, clock=clock)
    (job,) = queue.lease("w1")
    assert queue.expire() == []  # not yet
    clock.advance(10.5)
    assert queue.expire() == [job.content_hash]
    assert queue.stats["leases_expired"] == 1
    assert queue.stats["retries"] == 1
    info = next(w for w in queue.workers() if w.worker_id == "w1")
    assert info.strikes == 1
    # the job is leasable again, attempt bumped
    (again,) = queue.lease("w2")
    assert again.content_hash == job.content_hash
    queue.complete("w2", record_for(again))
    assert queue.finished()


def test_heartbeat_renews_lease():
    clock = FakeClock()
    queue = LeaseQueue(make_jobs(1), lease_timeout_s=10, clock=clock)
    queue.lease("w1")
    clock.advance(8)
    assert queue.heartbeat("w1")["renewed"] == 1
    clock.advance(8)  # 16s in, but renewed at 8s -> deadline 18s
    assert queue.expire() == []
    clock.advance(3)
    assert len(queue.expire()) == 1


def test_max_lease_cap_beats_heartbeat():
    clock = FakeClock()
    queue = LeaseQueue(make_jobs(1), lease_timeout_s=10, max_lease_s=25,
                       clock=clock)
    queue.lease("w1")
    for _ in range(4):  # heartbeat every 8s: alive but wedged
        clock.advance(8)
        queue.heartbeat("w1")
    # 32s > max_lease_s: the renewed deadline was capped at granted_at + 25
    assert len(queue.expire()) == 1
    assert queue.stats["leases_expired"] == 1


def test_error_record_retries_then_finalizes():
    queue = LeaseQueue(make_jobs(1), lease_timeout_s=30, max_attempts=2,
                       clock=FakeClock())
    (job,) = queue.lease("w1")
    reply = queue.complete("w1", record_for(job, status="error"))
    assert reply == {"accepted": False, "final": False}
    assert queue.stats["errors_retried"] == 1
    assert not queue.finished()
    (again,) = queue.lease("w2")
    reply = queue.complete("w2", record_for(again, status="error"))
    assert reply == {"accepted": True, "final": True}
    assert queue.stats["errors_final"] == 1
    assert queue.finished()
    (record,) = queue.drain_done()
    assert record["status"] == "error"


def test_poison_job_expiry_converges_to_error_record():
    clock = FakeClock()
    queue = LeaseQueue(make_jobs(1), lease_timeout_s=5, max_attempts=2,
                       quarantine_strikes=99, clock=clock)
    for attempt in range(2):  # every worker that touches the job dies
        queue.lease(f"w{attempt}")
        clock.advance(6)
        queue.expire()
    assert queue.finished()
    assert queue.stats["expiries_final"] == 1
    (record,) = queue.drain_done()
    assert record["status"] == "error"
    assert "lease expired" in record["error"]
    assert record["provenance"]["last_worker"] == "w1"
    assert record["job_hash"] == make_jobs(1)[0].content_hash


def test_duplicate_completion_is_idempotent():
    queue = LeaseQueue(make_jobs(1), lease_timeout_s=30, clock=FakeClock())
    (job,) = queue.lease("w1")
    assert queue.complete("w1", record_for(job))["accepted"]
    dup = queue.complete("w2", record_for(job))
    assert dup == {"accepted": False, "final": True}
    assert queue.stats["duplicates"] == 1
    assert queue.stats["completions"] == 1
    assert len(queue.drain_done()) == 1  # the duplicate never reaches the store


def test_stale_completion_after_expiry_wins_once():
    # w1's lease expires, the job is re-queued — then w1's completion lands
    # anyway.  It must count once, and the re-queued copy must never be
    # granted again.
    clock = FakeClock()
    queue = LeaseQueue(make_jobs(1), lease_timeout_s=5, clock=clock)
    (job,) = queue.lease("w1")
    clock.advance(6)
    queue.expire()
    assert queue.complete("w1", record_for(job))["accepted"]
    assert queue.finished()
    assert queue.lease("w2") == []  # done job is not re-granted
    assert len(queue.drain_done()) == 1


def test_unknown_job_hash_rejected():
    queue = LeaseQueue(make_jobs(1), clock=FakeClock())
    bogus = record_for(Job(workload="BS", scheme="E2MC", scale=TINY))
    reply = queue.complete("w1", bogus)
    assert reply["accepted"] is False and reply.get("unknown") is True


def test_worker_quarantine_requeues_and_refuses():
    clock = FakeClock()
    jobs = make_jobs(4)
    queue = LeaseQueue(jobs, lease_timeout_s=30, max_attempts=10,
                       quarantine_strikes=2, clock=clock)
    granted = queue.lease("bad", max_jobs=3)
    assert len(granted) == 3
    # two error returns = two strikes = quarantine; the third lease re-queued
    queue.complete("bad", record_for(granted[0], status="error"))
    queue.complete("bad", record_for(granted[1], status="error"))
    info = next(w for w in queue.workers() if w.worker_id == "bad")
    assert info.quarantined
    assert queue.stats["workers_quarantined"] == 1
    assert queue.lease("bad") == []
    assert queue.heartbeat("bad")["quarantined"] is True
    # a healthy worker can still drain the whole campaign
    remaining = queue.lease("good", max_jobs=10)
    assert len(remaining) == 4
    for job in remaining:
        queue.complete("good", record_for(job))
    assert queue.finished()


def test_release_requeues_leases():
    queue = LeaseQueue(make_jobs(2), lease_timeout_s=30, clock=FakeClock())
    queue.lease("w1", max_jobs=2)
    assert queue.release("w1") == 2
    assert queue.stats["workers_left"] == 1
    assert len(queue.lease("w2", max_jobs=2)) == 2


def test_close_stops_granting():
    queue = LeaseQueue(make_jobs(2), clock=FakeClock())
    queue.close()
    assert queue.state == "done"
    assert queue.lease("w1") == []


def test_active_workers_horizon():
    clock = FakeClock()
    queue = LeaseQueue(make_jobs(1), clock=clock)
    queue.register("w1")
    clock.advance(5)
    queue.register("w2")
    assert queue.active_workers(horizon_s=10) == 2
    assert queue.active_workers(horizon_s=3) == 1
    clock.advance(20)
    assert queue.active_workers(horizon_s=10) == 0


def test_counts_snapshot_and_validation():
    queue = LeaseQueue(make_jobs(3), clock=FakeClock())
    queue.lease("w1")
    counts = queue.counts()
    assert counts["total"] == 3 and counts["pending"] == 2
    assert counts["leased"] == 1 and counts["done"] == 0
    assert counts["state"] == "active"
    assert set(counts["stats"]) == set(STAT_KEYS)
    with pytest.raises(ValueError):
        LeaseQueue(make_jobs(1), lease_timeout_s=0)
    with pytest.raises(ValueError):
        LeaseQueue(make_jobs(1), max_attempts=0)
    with pytest.raises(ValueError):
        LeaseQueue(make_jobs(1), quarantine_strikes=0)


# --------------------------------------------------------------------- #
# property: lease expiry + re-execution never duplicates or loses records


@settings(max_examples=60, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=6),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["lease", "ok", "err", "expire", "heartbeat"]),
            st.integers(min_value=0, max_value=2),
        ),
        max_size=40,
    ),
)
def test_property_every_cell_exactly_once(n_jobs, ops):
    """Any interleaving of lease/complete/expiry converges to exactly one
    store record per job — no duplicates, no missing cells."""
    clock = FakeClock()
    jobs = make_jobs(n_jobs)
    by_hash = {j.content_hash: j for j in jobs}
    queue = LeaseQueue(jobs, lease_timeout_s=10, max_attempts=3,
                       quarantine_strikes=4, clock=clock)
    held: dict[str, list] = defaultdict(list)
    drained: list[dict] = []
    for op, widx in ops:
        worker = f"w{widx}"
        if op == "lease":
            held[worker].extend(queue.lease(worker))
        elif op in ("ok", "err"):
            if held[worker]:
                job = held[worker].pop(0)
                status = "ok" if op == "ok" else "error"
                queue.complete(worker, record_for(job, status=status))
        elif op == "expire":
            clock.advance(11)
            queue.expire()
        elif op == "heartbeat":
            queue.heartbeat(worker)
        drained.extend(queue.drain_done())
    # deterministic cleanup: a fresh worker finishes whatever is left
    rounds = 0
    while not queue.finished():
        rounds += 1
        assert rounds < 10 * n_jobs + 10, "queue failed to converge"
        clock.advance(11)
        queue.expire()
        for job in queue.lease("finisher", max_jobs=n_jobs):
            queue.complete("finisher", record_for(job))
        drained.extend(queue.drain_done())
    drained.extend(queue.drain_done())
    hashes = [r["job_hash"] for r in drained]
    assert sorted(hashes) == sorted(by_hash), (
        "drained records must cover every job exactly once")
    assert queue.counts()["done"] == n_jobs


# --------------------------------------------------------------------- #
# CampaignService protocol (transport-free)


def make_service(n_jobs: int = 2, injector_spec: str = "",
                 **queue_kwargs) -> tuple[CampaignService, list[Job]]:
    jobs = make_jobs(n_jobs)
    queue_kwargs.setdefault("clock", FakeClock())
    queue = LeaseQueue(jobs, **queue_kwargs)
    service = CampaignService(queue, injector=faults.FaultInjector(injector_spec))
    return service, jobs


def test_service_status_endpoint():
    service, _ = make_service(3)
    status, body = service.handle("GET", "/status", {})
    assert status == 200
    assert body["total"] == 3 and body["state"] == "active"


def test_service_rejects_bad_requests():
    service, _ = make_service()
    assert service.handle("GET", "/lease", {})[0] == 405
    assert service.handle("POST", "/nope", {"worker_id": "w"})[0] == 404
    assert service.handle("POST", "/lease", {})[0] == 400  # no worker_id
    status, body = service.handle("POST", "/complete", {"worker_id": "w"})
    assert status == 400 and "record" in body["error"]


def test_service_join_lease_complete_roundtrip():
    service, jobs = make_service(1, lease_timeout_s=12)
    status, joined = service.handle(
        "POST", "/join", {"worker_id": "w1", "host": "h", "pid": 1})
    assert status == 200 and joined["ok"]
    assert joined["lease_timeout_s"] == 12
    assert joined["heartbeat_s"] == pytest.approx(4.0)
    assert isinstance(joined["obs"], dict)
    status, leased = service.handle(
        "POST", "/lease", {"worker_id": "w1", "max_jobs": 1})
    assert status == 200 and len(leased["jobs"]) == 1
    assert leased["jobs"][0]["workload"] == "NN"
    status, hb = service.handle("POST", "/heartbeat", {"worker_id": "w1"})
    assert status == 200 and hb["renewed"] == 1
    status, ack = service.handle("POST", "/complete", {
        "worker_id": "w1", "record": record_for(jobs[0])})
    assert status == 200 and ack["accepted"] and ack["final"]
    assert ack["state"] == "done"
    status, bye = service.handle("POST", "/leave", {"worker_id": "w1"})
    assert status == 200 and bye["ok"]


def test_service_drop_response_fault_then_idempotent_retry():
    service, jobs = make_service(1, injector_spec="drop-response:1")
    service.handle("POST", "/lease", {"worker_id": "w1"})
    record = record_for(jobs[0])
    status, body = service.handle(
        "POST", "/complete", {"worker_id": "w1", "record": record})
    assert status == 503 and "drop-response" in body["error"]
    # the worker retries the identical request; it must succeed and the
    # record must land exactly once
    status, ack = service.handle(
        "POST", "/complete", {"worker_id": "w1", "record": record})
    assert status == 200 and ack["accepted"]
    assert service.queue.stats["completions"] == 1
    assert service.queue.stats["duplicates"] == 0
