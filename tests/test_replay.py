"""Equivalence suite for the vectorized trace-replay engine.

The engine (:mod:`repro.replay`) must reproduce the scalar simulator's
counters **bit-exactly**: every component model (L2, MDC, DRAM) is checked
against its scalar oracle on targeted patterns and random streams, the full
engine is property-tested against the scalar reference loop on random
traces (including tiny caches that force evictions and the MDC slow path),
and whole simulations are compared result-for-result over the paper's
workload x backend x MAG grid.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import Job
from repro.campaign.worker import simulate_job
from repro.core.config import SLCConfig, SLCVariant
from repro.core.metadata_cache import MetadataCache
from repro.core.slc import SLCCompressor
from repro.gpu.backends import NoCompressionBackend, SLCBackend
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.dram import DRAMChannel, GDDR5Timing
from repro.gpu.memory_controller import MemoryController
from repro.gpu.trace import AccessType, MemoryAccess, MemoryTrace
from repro.replay import (
    replay_dram,
    replay_l2,
    replay_mdc,
    replay_trace,
    replay_trace_scalar,
)
from repro.utils.blocks import array_to_blocks
from repro.workloads.base import Region
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

SCALE = 1.0 / 1024.0


# --------------------------------------------------------------------- #
# L2: array model vs. the scalar SetAssociativeCache oracle


def _cache_state(cache: SetAssociativeCache):
    return [list(s.items()) for s in cache._sets], vars(cache.stats).copy()


def _assert_l2_equivalent(addresses, is_write, counts, *, sets=4, ways=2):
    size = sets * ways * 128
    oracle = SetAssociativeCache(size, line_bytes=128, ways=ways)
    vector = SetAssociativeCache(size, line_bytes=128, ways=ways)
    oracle_miss = []
    for address, write, count in zip(addresses, is_write, counts):
        first_hit = oracle.access(address, is_write=write)
        oracle_miss.append(not first_hit)
        for _ in range(count - 1):
            oracle.access(address, is_write=write)
    vector_miss = replay_l2(
        vector,
        np.asarray(addresses),
        np.asarray(is_write),
        np.asarray(counts),
    )
    assert vector_miss.tolist() == oracle_miss
    assert _cache_state(vector) == _cache_state(oracle)


def test_l2_streaming_and_reuse():
    addresses = list(range(16)) + list(range(16))  # sweep twice
    _assert_l2_equivalent(addresses, [False] * 32, [1] * 32, sets=4, ways=2)


def test_l2_dirty_evictions_and_writebacks():
    # addresses 0, 4, 8, 12 all land in set 0 of a 4-set cache
    addresses = [0, 4, 0, 8, 12, 4, 0]
    is_write = [True, False, True, True, False, True, False]
    _assert_l2_equivalent(addresses, is_write, [1] * 7, sets=4, ways=2)


def test_l2_repeat_counts_are_hits():
    _assert_l2_equivalent([3, 3, 7], [False, True, False], [4, 2, 3])


def test_l2_replays_compose():
    oracle = SetAssociativeCache(1024, line_bytes=128, ways=2)
    vector = SetAssociativeCache(1024, line_bytes=128, ways=2)
    rng = np.random.default_rng(7)
    for _ in range(3):
        addresses = rng.integers(0, 24, size=50)
        writes = rng.random(50) < 0.3
        for address, write in zip(addresses.tolist(), writes.tolist()):
            oracle.access(address, is_write=write)
        replay_l2(vector, addresses, writes)
    assert _cache_state(vector) == _cache_state(oracle)


@given(
    accesses=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.booleans(),
            st.integers(min_value=1, max_value=3),
        ),
        max_size=80,
    ),
    ways=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_l2_property_random_streams(accesses, ways):
    addresses = [a for a, _, _ in accesses]
    is_write = [w for _, w, _ in accesses]
    counts = [c for _, _, c in accesses]
    _assert_l2_equivalent(addresses, is_write, counts, sets=2, ways=ways)


def test_l2_rejects_negative_addresses():
    with pytest.raises(ValueError):
        replay_l2(SetAssociativeCache(1024), np.array([-1]), np.array([False]))


# --------------------------------------------------------------------- #
# MDC: array model vs. the scalar MetadataCache oracle


def _mdc_state(mdc: MetadataCache):
    return list(mdc._entries.items()), vars(mdc.stats).copy()


def _assert_mdc_equivalent(events, *, capacity, preload=()):
    oracle = MetadataCache(capacity_entries=capacity)
    vector = MetadataCache(capacity_entries=capacity)
    for address, value in preload:
        oracle.update(address, value)
        vector.update(address, value)
    oracle_hits = []
    for address, lookup, value in events:
        hit = oracle.lookup(address) is not None if lookup else False
        oracle_hits.append(hit)
        oracle.update(address, value)
    vector_hits = replay_mdc(
        vector,
        np.array([a for a, _, _ in events], dtype=np.int64),
        np.array([l for _, l, _ in events], dtype=np.bool_),
        np.array([v for _, _, v in events], dtype=np.int64),
    )
    assert vector_hits.tolist() == oracle_hits
    assert _mdc_state(vector) == _mdc_state(oracle)


def test_mdc_fast_path_no_evictions():
    events = [(1, True, 2), (2, False, 3), (1, True, 2), (3, True, 4), (2, True, 3)]
    _assert_mdc_equivalent(events, capacity=8, preload=[(3, 1)])


def test_mdc_slow_path_evictions():
    # capacity 2 with 4 distinct addresses: forces LRU evictions
    events = [(1, True, 1), (2, False, 2), (3, True, 3), (1, True, 1), (4, True, 4)]
    _assert_mdc_equivalent(events, capacity=2, preload=[(9, 2)])


@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.booleans(),
            st.integers(min_value=1, max_value=4),
        ),
        max_size=60,
    ),
    capacity=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_mdc_property_random_streams(events, capacity):
    _assert_mdc_equivalent(events, capacity=capacity, preload=[(100, 1), (101, 2)])


# --------------------------------------------------------------------- #
# DRAM: batched row scan vs. per-request service() (the edge cases the
# vectorized scan must honor: reset_rows between kernels, bank-conflict
# row thrash, open-row state carried across scans)


def _dram_state(channel: DRAMChannel):
    return dict(channel._open_rows), vars(channel.stats).copy()


def _assert_dram_equivalent(byte_addresses, bursts, *, channels=None, timing=None):
    oracle, vector = channels if channels else (
        DRAMChannel(timing=timing),
        DRAMChannel(timing=timing),
    )
    for address, burst in zip(byte_addresses, bursts):
        oracle.service(address, burst)
    replay_dram(vector, np.asarray(byte_addresses), np.asarray(bursts))
    assert _dram_state(vector) == _dram_state(oracle)


def test_dram_streaming_row_hits():
    addresses = [i * 128 for i in range(64)]
    _assert_dram_equivalent(addresses, [4] * 64)


def test_dram_bank_conflict_row_thrash():
    # Alternate between two rows that map to the same bank: every request
    # closes the other one's row, so the scan must count all misses and
    # charge precharge + activate on each.
    timing = GDDR5Timing()
    stride = timing.row_bytes * timing.num_banks  # same bank, next row
    addresses = [0, stride] * 32
    _assert_dram_equivalent(addresses, [2] * 64, timing=timing)


def test_dram_reset_rows_between_kernels():
    oracle = DRAMChannel()
    vector = DRAMChannel()
    addresses = [i * 128 for i in range(32)]
    _assert_dram_equivalent(addresses, [4] * 32, channels=(oracle, vector))
    first_kernel_misses = vector.stats.row_misses
    assert first_kernel_misses > 0
    oracle.reset_rows()
    vector.reset_rows()
    # Second kernel re-touches the same rows: all banks are precharged, so
    # the first request per bank must be a row miss again, with no
    # precharge charge.
    _assert_dram_equivalent(addresses, [1] * 32, channels=(oracle, vector))
    assert vector.stats.row_misses == 2 * first_kernel_misses


def test_dram_open_row_state_carries_across_scans():
    oracle = DRAMChannel()
    vector = DRAMChannel()
    addresses = [i * 128 for i in range(16)]
    _assert_dram_equivalent(addresses, [4] * 16, channels=(oracle, vector))
    # Without a reset, a second scan over the same addresses starts on the
    # open rows and must see row hits where the scalar model does.
    _assert_dram_equivalent(addresses, [4] * 16, channels=(oracle, vector))


def test_dram_rejects_zero_bursts():
    with pytest.raises(ValueError):
        replay_dram(DRAMChannel(), np.array([0]), np.array([0]))


@given(
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=1, max_value=4),
        ),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_dram_property_random_streams(requests):
    timing = GDDR5Timing(num_banks=2, row_bytes=256)
    addresses = [a * 128 for a, _ in requests]
    bursts = [b for _, b in requests]
    _assert_dram_equivalent(addresses, bursts, timing=timing)


# --------------------------------------------------------------------- #
# MDC-miss accounting on the controller miss path


def test_mdc_miss_fetches_worst_case_and_counts_extra_bursts():
    backend = NoCompressionBackend()

    class OneBurstBackend(NoCompressionBackend):
        def store(self, block, approximable=True):
            stored = super().store(block, approximable=approximable)
            return type(stored)(
                bursts=1, stored_bits=stored.stored_bits, data=stored.data
            )

    controller = MemoryController(0, OneBurstBackend(), mdc_entries=1)
    controller.store_block(0, bytes(128), count_traffic=False)
    controller.store_block(1, bytes(128), count_traffic=False)  # evicts 0's entry
    controller.read_block(0)  # MDC miss: fetch worst case (4), actual is 1
    assert controller.stats.read_bursts == 4
    assert controller.stats.mdc_extra_bursts == 3
    controller.read_block(0)  # entry refilled: fetch the actual single burst
    assert controller.stats.read_bursts == 5
    assert controller.stats.mdc_extra_bursts == 3


# --------------------------------------------------------------------- #
# full engine vs. the scalar reference loop (random traces, tiny caches)


def _make_state(seed: int, backend_kind: str, mdc_entries: int):
    """One complete replay context: regions, trained backend, controllers."""
    rng = np.random.default_rng(seed)
    arrays = {
        "inp": (rng.random(160) * 40).astype(np.float32),
        "out": np.zeros(96, dtype=np.float32),
    }
    regions = {
        "inp": Region(name="inp", array=arrays["inp"], approximable=True),
        "out": Region(name="out", array=arrays["out"], approximable=False, is_output=True),
    }
    region_blocks = {name: array_to_blocks(r.array, 128) for name, r in regions.items()}
    base_addresses, base = {}, 0
    for name in regions:
        base_addresses[name] = base
        base += len(region_blocks[name])

    if backend_kind == "slc":
        backend = SLCBackend(SLCCompressor(SLCConfig(variant=SLCVariant.OPT)))
        backend.train(region_blocks["inp"])
    else:
        backend = NoCompressionBackend()
    controllers = [
        MemoryController(i, backend, mdc_entries=mdc_entries) for i in range(2)
    ]
    # host-to-device copy of the input region (not charged)
    for index, block in enumerate(region_blocks["inp"]):
        address = base_addresses["inp"] + index
        controllers[(address // 2) % 2].store_block(
            address, block, approximable=True, count_traffic=False
        )
    l2 = SetAssociativeCache(2 * 2 * 128, line_bytes=128, ways=2)  # 2 sets, 2 ways
    return regions, region_blocks, base_addresses, l2, controllers


def _controller_state(controller: MemoryController):
    return (
        vars(controller.stats).copy(),
        _mdc_state(controller.mdc),
        _dram_state(controller.channel),
        {a: (s.bursts, s.stored_bits, s.data, s.lossy) for a, s in controller._storage.items()},
    )


def _run_both(trace: MemoryTrace, backend_kind: str, seed: int, mdc_entries: int):
    results = []
    for engine in (replay_trace_scalar, replay_trace):
        regions, blocks, bases, l2, controllers = _make_state(
            seed, backend_kind, mdc_entries
        )
        engine(
            trace,
            all_regions=regions,
            region_blocks=blocks,
            base_addresses=bases,
            l2=l2,
            controllers=controllers,
            interleave_blocks=2,
        )
        state = (
            _cache_state(l2),
            [_controller_state(c) for c in controllers],
        )
        if backend_kind == "slc":
            state += (
                controllers[0].backend.total_blocks,
                controllers[0].backend.lossy_blocks,
                controllers[0].backend.total_overshoot_bits,
            )
        results.append(state)
    scalar_state, vector_state = results
    assert vector_state == scalar_state


trace_entries = st.lists(
    st.tuples(
        st.sampled_from(["inp", "out"]),
        st.integers(min_value=0, max_value=2),
        st.booleans(),
        st.integers(min_value=1, max_value=3),
    ),
    max_size=40,
)


@given(entries=trace_entries, backend_kind=st.sampled_from(["none", "slc"]))
@settings(max_examples=40, deadline=None)
def test_engine_property_random_traces(entries, backend_kind):
    trace = MemoryTrace()
    for region, block, write, count in entries:
        trace.append(
            MemoryAccess(
                region=region,
                block_index=block,
                access_type=AccessType.WRITE if write else AccessType.READ,
                count=count,
            )
        )
    # mdc_entries=4 forces the exact slow path + LRU evictions in the MDC
    _run_both(trace, backend_kind, seed=11, mdc_entries=4)


def test_engine_streamed_trace_matches_scalar():
    trace = MemoryTrace()
    trace.add_stream("inp", 3, AccessType.READ, passes=2)
    trace.add_stream("out", 2, AccessType.WRITE)
    trace.add_stream("inp", 3, AccessType.READ, stride=2)
    _run_both(trace, "slc", seed=3, mdc_entries=8192)


def test_engine_empty_trace_is_a_no_op():
    _run_both(MemoryTrace(), "none", seed=5, mdc_entries=8)


# --------------------------------------------------------------------- #
# whole-simulation equivalence over the paper grid


def _paired_results(job: Job):
    scalar = simulate_job(job, replay_mode="scalar")
    vector = simulate_job(job, replay_mode="vectorized")
    return scalar.to_dict(), vector.to_dict()


@pytest.mark.parametrize("workload", PAPER_WORKLOAD_ORDER)
@pytest.mark.parametrize("mag", [16, 32, 64])
@pytest.mark.parametrize("scheme", ["E2MC", "TSLC-OPT"])
def test_simulation_equivalence_grid(workload, mag, scheme):
    job = Job(
        workload=workload,
        scheme=scheme,
        scale=SCALE,
        seed=2019,
        mag_bytes=mag,
        lossy_threshold_bytes=max(1, mag // 2),
        compute_error=False,
    )
    scalar, vector = _paired_results(job)
    assert vector == scalar


@pytest.mark.parametrize("scheme", ["TSLC-SIMP", "TSLC-PRED"])
def test_simulation_equivalence_other_variants(scheme):
    job = Job(workload="FWT", scheme=scheme, scale=SCALE, seed=2019, compute_error=False)
    scalar, vector = _paired_results(job)
    assert vector == scalar


@pytest.mark.parametrize("workload", ["NN", "TP"])
def test_simulation_equivalence_with_error(workload):
    """Degraded inputs (and therefore the application error) match too."""
    job = Job(workload=workload, scheme="TSLC-OPT", scale=SCALE, seed=2019)
    scalar, vector = _paired_results(job)
    assert vector == scalar
    assert vector["error_percent"] == scalar["error_percent"]


def test_simulation_equivalence_uncompressed_backend():
    from repro.gpu.simulator import GPUSimulator
    from repro.workloads.registry import get_workload

    results = {}
    for mode in ("scalar", "vectorized"):
        simulator = GPUSimulator(replay_mode=mode)
        results[mode] = simulator.run(
            get_workload("TP", scale=SCALE), NoCompressionBackend(), compute_error=False
        )
    assert results["vectorized"].to_dict() == results["scalar"].to_dict()


def test_replay_mode_validation():
    from repro.gpu.simulator import GPUSimulator

    with pytest.raises(ValueError):
        GPUSimulator(replay_mode="turbo")
