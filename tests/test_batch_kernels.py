"""Scalar-vs-batch equivalence suite for the vectorized analysis kernels.

The scalar paths (`SLCCompressor.analyze`, `AdderTree.select_subblock`,
`SymbolModel.code_length`) are the reference implementations; every batched
kernel in :mod:`repro.kernels` must reproduce them bit-exactly — identical
modes, stored bits, burst counts and truncation ranges — on random blocks and
on real workload regions, across MAGs, thresholds and all SLC variants.
"""

import numpy as np
import pytest

from repro.compression.e2mc import E2MCCompressor, SymbolModel
from repro.core.config import SLCConfig, SLCVariant
from repro.core.slc import SLCCompressor
from repro.core.tree import AdderTree
from repro.gpu.backends import LosslessBackend, SLCBackend
from repro.gpu.simulator import GPUSimulator
from repro.kernels import (
    BatchSymbolView,
    BatchTreePlan,
    CodeLengthLUT,
    select_subblocks,
)
from repro.utils.blocks import array_to_blocks, block_to_symbols
from repro.workloads.registry import get_workload

MAGS = [16, 32, 64]
VARIANTS = list(SLCVariant)


def _mixed_blocks(seed: int, n_values: int = 4096) -> list[bytes]:
    """Blocks with mixed compressibility: skewed symbols, zeros and noise."""
    rng = np.random.default_rng(seed)
    skewed = rng.integers(0, 8, n_values, dtype=np.uint16) * 257
    noise = rng.integers(0, 1 << 16, n_values, dtype=np.uint16)
    mask = rng.random(n_values)
    values = np.where(mask < 0.6, skewed, np.where(mask < 0.8, 0, noise))
    return array_to_blocks(values.astype("<u2"))


# --------------------------------------------------------------------- #
# BatchSymbolView


def test_symbol_view_matches_block_to_symbols():
    blocks = _mixed_blocks(seed=1)[:16]
    view = BatchSymbolView.from_blocks(blocks)
    assert view.n_blocks == 16
    assert view.symbols_per_block == 64
    for index, block in enumerate(blocks):
        assert view.symbols[index].tolist() == block_to_symbols(block)
        assert view.block_bytes(index) == block


def test_symbol_view_pads_trailing_partial_block():
    raw = b"\x01\x02" * 70  # 140 bytes -> 2 blocks, second zero-padded
    view = BatchSymbolView(raw, block_size_bytes=128)
    assert view.n_blocks == 2
    assert view.block_bytes(1) == raw[128:] + b"\x00" * 116


def test_symbol_view_rejects_bad_geometry():
    with pytest.raises(ValueError):
        BatchSymbolView.from_blocks([b"\x00" * 64], block_size_bytes=128)
    with pytest.raises(ValueError):
        BatchSymbolView(b"", block_size_bytes=128, symbol_bytes=3)


# --------------------------------------------------------------------- #
# CodeLengthLUT


def test_lut_matches_scalar_code_length():
    model = SymbolModel()
    model.fit(_mixed_blocks(seed=2))
    lut = CodeLengthLUT.from_model(model)
    # every tabled symbol plus a sample of untabled ones
    tabled = [s for s in model.code.lengths if s >= 0]
    probe = np.array(tabled + list(range(0, 1 << 16, 997)), dtype=np.int64)
    expected = [model.code_length(int(s)) for s in probe]
    assert lut.lengths(probe).tolist() == expected


def test_lut_untrained_is_raw_symbol_bits():
    model = SymbolModel()
    lut = CodeLengthLUT.from_model(model)
    assert not lut.trained
    assert lut.lengths(np.array([0, 7, 65535])).tolist() == [16, 16, 16]


def test_lut_rejects_wide_symbols():
    with pytest.raises(ValueError):
        CodeLengthLUT.from_model(SymbolModel(symbol_bytes=4))


def test_lut_cache_invalidated_on_retrain():
    model = SymbolModel()
    model.fit(_mixed_blocks(seed=3))
    first = model.code_length_table()
    assert model.code_length_table() is first  # cached
    model.fit(_mixed_blocks(seed=4))
    assert model.code_length_table() is not first


# --------------------------------------------------------------------- #
# vectorized training


def test_bincount_fit_matches_counter_fit():
    """np.bincount-based training yields the exact same code as Counter-based."""
    from collections import Counter

    blocks = _mixed_blocks(seed=5)
    fast = SymbolModel()
    fast.fit(blocks)  # bincount path (2-byte symbols)
    slow = SymbolModel()
    counts: Counter = Counter()
    for block in blocks:
        counts.update(block_to_symbols(block))
    slow.fit_counts(counts)
    assert fast.code.lengths == slow.code.lengths
    assert fast.code.codewords == slow.code.codewords


# --------------------------------------------------------------------- #
# vectorized adder tree


@pytest.mark.parametrize("extra_nodes", [None, {2: 8, 3: 4}, {1: 4, 2: 3}])
@pytest.mark.parametrize("max_symbols", [4, 16, None])
def test_select_subblocks_matches_adder_tree(extra_nodes, max_symbols):
    rng = np.random.default_rng(6)
    n_symbols = 64
    lengths = rng.integers(1, 40, size=(200, n_symbols), dtype=np.int64)
    required = rng.integers(1, 200, size=200, dtype=np.int64)
    plan = BatchTreePlan(n_symbols, extra_nodes=extra_nodes, max_symbols=max_symbols)
    batch = select_subblocks(lengths, required, plan)
    for i in range(len(lengths)):
        tree = AdderTree(lengths[i].tolist(), extra_nodes=extra_nodes)
        scalar = tree.select_subblock(int(required[i]), max_symbols=max_symbols)
        if scalar is None:
            assert not batch.found[i]
        else:
            assert batch.found[i]
            assert batch.level[i] == scalar.level
            assert batch.start_symbol[i] == scalar.start_symbol
            assert batch.symbol_count[i] == scalar.symbol_count
            assert batch.bits_removed[i] == scalar.bits_removed
            assert batch.used_extra_node[i] == scalar.used_extra_node


def test_select_subblocks_rejects_non_positive_required():
    plan = BatchTreePlan(64)
    with pytest.raises(ValueError):
        select_subblocks(np.ones((1, 64), dtype=np.int64), np.array([0]), plan)


# --------------------------------------------------------------------- #
# E2MC batch queries


def test_e2mc_batch_lengths_and_sizes_match_scalar():
    blocks = _mixed_blocks(seed=7)
    compressor = E2MCCompressor()
    compressor.train(blocks[:128])
    lengths = compressor.symbol_code_lengths_batch(blocks)
    sizes = compressor.compressed_size_bits_batch(blocks)
    for i, block in enumerate(blocks):
        assert lengths[i].tolist() == compressor.symbol_code_lengths(block)
        assert sizes[i] == compressor.compress(block).compressed_size_bits


def test_e2mc_batch_sizes_untrained_are_raw():
    blocks = _mixed_blocks(seed=8)[:4]
    compressor = E2MCCompressor()
    assert compressor.compressed_size_bits_batch(blocks).tolist() == [128 * 8] * 4


# --------------------------------------------------------------------- #
# SLC analyze vs analyze_batch — the headline equivalence


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.value)
@pytest.mark.parametrize("mag_bytes", MAGS)
def test_analyze_batch_equivalence_random_blocks(variant, mag_bytes):
    blocks = _mixed_blocks(seed=9)
    lossy_seen = False
    for threshold in sorted({0, mag_bytes // 4, mag_bytes // 2, mag_bytes}):
        config = SLCConfig(
            variant=variant, mag_bytes=mag_bytes, lossy_threshold_bytes=threshold
        )
        slc = SLCCompressor(config)
        slc.train(blocks[:256])
        scalar = [slc.analyze(block) for block in blocks]
        assert slc.analyze_batch(blocks) == scalar
        lossy_seen = lossy_seen or any(d.is_lossy for d in scalar)
    # lossy decisions must actually occur somewhere in the sweep for the
    # equivalence to mean anything (at wide MAGs most budgets already fit)
    if mag_bytes <= 32:
        assert lossy_seen


@pytest.mark.parametrize("workload_name", ["NN", "FWT", "SRAD1"])
def test_analyze_batch_equivalence_real_regions(workload_name):
    workload = get_workload(workload_name, scale=1.0 / 1024.0, seed=7)
    regions = workload.generate()
    config = SLCConfig(variant=SLCVariant.OPT)
    slc = SLCCompressor(config)
    all_blocks = [
        block
        for region in regions.values()
        for block in array_to_blocks(region.array)
    ]
    slc.train(all_blocks[: min(256, len(all_blocks))])
    for region in regions.values():
        blocks = array_to_blocks(region.array)
        scalar = [slc.analyze(block) for block in blocks]
        assert slc.analyze_batch(blocks) == scalar
        # a prebuilt view must give the same answer as a block list
        view = BatchSymbolView.from_array(region.array)
        assert slc.analyze_batch(view) == scalar


def test_analyze_batch_untrained_and_unapproximable():
    blocks = _mixed_blocks(seed=10)[:32]
    slc = SLCCompressor(SLCConfig())
    assert slc.analyze_batch(blocks) == [slc.analyze(b) for b in blocks]
    slc.train(blocks)
    assert slc.analyze_batch(blocks, approximable=False) == [
        slc.analyze(b, approximable=False) for b in blocks
    ]


def test_analyze_batch_empty():
    slc = SLCCompressor(SLCConfig())
    assert slc.analyze_batch([]) == []


# --------------------------------------------------------------------- #
# backend + simulator wiring


def test_slc_backend_store_batch_matches_scalar():
    blocks = _mixed_blocks(seed=11)
    config = SLCConfig(variant=SLCVariant.OPT)
    scalar_backend = SLCBackend(SLCCompressor(config))
    batch_backend = SLCBackend(SLCCompressor(config))
    scalar_backend.train(blocks[:256])
    batch_backend.train(blocks[:256])
    scalar_stored = [scalar_backend.store(b) for b in blocks]
    batch_stored = batch_backend.store_batch(blocks)
    assert batch_stored == scalar_stored
    assert batch_backend.total_blocks == scalar_backend.total_blocks
    assert batch_backend.lossy_blocks == scalar_backend.lossy_blocks
    assert batch_backend.total_overshoot_bits == scalar_backend.total_overshoot_bits


def test_lossless_backend_store_batch_matches_scalar():
    blocks = _mixed_blocks(seed=12)
    scalar_backend = LosslessBackend(E2MCCompressor())
    batch_backend = LosslessBackend(E2MCCompressor())
    scalar_backend.train(blocks[:256])
    batch_backend.train(blocks[:256])
    assert batch_backend.store_batch(blocks) == [
        scalar_backend.store(b) for b in blocks
    ]


@pytest.mark.parametrize("scheme", ["e2mc", "slc"])
def test_simulator_batch_store_identical_results(scheme):
    def build_backend():
        if scheme == "e2mc":
            return LosslessBackend(E2MCCompressor())
        return SLCBackend(SLCCompressor(SLCConfig(variant=SLCVariant.OPT)))

    def run(batch_store: bool):
        # a fresh workload per run: generate() advances the workload's rng
        workload = get_workload("NN", scale=1.0 / 1024.0, seed=3)
        return GPUSimulator(batch_store=batch_store).run(workload, build_backend())

    assert run(True).to_dict() == run(False).to_dict()
