"""The observability layer: tracing, metrics, trajectory gate, provenance."""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.campaign.cli import main as cli_main
from repro.campaign.executor import run_jobs
from repro.campaign.spec import Job
from repro.campaign.store import JobRecord
from repro.campaign.worker import execute_job
from repro.obs import metrics, tracing, trajectory


@pytest.fixture
def obs_off():
    """Guarantee clean, disabled observability state around a test."""
    tracing.disable()
    metrics.disable()
    metrics.enable_tracemalloc(False)
    tracing.drain()
    metrics.clear()
    yield
    tracing.disable()
    metrics.disable()
    metrics.enable_tracemalloc(False)
    tracing.drain()
    metrics.clear()


def _tiny_job(**overrides) -> Job:
    params = dict(
        workload="NN", scheme="TSLC-OPT", scale=0.002, seed=2019,
        compute_error=False,
    )
    params.update(overrides)
    return Job(**params)


# --------------------------------------------------------------------- #
# tracing


def test_span_disabled_is_shared_noop(obs_off):
    first = tracing.span("a")
    second = tracing.span("b", cat="x", detail=1)
    assert first is second  # the singleton null span: no allocation when off
    with first:
        pass
    assert tracing.collected() == []


def test_span_collects_and_records_parent(obs_off):
    tracing.enable()
    with tracing.span("outer", cat="test", depth=0):
        with tracing.span("inner", cat="test"):
            pass
    spans = tracing.drain()
    assert [s["name"] for s in spans] == ["inner", "outer"]  # exit order
    inner, outer = spans
    assert inner["args"]["parent"] == "outer"
    assert "parent" not in outer["args"]
    assert outer["args"]["depth"] == 0
    for s in spans:
        assert s["dur"] >= 1 and s["ts"] > 0 and s["pid"] > 0 and s["tid"] > 0


def test_mark_and_drain_partition_the_buffer(obs_off):
    tracing.enable()
    with tracing.span("before"):
        pass
    mark = tracing.mark()
    with tracing.span("after"):
        pass
    tail = tracing.drain(mark)
    assert [s["name"] for s in tail] == ["after"]
    assert [s["name"] for s in tracing.collected()] == ["before"]


def test_chrome_trace_format(obs_off, tmp_path):
    tracing.enable()
    with tracing.span("phase", cat="test", k=1):
        pass
    spans = tracing.drain()
    spans.append(dict(spans[0], pid=spans[0]["pid"] + 1))  # a "worker" span
    out = tmp_path / "trace.json"
    assert tracing.write_chrome_trace(out, spans) == 2
    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ms"
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(meta) == 2 and len(complete) == 2
    assert {e["args"]["name"] for e in meta} == {
        "repro (main)",
        f"repro worker {spans[0]['pid'] + 1}",
    }
    for e in complete:
        assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= e.keys()


def test_span_feeds_phase_metric_when_metrics_on(obs_off):
    tracing.enable()
    metrics.enable()
    with tracing.span("unit"):
        pass
    snap = metrics.snapshot()
    assert snap["values"]["phase.unit.wall_s"]["count"] == 1
    tracing.drain()


# --------------------------------------------------------------------- #
# metrics


def test_metrics_disabled_are_noops(obs_off):
    metrics.inc("c")
    metrics.observe("v", 1.0)
    assert metrics.snapshot() == {"counters": {}, "values": {}}


def test_metrics_counters_and_values(obs_off):
    metrics.enable()
    metrics.inc("blocks", 3)
    metrics.inc("blocks", 2)
    metrics.observe("rate", 0.25)
    metrics.observe("rate", 0.75)
    snap = metrics.snapshot()
    assert snap["counters"]["blocks"] == 5
    assert snap["values"]["rate"] == {
        "count": 2, "sum": 1.0, "min": 0.25, "max": 0.75,
    }
    metrics.clear()
    assert metrics.snapshot() == {"counters": {}, "values": {}}


def test_metrics_merge_and_format(obs_off):
    a = {"counters": {"n": 1}, "values": {"t": {"count": 1, "sum": 2.0,
                                                "min": 2.0, "max": 2.0}}}
    b = {"counters": {"n": 4, "m": 1}, "values": {"t": {"count": 1, "sum": 4.0,
                                                        "min": 4.0, "max": 4.0}}}
    merged = metrics.merge(a, b)
    assert merged["counters"] == {"n": 5, "m": 1}
    assert merged["values"]["t"] == {"count": 2, "sum": 6.0, "min": 2.0,
                                     "max": 4.0}
    text = metrics.format_metrics(merged)
    assert "n" in text and "mean 3" in text


# --------------------------------------------------------------------- #
# perf trajectory + the regression gate


def _snapshot(tmp_path, name="BENCH_0001.json", value=10.0, tolerance=0.35):
    snapshot = trajectory.make_snapshot(
        {"gm_speedup": trajectory.metric(value, unit="x"),
         "job_s": trajectory.metric(0.5, unit="s", higher_is_better=False,
                                    gate=False)},
        label=name.removesuffix(".json"),
        tolerance=tolerance,
    )
    trajectory.save_snapshot(tmp_path / name, snapshot)
    return snapshot


def test_trajectory_snapshot_ordering_and_next_path(tmp_path):
    _snapshot(tmp_path, "BENCH_0001.json")
    _snapshot(tmp_path, "BENCH_0003.json")
    (tmp_path / "BENCH_junk.json").write_text("{}")
    paths = trajectory.snapshot_paths(tmp_path)
    assert [p.name for p in paths] == ["BENCH_0001.json", "BENCH_0003.json"]
    latest_path, latest = trajectory.latest_snapshot(tmp_path)
    assert latest_path.name == "BENCH_0003.json"
    assert latest["label"] == "BENCH_0003"
    assert trajectory.next_snapshot_path(tmp_path).name == "BENCH_0004.json"


def test_trajectory_compare_passes_within_tolerance(tmp_path):
    baseline = _snapshot(tmp_path, value=10.0, tolerance=0.2)
    current = {"gm_speedup": trajectory.metric(8.5),
               "job_s": trajectory.metric(9.9, higher_is_better=False,
                                          gate=False),
               "unknown": trajectory.metric(1.0)}
    report = trajectory.compare(current, baseline)
    assert report.ok
    assert [name for name, *_ in report.passed] == ["gm_speedup"]
    # gate:false and baseline-missing metrics are informational, never failed
    assert {name for name, _ in report.informational} == {"job_s", "unknown"}


def test_trajectory_compare_fails_on_regression(tmp_path):
    baseline = _snapshot(tmp_path, value=10.0, tolerance=0.2)
    report = trajectory.compare(
        {"gm_speedup": trajectory.metric(7.9)}, baseline
    )
    assert not report.ok
    name, current, base, bound = report.regressions[0]
    assert (name, current, base, bound) == ("gm_speedup", 7.9, 10.0, 8.0)
    assert "REGRESSION gm_speedup" in report.format()


def test_trajectory_record_accumulates(tmp_path):
    path = tmp_path / "current.json"
    trajectory.record(path, "a", 1.0, unit="x")
    trajectory.record(path, "b", 0.5, unit="s", higher_is_better=False,
                      gate=False)
    trajectory.record(path, "a", 2.0, unit="x")  # overwrite, keep b
    data = trajectory.load_recorded(path)
    assert data["metrics"]["a"]["value"] == 2.0
    assert data["metrics"]["b"]["gate"] is False


def test_bench_check_cli_gate(tmp_path, capsys):
    """The CI gate demonstrably fails (exit 1) when the GM speedup drops."""
    _snapshot(tmp_path, value=10.0, tolerance=0.2)
    current = tmp_path / "current.json"
    trajectory.record(current, "gm_speedup", 9.5, unit="x")
    assert cli_main(["bench", "check", "--from", str(current),
                     "--dir", str(tmp_path)]) == 0
    assert "ok gm_speedup" in capsys.readouterr().out

    trajectory.record(current, "gm_speedup", 2.0, unit="x")
    assert cli_main(["bench", "check", "--from", str(current),
                     "--dir", str(tmp_path)]) == 1
    assert "REGRESSION gm_speedup" in capsys.readouterr().out

    empty = tmp_path / "empty"
    empty.mkdir()
    assert cli_main(["bench", "check", "--from", str(current),
                     "--dir", str(empty)]) == 2


def test_bench_snapshot_and_list_cli(tmp_path, capsys):
    current = tmp_path / "current.json"
    trajectory.record(current, "gm_speedup", 12.5, unit="x")
    assert cli_main(["bench", "snapshot", "--from", str(current),
                     "--dir", str(tmp_path)]) == 0
    written = tmp_path / "BENCH_0001.json"
    assert written.exists()
    doc = trajectory.load_snapshot(written)
    assert doc["label"] == "BENCH_0001"
    assert doc["metrics"]["gm_speedup"]["value"] == 12.5
    capsys.readouterr()
    assert cli_main(["bench", "list", "--dir", str(tmp_path)]) == 0
    assert "gm_speedup" in capsys.readouterr().out


def test_bench_snapshot_refuses_overwrite(tmp_path, capsys):
    """Snapshots are committed history: an existing BENCH file is never
    clobbered without --force, and omitting --out auto-picks the next
    free label."""
    current = tmp_path / "current.json"
    trajectory.record(current, "gm_speedup", 12.5, unit="x")
    existing = tmp_path / "BENCH_0001.json"
    assert cli_main(["bench", "snapshot", "--from", str(current),
                     "--dir", str(tmp_path)]) == 0
    assert existing.exists()

    # explicit --out onto the existing file: refused, file untouched
    before = existing.read_text()
    trajectory.record(current, "gm_speedup", 99.0, unit="x")
    assert cli_main(["bench", "snapshot", "--from", str(current),
                     "--dir", str(tmp_path), "--out", str(existing)]) == 2
    assert existing.read_text() == before

    # --force overwrites in place
    assert cli_main(["bench", "snapshot", "--from", str(current),
                     "--dir", str(tmp_path), "--out", str(existing),
                     "--force"]) == 0
    assert trajectory.load_snapshot(existing)["metrics"]["gm_speedup"]["value"] == 99.0

    # no --out: the next free label is picked, nothing overwritten
    capsys.readouterr()
    assert cli_main(["bench", "snapshot", "--from", str(current),
                     "--dir", str(tmp_path)]) == 0
    assert (tmp_path / "BENCH_0002.json").exists()


def test_bench_check_without_source_errors(tmp_path):
    _snapshot(tmp_path)
    assert cli_main(["bench", "check", "--dir", str(tmp_path)]) == 2


# --------------------------------------------------------------------- #
# provenance + worker/executor round trip


def test_job_record_from_dict_defaults_for_old_stores():
    job = _tiny_job()
    old = {  # a pre-observability JSONL line: no provenance/metrics/spans
        "job": job.to_dict(), "status": "error", "error": "boom",
        "elapsed_s": 1.0,
    }
    record = JobRecord.from_dict(old)
    assert record.provenance == {} and record.metrics == {} and record.spans == []
    # and emitting it back does not invent the new keys
    assert not {"provenance", "metrics", "spans"} & record.to_dict().keys()


def test_execute_job_provenance_always_present(obs_off):
    payload = execute_job(_tiny_job().to_dict())
    assert payload["status"] == "ok"
    prov = payload["provenance"]
    assert prov["pid"] > 0 and prov["hostname"]
    assert prov["started_at"].startswith("20")  # ISO-8601
    # observability off: no spans/metrics keys ride along
    assert "spans" not in payload and "metrics" not in payload


def test_execute_job_attaches_spans_and_metrics(obs_off):
    tracing.enable()
    metrics.enable()
    payload = execute_job(_tiny_job().to_dict())
    names = [s["name"] for s in payload["spans"]]
    assert any(n.startswith("job:") for n in names)
    assert any(n.startswith("sim.") for n in names)
    counters = payload["metrics"]["counters"]
    assert counters["sim.runs"] == 1
    assert counters["backend.blocks_compressed"] > 0
    assert payload["metrics"]["values"]["job.elapsed_s"]["count"] == 1
    # the job drained only its own spans and cleared its metrics snapshot
    assert tracing.collected() == []
    assert metrics.snapshot() == {"counters": {}, "values": {}}


def test_run_jobs_keeps_campaign_spans_out_of_job_records(obs_off):
    tracing.enable()
    outcome = run_jobs(None, [_tiny_job()], workers=1)
    record = next(iter(outcome.records.values()))
    job_span_names = {s["name"] for s in record.spans}
    assert not {"campaign.lookup", "campaign.execute"} & job_span_names
    buffer_names = {s["name"] for s in tracing.drain()}
    assert {"campaign.lookup", "campaign.execute"} <= buffer_names
    assert record.metrics == {}  # metrics were off


def test_run_jobs_metrics_aggregate(obs_off):
    metrics.enable()
    outcome = run_jobs(None, [_tiny_job()], workers=1)
    assert outcome.n_executed == 1
    snap = metrics.snapshot()
    assert snap["counters"]["campaign.jobs"] == 1
    assert snap["counters"]["campaign.executed"] == 1
    record = next(iter(outcome.records.values()))
    assert record.metrics["counters"]["sim.runs"] == 1
