"""Integration tests for distributed campaigns and executor robustness.

The loopback tests here run a real coordinator (``port=0`` to avoid
collisions) with workers either in threads (deterministic, fast) or as
subprocesses (when actual process death is the thing under test).  Fault
injection is armed through :mod:`repro.campaign.faults` — programmatically
for in-process sites, via ``REPRO_FAULT_SPEC`` for worker subprocesses.
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro.campaign.executor as executor_mod
from repro.campaign import (
    CampaignCoordinator,
    CampaignResult,
    CampaignSpec,
    CoordinatorClient,
    Job,
    ResultStore,
    faults,
    run_campaign,
    run_jobs,
    run_worker,
    serve_campaign,
)
from repro.campaign.cli import main as cli_main
from repro.campaign.queue import STAT_KEYS
from repro.campaign.remote import _Heartbeat
from repro.campaign.worker import execute_job as real_execute_job

#: 1/2048 scale: a NN cell simulates in well under a second
TINY_DIST = 1.0 / 2048.0

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _clean_faults():
    """No test leaks an armed fault injector into its neighbours."""
    faults.activate("")
    yield
    faults.activate("")


def dist_spec(schemes=("E2MC", "TSLC-OPT")) -> CampaignSpec:
    return CampaignSpec(workloads=("NN",), schemes=tuple(schemes),
                        scales=(TINY_DIST,), compute_error=False)


def worker_cmd(url: str, *extra: str) -> list[str]:
    # NOTE: top-level flags like -q must precede the subcommand
    return [sys.executable, "-m", "repro", "-q", "campaign", "worker",
            "--url", url, "--poll", "0.1", *extra]


def worker_env(**overrides: str) -> dict:
    import os
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    env.update(overrides)
    return env


# --------------------------------------------------------------------- #
# the marquee fault-injection test: SIGKILL a worker mid-job


def test_worker_sigkill_recovery_matches_inprocess(tmp_path):
    """A worker SIGKILLed mid-job must cost nothing: its lease expires, the
    job re-runs elsewhere, and the final store is drift-free against a
    single-process run of the same grid."""
    spec = dist_spec()
    store = ResultStore(tmp_path / "dist")
    coordinator = CampaignCoordinator(
        spec.expand(), spec=spec, store=store, port=0,
        lease_timeout_s=2.0, grace_s=120, fallback_workers=0, poll_s=0.05,
    )
    coordinator.start()
    doomed = subprocess.Popen(
        worker_cmd(coordinator.url),
        env=worker_env(**{faults.ENV_VAR: f"{faults.KILL_WORKER_MID_JOB}:1"}),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    # let the doomed worker grab (and die on) the first lease before the
    # clean worker joins, so the recovery path definitely exercises
    deadline = time.monotonic() + 30
    while coordinator.queue.stats["leases_granted"] < 1:
        assert time.monotonic() < deadline, "doomed worker never leased"
        time.sleep(0.02)
    clean = subprocess.Popen(
        worker_cmd(coordinator.url), env=worker_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    outcome = coordinator.serve()
    assert doomed.wait(timeout=30) == -signal.SIGKILL
    assert clean.wait(timeout=30) == 0

    assert outcome.n_missing == 0
    assert outcome.n_failed == 0
    assert not outcome.interrupted
    assert outcome.queue_stats["leases_expired"] >= 1
    assert outcome.queue_stats["retries"] >= 1

    ref_store = ResultStore(tmp_path / "ref")
    ref = run_campaign(spec, store=ref_store)
    assert ref.n_failed == 0
    assert cli_main(["campaign", "diff",
                     str(tmp_path / "dist"), str(tmp_path / "ref")]) == 0


# --------------------------------------------------------------------- #
# thread-based loopback (deterministic transports)


def test_thread_worker_completes_campaign_and_local_store_agrees(tmp_path):
    spec = dist_spec()
    store = ResultStore(tmp_path / "dist")
    coordinator = CampaignCoordinator(
        spec.expand(), spec=spec, store=store, port=0,
        lease_timeout_s=30, fallback_workers=0, poll_s=0.05,
    )
    coordinator.start()
    local = ResultStore(tmp_path / "worker-view")
    summaries: list = []
    thread = threading.Thread(
        target=lambda: summaries.append(
            run_worker(coordinator.url, worker_id="t1", store=local,
                       poll_s=0.05)),
        daemon=True,
    )
    thread.start()
    outcome = coordinator.serve()
    thread.join(timeout=30)
    assert not thread.is_alive()
    (summary,) = summaries
    assert summary.reason == "done"
    assert summary.executed == outcome.n_executed == 2
    assert outcome.n_missing == 0
    # the worker's local store must agree with the coordinator's on every
    # cell it holds (here: all of them, it was the only worker)
    assert cli_main(["campaign", "diff", "--allow-missing",
                     str(tmp_path / "worker-view"), str(tmp_path / "dist")]) == 0
    assert cli_main(["campaign", "diff",
                     str(tmp_path / "worker-view"), str(tmp_path / "dist")]) == 0


def test_drop_response_fault_is_retried_idempotently(tmp_path):
    """A lost /complete ack forces a client retry; the retry must land the
    record exactly once."""
    spec = dist_spec(schemes=("E2MC",))
    store = ResultStore(tmp_path / "dist")
    coordinator = CampaignCoordinator(
        spec.expand(), spec=spec, store=store, port=0,
        lease_timeout_s=30, fallback_workers=0, poll_s=0.05,
        injector=faults.FaultInjector(f"{faults.DROP_RESPONSE}:1"),
    )
    coordinator.start()
    client = CoordinatorClient(coordinator.url, backoff_s=0.01,
                               backoff_cap_s=0.05)
    summaries: list = []
    thread = threading.Thread(
        target=lambda: summaries.append(
            run_worker(coordinator.url, worker_id="t1", client=client,
                       poll_s=0.05)),
        daemon=True,
    )
    thread.start()
    outcome = coordinator.serve()
    thread.join(timeout=30)
    (summary,) = summaries
    assert outcome.n_missing == 0
    assert summary.executed == 1
    assert summary.transport_retries >= 1
    assert outcome.queue_stats["completions"] == 1
    assert outcome.queue_stats["duplicates"] == 0


def test_fallback_to_inprocess_when_no_workers_join(tmp_path):
    spec = dist_spec(schemes=("E2MC",))
    store = ResultStore(tmp_path / "dist")
    outcome = serve_campaign(spec, store=store, port=0, grace_s=0.3,
                             fallback_workers=1, poll_s=0.05)
    assert outcome.n_missing == 0
    assert outcome.n_failed == 0
    assert outcome.queue_stats["leases_granted"] == 0  # nobody ever joined


def test_worker_exits_cleanly_when_coordinator_unreachable():
    client = CoordinatorClient("http://127.0.0.1:9", timeout_s=0.3,
                               max_tries=2, backoff_s=0.01)
    summary = run_worker("http://127.0.0.1:9", worker_id="w", client=client)
    assert summary.reason == "unreachable"
    assert summary.executed == 0


def test_worker_max_idle_exits(tmp_path):
    """A worker pointed at a coordinator with nothing to lease winds down."""
    spec = dist_spec(schemes=("E2MC",))
    store = ResultStore(tmp_path / "dist")
    coordinator = CampaignCoordinator(
        spec.expand(), spec=spec, store=store, port=0,
        lease_timeout_s=30, fallback_workers=0, poll_s=0.05,
    )
    coordinator.start()
    try:
        # first worker takes the only job but never completes it; second
        # worker finds the queue empty and gives up after max_idle_s
        assert len(coordinator.queue.lease("hog")) == 1
        summary = run_worker(coordinator.url, worker_id="idler",
                             poll_s=0.05, max_idle_s=0.2)
        assert summary.reason == "idle"
        assert summary.executed == 0
    finally:
        coordinator.stop()


# --------------------------------------------------------------------- #
# heartbeat behaviour (unit-level, fake client)


class _RecordingClient:
    def __init__(self, reply: dict | None = None) -> None:
        self.calls: list[str] = []
        self.reply = reply or {"ok": True, "quarantined": False}

    def call(self, path: str, payload: dict | None = None,
             max_tries: int | None = None) -> dict:
        self.calls.append(path)
        return self.reply


def test_heartbeat_stall_fault_goes_permanently_silent():
    faults.activate(f"{faults.STALL_HEARTBEAT}:1")
    client = _RecordingClient()
    heartbeat = _Heartbeat(client, "w1", period_s=0.05)
    heartbeat.active.set()
    heartbeat.start()
    time.sleep(0.4)
    heartbeat.stop()
    heartbeat.join(timeout=2)
    assert heartbeat.stalled is True
    assert client.calls == []  # stalled before the first renewal went out


def test_heartbeat_renews_and_detects_quarantine():
    client = _RecordingClient(reply={"ok": False, "quarantined": True})
    heartbeat = _Heartbeat(client, "w1", period_s=0.05)
    heartbeat.active.set()
    heartbeat.start()
    deadline = time.monotonic() + 5
    while not heartbeat.quarantined and time.monotonic() < deadline:
        time.sleep(0.02)
    heartbeat.stop()
    heartbeat.join(timeout=2)
    assert heartbeat.quarantined is True
    assert client.calls and all(path == "/heartbeat" for path in client.calls)


# --------------------------------------------------------------------- #
# job_timeout (satellite): a wedged future becomes a captured error


def _wedge(job_dict: dict) -> dict:
    time.sleep(60)
    raise AssertionError("unreachable")


def _wedge_odd_seeds(job_dict: dict) -> dict:
    if job_dict.get("seed", 0) % 2:
        time.sleep(60)
    return real_execute_job(job_dict)


def test_job_timeout_converts_wedged_jobs_to_error_records(monkeypatch):
    monkeypatch.setattr(executor_mod, "execute_job", _wedge)
    jobs = [Job(workload="NN", scheme="E2MC", scale=TINY_DIST,
                compute_error=False, seed=i) for i in range(2)]
    start = time.monotonic()
    outcome = run_jobs(None, jobs, workers=2, job_timeout=0.5)
    assert time.monotonic() - start < 30  # did not wait out the sleep(60)
    assert outcome.n_missing == 0
    assert outcome.n_failed == 2
    for _, record in outcome.iter_records():
        assert record.provenance.get("timed_out") is True
        assert "job_timeout" in (record.error or "")


def test_job_timeout_spares_healthy_jobs(monkeypatch, tmp_path):
    monkeypatch.setattr(executor_mod, "execute_job", _wedge_odd_seeds)
    store = ResultStore(tmp_path / "camp")
    jobs = [Job(workload="NN", scheme="E2MC", scale=TINY_DIST,
                compute_error=False, seed=i) for i in range(2)]
    outcome = run_jobs(None, jobs, store=store, workers=2, job_timeout=2.0)
    by_seed = {job.seed: record for job, record in outcome.iter_records()}
    assert by_seed[0].ok
    assert not by_seed[1].ok and by_seed[1].provenance.get("timed_out")
    # failed cells are not served from cache: a re-run retries them
    monkeypatch.setattr(executor_mod, "execute_job", real_execute_job)
    retried = run_jobs(None, jobs, store=store, workers=1)
    assert retried.n_cached == 1 and retried.n_executed == 1
    assert retried.n_failed == 0


def test_job_timeout_noop_for_fast_jobs():
    jobs = [Job(workload="NN", scheme="E2MC", scale=TINY_DIST,
                compute_error=False, seed=i) for i in range(2)]
    outcome = run_jobs(None, jobs, workers=2, job_timeout=120.0)
    assert outcome.n_failed == 0 and outcome.n_missing == 0


# --------------------------------------------------------------------- #
# graceful Ctrl-C (satellite)


def test_keyboard_interrupt_keeps_finished_cells_and_resumes(monkeypatch,
                                                             tmp_path):
    calls = {"n": 0}

    def interrupt_on_second(job_dict: dict) -> dict:
        calls["n"] += 1
        if calls["n"] == 2:
            raise KeyboardInterrupt
        return real_execute_job(job_dict)

    monkeypatch.setattr(executor_mod, "execute_job", interrupt_on_second)
    store = ResultStore(tmp_path / "camp")
    jobs = [Job(workload="NN", scheme="E2MC", scale=TINY_DIST,
                compute_error=False, seed=i) for i in range(3)]
    outcome = run_jobs(None, jobs, store=store, workers=1)
    assert outcome.interrupted is True
    assert len(outcome.records) == 1
    assert outcome.n_missing == 2
    # everything that finished is persisted: the re-run serves it cached
    monkeypatch.setattr(executor_mod, "execute_job", real_execute_job)
    resumed = run_jobs(None, jobs, store=store, workers=1)
    assert not resumed.interrupted
    assert resumed.n_cached == 1 and resumed.n_missing == 0


def test_cli_summary_interrupted_prints_resume_hint(tmp_path, capsys):
    from repro.campaign.cli import _summarize

    spec = dist_spec()
    store = ResultStore(tmp_path / "camp")
    outcome = CampaignResult(spec=spec, jobs=spec.expand())
    outcome.interrupted = True
    code = _summarize(outcome, spec, store, "3s", argparse.Namespace())
    assert code == 130
    out = capsys.readouterr().out
    assert "interrupted" in out
    assert "re-run the same command to resume" in out
    assert str(store.directory) in out


def test_cli_summary_distributed_line(tmp_path, capsys):
    from repro.campaign.cli import _summarize

    spec = dist_spec()
    store = ResultStore(tmp_path / "camp")
    outcome = CampaignResult(spec=spec, jobs=[])
    stats = dict.fromkeys(STAT_KEYS, 0)
    stats.update(leases_granted=3, leases_expired=1, retries=1,
                 workers_joined=2)
    outcome.queue_stats = stats
    code = _summarize(outcome, spec, store, "3s", argparse.Namespace())
    assert code == 0
    out = capsys.readouterr().out
    assert "distributed: 3 leases granted, 1 expired, 1 re-leased" in out
    assert "2 workers (0 quarantined)" in out
