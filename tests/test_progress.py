"""ProgressReporter edge cases: cached-only, failure-only, clock formatting.

The happy path (rolling ETA over a mixed run) lives in ``test_campaign``;
these tests pin the corners with an injected stream and an injected clock
so the suffix formatting is asserted exactly.
"""

from __future__ import annotations

import io

import pytest

from repro.campaign.cli import ProgressReporter, _format_duration
from repro.campaign.spec import Job
from repro.campaign.store import JobRecord


def _job() -> Job:
    return Job(workload="NN", scheme="E2MC", compute_error=False)


class FakeClock:
    """Monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def reporter_setup():
    stream = io.StringIO()
    clock = FakeClock()
    reporter = ProgressReporter(workers=1, stream=stream, clock=clock)
    return reporter, stream, clock


def test_format_duration_brackets():
    assert _format_duration(0.4) == "0s"
    assert _format_duration(59.4) == "59s"
    assert _format_duration(60) == "1:00"
    assert _format_duration(61) == "1:01"
    assert _format_duration(3599) == "59:59"
    assert _format_duration(3600) == "1:00:00"
    assert _format_duration(7322) == "2:02:02"


def test_cached_only_campaign_prints_no_mean_or_eta(reporter_setup):
    reporter, stream, clock = reporter_setup
    clock.now += 2.0
    for done in (1, 2, 3):
        reporter(JobRecord(job=_job(), status="ok", cached=True), done, 3)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 3
    for line in lines:
        assert "avg" not in line and "ETA" not in line
    # the suffix carries the cache count and the injected wall time, exactly
    assert lines[-1] == f"[3/3] {_job().label()}: cached (3 cached, 2s elapsed)"


def test_failure_only_run_prints_no_eta_and_counts_nothing(reporter_setup):
    reporter, stream, clock = reporter_setup
    clock.now += 61.0
    reporter(JobRecord(job=_job(), status="error", elapsed_s=0.01), 1, 2)
    reporter(JobRecord(job=_job(), status="error", elapsed_s=0.02), 2, 2)
    lines = stream.getvalue().splitlines()
    assert all("FAILED" in line for line in lines)
    # failures never feed the rolling mean, so no ETA even with jobs left
    assert all("avg" not in line and "ETA" not in line for line in lines)
    assert reporter.n_cached == 0
    assert lines[-1].endswith("FAILED (1:01 elapsed)")


def test_mixed_cached_and_executed_suffix_order(reporter_setup):
    reporter, stream, clock = reporter_setup
    reporter(JobRecord(job=_job(), status="ok", cached=True), 1, 3)
    clock.now += 10.0
    reporter(JobRecord(job=_job(), status="ok", elapsed_s=4.0), 2, 3)
    line = stream.getvalue().splitlines()[-1]
    # suffix order: mean/ETA, cached count, wall time
    assert line.endswith("ran in 4.00s (avg 4.00s/job, ETA 4s, 1 cached, 10s elapsed)")


def test_wall_time_tracks_injected_clock(reporter_setup):
    reporter, _, clock = reporter_setup
    assert reporter.wall_time_s == 0.0
    clock.now += 42.5
    assert reporter.wall_time_s == 42.5


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        ProgressReporter(window=0)


def test_eta_divides_by_workers():
    stream = io.StringIO()
    reporter = ProgressReporter(workers=4, stream=stream, clock=FakeClock())
    for done in (1, 2):
        reporter(JobRecord(job=_job(), status="ok", elapsed_s=8.0), done, 10)
    # 8 jobs left at 8 s mean over 4 workers -> 16 s
    assert "ETA 16s" in stream.getvalue().splitlines()[-1]


def test_default_stream_routes_through_repro_logger(capsys):
    from repro.obs.log import setup_logging

    setup_logging("info")
    reporter = ProgressReporter(clock=FakeClock())
    reporter(JobRecord(job=_job(), status="ok", elapsed_s=1.0), 1, 1)
    assert capsys.readouterr().err.startswith("[1/1]")
    # -q raises the level to warning, which mutes progress lines
    setup_logging("warning")
    reporter(JobRecord(job=_job(), status="ok", elapsed_s=1.0), 1, 1)
    assert capsys.readouterr().err == ""
    setup_logging("info")
