"""Tests for the canonical Huffman code used by E2MC."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.huffman import (
    HuffmanCode,
    build_huffman_code,
    canonical_codewords,
    kraft_sum,
)


def _is_prefix_free(code: HuffmanCode) -> bool:
    items = [(format(code.codewords[s], f"0{code.lengths[s]}b")) for s in code.codewords]
    for i, a in enumerate(items):
        for j, b in enumerate(items):
            if i != j and b.startswith(a):
                return False
    return True


def test_empty_frequencies_give_empty_code():
    code = build_huffman_code({})
    assert code.lengths == {}
    assert code.max_length() == 0


def test_single_symbol_gets_one_bit():
    code = build_huffman_code({42: 100})
    assert code.lengths == {42: 1}
    assert code.codewords == {42: 0}


def test_two_symbols():
    code = build_huffman_code({1: 10, 2: 1})
    assert code.lengths[1] == 1
    assert code.lengths[2] == 1


def test_skewed_frequencies_give_shorter_codes_to_frequent_symbols():
    code = build_huffman_code({1: 1000, 2: 100, 3: 10, 4: 1})
    assert code.lengths[1] <= code.lengths[2] <= code.lengths[3]
    assert code.lengths[1] == 1


def test_prefix_free_property():
    code = build_huffman_code({s: (s + 1) ** 2 for s in range(20)})
    assert _is_prefix_free(code)


def test_kraft_inequality_holds():
    code = build_huffman_code({s: s + 1 for s in range(50)})
    assert kraft_sum(code.lengths) <= 1.0 + 1e-9


def test_code_length_lookup_and_default():
    code = build_huffman_code({1: 5, 2: 5})
    assert code.code_length(1) == 1
    assert code.code_length(99, default=16) == 16
    with pytest.raises(KeyError):
        code.code_length(99)


def test_length_limited_code_respects_cap():
    # Exponential frequencies make the unconstrained tree very deep.
    frequencies = {s: 2**s for s in range(30)}
    code = build_huffman_code(frequencies, max_length=12)
    assert code.max_length() <= 12
    assert _is_prefix_free(code)
    assert kraft_sum(code.lengths) <= 1.0 + 1e-9


def test_length_limited_impossible_cap_raises():
    with pytest.raises(ValueError):
        build_huffman_code({s: 2**s for s in range(40)}, max_length=4)


def test_canonical_codewords_ordering():
    lengths = {10: 2, 20: 2, 30: 3, 40: 3}
    codewords = canonical_codewords(lengths)
    assert codewords[10] < codewords[20]
    # longer codes start after the shorter ones, shifted left
    assert codewords[30] >= codewords[20] << 1


def test_canonical_codewords_rejects_zero_length():
    with pytest.raises(ValueError):
        canonical_codewords({1: 0})


def test_average_length_close_to_entropy():
    """The Huffman code's average length is within 1 bit of the entropy."""
    frequencies = {0: 50, 1: 25, 2: 13, 3: 6, 4: 3, 5: 2, 6: 1}
    total = sum(frequencies.values())
    code = build_huffman_code(frequencies)
    entropy = -sum(
        (f / total) * math.log2(f / total) for f in frequencies.values()
    )
    average = sum(frequencies[s] * code.lengths[s] for s in frequencies) / total
    assert entropy <= average <= entropy + 1.0


def test_decoding_table_inverts_codewords():
    code = build_huffman_code({s: s + 1 for s in range(8)})
    table = code.decoding_table()
    for symbol, codeword in code.codewords.items():
        assert table[(codeword, code.lengths[symbol])] == symbol


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(
        st.integers(0, 1000), st.integers(1, 10_000), min_size=1, max_size=60
    )
)
def test_huffman_properties(frequencies):
    """Property: prefix-free, Kraft ≤ 1, frequent symbols get short codes."""
    code = build_huffman_code(frequencies)
    assert set(code.lengths) == set(frequencies)
    assert kraft_sum(code.lengths) <= 1.0 + 1e-9
    assert _is_prefix_free(code)


def test_length_limit_at_exact_capacity_boundary():
    """Length limiting at the 2**max_length == n_symbols boundary.

    With exactly 2**max_length symbols the only valid length-limited code is
    the fully balanced tree; the iterative frequency-flattening fallback must
    reach it and keep the code a valid prefix code (Kraft <= 1).
    """
    for max_length in (3, 4, 5):
        n = 1 << max_length
        # wildly skewed frequencies force the unconstrained tree far past the cap
        frequencies = {s: 1 << min(s, 60) for s in range(n)}
        code = build_huffman_code(frequencies, max_length=max_length)
        assert set(code.lengths) == set(frequencies)
        assert max(code.lengths.values()) <= max_length
        assert kraft_sum(code.lengths) <= 1.0 + 1e-9
        # at exact capacity the balanced tree is the unique solution
        assert all(length == max_length for length in code.lengths.values())
        assert _is_prefix_free(code)


def test_length_limit_below_capacity_raises():
    frequencies = {s: 1 for s in range(9)}
    with pytest.raises(ValueError):
        build_huffman_code(frequencies, max_length=3)
