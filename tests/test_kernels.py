"""Correctness tests for the benchmark kernels themselves."""

import numpy as np
import pytest

from repro.workloads.blackscholes import black_scholes
from repro.workloads.dct import blockwise_dct, blockwise_idct, dct_basis
from repro.workloads.fwt import dyadic_convolution, fast_walsh_transform
from repro.workloads.jmeint import triangles_intersect
from repro.workloads.nn import nearest_neighbors
from repro.workloads.srad import srad_coefficients, srad_update
from repro.workloads.backprop import backprop_step


# --------------------------------------------------------------------- #
# DCT


def test_dct_basis_is_orthonormal():
    basis = dct_basis().astype(np.float64)
    np.testing.assert_allclose(basis @ basis.T, np.eye(8), atol=1e-6)


def test_dct_idct_roundtrip():
    rng = np.random.default_rng(0)
    image = rng.normal(size=(32, 32)).astype(np.float32)
    basis = dct_basis()
    coefficients = blockwise_dct(image, basis)
    rebuilt = blockwise_idct(coefficients, basis)
    np.testing.assert_allclose(rebuilt, image, atol=1e-4)


def test_dct_constant_tile_concentrates_energy_in_dc():
    image = np.full((8, 8), 7.0, dtype=np.float32)
    coefficients = blockwise_dct(image, dct_basis())
    assert coefficients[0, 0] == pytest.approx(7.0 * 8, rel=1e-5)
    assert np.abs(coefficients[1:, :]).max() < 1e-4


def test_dct_rejects_non_tile_multiple():
    with pytest.raises(ValueError):
        blockwise_dct(np.zeros((10, 16), dtype=np.float32), dct_basis())


# --------------------------------------------------------------------- #
# FWT


def test_fwt_involution_up_to_scale():
    rng = np.random.default_rng(1)
    signal = rng.normal(size=64).astype(np.float32)
    twice = fast_walsh_transform(fast_walsh_transform(signal)) / 64.0
    np.testing.assert_allclose(twice, signal, atol=1e-4)


def test_fwt_parseval():
    rng = np.random.default_rng(2)
    signal = rng.normal(size=128)
    transformed = fast_walsh_transform(signal)
    assert np.sum(transformed**2) == pytest.approx(128 * np.sum(signal**2), rel=1e-5)


def test_fwt_requires_power_of_two():
    with pytest.raises(ValueError):
        fast_walsh_transform(np.zeros(100))


def test_dyadic_convolution_with_delta_kernel_is_identity():
    rng = np.random.default_rng(3)
    signal = rng.normal(size=64).astype(np.float32)
    kernel = np.zeros(64, dtype=np.float32)
    kernel[0] = 1.0
    np.testing.assert_allclose(dyadic_convolution(signal, kernel), signal, atol=1e-4)


# --------------------------------------------------------------------- #
# Black-Scholes


def test_black_scholes_put_call_parity():
    stock = np.array([50.0, 80.0, 120.0])
    strike = np.array([60.0, 80.0, 100.0])
    expiry = np.array([0.5, 1.0, 2.0])
    vol = np.array([0.2, 0.3, 0.4])
    rate = 0.02
    call, put = black_scholes(stock, strike, expiry, vol, risk_free_rate=rate)
    parity = call - put
    expected = stock - strike * np.exp(-rate * expiry)
    np.testing.assert_allclose(parity, expected, atol=1e-3)


def test_black_scholes_deep_in_the_money_call():
    call, put = black_scholes(
        np.array([200.0]), np.array([100.0]), np.array([0.01]), np.array([0.1])
    )
    assert call[0] == pytest.approx(100.0, abs=1.0)
    assert put[0] == pytest.approx(0.0, abs=0.1)


def test_black_scholes_prices_non_negative():
    rng = np.random.default_rng(4)
    call, put = black_scholes(
        rng.uniform(10, 100, 100),
        rng.uniform(10, 100, 100),
        rng.uniform(0.1, 2, 100),
        rng.uniform(0.05, 0.6, 100),
    )
    assert np.all(call >= -1e-5)
    assert np.all(put >= -1e-5)


# --------------------------------------------------------------------- #
# JM (triangle intersection)


def _tri(*vertices):
    return np.array([vertices], dtype=np.float32)


def test_triangles_clearly_apart_do_not_intersect():
    a = _tri((0, 0, 0), (1, 0, 0), (0, 1, 0))
    b = _tri((10, 10, 10), (11, 10, 10), (10, 11, 10))
    assert not triangles_intersect(a, b)[0]


def test_triangles_crossing_planes_intersect():
    a = _tri((0, 0, 0), (2, 0, 0), (0, 2, 0))
    b = _tri((0.5, 0.5, -1), (0.5, 0.5, 1), (1.5, 0.5, 0))
    assert triangles_intersect(a, b)[0]


def test_triangle_far_along_intersection_line_does_not_intersect():
    a = _tri((0, 0, 0), (2, 0, 0), (0, 2, 0))
    b = _tri((10, 0.5, -1), (10, 0.5, 1), (11, 0.5, 0))
    assert not triangles_intersect(a, b)[0]


def test_triangles_intersect_shape_validation():
    with pytest.raises(ValueError):
        triangles_intersect(np.zeros((2, 3, 3)), np.zeros((3, 3, 3)))


def test_triangles_intersect_vectorized_matches_scalar():
    rng = np.random.default_rng(5)
    a = rng.normal(size=(20, 3, 3)).astype(np.float32)
    b = (rng.normal(size=(20, 3, 3)) * 0.5).astype(np.float32)
    batched = triangles_intersect(a, b)
    for index in range(20):
        single = triangles_intersect(a[index:index + 1], b[index:index + 1])[0]
        assert batched[index] == single


# --------------------------------------------------------------------- #
# NN


def test_nearest_neighbors_matches_brute_force():
    rng = np.random.default_rng(6)
    records = rng.uniform(0, 10, size=(500, 2)).astype(np.float32)
    query = (5.0, 5.0)
    distances, indices = nearest_neighbors(records, query, 5)
    brute = np.sqrt(((records - np.array(query)) ** 2).sum(axis=1))
    expected = np.sort(brute)[:5]
    np.testing.assert_allclose(distances, expected, rtol=1e-5)
    assert len(set(indices.tolist())) == 5


def test_nearest_neighbors_validation():
    records = np.zeros((10, 2), dtype=np.float32)
    with pytest.raises(ValueError):
        nearest_neighbors(records, (0, 0), 0)
    with pytest.raises(ValueError):
        nearest_neighbors(np.zeros((10, 3)), (0, 0), 1)


# --------------------------------------------------------------------- #
# SRAD


def test_srad_coefficient_in_unit_range():
    rng = np.random.default_rng(7)
    image = rng.uniform(50, 200, size=(32, 32))
    results = srad_coefficients(image)
    assert np.all(results["coefficient"] >= 0.0)
    assert np.all(results["coefficient"] <= 1.0)


def test_srad_constant_image_is_fixed_point():
    image = np.full((16, 16), 100.0)
    results = srad_coefficients(image)
    updated = srad_update(
        image,
        results["coefficient"],
        results["d_n"],
        results["d_s"],
        results["d_w"],
        results["d_e"],
    )
    np.testing.assert_allclose(updated, image, atol=1e-3)


def test_srad_update_smooths_noise():
    rng = np.random.default_rng(8)
    image = 100.0 + rng.normal(0, 10, size=(64, 64))
    results = srad_coefficients(image)
    updated = srad_update(
        image,
        results["coefficient"],
        results["d_n"],
        results["d_s"],
        results["d_w"],
        results["d_e"],
    )
    assert np.var(updated) < np.var(image)


# --------------------------------------------------------------------- #
# backprop


def test_backprop_step_reduces_loss():
    rng = np.random.default_rng(9)
    inputs = rng.uniform(0, 1, size=(32, 64))
    weights_ih = rng.normal(0, 0.2, size=(64, 8))
    weights_ho = rng.normal(0, 0.2, size=(8, 1))
    bias_h = np.zeros(8)
    bias_o = np.zeros(1)
    target = rng.uniform(0, 1, size=(32, 1))

    def loss(w_ih, w_ho):
        hidden = 1 / (1 + np.exp(-(inputs @ w_ih + bias_h)))
        output = 1 / (1 + np.exp(-(hidden @ w_ho + bias_o)))
        return float(np.mean((target - output) ** 2))

    new_ih, new_ho = backprop_step(inputs, weights_ih, weights_ho, bias_h, bias_o, target)
    assert loss(new_ih, new_ho) <= loss(weights_ih, weights_ho) + 1e-9


def test_backprop_step_preserves_shapes():
    inputs = np.zeros((4, 16), dtype=np.float32)
    new_ih, new_ho = backprop_step(
        inputs,
        np.zeros((16, 8), dtype=np.float32),
        np.zeros((8, 1), dtype=np.float32),
        np.zeros(8, dtype=np.float32),
        np.zeros(1, dtype=np.float32),
        np.zeros((4, 1), dtype=np.float32),
    )
    assert new_ih.shape == (16, 8)
    assert new_ho.shape == (8, 1)
