"""Tests for the GPU substrate: config, cache, DRAM, interconnect, SM, energy."""

import time

import pytest

from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig, LatencyConfig
from repro.gpu.dram import DRAMChannel, GDDR5Timing
from repro.gpu.energy import EnergyModel, EnergyParameters
from repro.gpu.interconnect import Interconnect
from repro.gpu.sm import SMCluster
from repro.gpu.trace import AccessType, MemoryAccess, MemoryTrace


# --------------------------------------------------------------------- #
# configuration (Table II)


def test_default_config_matches_table2():
    config = GPUConfig()
    assert config.num_sms == 16
    assert config.sm_freq_mhz == 822.0
    assert config.l2_cache_kb == 768
    assert config.num_memory_controllers == 6
    assert config.memory_clock_mhz == 1002.0
    assert config.bus_width_bits == 32
    assert config.burst_length == 8


def test_mag_derived_from_bus_and_burst():
    config = GPUConfig()
    assert config.mag_bytes == 32
    assert config.bursts_per_block == 4
    wider = config.scaled(bus_width_bits=64)
    assert wider.mag_bytes == 64


def test_bandwidth_derivations():
    config = GPUConfig()
    assert config.bandwidth_bytes_per_sec == pytest.approx(192.4e9)
    assert config.bandwidth_per_controller == pytest.approx(192.4e9 / 6)
    assert config.l2_num_lines == 768 * 1024 // 128


def test_table2_rows_contains_every_field():
    rows = dict(GPUConfig().table2_rows())
    assert rows["#SMs"] == "16"
    assert rows["Memory bandwidth"] == "192.4 GB/s"
    assert rows["Burst length"] == "8"
    assert len(rows) == 14


def test_config_validation():
    with pytest.raises(ValueError):
        GPUConfig(num_sms=0)
    with pytest.raises(ValueError):
        GPUConfig(sm_freq_mhz=0)


def test_scaled_preserves_other_fields():
    config = GPUConfig().scaled(l2_cache_kb=256)
    assert config.l2_cache_kb == 256
    assert config.num_sms == 16


def test_latency_config_defaults_match_paper():
    latency = LatencyConfig()
    assert latency.e2mc_compress_cycles == 46
    assert latency.e2mc_decompress_cycles == 20
    assert latency.tslc_compress_cycles == 60
    assert latency.tslc_decompress_cycles == 20


# --------------------------------------------------------------------- #
# trace


def test_trace_streaming_and_counters():
    trace = MemoryTrace()
    trace.add_stream("a", 4, AccessType.READ, passes=2)
    trace.add_stream("b", 2, AccessType.WRITE)
    assert trace.total_accesses == 10
    assert trace.read_accesses == 8
    assert trace.write_accesses == 2
    assert trace.regions() == ["a", "b"]


def test_trace_strided_stream_covers_all_blocks():
    trace = MemoryTrace()
    trace.add_stream("m", 10, stride=3)
    visited = [a.block_index for a in trace]
    assert sorted(visited) == list(range(10))
    assert visited != list(range(10))  # actually strided


def test_trace_regions_first_use_order_on_long_multi_region_trace():
    """regions() is one linear pass (it used to be an O(n²) list scan)."""
    trace = MemoryTrace()
    num_regions = 2000
    for i in range(200_000):
        trace.append(MemoryAccess(f"r{i % num_regions}", i))
    start = time.perf_counter()
    regions = trace.regions()
    elapsed = time.perf_counter() - start
    assert regions == [f"r{i}" for i in range(num_regions)]
    assert elapsed < 5.0, f"regions() took {elapsed:.1f}s on a 200k-access trace"


def test_trace_stream_segments_match_appended_accesses():
    """add_stream's array segments expand to the same per-access sequence."""
    streamed = MemoryTrace()
    streamed.add_stream("a", 10, AccessType.READ, passes=2, stride=3)
    streamed.add_stream("b", 4, AccessType.WRITE)
    appended = MemoryTrace()
    for offset in range(3):
        for block in range(offset, 10, 3):
            appended.append(MemoryAccess("a", block))
    appended.extend(appended.accesses[:10])  # second pass
    for block in range(4):
        appended.append(MemoryAccess("b", block, AccessType.WRITE))
    assert streamed.accesses == appended.accesses
    assert len(streamed) == len(appended) == 24


def test_trace_as_arrays_and_compile():
    trace = MemoryTrace()
    trace.add_stream("a", 3, AccessType.READ)
    trace.append(MemoryAccess("b", 1, AccessType.WRITE, count=2))
    arrays = trace.as_arrays()
    assert arrays.regions == ("a", "b")
    assert arrays.block_index.tolist() == [0, 1, 2, 1]
    assert arrays.is_write.tolist() == [False, False, False, True]
    assert arrays.counts.tolist() == [1, 1, 1, 2]

    compiled = trace.compile({"a": 10, "b": 20})
    assert compiled.addresses.tolist() == [10, 11, 12, 21]
    assert compiled.total_accesses == 5
    expanded_addresses, expanded_writes = compiled.expanded()
    assert expanded_addresses.tolist() == [10, 11, 12, 21, 21]
    assert expanded_writes.tolist() == [False, False, False, True, True]


def test_empty_trace_compiles_to_empty_arrays():
    compiled = MemoryTrace().compile({})
    assert len(compiled) == 0
    assert compiled.total_accesses == 0


def test_memory_access_validation():
    with pytest.raises(ValueError):
        MemoryAccess("r", -1)
    with pytest.raises(ValueError):
        MemoryAccess("r", 0, count=0)
    with pytest.raises(ValueError):
        MemoryTrace().add_stream("r", 0)


# --------------------------------------------------------------------- #
# cache


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(1000, line_bytes=128, ways=16)
    with pytest.raises(ValueError):
        SetAssociativeCache(0)


def test_cache_hit_after_miss():
    cache = SetAssociativeCache(16 * 1024)
    assert cache.access(5) is False
    assert cache.access(5) is True
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_cache_lru_eviction_within_set():
    cache = SetAssociativeCache(2 * 128 * 2, line_bytes=128, ways=2)  # 2 sets, 2 ways
    # addresses 0, 2, 4 all map to set 0
    cache.access(0)
    cache.access(2)
    cache.access(0)      # 0 becomes MRU
    cache.access(4)      # evicts 2
    assert cache.contains(0)
    assert not cache.contains(2)
    assert cache.stats.evictions == 1


def test_cache_dirty_eviction_counts_writeback():
    cache = SetAssociativeCache(2 * 128 * 1, line_bytes=128, ways=1)  # 2 sets, direct
    cache.access(0, is_write=True)
    cache.access(2)  # evicts dirty line 0
    assert cache.stats.writebacks == 1


def test_cache_flush_writes_back_dirty_lines():
    cache = SetAssociativeCache(16 * 1024)
    cache.access(1, is_write=True)
    cache.access(2)
    assert cache.flush() == 1
    assert cache.occupancy == 0


def test_cache_flush_counts_flushed_lines_as_evictions():
    """Every line a flush removes is an eviction, same as a capacity victim.

    (flush() used to leave the evictions counter untouched, undercounting
    removed lines against the documented counter semantics.)
    """
    cache = SetAssociativeCache(16 * 1024)
    cache.access(1, is_write=True)
    cache.access(2)
    cache.access(3)
    assert cache.stats.evictions == 0
    assert cache.flush() == 1
    assert cache.stats.evictions == 3
    assert cache.stats.writebacks == 1
    # a second flush of the now-empty cache adds nothing
    assert cache.flush() == 0
    assert cache.stats.evictions == 3


def test_cache_negative_address_rejected():
    with pytest.raises(ValueError):
        SetAssociativeCache(16 * 1024).access(-1)


# --------------------------------------------------------------------- #
# DRAM


def test_dram_row_hit_vs_miss_cycles():
    channel = DRAMChannel()
    first = channel.service(0, 4)       # row miss: activate + 4 bursts
    second = channel.service(128, 4)    # same row: just 4 bursts
    assert first > second
    assert channel.stats.row_hits == 1
    assert channel.stats.row_misses == 1
    assert channel.stats.bursts == 8
    assert channel.stats.bytes_transferred == 8 * 32


def test_dram_row_conflict_pays_precharge():
    timing = GDDR5Timing()
    channel = DRAMChannel(timing)
    channel.service(0, 1)
    conflict = channel.service(timing.row_bytes * timing.num_banks, 1)  # same bank, new row
    assert conflict == timing.t_rp + timing.t_rcd + timing.burst_cycles


def test_dram_busy_cycles_accumulate():
    channel = DRAMChannel()
    total = sum(channel.service(i * 128, 2) for i in range(10))
    assert channel.busy_cycles == total


def test_dram_rejects_zero_bursts():
    with pytest.raises(ValueError):
        DRAMChannel().service(0, 0)


def test_dram_reset_rows_forces_miss():
    channel = DRAMChannel()
    channel.service(0, 1)
    channel.reset_rows()
    channel.service(0, 1)
    assert channel.stats.row_misses == 2


# --------------------------------------------------------------------- #
# interconnect, SM, energy


def test_interconnect_flit_accounting():
    interconnect = Interconnect(flit_bytes=32)
    assert interconnect.transfer(128) == 4
    assert interconnect.transfer(1) == 1
    assert interconnect.stats.messages == 2
    assert interconnect.occupancy_cycles() > 0
    assert interconnect.round_trip_latency() == 24
    with pytest.raises(ValueError):
        interconnect.transfer(-1)


def test_sm_cluster_compute_cycles():
    cluster = SMCluster(GPUConfig(), efficiency=0.5)
    ops_per_cycle = cluster.sustained_ops_per_cycle
    assert cluster.compute_cycles(ops_per_cycle * 100) == pytest.approx(100)
    assert cluster.concurrency() == 16 * 1536
    with pytest.raises(ValueError):
        cluster.compute_cycles(-1)


def test_sm_cluster_validation():
    with pytest.raises(ValueError):
        SMCluster(GPUConfig(), efficiency=0.0)
    with pytest.raises(ValueError):
        SMCluster(GPUConfig(), lanes_per_sm=0)


def test_energy_breakdown_components():
    model = EnergyModel()
    breakdown = model.evaluate(
        exec_time_s=1e-3,
        compute_ops=1e9,
        l2_accesses=1_000_000,
        dram_bursts=100_000,
        dram_row_misses=10_000,
        compressed_blocks=1000,
        decompressed_blocks=1000,
    )
    assert breakdown.total_j == pytest.approx(
        breakdown.constant_j
        + breakdown.compute_j
        + breakdown.l2_j
        + breakdown.dram_j
        + breakdown.compression_j
    )
    assert breakdown.constant_j == pytest.approx(0.08)
    assert 0 < breakdown.dram_fraction < 1
    assert breakdown.edp(1e-3) == pytest.approx(breakdown.total_j * 1e-3)


def test_energy_scales_with_bursts():
    model = EnergyModel()
    few = model.evaluate(1e-3, 1e9, 0, 10_000, 0)
    many = model.evaluate(1e-3, 1e9, 0, 20_000, 0)
    assert many.dram_j == pytest.approx(2 * few.dram_j)


def test_energy_rejects_negative_time():
    with pytest.raises(ValueError):
        EnergyModel().evaluate(-1.0, 0, 0, 0, 0)


def test_energy_custom_parameters():
    params = EnergyParameters(constant_power_w=10.0)
    breakdown = EnergyModel(params).evaluate(1.0, 0, 0, 0, 0)
    assert breakdown.constant_j == pytest.approx(10.0)
