"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.e2mc import E2MCCompressor
from repro.core.config import SLCConfig, SLCVariant
from repro.core.slc import SLCCompressor
from repro.utils.blocks import array_to_blocks


def make_float_blocks(seed: int = 7, count: int = 96) -> list[bytes]:
    """Blocks of locally-correlated float32 data (compressible, non-trivial)."""
    rng = np.random.default_rng(seed)
    values = np.cumsum(rng.normal(0.0, 0.25, size=count * 32)) + 100.0
    # Limited precision: zero out some of the low mantissa bits.
    values = np.round(values * 256.0) / 256.0
    return array_to_blocks(values.astype(np.float32))


def make_mixed_blocks(seed: int = 11, count: int = 64) -> list[bytes]:
    """Blocks mixing zeros, small integers and floats (exercises all patterns)."""
    rng = np.random.default_rng(seed)
    blocks = []
    for index in range(count):
        kind = index % 4
        if kind == 0:
            blocks.append(bytes(128))
        elif kind == 1:
            words = rng.integers(0, 256, size=32, dtype=np.uint32)
            blocks.append(words.astype("<u4").tobytes())
        elif kind == 2:
            base = rng.integers(0, 2**20, dtype=np.uint32)
            words = base + rng.integers(0, 128, size=32, dtype=np.uint32)
            blocks.append(words.astype("<u4").tobytes())
        else:
            blocks.append(rng.bytes(128))
    return blocks


@pytest.fixture(scope="session")
def float_blocks() -> list[bytes]:
    """Session-wide compressible float blocks."""
    return make_float_blocks()


@pytest.fixture(scope="session")
def mixed_blocks() -> list[bytes]:
    """Session-wide mixed-pattern blocks."""
    return make_mixed_blocks()


@pytest.fixture(scope="session")
def trained_e2mc(float_blocks) -> E2MCCompressor:
    """An E2MC compressor trained on the float blocks."""
    compressor = E2MCCompressor()
    compressor.train(float_blocks)
    return compressor


@pytest.fixture(scope="session")
def trained_slc(float_blocks) -> SLCCompressor:
    """A TSLC-OPT compressor trained on the float blocks."""
    slc = SLCCompressor(SLCConfig(variant=SLCVariant.OPT))
    slc.train(float_blocks)
    return slc


@pytest.fixture(
    scope="session", params=[SLCVariant.SIMP, SLCVariant.PRED, SLCVariant.OPT]
)
def slc_variant(request) -> SLCVariant:
    """Parametrized over all three TSLC variants."""
    return request.param
