"""Trace interchange round trip: export → ingest → bit-identical replay.

The contract: a trace captured from a registry workload, saved to the
``.npz`` interchange format and loaded back replays through the simulator
with bit-identical memory-side counters and stored-state digest — on the
vectorized and the scalar pipeline alike.  Only ``error_percent`` differs
by design: the file carries data, not a re-runnable kernel, so the trace
workload's application error is 0 and data damage appears in the fidelity
panel instead (which must match the in-memory run exactly).
"""

import numpy as np
import pytest

from repro.campaign.worker import build_backend
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GPUSimulator
from repro.gpu.trace import AccessType, MemoryAccess, MemoryTrace
from repro.workloads import (
    available_workloads,
    get_workload,
    load_trace,
    register_trace,
    unregister_workload,
)
from repro.workloads.traceio import (
    _rebuild_trace,
    capture_trace,
    load_bundle,
    save_trace,
)

SCALE = 1.0 / 512.0
SEED = 2019


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    bundle = capture_trace(get_workload("NN", scale=SCALE, seed=SEED))
    return save_trace(tmp_path_factory.mktemp("traces") / "nn", bundle)


def simulate(workload, scalar=False):
    config = GPUConfig()
    simulator = GPUSimulator(
        config=config,
        payload_digest=True,
        replay_mode="scalar" if scalar else "vectorized",
        batch_store=not scalar,
    )
    backend = build_backend(
        "TSLC-OPT", config, lossy_threshold_bytes=16, mag_bytes=32
    )
    return simulator.run(workload, backend, compute_error=True)


def test_round_trip_is_bit_identical(trace_path):
    original = simulate(get_workload("NN", scale=SCALE, seed=SEED)).to_dict()
    replayed = simulate(load_trace(trace_path)).to_dict()
    # the kernel is not in the file: its application error is 0 by design
    assert replayed.pop("error_percent") == 0.0
    original.pop("error_percent")
    assert replayed == original
    # spot-check the load-bearing fields survived the dict comparison
    assert (
        replayed["extra_metrics"]["payload_sha256"]
        == original["extra_metrics"]["payload_sha256"]
    )
    assert replayed["extra_metrics"]["fidelity_pearson"] == original[
        "extra_metrics"
    ]["fidelity_pearson"]


def test_round_trip_scalar_pipeline_matches(trace_path):
    vectorized = simulate(load_trace(trace_path)).to_dict()
    scalar = simulate(load_trace(trace_path), scalar=True).to_dict()
    assert scalar == vectorized


def test_saved_file_reports_npz_suffix(tmp_path):
    bundle = capture_trace(get_workload("NN", scale=SCALE, seed=SEED))
    path = save_trace(tmp_path / "no_suffix", bundle)
    assert path.suffix == ".npz"
    assert path.exists()


def test_bundle_survives_save_load(trace_path):
    original = capture_trace(get_workload("NN", scale=SCALE, seed=SEED))
    loaded = load_bundle(trace_path)
    assert loaded.name == original.name
    assert loaded.block_size_bytes == original.block_size_bytes
    assert loaded.ops_per_byte == original.ops_per_byte
    assert [r.name for r in loaded.regions] == [r.name for r in original.regions]
    for region_a, region_b in zip(original.regions, loaded.regions):
        np.testing.assert_array_equal(region_a.array, region_b.array)
        assert region_a.approximable == region_b.approximable
        assert region_a.is_output == region_b.is_output
    for column in ("region_index", "block_index", "is_write", "counts"):
        np.testing.assert_array_equal(
            getattr(original.trace, column), getattr(loaded.trace, column)
        )
    assert loaded.trace.regions == original.trace.regions


def test_rebuilt_trace_columns_are_bit_equal(trace_path):
    bundle = load_bundle(trace_path)
    rebuilt = _rebuild_trace(bundle.trace).as_arrays()
    for column in ("region_index", "block_index", "is_write", "counts"):
        np.testing.assert_array_equal(
            getattr(rebuilt, column), getattr(bundle.trace, column)
        )
    assert rebuilt.regions == bundle.trace.regions


def test_rebuild_preserves_repeat_counts():
    # mixed stream: single-count runs interleaved with RLE-repeated rows
    trace = MemoryTrace()
    trace.add_blocks("a", [0, 1, 2])
    trace.append(MemoryAccess(region="a", block_index=3, count=5))
    trace.append(
        MemoryAccess(
            region="b", block_index=0, access_type=AccessType.WRITE, count=2
        )
    )
    trace.add_blocks("b", [1, 2], AccessType.WRITE)
    arrays = trace.as_arrays()
    rebuilt = _rebuild_trace(arrays).as_arrays()
    for column in ("region_index", "block_index", "is_write", "counts"):
        np.testing.assert_array_equal(
            getattr(rebuilt, column), getattr(arrays, column)
        )
    assert rebuilt.regions == arrays.regions


def test_block_size_mismatch_rejected(trace_path):
    workload = load_trace(trace_path)
    with pytest.raises(ValueError, match="block"):
        workload.trace({}, block_size_bytes=workload.bundle.block_size_bytes * 2)


def test_register_trace_in_registry(trace_path):
    name = register_trace(trace_path, name="NNTRACE")
    try:
        assert name == "NNTRACE"
        assert "NNTRACE" in available_workloads()
        workload = get_workload("nntrace")
        assert workload.name == "NNTRACE"
        # the registered trace replays identically to a direct load
        # (modulo the workload label, which carries the registered name)
        direct = simulate(load_trace(trace_path)).to_dict()
        registered = simulate(get_workload("NNTRACE")).to_dict()
        assert registered.pop("workload") == "NNTRACE"
        assert direct.pop("workload") == "NN"
        assert registered == direct
        with pytest.raises(ValueError, match="already registered"):
            register_trace(trace_path, name="NNTRACE")
    finally:
        unregister_workload(name)
    assert "NNTRACE" not in available_workloads()


def test_cli_export_info_ingest_round_trip(tmp_path, capsys):
    from repro.campaign.cli import main as cli_main

    out_path = tmp_path / "nn.npz"
    assert cli_main([
        "trace", "export", "--workload", "NN", "--scale", str(SCALE),
        "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "captured NN" in out and str(out_path) in out

    assert cli_main(["trace", "info", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "NN: block size 128 B" in out
    assert "records" in out and "approximable" in out

    assert cli_main([
        "trace", "ingest", str(out_path), "--scheme", "TSLC-OPT", "--mag", "32",
    ]) == 0
    out = capsys.readouterr().out
    assert "replayed NN under TSLC-OPT" in out
    assert "fidelity_pearson" in out and "payload_sha256" in out

    # --json emits the full result dict
    import json as json_mod

    assert cli_main([
        "trace", "ingest", str(out_path), "--scheme", "E2MC", "--json",
    ]) == 0
    result = json_mod.loads(capsys.readouterr().out)
    assert result["workload"] == "NN"
    assert result["total_bursts"] > 0


def test_cli_errors_are_captured(tmp_path, capsys):
    from repro.campaign.cli import main as cli_main

    assert cli_main([
        "trace", "export", "--workload", "NOPE", "--out", str(tmp_path / "x"),
    ]) == 2
    assert cli_main(["trace", "info", str(tmp_path / "missing.npz")]) == 2
    bundle_path = save_trace(
        tmp_path / "ok", capture_trace(get_workload("NN", scale=SCALE))
    )
    assert cli_main([
        "trace", "ingest", str(bundle_path), "--scheme", "NOPE",
    ]) == 2


def test_add_blocks_validation():
    trace = MemoryTrace()
    with pytest.raises(ValueError):
        trace.add_blocks("a", [[0, 1]])
    with pytest.raises(ValueError):
        trace.add_blocks("a", [0, -1])
    trace.add_blocks("a", [])
    assert len(trace) == 0
