"""Error paths and edge cases of the registries and the sampling helper."""

from __future__ import annotations

import pytest

from repro.compression.registry import available_compressors, get_compressor
from repro.utils.sampling import sample_evenly
from repro.workloads.registry import available_workloads, get_workload

# --------------------------------------------------------------------- #
# workload registry


def test_get_workload_unknown_name_keyerror_lists_available():
    with pytest.raises(KeyError) as excinfo:
        get_workload("NOPE")
    message = str(excinfo.value)
    assert "unknown workload 'NOPE'" in message
    for name in available_workloads():
        assert name in message


def test_get_workload_is_case_insensitive():
    assert get_workload("bs").name == get_workload("BS").name
    assert get_workload("srad1").name == get_workload("SRAD1").name


# --------------------------------------------------------------------- #
# compressor registry


def test_get_compressor_unknown_name_keyerror_lists_available():
    with pytest.raises(KeyError) as excinfo:
        get_compressor("zlib")
    message = str(excinfo.value)
    assert "unknown compressor 'zlib'" in message
    for name in available_compressors():
        assert name in message


def test_get_compressor_is_case_insensitive():
    lower = get_compressor("e2mc")
    upper = get_compressor("E2MC")
    assert type(lower) is type(upper)


# --------------------------------------------------------------------- #
# sample_evenly


def test_sample_evenly_target_at_least_len_returns_copy():
    items = [1, 2, 3]
    for target in (3, 4, 100):
        sampled = sample_evenly(items, target)
        assert sampled == items
        assert sampled is not items  # a fresh list, not an alias


def test_sample_evenly_nonpositive_target_raises():
    for target in (0, -1, -100):
        with pytest.raises(ValueError, match="target must be positive"):
            sample_evenly([1, 2, 3], target)


def test_sample_evenly_spreads_across_the_sequence():
    items = list(range(100))
    sampled = sample_evenly(items, 10)
    assert len(sampled) == 10
    assert sampled[0] == items[0]
    assert sampled == sorted(sampled)
    assert set(sampled) <= set(items)
    # evenly spread: consecutive picks are a constant stride apart
    strides = {b - a for a, b in zip(sampled, sampled[1:])}
    assert strides == {10}


def test_sample_evenly_empty_sequence():
    assert sample_evenly([], 5) == []
