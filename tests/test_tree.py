"""Tests for the TSLC parallel adder tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tree import AdderTree


def test_comp_size_is_sum_of_lengths():
    lengths = [3, 5, 7, 9, 2, 4, 6, 8]
    tree = AdderTree(lengths)
    assert tree.comp_size_bits == sum(lengths)


def test_requires_power_of_two_symbols():
    with pytest.raises(ValueError):
        AdderTree([1, 2, 3])
    with pytest.raises(ValueError):
        AdderTree([])


def test_rejects_negative_lengths():
    with pytest.raises(ValueError):
        AdderTree([1, -1, 2, 3])


def test_level_sums_structure():
    lengths = [1, 2, 3, 4, 5, 6, 7, 8]
    tree = AdderTree(lengths)
    assert tree.n_levels == 3
    assert tree.level_sums(1) == [3, 7, 11, 15]
    assert tree.level_sums(2) == [10, 26]
    assert tree.level_sums(3) == [36]
    with pytest.raises(ValueError):
        tree.level_sums(4)


def test_select_lowest_level_first():
    # One large symbol makes a level-1 pair sufficient.
    lengths = [2, 40, 2, 2, 2, 2, 2, 2]
    tree = AdderTree(lengths)
    selection = tree.select_subblock(30)
    assert selection is not None
    assert selection.level == 1
    assert selection.start_symbol == 0
    assert selection.symbol_count == 2
    assert selection.bits_removed == 42


def test_select_first_window_priority_encoder():
    lengths = [2, 2, 20, 20, 20, 20, 2, 2]
    tree = AdderTree(lengths)
    selection = tree.select_subblock(30)
    assert selection.level == 1
    assert selection.start_symbol == 2  # first window with sum >= 30


def test_select_escalates_to_higher_level():
    lengths = [4] * 8
    tree = AdderTree(lengths)
    selection = tree.select_subblock(20)
    assert selection.level == 3
    assert selection.symbol_count == 8
    assert selection.bits_removed == 32


def test_select_respects_max_symbols():
    lengths = [4] * 8
    tree = AdderTree(lengths)
    assert tree.select_subblock(20, max_symbols=4) is None


def test_select_returns_none_when_impossible():
    lengths = [1] * 8
    tree = AdderTree(lengths)
    assert tree.select_subblock(100) is None


def test_select_requires_positive_bits():
    tree = AdderTree([1] * 8)
    with pytest.raises(ValueError):
        tree.select_subblock(0)


def test_extra_nodes_are_staggered():
    lengths = list(range(1, 65))
    tree = AdderTree(lengths, extra_nodes={2: 8, 3: 4})
    assert tree.extra_node_count(2) == 8
    assert tree.extra_node_count(3) == 4
    extra = [node for node in tree.nodes_at_level(2) if node.is_extra]
    # staggered: offset by half a window (2 symbols for level 2)
    assert all(node.start_symbol % 4 == 2 for node in extra)
    for node in extra:
        assert node.sum_bits == sum(lengths[node.start_symbol:node.start_symbol + 4])


def test_extra_nodes_reduce_overshoot():
    """The TSLC-OPT extra nodes find a tighter window in a crafted case."""
    # Bits concentrated in symbols 2..5: the aligned level-2 windows [0..3]
    # and [4..7] each hold only half of them, but the staggered window [2..5]
    # holds all of them.
    lengths = [1, 1, 30, 30, 30, 30, 1, 1] + [1] * 56
    plain = AdderTree(lengths)
    optimized = AdderTree(lengths, extra_nodes={2: 8})
    required = 100
    plain_sel = plain.select_subblock(required)
    opt_sel = optimized.select_subblock(required)
    assert plain_sel.symbol_count > opt_sel.symbol_count
    assert opt_sel.used_extra_node
    assert optimized.overshoot_bits(opt_sel, required) <= plain.overshoot_bits(
        plain_sel, required
    )


def test_extra_nodes_invalid_level_rejected():
    with pytest.raises(ValueError):
        AdderTree([1] * 8, extra_nodes={9: 4})


def test_nodes_at_level_cover_block():
    lengths = [3] * 64
    tree = AdderTree(lengths)
    for level in range(1, tree.n_levels + 1):
        nodes = [n for n in tree.nodes_at_level(level) if not n.is_extra]
        covered = sum(node.symbol_count for node in nodes)
        assert covered == 64
        assert all(node.sum_bits == 3 * node.symbol_count for node in nodes)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(1, 33), min_size=64, max_size=64),
    st.integers(1, 200),
    st.booleans(),
)
def test_selection_properties(lengths, required, optimized):
    """Property: any selection covers the required bits with a valid window."""
    extra = {2: 8, 3: 4} if optimized else None
    tree = AdderTree(lengths, extra_nodes=extra)
    selection = tree.select_subblock(required, max_symbols=16)
    if selection is None:
        # No window of <= 16 symbols can cover the requirement.
        for level in (1, 2, 3, 4):
            for node in tree.nodes_at_level(level):
                assert node.sum_bits < required
        return
    assert selection.bits_removed >= required
    assert selection.symbol_count <= 16
    assert 0 <= selection.start_symbol <= 64 - selection.symbol_count
    assert selection.bits_removed == sum(
        lengths[selection.start_symbol:selection.start_symbol + selection.symbol_count]
    )
