"""Tests for the compression backends and the memory controller."""

import pytest

from repro.compression.bdi import BDICompressor
from repro.core import SLCCompressor, SLCConfig, SLCVariant
from repro.gpu.backends import LosslessBackend, NoCompressionBackend, SLCBackend
from repro.gpu.memory_controller import MemoryController
from tests.conftest import make_float_blocks


@pytest.fixture(scope="module")
def blocks():
    return make_float_blocks(seed=21, count=64)


@pytest.fixture()
def slc_backend(blocks):
    backend = SLCBackend(SLCCompressor(SLCConfig(variant=SLCVariant.OPT)))
    backend.train(blocks)
    return backend


def test_no_compression_backend_always_full_bursts(blocks):
    backend = NoCompressionBackend()
    stored = backend.store(blocks[0])
    assert stored.bursts == 4
    assert stored.stored_bits == 1024
    assert stored.data == blocks[0]
    assert not stored.lossy
    assert backend.compress_latency_cycles == 0


def test_lossless_backend_reduces_bursts():
    backend = LosslessBackend(BDICompressor())
    zero_block = bytes(128)
    stored = backend.store(zero_block)
    assert stored.bursts == 1
    assert stored.data == zero_block
    assert not stored.lossy
    # latencies come from the registry now: a simple BDI pipeline, not the
    # Huffman coder's 46/20
    assert backend.compress_latency_cycles == 2
    assert backend.decompress_latency_cycles == 1


def test_lossless_backend_never_exceeds_max_bursts(blocks):
    backend = LosslessBackend(BDICompressor())
    for block in blocks:
        assert 1 <= backend.store(block).bursts <= 4


def test_slc_backend_counts_lossy_blocks(slc_backend, blocks):
    for block in blocks:
        slc_backend.store(block, approximable=True)
    assert slc_backend.total_blocks == len(blocks)
    assert 0 < slc_backend.lossy_blocks <= len(blocks)
    assert 0 < slc_backend.lossy_fraction <= 1
    assert slc_backend.compress_latency_cycles == 60


def test_slc_backend_not_approximable_is_lossless(slc_backend, blocks):
    for block in blocks:
        stored = slc_backend.store(block, approximable=False)
        assert not stored.lossy
        assert stored.data == block


def test_slc_backend_bursts_never_above_lossless(blocks):
    lossless = LosslessBackend(
        SLCCompressor(SLCConfig()).baseline, compress_cycles=46, decompress_cycles=20
    )
    slc = SLCBackend(SLCCompressor(SLCConfig()))
    lossless.train(blocks)
    slc.train(blocks)
    for block in blocks:
        assert slc.store(block).bursts <= lossless.store(block).bursts


# --------------------------------------------------------------------- #
# memory controller


def make_controller(backend=None):
    return MemoryController(0, backend or NoCompressionBackend(), mdc_entries=64)


def test_store_then_read_returns_stored_data(slc_backend, blocks):
    controller = make_controller(slc_backend)
    controller.store_block(7, blocks[0], count_traffic=False)
    data = controller.read_block(7)
    assert len(data) == 128
    assert controller.stats.reads == 1
    assert controller.stats.writes == 0
    assert controller.stored_blocks == 1


def test_store_counts_write_traffic_when_requested(blocks):
    controller = make_controller()
    controller.store_block(1, blocks[0], count_traffic=True)
    assert controller.stats.writes == 1
    assert controller.stats.write_bursts == 4
    controller.store_block(2, blocks[1], count_traffic=False)
    assert controller.stats.writes == 1


def test_read_unknown_block_is_conservative():
    controller = make_controller()
    data = controller.read_block(99)
    assert data == bytes(128)
    assert controller.stats.read_bursts == 4


def test_mdc_miss_fetches_worst_case(slc_backend, blocks):
    controller = MemoryController(0, slc_backend, mdc_entries=1)
    # Store two blocks; the 1-entry MDC can only remember the second.
    first = controller.store_block(10, blocks[0], count_traffic=False)
    controller.store_block(11, blocks[1], count_traffic=False)
    controller.read_block(10)
    # The MDC entry for block 10 was evicted, so the controller fetched the
    # worst case (4 bursts) even if the block is stored smaller.
    assert controller.stats.read_bursts == 4
    assert controller.stats.mdc_extra_bursts == 4 - first.bursts


def test_read_after_store_uses_recorded_bursts(slc_backend, blocks):
    controller = make_controller(slc_backend)
    stored = controller.store_block(3, blocks[0], count_traffic=False)
    controller.read_block(3)
    assert controller.stats.read_bursts == stored.bursts


def test_controller_tracks_dram_busy_cycles(blocks):
    controller = make_controller()
    controller.store_block(0, blocks[0], count_traffic=True)
    controller.read_block(0)
    assert controller.busy_memory_cycles > 0
    assert controller.stats.total_bursts == 8
    assert controller.stats.bytes_transferred == 8 * 32


def test_stored_data_accessor(blocks):
    controller = make_controller()
    assert controller.stored_data(5) is None
    controller.store_block(5, blocks[0], count_traffic=False)
    assert controller.stored_data(5) == blocks[0]
