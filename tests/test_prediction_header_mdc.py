"""Tests for the value predictor, the block header and the metadata cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.header import SLCHeader, header_size_bits, pdp_pointer_bits
from repro.core.metadata_cache import MetadataCache
from repro.core.prediction import predict_truncated_symbols, predictor_symbol_index


# --------------------------------------------------------------------- #
# prediction


def test_zero_fill_for_simp():
    symbols = list(range(8))
    kept = symbols[:2] + symbols[6:]
    rebuilt = predict_truncated_symbols(kept, 2, 4, 8, use_prediction=False)
    assert rebuilt == [0, 1, 0, 0, 0, 0, 6, 7]


def test_lane_aware_prediction_uses_same_offset():
    # elements are (low, high) pairs; low lanes are even indices
    symbols = [10, 11, 20, 21, 30, 31, 40, 41]
    kept = symbols[:2] + symbols[6:]
    rebuilt = predict_truncated_symbols(kept, 2, 4, 8, use_prediction=True)
    assert rebuilt == [10, 11, 10, 11, 10, 11, 40, 41]


def test_prediction_run_at_block_start_uses_following_element():
    symbols = [10, 11, 20, 21, 30, 31, 40, 41]
    kept = symbols[4:]
    rebuilt = predict_truncated_symbols(kept, 0, 4, 8, use_prediction=True)
    assert rebuilt == [30, 31, 30, 31, 30, 31, 40, 41]


def test_prediction_single_lane_mode():
    symbols = [5, 6, 7, 8]
    kept = [5, 8]
    rebuilt = predict_truncated_symbols(
        kept, 1, 2, 4, use_prediction=True, element_symbols=1
    )
    assert rebuilt == [5, 5, 5, 8]


def test_prediction_empty_run_is_identity():
    assert predict_truncated_symbols([1, 2, 3, 4], 0, 0, 4, True) == [1, 2, 3, 4]


def test_prediction_validation_errors():
    with pytest.raises(ValueError):
        predict_truncated_symbols([1, 2], 3, 4, 4, True)
    with pytest.raises(ValueError):
        predict_truncated_symbols([1, 2, 3], 0, 2, 4, True)


def test_predictor_index_prefers_preceding_same_lane():
    assert predictor_symbol_index(4, 4, 2, 8) == 2
    assert predictor_symbol_index(5, 4, 2, 8) == 3
    assert predictor_symbol_index(0, 0, 2, 8) == 2
    assert predictor_symbol_index(1, 0, 2, 8) == 3


def test_predictor_index_all_truncated_returns_none():
    assert predictor_symbol_index(0, 0, 8, 8) is None


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 65535), min_size=64, max_size=64),
    st.sampled_from([2, 4, 8, 16]),
    st.integers(0, 62),
    st.booleans(),
)
def test_prediction_preserves_kept_symbols(symbols, count, start, use_prediction):
    """Property: non-truncated symbols are reconstructed exactly."""
    start = min(start - start % 2, 64 - count)
    kept = symbols[:start] + symbols[start + count:]
    rebuilt = predict_truncated_symbols(kept, start, count, 64, use_prediction)
    assert len(rebuilt) == 64
    assert rebuilt[:start] == symbols[:start]
    assert rebuilt[start + count:] == symbols[start + count:]


# --------------------------------------------------------------------- #
# header


def test_header_sizes():
    assert pdp_pointer_bits(128) == 7
    assert header_size_bits(False) == 1 + 3 * 7
    assert header_size_bits(True) == 1 + 6 + 4 + 3 * 7


def test_header_pack_unpack_lossless():
    header = SLCHeader(lossy=False, pdp=(10, 20, 30))
    rebuilt = SLCHeader.unpack(header.pack())
    assert not rebuilt.lossy
    assert rebuilt.pdp == (10, 20, 30)


def test_header_pack_unpack_lossy():
    header = SLCHeader(lossy=True, approx_start=42, approx_count=16, pdp=(1, 2, 3))
    rebuilt = SLCHeader.unpack(header.pack())
    assert rebuilt.lossy
    assert rebuilt.approx_start == 42
    assert rebuilt.approx_count == 16
    assert rebuilt.pdp == (1, 2, 3)


def test_header_validation():
    with pytest.raises(ValueError):
        SLCHeader(lossy=True, approx_count=0)
    with pytest.raises(ValueError):
        SLCHeader(lossy=False, approx_count=2)
    with pytest.raises(ValueError):
        SLCHeader(lossy=True, approx_start=64, approx_count=1)
    with pytest.raises(ValueError):
        SLCHeader(lossy=False, pdp=(1, 2, 3, 4))


def test_header_size_matches_pack_length():
    header = SLCHeader(lossy=True, approx_start=3, approx_count=4)
    assert len(header.pack()) == (header.size_bits + 7) // 8


# --------------------------------------------------------------------- #
# metadata cache


def test_mdc_miss_then_hit():
    mdc = MetadataCache(capacity_entries=4)
    assert mdc.lookup(100) is None
    mdc.update(100, 2)
    assert mdc.lookup(100) == 2
    assert mdc.stats.hits == 1
    assert mdc.stats.misses == 1


def test_mdc_conservative_fetch_on_miss():
    mdc = MetadataCache(capacity_entries=4)
    assert mdc.bursts_to_fetch(55) == 4
    mdc.update(55, 1)
    assert mdc.bursts_to_fetch(55) == 1


def test_mdc_lru_eviction():
    mdc = MetadataCache(capacity_entries=2)
    mdc.update(1, 1)
    mdc.update(2, 2)
    mdc.lookup(1)          # make 1 most recent
    mdc.update(3, 3)       # evicts 2
    assert mdc.lookup(2) is None
    assert mdc.lookup(1) == 1
    assert mdc.stats.evictions == 1


def test_mdc_rejects_invalid_burst_counts():
    mdc = MetadataCache()
    with pytest.raises(ValueError):
        mdc.update(1, 0)
    with pytest.raises(ValueError):
        mdc.update(1, 5)


def test_mdc_entry_bits_and_size():
    mdc = MetadataCache(capacity_entries=8192, max_bursts=4)
    assert mdc.entry_bits == 2
    assert mdc.size_bytes == 8192 * 2 / 8


def test_mdc_flush_keeps_stats():
    mdc = MetadataCache()
    mdc.update(1, 2)
    mdc.lookup(1)
    mdc.flush()
    assert len(mdc) == 0
    assert mdc.stats.hits == 1
