"""Tests for the declarative Study framework (registry, regression, CLI)."""

from __future__ import annotations

import csv
import math

import pytest

from repro.campaign import ResultStore
from repro.campaign.cli import main as cli_main
from repro.core.config import SLCVariant
from repro.experiments import run_fig1, run_fig2, run_fig7, run_fig8, run_fig9
from repro.studies import (
    Fig1Study,
    Fig2Study,
    Fig7Study,
    Fig8Study,
    Fig9Study,
    GPUScalingStudy,
    ResponseSurfaceStudy,
    SeedVarianceStudy,
    SLCSweepStudy,
    Table1Study,
    ThresholdAblationStudy,
    TournamentStudy,
    available_studies,
    get_study,
    pareto_frontier,
    run_slc_study,
    study_class,
)
from repro.studies.cli import build_study, coerce_param

TINY = 1.0 / 1024.0
SMALL = 1.0 / 2048.0
WORKLOADS = ("BS", "NN")

#: every study the framework must register
EXPECTED_STUDIES = {
    "fig1",
    "fig2",
    "table1",
    "fig7",
    "fig8",
    "fig9",
    "slc-sweep",
    "ablation-threshold",
    "response-surface",
    "seed-variance",
    "gpu-scaling",
    "tournament",
    "fidelity",
}


# --------------------------------------------------------------------- #
# registry


def test_registry_contains_all_studies():
    assert set(available_studies()) == EXPECTED_STUDIES
    for name in EXPECTED_STUDIES:
        cls = study_class(name)
        assert cls.name == name
        assert cls.title


def test_registry_rejects_unknown_study():
    with pytest.raises(KeyError, match="unknown study"):
        get_study("fig42")


def test_get_study_passes_params():
    study = get_study("fig7", workloads=("NN",), scale=TINY)
    assert study.workloads == ("NN",)
    assert study.scale == TINY


# --------------------------------------------------------------------- #
# ported studies reproduce the historical numbers


@pytest.fixture(scope="module")
def slc_study():
    """The shared (BS, NN) study both regression tests reduce."""
    return run_slc_study(
        workload_names=list(WORKLOADS),
        variants=[SLCVariant.SIMP, SLCVariant.OPT],
        scale=TINY,
    )


def test_fig7_study_matches_direct_simulation_metrics(slc_study):
    """Acceptance: the Fig. 7 entry point produces numbers identical to
    metrics computed directly from the SimulationResults (no SLCStudy
    helpers involved), through the Study framework."""
    rows, _ = run_fig7(study=slc_study)
    by_key = {(row.workload, row.scheme): row for row in rows}
    for workload in WORKLOADS:
        baseline = slc_study.results[workload]["E2MC"]
        for scheme in ("TSLC-SIMP", "TSLC-OPT"):
            result = slc_study.results[workload][scheme]
            row = by_key[(workload, scheme)]
            assert row.speedup == baseline.exec_time_s / result.exec_time_s
            assert row.error_percent == result.error_percent
    for scheme in ("TSLC-SIMP", "TSLC-OPT"):
        speedups = [by_key[(w, scheme)].speedup for w in WORKLOADS]
        expected = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        assert by_key[("GM", scheme)].speedup == pytest.approx(expected, rel=1e-12)


def test_fig7_study_end_to_end_equals_wrapper(tmp_path):
    """Fig7Study.run() and the legacy run_fig7 wrapper agree cell by cell."""
    result = Fig7Study(workloads=("NN",), scale=TINY).run(store=tmp_path)
    rows, study = run_fig7(workload_names=["NN"], scale=TINY, store_dir=tmp_path)
    assert [
        (r.workload, r.scheme, r.speedup) for r in result.data["rows"]
    ] == [(r.workload, r.scheme, r.speedup) for r in rows]
    # the second invocation was pure cache: same store, zero simulations
    assert result.meta["n_executed"] == 4
    rerun = Fig7Study(workloads=("NN",), scale=TINY).run(store=tmp_path)
    assert rerun.meta["n_executed"] == 0 and rerun.meta["n_cached"] == 4


def test_fig8_study_matches_direct_simulation_metrics(slc_study):
    rows, _ = run_fig8(study=slc_study)
    by_key = {(row.workload, row.scheme): row for row in rows}
    for workload in WORKLOADS:
        baseline = slc_study.results[workload]["E2MC"]
        for scheme in ("TSLC-SIMP", "TSLC-OPT"):
            result = slc_study.results[workload][scheme]
            row = by_key[(workload, scheme)]
            assert row.normalized_bandwidth == result.dram_bytes / baseline.dram_bytes
            assert row.normalized_energy == result.energy_j / baseline.energy_j
            assert row.normalized_edp == result.edp / baseline.edp


def test_fig9_study_matches_per_mag_slc_studies():
    """The coupled Fig. 9 grid reduces to the same numbers as one
    run_slc_study per MAG (the historical implementation)."""
    mags = (32, 64)
    rows, studies = run_fig9(workload_names=["NN"], mags=mags, scale=TINY)
    assert set(studies) == set(mags)
    for mag in mags:
        reference = run_slc_study(
            workload_names=["NN"],
            variants=[SLCVariant.OPT],
            lossy_threshold_bytes=mag // 2,
            mag_bytes=mag,
            scale=TINY,
        )
        assert studies[mag].results == reference.results
        (row,) = [r for r in rows if r.workload == "NN" and r.mag_bytes == mag]
        assert row.speedup == reference.speedup("NN", "TSLC-OPT")


def test_fig1_fig2_studies_equal_wrappers():
    rows = run_fig1(workload_names=list(WORKLOADS), compressors=["e2mc"], scale=TINY)
    result = Fig1Study(workloads=WORKLOADS, compressors=("e2mc",), scale=TINY).run()
    assert result.data == rows
    assert result.rows[0]["raw_ratio"] == rows[0].raw_ratio

    distribution = run_fig2(workload_names=list(WORKLOADS), scale=TINY)
    result = Fig2Study(workloads=WORKLOADS, scale=TINY).run()
    assert result.data.per_workload == distribution.per_workload
    assert sum(r["fraction"] for r in result.rows if r["workload"] == "BS") == (
        pytest.approx(1.0)
    )


def test_table1_study_rows_and_format():
    result = Table1Study().run()
    units = {row["unit"] for row in result.rows}
    assert {"compressor", "decompressor"} <= units
    text = Table1Study().format(result)
    assert "Table I" in text and "GTX580" in text


def test_slc_sweep_study_rows_cover_grid():
    result = SLCSweepStudy(
        workloads=("NN",), schemes=("E2MC", "TSLC-OPT"), scale=TINY,
        compute_error=False,
    ).run()
    assert [(r["workload"], r["scheme"]) for r in result.rows] == [
        ("NN", "TSLC-OPT"),
        ("GM", "TSLC-OPT"),
    ]
    assert result.rows[0]["speedup"] == result.rows[1]["speedup"]  # one workload


def test_threshold_ablation_monotonic():
    result = ThresholdAblationStudy(thresholds=(0, 16), scale=SMALL).run()
    data = result.data
    assert data[0][0] == 0.0  # threshold 0 converts nothing
    assert data[16][0] >= data[0][0]
    assert data[16][1] <= data[0][1]  # bursts can only shrink


# --------------------------------------------------------------------- #
# the three new sweep studies, end-to-end on both store backends


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_response_surface_end_to_end(tmp_path, backend):
    study = ResponseSurfaceStudy(
        workloads=("NN",),
        schemes=("TSLC-OPT",),
        mags=(16, 32),
        thresholds=(8, 16),
        scale=SMALL,
        compute_error=False,
    )
    result = study.run(store=tmp_path / "store", store_backend=backend)
    # 4 surface cells + one baseline per MAG
    assert result.meta["n_jobs"] == 6
    assert len(result.rows) == 4
    for row in result.rows:
        assert row["gm_speedup"] > 0
        assert 0 < row["gm_bandwidth"] <= 1.05
        # timing-only surface: no measured-looking 0.0 error columns
        assert "mean_error_percent" not in row
        assert "max_error_percent" not in row
    surface = result.data
    # a larger threshold can only save bandwidth at fixed MAG
    for mag in (16, 32):
        assert (
            surface[("TSLC-OPT", mag, 16)]["gm_bandwidth"]
            <= surface[("TSLC-OPT", mag, 8)]["gm_bandwidth"]
        )
    # identical re-run on the same backend: pure cache
    rerun = study.run(store=tmp_path / "store", store_backend=backend)
    assert rerun.meta["n_executed"] == 0 and rerun.meta["n_cached"] == 6
    assert rerun.rows == result.rows
    expected_file = "results.sqlite" if backend == "sqlite" else "results.jsonl"
    assert (tmp_path / "store" / expected_file).exists()


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_seed_variance_end_to_end(tmp_path, backend):
    study = SeedVarianceStudy(
        workloads=("NN",),
        schemes=("TSLC-OPT",),
        seeds=(2019, 2020),
        scale=SMALL,
    )
    result = study.run(store=tmp_path / "store", store_backend=backend)
    assert result.meta["n_jobs"] == 4  # 2 seeds x (baseline + TSLC-OPT)
    by_key = {(r["workload"], r["metric"]): r for r in result.rows}
    for metric in ("speedup", "error_percent", "bandwidth", "energy", "edp"):
        row = by_key[("NN", metric)]
        assert row["n_seeds"] == 2
        assert row["min"] <= row["mean"] <= row["max"]
        assert row["std"] >= 0.0
    # the GM band exists and matches the per-seed studies
    gm = by_key[("GM", "speedup")]
    per_seed = result.data["per_seed"][("GM", "TSLC-OPT", "speedup")]
    assert len(per_seed) == 2
    assert gm["mean"] == pytest.approx(sum(per_seed) / 2)
    assert gm["min"] == min(per_seed) and gm["max"] == max(per_seed)
    # each seed was normalized to its own baseline
    studies = result.data["studies"]
    assert set(studies) == {2019, 2020}
    assert per_seed[0] == studies[2019].geomean("speedup", "TSLC-OPT")


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_gpu_scaling_end_to_end(tmp_path, backend):
    study = GPUScalingStudy(
        workloads=("NN",),
        sm_counts=(8, 16),
        bandwidth_scales=(0.5, 1.0),
        scale=SMALL,
    )
    # the default config point is shared by both axes: 3 configs x 2 schemes
    assert len(study.jobs()) == 6
    result = study.run(store=tmp_path / "store", store_backend=backend)
    assert result.meta["n_executed"] == 6
    by_point = {(r["axis"], r["value"]): r for r in result.rows if r["workload"] == "NN"}
    # halving the bandwidth makes the run slower and TSLC at least as useful
    default_gbps = 192.4
    slow = by_point[("memory_bandwidth_gbps", default_gbps * 0.5)]
    fast = by_point[("memory_bandwidth_gbps", default_gbps)]
    assert slow["exec_time_s"] > fast["exec_time_s"]
    assert slow["speedup"] >= fast["speedup"] * 0.99
    # the shared default point reports identical numbers on both axes
    assert by_point[("num_sms", 16)]["speedup"] == fast["speedup"]
    gm_rows = [r for r in result.rows if r["workload"] == "GM"]
    assert len(gm_rows) == 4  # 2 SM points + 2 bandwidth points


def test_response_surface_reports_error_stats_when_computed(tmp_path):
    result = ResponseSurfaceStudy(
        workloads=("NN",), schemes=("TSLC-OPT",), mags=(32,), thresholds=(16,),
        scale=SMALL, compute_error=True,
    ).run(store=tmp_path)
    (row,) = result.rows
    assert row["mean_error_percent"] >= 0.0
    assert row["max_error_percent"] >= row["mean_error_percent"]


def test_new_studies_cache_across_backends_independently(tmp_path):
    """JSONL and SQLite stores of the same grid hold equivalent records."""
    study = ResponseSurfaceStudy(
        workloads=("NN",), schemes=("TSLC-OPT",), mags=(32,), thresholds=(16,),
        scale=SMALL, compute_error=False,
    )
    study.run(store=tmp_path / "a", store_backend="jsonl")
    study.run(store=tmp_path / "b", store_backend="sqlite")
    a = {r.job.content_hash: r.to_dict() for r in ResultStore(tmp_path / "a").records()}
    b = {r.job.content_hash: r.to_dict() for r in ResultStore(tmp_path / "b").records()}
    for record in (*a.values(), *b.values()):
        # wall-clock noise: elapsed differs per run, and started_at (second
        # resolution) flakes whenever the two runs straddle a second boundary
        record["elapsed_s"] = 0.0
        record.get("provenance", {}).pop("started_at", None)
    assert a == b
    # and campaign diff agrees they are drift-free
    assert cli_main(
        ["campaign", "diff", str(tmp_path / "a"), str(tmp_path / "b")]
    ) == 0


# --------------------------------------------------------------------- #
# baseline-scheme validation (caught at construction, not after simulating)


def test_sweep_studies_validate_baseline_scheme_up_front():
    with pytest.raises(ValueError, match="must include the E2MC baseline"):
        SLCSweepStudy(schemes=("TSLC-OPT",))
    with pytest.raises(ValueError, match="simulated implicitly"):
        ResponseSurfaceStudy(schemes=("E2MC", "TSLC-OPT"))
    with pytest.raises(ValueError, match="simulated implicitly"):
        SeedVarianceStudy(schemes=("e2mc",))
    with pytest.raises(ValueError, match="simulated implicitly"):
        GPUScalingStudy(scheme="E2MC")


def test_cli_reports_baseline_scheme_error_without_simulating(capsys):
    code = cli_main(
        ["study", "run", "slc-sweep", "--set", "schemes=TSLC-OPT", "--quiet"]
    )
    assert code == 2
    assert "must include the E2MC baseline" in capsys.readouterr().err


def test_fig7_fig8_specs_delegate_to_slc_sweep():
    """The figure grids are SLCSweepStudy's grid (incl. the MAG knob)."""
    fig7_spec = Fig7Study(workloads=("NN",), mag_bytes=64, scale=TINY).spec()
    sweep_spec = SLCSweepStudy(
        workloads=("NN",), mag_bytes=64, scale=TINY, compute_error=True
    ).spec()
    assert fig7_spec == sweep_spec
    fig8_spec = Fig8Study(workloads=("NN",), scale=TINY).spec()
    assert fig8_spec.compute_error is False
    assert fig8_spec.schemes == sweep_spec.schemes


# --------------------------------------------------------------------- #
# the study CLI


def test_cli_coerce_param_types():
    assert coerce_param(Fig7Study, "scale", "0.5") == 0.5
    assert coerce_param(Fig7Study, "workloads", "bs, nn") == ("bs", "nn")
    assert coerce_param(Fig7Study, "seed", "7") == 7
    assert coerce_param(Fig9Study, "mags", "16,32") == (16, 32)
    assert coerce_param(ResponseSurfaceStudy, "compute_error", "false") is False
    assert coerce_param(GPUScalingStudy, "bandwidth_scales", "0.5,2") == (0.5, 2.0)
    with pytest.raises(KeyError, match="no knob"):
        coerce_param(Fig7Study, "bogus", "1")


def test_cli_coerce_param_fractions():
    # None-default field (scale) and float-element tuple field both parse a/b
    assert coerce_param(Fig7Study, "scale", "1/2048") == 1.0 / 2048.0
    assert coerce_param(GPUScalingStudy, "bandwidth_scales", "1/2,2") == (0.5, 2.0)
    with pytest.raises(ValueError, match="zero denominator"):
        coerce_param(GPUScalingStudy, "bandwidth_scales", "1/0")
    # a slash string that is not a fraction stays a string on None defaults
    assert coerce_param(Fig7Study, "scale", "a/b") == "a/b"


def test_cli_build_study():
    study = build_study("fig9", ["workloads=NN", "mags=32", "scale=0.001"])
    assert isinstance(study, Fig9Study)
    assert study.workloads == ("NN",) and study.mags == (32,)
    with pytest.raises(ValueError, match="key=value"):
        build_study("fig9", ["workloads"])


def test_cli_study_list(capsys):
    assert cli_main(["study", "list", "-v"]) == 0
    out = capsys.readouterr().out
    for name in EXPECTED_STUDIES:
        assert name in out
    assert "knobs:" in out


def test_cli_study_run_and_export(tmp_path, capsys):
    store = str(tmp_path / "store")
    args = [
        "study", "run", "slc-sweep",
        "--set", "workloads=NN", "--set", "schemes=E2MC,TSLC-OPT",
        "--set", f"scale={TINY}", "--set", "compute_error=false",
        "--dir", store, "--quiet",
    ]
    assert cli_main(args) == 0
    out = capsys.readouterr().out
    assert "NN" in out and "TSLC-OPT" in out

    csv_path = tmp_path / "sweep.csv"
    assert cli_main([
        "study", "export", "slc-sweep",
        "--set", "workloads=NN", "--set", "schemes=E2MC,TSLC-OPT",
        "--set", f"scale={TINY}", "--set", "compute_error=false",
        "--dir", store, "--quiet", "--csv", str(csv_path),
    ]) == 0
    with csv_path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert [row["workload"] for row in rows] == ["NN", "GM"]
    assert float(rows[0]["speedup"]) > 0

    # a re-run over the same store is served entirely from it
    capsys.readouterr()
    assert cli_main(args) == 0
    assert "2 cached, 0 executed" in capsys.readouterr().err


def test_cli_study_run_unknown_study_and_knob(capsys):
    assert cli_main(["study", "run", "fig42", "--quiet"]) == 2
    assert "unknown study" in capsys.readouterr().err
    assert cli_main(["study", "run", "fig7", "--set", "bogus=1", "--quiet"]) == 2
    assert "no knob" in capsys.readouterr().err


def test_cli_study_run_table1_no_store(capsys):
    assert cli_main(["study", "run", "table1", "--quiet"]) == 0
    assert "Table I" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# the tournament study


def test_pareto_frontier_non_dominated_set():
    # (speedup up, ratio up, error down, area down)
    points = {
        "a": (1.2, 2.0, 0.0, 0.10),  # frontier
        "b": (1.2, 1.5, 0.0, 0.20),  # dominated by a
        "c": (1.5, 1.8, 3.0, 0.05),  # frontier (fastest, cheapest)
        "d": (1.0, 2.5, 0.0, 0.30),  # frontier (best ratio)
        "e": (1.0, 2.5, 1.0, 0.30),  # dominated by d
    }
    assert pareto_frontier(points) == ["a", "c", "d"]
    assert pareto_frontier({"only": (1.0, 1.0, 0.0, 0.1)}) == ["only"]
    # two identical points dominate neither; both survive
    twins = {"x": (1.0, 1.0, 0.0, 0.1), "y": (1.0, 1.0, 0.0, 0.1)}
    assert pareto_frontier(twins) == ["x", "y"]


def test_tournament_requires_baseline():
    with pytest.raises(ValueError, match="E2MC baseline"):
        TournamentStudy(schemes=("BDI", "FPC"))


def test_tournament_jobs_dedupe_lossless_across_thresholds():
    study = TournamentStudy(
        workloads=WORKLOADS, schemes=("E2MC", "BDI"), mags=(16, 32), scale=TINY
    )
    jobs = study.jobs()
    # lossless schemes pin threshold=0, so each (workload, scheme, mag) is
    # exactly one cell despite the per-MAG coupled thresholds
    assert len(jobs) == len(WORKLOADS) * 2 * 2
    assert all(job.lossy_threshold_bytes == 0 for job in jobs)
    assert all(not job.compute_error for job in jobs)


def test_tournament_end_to_end(tmp_path):
    schemes = ("E2MC", "BDI", "BPC", "TSLC-OPT")
    study = TournamentStudy(
        workloads=WORKLOADS,
        schemes=schemes,
        mags=(32,),
        scale=TINY,
        compute_error=False,
    )
    result = study.run(store=str(tmp_path / "store"))

    per_cell = [r for r in result.rows if r["workload"] != "GM"]
    gm = [r for r in result.rows if r["workload"] == "GM"]
    # every scheme x workload cell present, plus one GM row per scheme
    assert {(r["workload"], r["scheme"]) for r in per_cell} == {
        (w, s) for w in WORKLOADS for s in schemes
    }
    assert {r["scheme"] for r in gm} == set(schemes)

    for row in per_cell:
        assert row["speedup"] > 0
        assert row["compression_ratio"] >= 1.0 or math.isnan(row["compression_ratio"])
    baseline = [r for r in per_cell if r["scheme"] == "E2MC"]
    assert all(r["speedup"] == pytest.approx(1.0) for r in baseline)

    # GM rows carry the hardware axes and the pareto verdict
    for row in gm:
        assert row["area_mm2"] > 0 and row["power_mw"] > 0
        assert isinstance(row["pareto"], bool)
    frontier = result.data["frontier"][32]
    assert frontier == [r["scheme"] for r in gm if r["pareto"]]
    assert frontier  # never empty: something is always non-dominated

    # the formatted table names the frontier
    assert "Pareto frontier @ MAG 32 B" in study.format(result)


# --------------------------------------------------------------------- #
# the fidelity study


def test_fidelity_requires_baseline():
    from repro.studies import FidelityStudy

    with pytest.raises(ValueError, match="E2MC baseline"):
        FidelityStudy(schemes=("TSLC-OPT",))


def test_fidelity_end_to_end(tmp_path):
    from repro.studies import FidelityStudy

    schemes = ("E2MC", "TSLC-OPT")
    study = FidelityStudy(
        workloads=("NN", "WEATHER"), schemes=schemes, mags=(16,), scale=SMALL
    )
    result = study.run(store=str(tmp_path / "store"))

    per_cell = [r for r in result.rows if r["workload"] != "WORST"]
    worst = [r for r in result.rows if r["workload"] == "WORST"]
    assert {(r["workload"], r["scheme"]) for r in per_cell} == {
        (w, s) for w in ("NN", "WEATHER") for s in schemes
    }
    assert {r["scheme"] for r in worst} == set(schemes)

    for row in per_cell:
        assert -1.0 <= row["pearson"] <= 1.0
        assert 0.0 <= row["ks_stat"] <= 1.0
        assert row["iqr_mean_error"] >= 0.0
        assert row["iqr_max_error"] >= row["iqr_mean_error"]
        assert row["speedup"] > 0
    # the family taxonomy is threaded through to the export
    families = {r["workload"]: r["family"] for r in per_cell}
    assert families == {"NN": "paper", "WEATHER": "science"}
    # lossless rows synthesize a perfect panel
    for row in per_cell:
        if row["scheme"] == "E2MC":
            assert row["pearson"] == 1.0
            assert row["ks_stat"] == 0.0
            assert row["iqr_mean_error"] == 0.0
    # lossy rows at MAG 16 actually damage something on these workloads
    lossy = [r for r in per_cell if r["scheme"] == "TSLC-OPT"]
    assert any(r["pearson"] < 1.0 for r in lossy)
    assert "worst case @ MAG 16 B" in study.format(result)


def test_cli_study_run_tournament(tmp_path, capsys):
    csv_path = tmp_path / "tournament.csv"
    assert cli_main([
        "study", "export", "tournament",
        "--set", "workloads=NN", "--set", "schemes=E2MC,CPACK",
        "--set", "mags=32", "--set", "scale=1/2048",
        "--set", "compute_error=false",
        "--dir", str(tmp_path / "store"), "--quiet", "--csv", str(csv_path),
    ]) == 0
    with csv_path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert {(r["workload"], r["scheme"]) for r in rows} == {
        ("NN", "E2MC"), ("NN", "CPACK"), ("GM", "E2MC"), ("GM", "CPACK"),
    }
    assert all(float(r["compression_ratio"]) > 1.0 for r in rows)
