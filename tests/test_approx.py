"""Tests for the safe-to-approximate memory-region model."""

import numpy as np
import pytest

from repro.approx import ApproxRegionRegistry, annotate_regions
from repro.workloads.base import Region


def test_malloc_assigns_aligned_addresses():
    registry = ApproxRegionRegistry()
    first = registry.malloc("a", 100, safe_to_approx=True)
    second = registry.malloc("b", 200)
    assert first.base_address == 0
    assert second.base_address % 128 == 0
    assert second.base_address >= first.end_address
    assert len(registry) == 2


def test_malloc_validation():
    registry = ApproxRegionRegistry()
    with pytest.raises(ValueError):
        registry.malloc("bad", 0)
    with pytest.raises(ValueError):
        registry.malloc("bad", 10, alignment=0)


def test_safety_queries():
    registry = ApproxRegionRegistry(default_threshold_bytes=16)
    safe = registry.malloc("safe", 256, safe_to_approx=True)
    unsafe = registry.malloc("unsafe", 256, safe_to_approx=False)
    assert registry.is_safe_to_approx(safe.base_address)
    assert registry.is_safe_to_approx(safe.end_address - 1)
    assert not registry.is_safe_to_approx(unsafe.base_address)
    assert not registry.is_safe_to_approx(10_000_000)
    assert registry.approximable_count() == 1


def test_per_allocation_threshold():
    registry = ApproxRegionRegistry(default_threshold_bytes=16)
    custom = registry.malloc("custom", 128, safe_to_approx=True, threshold_bytes=8)
    default = registry.malloc("default", 128, safe_to_approx=True)
    unsafe = registry.malloc("unsafe", 128)
    assert registry.threshold_for(custom.base_address) == 8
    assert registry.threshold_for(default.base_address) == 16
    assert registry.threshold_for(unsafe.base_address) == 0
    assert registry.threshold_for(99_999_999) == 0


def test_free_removes_allocation():
    registry = ApproxRegionRegistry()
    allocation = registry.malloc("a", 64, safe_to_approx=True)
    registry.free(allocation)
    assert registry.find(allocation.base_address) is None
    assert len(registry) == 0


def test_allocation_validation():
    from repro.approx.regions import ApproxAllocation

    with pytest.raises(ValueError):
        ApproxAllocation("x", 0, 0)
    with pytest.raises(ValueError):
        ApproxAllocation("x", -1, 10)
    with pytest.raises(ValueError):
        ApproxAllocation("x", 0, 10, threshold_bytes=-1)


def test_annotate_regions_mirrors_workload_flags():
    regions = {
        "data": Region("data", np.zeros(64, dtype=np.float32), approximable=True),
        "output": Region("output", np.zeros(64, dtype=np.float32), approximable=False),
    }
    registry = annotate_regions(regions, threshold_bytes=16)
    assert len(registry) == 2
    assert registry.approximable_count() == 1
    allocations = {a.name: a for a in registry.allocations()}
    assert allocations["data"].safe_to_approx
    assert not allocations["output"].safe_to_approx
    assert allocations["data"].threshold_bytes == 16
