"""Tests for the MAG-aware compression-ratio accounting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.compression.stats import (
    CompressionStats,
    bursts_for_size,
    effective_compressed_bytes,
    effective_compression_ratio,
    extra_bytes_above_mag,
    geometric_mean,
    raw_compression_ratio,
)


def test_bursts_for_size_basic():
    assert bursts_for_size(0) == 1
    assert bursts_for_size(1) == 1
    assert bursts_for_size(32) == 1
    assert bursts_for_size(33) == 2
    assert bursts_for_size(128) == 4


def test_bursts_for_size_rejects_negative():
    with pytest.raises(ValueError):
        bursts_for_size(-1)
    with pytest.raises(ValueError):
        bursts_for_size(10, mag_bytes=0)


def test_effective_size_is_mag_multiple():
    assert effective_compressed_bytes(36) == 64
    assert effective_compressed_bytes(64) == 64
    assert effective_compressed_bytes(5) == 32


def test_paper_example_36_bytes():
    """The paper's introduction example: 36 B compressed -> 64 B fetched."""
    raw = raw_compression_ratio(128, 36)
    effective = effective_compression_ratio(128, 36)
    assert raw == pytest.approx(3.56, abs=0.01)
    assert effective == pytest.approx(2.0)


def test_extra_bytes_above_mag():
    assert extra_bytes_above_mag(36) == 4
    assert extra_bytes_above_mag(64) == 0
    assert extra_bytes_above_mag(20) == 0  # below one MAG is binned at 0
    assert extra_bytes_above_mag(95) == 31


def test_raw_ratio_rejects_zero():
    with pytest.raises(ValueError):
        raw_compression_ratio(128, 0)


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)


def test_geometric_mean_rejects_empty_and_nonpositive():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_compression_stats_accumulation():
    stats = CompressionStats()
    stats.add_block(36 * 8)   # effective 64
    stats.add_block(64 * 8)   # effective 64
    stats.add_block(200 * 8)  # clamped to 128 (uncompressed)
    assert stats.total_blocks == 3
    assert stats.uncompressed_blocks == 1
    assert stats.total_effective_bytes == 64 + 64 + 128
    assert stats.total_bursts == 2 + 2 + 4
    assert stats.raw_ratio == pytest.approx(3 * 128 / (36 + 64 + 128))
    assert stats.effective_ratio == pytest.approx(3 * 128 / 256)


def test_compression_stats_histogram_bins():
    stats = CompressionStats()
    stats.add_block(36 * 8)
    stats.add_block(128 * 8)
    histogram = stats.extra_byte_distribution()
    assert histogram[4] == pytest.approx(0.5)
    assert histogram[32] == pytest.approx(0.5)  # uncompressed bin


def test_compression_stats_effective_never_exceeds_raw():
    stats = CompressionStats()
    for size_bytes in (10, 33, 64, 100, 127, 128):
        stats.add_block(size_bytes * 8)
    assert stats.effective_ratio <= stats.raw_ratio


def test_compression_stats_merge():
    a = CompressionStats()
    b = CompressionStats()
    a.add_block(40 * 8)
    b.add_block(70 * 8)
    merged = a.merge(b)
    assert merged.total_blocks == 2
    assert merged.total_effective_bytes == 64 + 96


def test_compression_stats_merge_geometry_mismatch():
    a = CompressionStats(mag_bytes=32)
    b = CompressionStats(mag_bytes=64)
    with pytest.raises(ValueError):
        a.merge(b)


def test_compression_stats_rejects_negative():
    with pytest.raises(ValueError):
        CompressionStats().add_block(-1)


def test_compression_stats_non_divisor_mag_bursts():
    """Regression: MAGs that do not divide the block size must not undercount.

    A 128 B block fetched at a 48 B MAG needs ceil(128/48) = 3 bursts; the old
    accounting clamped the effective size at the block size and floor-divided,
    reporting only 2.
    """
    stats = CompressionStats(block_size_bytes=128, mag_bytes=48)
    stats.add_block(128 * 8)  # uncompressed block
    assert stats.total_bursts == 3
    assert stats.total_effective_bytes == 3 * 48
    stats.add_block(50 * 8)  # 50 B -> 2 bursts of 48 B
    assert stats.total_bursts == 3 + 2
    assert stats.total_effective_bytes == 3 * 48 + 2 * 48
    # bursts must always match bursts_for_size on the clamped size
    assert bursts_for_size(128, 48) == 3
    assert bursts_for_size(50, 48) == 2


@given(
    st.lists(st.integers(min_value=0, max_value=300 * 8), min_size=1, max_size=64),
    st.sampled_from([16, 32, 48, 64, 96]),
)
def test_add_blocks_matches_add_block(sizes_bits, mag_bytes):
    """The vectorized batch accumulator is exactly the scalar loop."""
    scalar = CompressionStats(block_size_bytes=128, mag_bytes=mag_bytes)
    for size in sizes_bits:
        scalar.add_block(size)
    batch = CompressionStats(block_size_bytes=128, mag_bytes=mag_bytes)
    batch.add_blocks(sizes_bits)
    assert batch.total_blocks == scalar.total_blocks
    assert batch.total_original_bytes == scalar.total_original_bytes
    assert batch.total_compressed_bytes == pytest.approx(scalar.total_compressed_bytes)
    assert batch.total_effective_bytes == scalar.total_effective_bytes
    assert batch.total_bursts == scalar.total_bursts
    assert batch.uncompressed_blocks == scalar.uncompressed_blocks
    assert batch.extra_byte_histogram == scalar.extra_byte_histogram


def test_add_blocks_rejects_negative_and_accepts_empty():
    stats = CompressionStats()
    stats.add_blocks([])
    assert stats.total_blocks == 0
    with pytest.raises(ValueError):
        stats.add_blocks([8, -1])


@given(st.integers(0, 2048), st.sampled_from([16, 32, 64]))
def test_effective_size_invariants(compressed_bits, mag):
    """Property: effective size is a MAG multiple ≥ max(compressed, one MAG)."""
    compressed_bytes = compressed_bits / 8
    effective = effective_compressed_bytes(compressed_bytes, mag)
    assert effective % mag == 0
    assert effective >= mag
    assert effective >= compressed_bytes
    assert effective - compressed_bytes < mag or compressed_bytes < mag


@given(st.integers(0, 128), st.sampled_from([16, 32, 64]))
def test_extra_bytes_bounded_by_mag(compressed_bytes, mag):
    """Property: the extra-bytes bin is always within [0, MAG)."""
    assert 0 <= extra_bytes_above_mag(compressed_bytes, mag) < mag
