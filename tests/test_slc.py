"""Tests for the SLC compressor: mode decisions, invariants and round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.base import CompressionError
from repro.core import SLCCompressor, SLCConfig, SLCMode, SLCVariant
from repro.core.header import header_size_bits
from repro.utils.blocks import block_to_symbols, symbols_to_block
from tests.conftest import make_float_blocks


def test_config_validation():
    with pytest.raises(ValueError):
        SLCConfig(mag_bytes=48)
    with pytest.raises(ValueError):
        SLCConfig(lossy_threshold_bytes=64)
    with pytest.raises(ValueError):
        SLCConfig(block_size_bytes=0)
    with pytest.raises(ValueError):
        SLCConfig(symbol_bytes=3)
    with pytest.raises(ValueError):
        SLCConfig(max_approx_symbols=0)


def test_config_derived_properties():
    config = SLCConfig()
    assert config.symbols_per_block == 64
    assert config.element_symbols == 2
    assert config.max_bursts == 4
    assert config.mag_bits == 256
    assert config.lossy_threshold_bits == 128
    assert config.uses_prediction
    assert config.uses_optimized_tree


def test_config_with_variant_and_mag():
    config = SLCConfig()
    simp = config.with_variant(SLCVariant.SIMP)
    assert simp.variant is SLCVariant.SIMP
    assert not simp.uses_prediction
    mag64 = config.with_mag(64)
    assert mag64.mag_bytes == 64
    assert mag64.lossy_threshold_bytes == 32


def test_bit_budget_boundaries(trained_slc):
    config = trained_slc.config
    assert trained_slc.bit_budget(10) == config.mag_bits
    assert trained_slc.bit_budget(256) == 256
    assert trained_slc.bit_budget(700) == 512
    assert trained_slc.bit_budget(1023) == 768
    assert trained_slc.bit_budget(2000) == config.block_size_bits


def test_untrained_slc_stores_uncompressed():
    slc = SLCCompressor()
    result = slc.compress(bytes(128))
    assert result.mode is SLCMode.UNCOMPRESSED
    assert result.bursts == 4
    assert slc.decompress(result) == bytes(128)


def test_wrong_block_size_rejected(trained_slc):
    with pytest.raises(CompressionError):
        trained_slc.compress(bytes(64))
    with pytest.raises(CompressionError):
        trained_slc.analyze(bytes(64))


def test_random_block_uncompressed(trained_slc):
    block = np.random.default_rng(0).bytes(128)
    decision = trained_slc.analyze(block)
    assert decision.mode is SLCMode.UNCOMPRESSED
    assert decision.bursts == 4


def test_lossless_roundtrip_is_exact(trained_slc, float_blocks):
    for block in float_blocks[:32]:
        result = trained_slc.compress(block, approximable=False)
        assert result.mode in (SLCMode.LOSSLESS, SLCMode.UNCOMPRESSED)
        assert trained_slc.decompress(result) == block


def test_not_approximable_never_lossy(trained_slc, float_blocks):
    for block in float_blocks:
        decision = trained_slc.analyze(block, approximable=False)
        assert decision.mode is not SLCMode.LOSSY


def test_some_blocks_take_lossy_path(trained_slc, float_blocks):
    decisions = [trained_slc.analyze(block) for block in float_blocks]
    assert any(d.mode is SLCMode.LOSSY for d in decisions)


def test_lossy_block_fits_bit_budget(trained_slc, float_blocks):
    for block in float_blocks:
        decision = trained_slc.analyze(block)
        if decision.mode is SLCMode.LOSSY:
            assert decision.stored_size_bits <= decision.bit_budget_bits
            assert decision.bursts == decision.bit_budget_bits // 256
            assert decision.bits_removed >= decision.extra_bits


def test_lossy_saves_bursts_vs_lossless(trained_slc, float_blocks):
    from repro.compression.stats import bursts_for_size

    for block in float_blocks:
        decision = trained_slc.analyze(block)
        if decision.mode is SLCMode.LOSSY:
            lossless_bursts = bursts_for_size(decision.comp_size_bits / 8, 32)
            assert decision.bursts < lossless_bursts


def test_threshold_respected(trained_slc, float_blocks):
    for block in float_blocks:
        decision = trained_slc.analyze(block)
        if decision.mode is SLCMode.LOSSY:
            assert decision.extra_bits <= trained_slc.config.lossy_threshold_bits


def test_zero_threshold_never_lossy(float_blocks):
    slc = SLCCompressor(SLCConfig(lossy_threshold_bytes=0))
    slc.train(float_blocks)
    assert all(
        slc.analyze(block).mode is not SLCMode.LOSSY for block in float_blocks
    )


def test_max_approx_symbols_respected(trained_slc, float_blocks):
    for block in float_blocks:
        decision = trained_slc.analyze(block)
        assert decision.approx_count <= trained_slc.config.max_approx_symbols


def test_analyze_matches_compress(trained_slc, float_blocks):
    for block in float_blocks[:48]:
        decision = trained_slc.analyze(block)
        compressed = trained_slc.compress(block)
        assert compressed.mode == decision.mode
        assert compressed.bursts == decision.bursts
        assert compressed.approx_start == decision.approx_start
        assert compressed.approx_count == decision.approx_count
        if decision.mode is not SLCMode.UNCOMPRESSED:
            assert compressed.compressed_size_bits == decision.stored_size_bits


def test_apply_decision_matches_decompress(trained_slc, float_blocks):
    for block in float_blocks[:48]:
        decision = trained_slc.analyze(block)
        compressed = trained_slc.compress(block)
        assert trained_slc.apply_decision(block, decision) == trained_slc.decompress(
            compressed
        )


def test_lossy_only_changes_truncated_symbols(trained_slc, float_blocks):
    for block in float_blocks:
        decision = trained_slc.analyze(block)
        if decision.mode is not SLCMode.LOSSY:
            continue
        degraded = trained_slc.apply_decision(block, decision)
        original_symbols = block_to_symbols(block)
        degraded_symbols = block_to_symbols(degraded)
        start, count = decision.approx_start, decision.approx_count
        assert degraded_symbols[:start] == original_symbols[:start]
        assert degraded_symbols[start + count:] == original_symbols[start + count:]


def test_simp_fills_with_zeros(float_blocks):
    slc = SLCCompressor(SLCConfig(variant=SLCVariant.SIMP))
    slc.train(float_blocks)
    for block in float_blocks:
        decision = slc.analyze(block)
        if decision.mode is SLCMode.LOSSY:
            degraded = block_to_symbols(slc.apply_decision(block, decision))
            run = degraded[decision.approx_start:decision.approx_start + decision.approx_count]
            assert all(symbol == 0 for symbol in run)
            return
    pytest.fail("no lossy block found for TSLC-SIMP")


def test_pred_fills_with_neighbouring_values(float_blocks):
    slc = SLCCompressor(SLCConfig(variant=SLCVariant.PRED))
    slc.train(float_blocks)
    checked = False
    for block in float_blocks:
        decision = slc.analyze(block)
        if decision.mode is not SLCMode.LOSSY or decision.approx_start == 0:
            continue
        original = np.frombuffer(block, dtype=np.float32)
        degraded = np.frombuffer(slc.apply_decision(block, decision), dtype=np.float32)
        changed = np.flatnonzero(original != degraded)
        if changed.size == 0:
            continue
        # predicted values stay within the block's value range (value similarity)
        assert degraded[changed].min() >= original.min() - abs(original.min())
        checked = True
    assert checked


def test_pred_error_not_worse_than_simp_on_average(float_blocks):
    configs = {
        variant: SLCCompressor(SLCConfig(variant=variant))
        for variant in (SLCVariant.SIMP, SLCVariant.PRED)
    }
    for slc in configs.values():
        slc.train(float_blocks)
    errors = {}
    for variant, slc in configs.items():
        total = 0.0
        for block in float_blocks:
            decision = slc.analyze(block)
            if decision.mode is not SLCMode.LOSSY:
                continue
            original = np.frombuffer(block, dtype=np.float32).astype(np.float64)
            degraded = np.frombuffer(
                slc.apply_decision(block, decision), dtype=np.float32
            ).astype(np.float64)
            total += float(np.mean(np.abs(original - degraded)))
        errors[variant] = total
    assert errors[SLCVariant.PRED] <= errors[SLCVariant.SIMP]


def test_opt_variant_uses_extra_nodes_sometimes(float_blocks):
    slc = SLCCompressor(SLCConfig(variant=SLCVariant.OPT))
    slc.train(float_blocks)
    tree = slc.build_tree(float_blocks[0])
    assert tree.extra_node_count(2) > 0
    assert tree.extra_node_count(3) > 0


def test_opt_overshoot_not_worse_than_pred(float_blocks):
    pred = SLCCompressor(SLCConfig(variant=SLCVariant.PRED))
    opt = SLCCompressor(SLCConfig(variant=SLCVariant.OPT))
    pred.train(float_blocks)
    opt.train(float_blocks)
    pred_overshoot = 0
    opt_overshoot = 0
    for block in float_blocks:
        pred_decision = pred.analyze(block)
        opt_decision = opt.analyze(block)
        pred_overshoot += pred_decision.overshoot_bits
        opt_overshoot += opt_decision.overshoot_bits
    assert opt_overshoot <= pred_overshoot


def test_lossy_header_accounted(trained_slc, float_blocks):
    lossless_header = header_size_bits(False)
    lossy_header = header_size_bits(True)
    assert lossy_header > lossless_header
    for block in float_blocks:
        result = trained_slc.compress(block)
        if result.mode is SLCMode.LOSSY:
            assert result.metadata["header_bits"] == lossy_header
            return
    pytest.fail("no lossy block found")


def test_roundtrip_variants(slc_variant, float_blocks):
    slc = SLCCompressor(SLCConfig(variant=slc_variant))
    slc.train(float_blocks)
    for block in float_blocks[:24]:
        result = slc.compress(block)
        rebuilt = slc.decompress(result)
        assert len(rebuilt) == 128
        if result.mode is not SLCMode.LOSSY:
            assert rebuilt == block


def test_baseline_mismatch_rejected():
    from repro.compression.e2mc import E2MCCompressor

    with pytest.raises(CompressionError):
        SLCCompressor(SLCConfig(), baseline=E2MCCompressor(block_size_bytes=64))
    with pytest.raises(CompressionError):
        SLCCompressor(SLCConfig(symbol_bytes=2), baseline=E2MCCompressor(symbol_bytes=1))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 65535), min_size=64, max_size=64), st.booleans())
def test_slc_invariants_property(trained_slc, symbols, approximable):
    """Property: SLC never increases the burst count and stays within budget."""
    block = symbols_to_block(symbols)
    decision = trained_slc.analyze(block, approximable=approximable)
    assert 1 <= decision.bursts <= 4
    assert decision.stored_size_bits <= trained_slc.config.block_size_bits
    if decision.mode is SLCMode.LOSSY:
        assert approximable
        assert decision.stored_size_bits <= decision.bit_budget_bits
    degraded = trained_slc.apply_decision(block, decision)
    assert len(degraded) == 128
    if decision.mode is not SLCMode.LOSSY:
        assert degraded == block
