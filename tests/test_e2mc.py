"""Tests for the E2MC entropy compressor (the SLC baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.base import CompressionError, DecompressionError
from repro.compression.e2mc import ESCAPE_SYMBOL, E2MCCompressor, SymbolModel
from repro.utils.blocks import block_to_symbols


def test_untrained_compressor_stores_uncompressed():
    compressor = E2MCCompressor()
    result = compressor.compress(bytes(128))
    assert result.compressed_size_bits == 128 * 8
    assert result.metadata.get("uncompressed")


def test_train_then_compress_reduces_size(trained_e2mc, float_blocks):
    sizes = [trained_e2mc.compress(block).compressed_size_bits for block in float_blocks]
    assert sum(sizes) < len(float_blocks) * 128 * 8


def test_roundtrip_trained_blocks(trained_e2mc, float_blocks):
    for block in float_blocks[:48]:
        assert trained_e2mc.roundtrip(block) == block


def test_roundtrip_unseen_symbols_via_escape(trained_e2mc):
    rng = np.random.default_rng(99)
    block = rng.bytes(128)
    assert trained_e2mc.roundtrip(block) == block


def test_symbol_code_lengths_match_payload_size(trained_e2mc, float_blocks):
    block = float_blocks[0]
    lengths = trained_e2mc.symbol_code_lengths(block)
    assert len(lengths) == 64
    assert sum(lengths) == trained_e2mc.payload_size_bits(block)
    assert all(length > 0 for length in lengths)


def test_compressed_size_is_payload_plus_header(trained_e2mc, float_blocks):
    block = float_blocks[1]
    result = trained_e2mc.compress(block)
    if not result.metadata.get("uncompressed"):
        assert (
            result.compressed_size_bits
            == result.metadata["payload_bits"] + trained_e2mc.header_bits
        )


def test_header_bits_formula():
    compressor = E2MCCompressor(block_size_bytes=128, num_pdw=4)
    # three pointers of 7 bits each (2**7 = 128 bytes)
    assert compressor.header_bits == 3 * 7
    no_header = E2MCCompressor(include_header=False)
    assert no_header.header_bits == 0


def test_symbols_per_block():
    assert E2MCCompressor().symbols_per_block == 64
    assert E2MCCompressor(symbol_bytes=1).symbols_per_block == 128


def test_block_size_must_be_multiple_of_symbol():
    with pytest.raises(ValueError):
        E2MCCompressor(block_size_bytes=130, symbol_bytes=4)


def test_incompressible_block_falls_back_to_uncompressed(trained_e2mc):
    rng = np.random.default_rng(5)
    block = rng.bytes(128)
    result = trained_e2mc.compress(block)
    assert result.compressed_size_bits <= 128 * 8
    assert trained_e2mc.decompress(result) == block


def test_symbol_model_requires_training_before_encode():
    model = SymbolModel()
    from repro.utils.bitstream import BitWriter

    with pytest.raises(CompressionError):
        model.encode_symbol(BitWriter(), 3)


def test_symbol_model_fit_rejects_empty():
    with pytest.raises(CompressionError):
        SymbolModel().fit_counts({})


def test_symbol_model_escape_always_present(float_blocks):
    model = SymbolModel(max_table_entries=8)
    model.fit(float_blocks)
    assert ESCAPE_SYMBOL in model.code.lengths
    # untabled symbols cost escape + 16 raw bits
    untabled = max(model.code.lengths) + 12345
    assert model.code_length(untabled) == model.code.lengths[ESCAPE_SYMBOL] + 16


def test_symbol_model_table_capacity_respected(float_blocks):
    model = SymbolModel(max_table_entries=16)
    model.fit(float_blocks)
    # 16 table entries plus the escape symbol
    assert len(model.code.lengths) <= 17


def test_frequent_symbols_get_short_codes(float_blocks):
    model = SymbolModel()
    model.fit(float_blocks)
    counts = {}
    for block in float_blocks:
        for symbol in block_to_symbols(block):
            counts[symbol] = counts.get(symbol, 0) + 1
    most_common = max(counts, key=counts.get)
    rare = min(counts, key=counts.get)
    assert model.code_length(most_common) <= model.code_length(rare)


def test_code_length_untrained_model_is_raw_width():
    assert SymbolModel().code_length(7) == 16


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 2**16 - 1), min_size=64, max_size=64))
def test_e2mc_roundtrip_property(trained_e2mc, symbols):
    """Property: any 64-symbol block round-trips through the trained model."""
    from repro.utils.blocks import symbols_to_block

    block = symbols_to_block(symbols)
    assert trained_e2mc.roundtrip(block) == block
