#!/usr/bin/env python3
"""Reproduce Fig. 9 and Section V-C: SLC's sensitivity to the MAG.

Runs TSLC-OPT with memory access granularities of 16, 32 and 64 B (lossy
threshold = MAG/2) and reports the per-benchmark speedups and errors, plus
the E2MC effective compression ratio at each MAG.

Run with:  python examples/mag_sensitivity.py [--scale 0.004] [--workloads NN,TP]
"""

from __future__ import annotations

import argparse

from repro.experiments import format_fig9, run_fig9
from repro.experiments.fig9_mag_sensitivity import run_effective_ratio_by_mag


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0 / 256.0)
    parser.add_argument("--workloads", type=str, default="")
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for each MAG sweep"
    )
    parser.add_argument(
        "--store", type=str, default=None,
        help="campaign directory; re-runs serve cached cells from here",
    )
    args = parser.parse_args()
    workloads = [w.strip().upper() for w in args.workloads.split(",") if w.strip()] or None

    print("Section V-C: E2MC compression ratio vs. MAG\n")
    ratios = run_effective_ratio_by_mag(workload_names=workloads, scale=args.scale)
    for mag in sorted(ratios):
        print(
            f"  MAG {mag:>3} B: raw GM {ratios[mag]['raw']:.2f}x, "
            f"effective GM {ratios[mag]['effective']:.2f}x"
        )
    print("  (paper: raw 1.54x; effective 1.41 / 1.31 / 1.16 for 16 / 32 / 64 B)\n")

    print("Fig. 9: TSLC-OPT across MAGs (threshold = MAG/2)...\n")
    rows, studies = run_fig9(
        workload_names=workloads,
        scale=args.scale,
        workers=args.workers,
        store_dir=args.store,
    )
    print(format_fig9(rows))

    print("\nGeometric-mean speedups:")
    for mag, study in studies.items():
        print(f"  MAG {mag:>3} B: {study.geomean('speedup', 'TSLC-OPT'):.3f}x")
    print("  (paper: 1.05 / 1.097 / 1.09 for 16 / 32 / 64 B)")


if __name__ == "__main__":
    main()
