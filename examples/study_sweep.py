#!/usr/bin/env python3
"""Study framework tour: sweep-shaped studies on the campaign engine.

Runs two of the declarative studies that go beyond the paper's figures, at a
small scale so the whole script finishes in well under a minute:

1. ``response-surface`` — the MAG × lossy-threshold response surface of
   TSLC-OPT (Fig. 9 samples only its threshold = MAG/2 diagonal),
2. ``gpu-scaling`` — how the TSLC-OPT speedup over E2MC scales with the
   number of SMs and the off-chip bandwidth.

Both runs share one result store, so re-running the script (or mixing in
``python -m repro study run …`` on the same directory) only simulates grid
cells that were never computed.  The equivalent CLI invocations are::

    python -m repro study run response-surface --dir campaigns/surface \
        --set workloads=BS,NN --set mags=16,32 --set thresholds=8,16 \
        --set compute_error=false --set scale=0.002 --workers 4
    python -m repro study run gpu-scaling --dir campaigns/surface \
        --set workloads=BS,NN --set scale=0.002 --workers 4

Run with:  python examples/study_sweep.py [--scale 0.002] [--workers 4]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.studies import GPUScalingStudy, ResponseSurfaceStudy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0 / 512.0)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    surface = ResponseSurfaceStudy(
        workloads=("BS", "NN"),
        schemes=("TSLC-OPT",),
        mags=(16, 32),
        thresholds=(8, 16),
        scale=args.scale,
        compute_error=False,
    )
    scaling = GPUScalingStudy(
        workloads=("BS", "NN"),
        sm_counts=(8, 16, 32),
        bandwidth_scales=(0.5, 1.0, 2.0),
        scale=args.scale,
    )

    with tempfile.TemporaryDirectory() as directory:
        result = surface.run(store=directory, workers=args.workers)
        print(f"{surface.title}")
        print(f"({result.meta['n_jobs']} grid cells, "
              f"{result.meta['n_executed']} simulated)\n")
        print(f"{'scheme':<10} {'MAG':>4} {'thr':>4} {'GM speedup':>11} "
              f"{'GM bandwidth':>13}")
        for row in result.rows:
            print(f"{row['scheme']:<10} {row['mag_bytes']:>4} "
                  f"{row['lossy_threshold_bytes']:>4} {row['gm_speedup']:>11.3f} "
                  f"{row['gm_bandwidth']:>13.3f}")

        result = scaling.run(store=directory, workers=args.workers)
        print(f"\n{scaling.title}")
        print(f"({result.meta['n_jobs']} grid cells, "
              f"{result.meta['n_executed']} simulated)\n")
        print(f"{'axis':<24} {'value':>8} {'GM speedup':>11}")
        for row in result.rows:
            if row["workload"] != "GM":
                continue
            print(f"{row['axis']:<24} {row['value']:>8g} {row['speedup']:>11.3f}")


if __name__ == "__main__":
    main()
