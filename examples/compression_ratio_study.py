#!/usr/bin/env python3
"""Reproduce the paper's motivation: Fig. 1 and Fig. 2.

Compresses every benchmark's memory image with BDI, FPC, C-PACK and E2MC,
reports the raw vs. effective (MAG-aware) compression ratios, and prints the
distribution of compressed block sizes above 32 B multiples that motivates
selective lossy compression.

Run with:  python examples/compression_ratio_study.py [--scale 0.004] [--workloads BS,NN]
"""

from __future__ import annotations

import argparse

from repro.experiments import format_fig1, format_fig2, run_fig1, run_fig2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=1.0 / 256.0,
        help="workload input scale relative to the paper's input sizes",
    )
    parser.add_argument(
        "--workloads", type=str, default="",
        help="comma-separated benchmark subset (default: all nine)",
    )
    args = parser.parse_args()
    workloads = [w.strip().upper() for w in args.workloads.split(",") if w.strip()] or None

    print("Running Fig. 1 (raw vs. effective compression ratio)...\n")
    fig1_rows = run_fig1(workload_names=workloads, scale=args.scale)
    print(format_fig1(fig1_rows))

    gm_rows = {row.compressor: row for row in fig1_rows if row.workload == "GM"}
    print("\nGeometric-mean loss of compression ratio due to MAG:")
    for name, row in gm_rows.items():
        print(f"  {name:<6} {row.effective_loss_percent:5.1f}% "
              f"(raw {row.raw_ratio:.2f}x -> effective {row.effective_ratio:.2f}x)")

    print("\nRunning Fig. 2 (distribution of compressed blocks above MAG)...\n")
    distribution = run_fig2(workload_names=workloads, scale=args.scale)
    print(format_fig2(distribution))

    print("\nShare of blocks within the 16 B lossy threshold of a lower MAG multiple:")
    for name in distribution.per_workload:
        fraction = distribution.fraction_within_threshold(name, 16)
        print(f"  {name:<8} {fraction:6.1%}")


if __name__ == "__main__":
    main()
