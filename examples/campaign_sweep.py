#!/usr/bin/env python3
"""Campaign engine tour: a parallel, cached MAG × threshold sweep.

Declares a parameter grid as a :class:`repro.campaign.CampaignSpec`, fans it
out over worker processes, persists every (workload, scheme, MAG, threshold)
cell in a content-addressed result store, and then re-runs the identical
campaign to show that the second pass simulates nothing.

The equivalent command-line invocation is::

    python -m repro campaign run --dir campaigns/demo \
        --workloads BS,NN --schemes E2MC,TSLC-OPT \
        --thresholds 8,16 --mags 16,32 --scale 0.002 --workers 4 --no-error
    python -m repro campaign status --dir campaigns/demo
    python -m repro campaign export --dir campaigns/demo --csv demo.csv

Run with:  python examples/campaign_sweep.py [--scale 0.002] [--workers 4]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.campaign import CampaignSpec, ResultStore, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0 / 512.0)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    spec = CampaignSpec(
        name="mag-threshold-demo",
        workloads=("BS", "NN"),
        schemes=("E2MC", "TSLC-OPT"),
        lossy_thresholds=(8, 16),
        mags=(16, 32),
        scales=(args.scale,),
        compute_error=False,
    )
    jobs = spec.expand()
    print(f"campaign '{spec.name}': {len(jobs)} unique jobs from a "
          "2 workloads x 2 schemes x 2 thresholds x 2 MAGs grid\n"
          "(the threshold-independent E2MC baseline dedups across thresholds)\n")

    with tempfile.TemporaryDirectory() as directory:
        store = ResultStore(directory)
        outcome = run_campaign(spec, store=store, workers=args.workers)
        outcome.raise_for_failures()
        print(f"cold run: {outcome.n_executed} simulated with "
              f"{args.workers} workers, {outcome.n_failed} failed\n")

        print(f"{'job':<28} {'bursts':>8} {'exec time':>12}")
        for job, record in outcome.iter_records():
            result = record.result
            print(f"{job.label():<28} {result.total_bursts:>8} "
                  f"{result.exec_time_s * 1e6:>10.1f} us")

        # An identical campaign against the same store is pure cache hits.
        rerun = run_campaign(spec, store=ResultStore(directory))
        print(f"\nwarm re-run: {rerun.n_cached}/{rerun.n_total} cached, "
              f"{rerun.n_executed} simulated")


if __name__ == "__main__":
    main()
