#!/usr/bin/env python3
"""Quickstart: compress a few blocks with E2MC and SLC and inspect the result.

Shows the core flow of the library at the smallest scale:

1. build some locally-correlated float data and cut it into 128 B blocks,
2. train the E2MC entropy model (the lossless baseline),
3. run the SLC mode decision on every block and look at how many blocks
   switch to the lossy path, how many DRAM bursts that saves and what the
   data looks like after decompression,
4. print the simulated GPU configuration (Table II of the paper).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.compression import E2MCCompressor
from repro.compression.stats import bursts_for_size
from repro.core import SLCCompressor, SLCConfig, SLCMode, SLCVariant
from repro.gpu import GPUConfig
from repro.utils.blocks import array_to_blocks


def main() -> None:
    rng = np.random.default_rng(2019)

    # A smooth sensor-like signal with limited precision: the kind of data the
    # paper's benchmarks read from GPU memory.
    signal = np.cumsum(rng.normal(0.0, 0.3, size=16384)).astype(np.float64) + 500.0
    signal = np.round(signal * 1024.0) / 1024.0
    blocks = array_to_blocks(signal.astype(np.float32))
    print(f"{len(blocks)} blocks of 128 B ({signal.nbytes / 1024:.0f} KiB of float32 data)\n")

    # --- lossless baseline: E2MC ---------------------------------------- #
    e2mc = E2MCCompressor()
    e2mc.train(blocks[::4])
    sizes = [e2mc.compress(block).compressed_size_bytes for block in blocks]
    raw_ratio = 128 * len(blocks) / sum(sizes)
    effective = sum(bursts_for_size(size) * 32 for size in sizes)
    print("E2MC lossless baseline:")
    print(f"  raw compression ratio       {raw_ratio:.2f}x")
    print(f"  effective compression ratio {128 * len(blocks) / effective:.2f}x "
          "(after rounding every block up to 32 B bursts)\n")

    # --- SLC: selective lossy compression -------------------------------- #
    config = SLCConfig(variant=SLCVariant.OPT, lossy_threshold_bytes=16)
    slc = SLCCompressor(config)
    slc.train(blocks[::4])

    lossy = 0
    slc_bursts = 0
    e2mc_bursts = sum(bursts_for_size(size) for size in sizes)
    max_error = 0.0
    for block in blocks:
        decision = slc.analyze(block, approximable=True)
        slc_bursts += decision.bursts
        if decision.mode is SLCMode.LOSSY:
            lossy += 1
            original = np.frombuffer(block, dtype=np.float32)
            degraded = np.frombuffer(slc.apply_decision(block, decision), dtype=np.float32)
            max_error = max(max_error, float(np.max(np.abs(original - degraded))))

    print(f"SLC ({config.variant.value}, threshold {config.lossy_threshold_bytes} B, "
          f"MAG {config.mag_bytes} B):")
    print(f"  blocks switched to the lossy path  {lossy}/{len(blocks)}")
    print(f"  DRAM bursts                        {slc_bursts} vs. {e2mc_bursts} for E2MC "
          f"({(1 - slc_bursts / e2mc_bursts) * 100:.1f}% fewer)")
    print(f"  largest per-value approximation    {max_error:.4f} "
          f"(signal magnitude ≈ {np.abs(signal).mean():.0f})\n")

    # --- one block in detail --------------------------------------------- #
    for block in blocks:
        decision = slc.analyze(block)
        if decision.mode is SLCMode.LOSSY:
            print("Example lossy block:")
            print(f"  losslessly compressed size {decision.comp_size_bits / 8:.1f} B")
            print(f"  bit budget                 {decision.bit_budget_bits // 8} B")
            print(f"  extra bytes above budget   {decision.extra_bits / 8:.1f} B")
            print(f"  truncated symbols          {decision.approx_count} "
                  f"starting at symbol {decision.approx_start}")
            print(f"  bursts fetched             {decision.bursts} instead of "
                  f"{bursts_for_size(decision.comp_size_bits / 8)}\n")
            break

    # --- the simulated GPU (Table II) ------------------------------------ #
    print("Simulated GPU configuration (Table II):")
    for label, value in GPUConfig().table2_rows():
        print(f"  {label:<22} {value}")


if __name__ == "__main__":
    main()
