#!/usr/bin/env python3
"""Reproduce the paper's main evaluation: Fig. 7 and Fig. 8.

Simulates every benchmark on the GTX580-like GPU model under the E2MC
lossless baseline and the three TSLC variants (SIMP, PRED, OPT) with a 16 B
lossy threshold and 32 B MAG, then reports speedup, application error,
normalized off-chip traffic, energy and EDP.

Run with:  python examples/slc_speedup_study.py [--scale 0.004] [--workloads DCT,NN]
"""

from __future__ import annotations

import argparse

from repro.experiments import format_fig7, format_fig8, run_fig7, run_fig8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0 / 256.0)
    parser.add_argument("--workloads", type=str, default="")
    parser.add_argument(
        "--threshold", type=int, default=16, help="lossy threshold in bytes"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for the sweep"
    )
    parser.add_argument(
        "--store", type=str, default=None,
        help="campaign directory; re-runs serve cached cells from here",
    )
    args = parser.parse_args()
    workloads = [w.strip().upper() for w in args.workloads.split(",") if w.strip()] or None

    print("Simulating all benchmarks under E2MC and TSLC-SIMP/PRED/OPT...\n")
    fig7_rows, study = run_fig7(
        workload_names=workloads,
        lossy_threshold_bytes=args.threshold,
        scale=args.scale,
        workers=args.workers,
        store_dir=args.store,
    )
    print(format_fig7(fig7_rows))

    fig8_rows, _ = run_fig8(study=study)
    print()
    print(format_fig8(fig8_rows))

    print("\nGeometric means (TSLC-OPT vs. E2MC):")
    print(f"  speedup            {study.geomean('speedup', 'TSLC-OPT'):.3f}x")
    print(f"  off-chip traffic   {study.geomean('bandwidth', 'TSLC-OPT'):.3f}x")
    print(f"  energy             {study.geomean('energy', 'TSLC-OPT'):.3f}x")
    print(f"  EDP                {study.geomean('edp', 'TSLC-OPT'):.3f}x")
    print(
        "\nPaper reference: ~1.10x GM speedup, ~0.86x traffic, ~0.92x energy, "
        "~0.83x EDP at this threshold and MAG."
    )


if __name__ == "__main__":
    main()
