#!/usr/bin/env python3
"""Tour of the benchmark suite (Table III).

Prints Table III, then for every benchmark generates its data, runs the
kernel, and reports the region layout, compressibility and the effect of a
crude 1 % input perturbation on the application error metric — a sanity check
of the error metrics independent of the compression machinery.

Run with:  python examples/workload_tour.py [--scale 0.002]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.compression import E2MCCompressor
from repro.compression.stats import CompressionStats
from repro.utils.blocks import array_to_blocks
from repro.utils.sampling import sample_evenly
from repro.workloads import available_workloads, get_workload, table3_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0 / 512.0)
    args = parser.parse_args()

    print("Table III — benchmarks used for the experimental evaluation\n")
    print(f"{'Name':<7} {'Description':<22} {'Input':<16} {'Error metric':<12} {'#AR':>3}")
    for name, description, inputs, metric, ars in table3_rows(scale=args.scale):
        print(f"{name:<7} {description:<22} {inputs:<16} {metric:<12} {ars:>3}")
    print()

    rng = np.random.default_rng(0)
    for name in available_workloads():
        workload = get_workload(name, scale=args.scale)
        regions = workload.generate()
        arrays = workload.input_arrays(regions)
        exact = workload.run(arrays)

        blocks = []
        for region in regions.values():
            blocks.extend(array_to_blocks(region.array))
        compressor = E2MCCompressor()
        compressor.train(sample_evenly(blocks, 512))
        stats = CompressionStats()
        for block in blocks:
            stats.add_block(
                min(compressor.payload_size_bits(block) + compressor.header_bits, 1024)
            )

        perturbed = {
            key: (value + rng.normal(0, 0.01 * (np.abs(value).mean() + 1e-6),
                                     size=value.shape)).astype(value.dtype)
            if np.issubdtype(value.dtype, np.floating) else value
            for key, value in arrays.items()
        }
        error = workload.error(exact, workload.run(perturbed))

        total_kb = sum(r.size_bytes for r in regions.values()) / 1024
        print(
            f"{name:<7} {len(regions)} input regions ({total_kb:7.1f} KiB), "
            f"E2MC raw {stats.raw_ratio:4.2f}x / effective {stats.effective_ratio:4.2f}x, "
            f"{workload.error_metric} after 1% input noise: {error:.3f}%"
        )


if __name__ == "__main__":
    main()
