#!/usr/bin/env python3
"""Explore the accuracy side of SLC: threshold sweep on one benchmark.

For a single benchmark this example sweeps the lossy threshold, simulates
TSLC-OPT at each setting, and prints the trade-off between the fraction of
blocks converted to the lossy path, the bandwidth saved and the application
error — the knob the paper exposes to the programmer through the extended
``cudaMalloc``.

Run with:  python examples/approximation_quality.py [--workload SRAD2] [--scale 0.004]
"""

from __future__ import annotations

import argparse

from repro.approx import annotate_regions
from repro.core.config import SLCVariant
from repro.experiments.runner import make_e2mc_backend, make_slc_backend
from repro.gpu import GPUConfig, GPUSimulator
from repro.workloads import get_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", type=str, default="SRAD2")
    parser.add_argument("--scale", type=float, default=1.0 / 256.0)
    parser.add_argument(
        "--thresholds", type=str, default="0,4,8,16,24,32",
        help="comma-separated lossy thresholds in bytes",
    )
    args = parser.parse_args()
    thresholds = [int(t) for t in args.thresholds.split(",")]

    config = GPUConfig()
    simulator = GPUSimulator(config)

    workload = get_workload(args.workload, scale=args.scale)
    regions = workload.generate()
    registry = annotate_regions(regions, threshold_bytes=16)
    print(f"{args.workload}: {len(registry)} memory regions, "
          f"{registry.approximable_count()} annotated safe-to-approximate "
          f"(Table III lists {workload.approx_region_count} ARs at full scale)\n")

    baseline = simulator.run(
        get_workload(args.workload, scale=args.scale),
        make_e2mc_backend(config),
        compute_error=False,
    )
    print(f"E2MC baseline: {baseline.total_bursts} bursts, "
          f"{baseline.exec_time_s * 1e6:.1f} us simulated execution time\n")

    print(f"{'threshold':>9} {'lossy blocks':>13} {'traffic':>9} {'speedup':>8} {'error %':>9}")
    for threshold in thresholds:
        backend = make_slc_backend(config, SLCVariant.OPT, lossy_threshold_bytes=threshold)
        result = simulator.run(
            get_workload(args.workload, scale=args.scale), backend, compute_error=True
        )
        print(
            f"{threshold:>7} B "
            f"{result.lossy_blocks:>10}/{result.stored_blocks:<5}"
            f"{result.bandwidth_ratio_over(baseline):>8.3f} "
            f"{result.speedup_over(baseline):>8.3f} "
            f"{result.error_percent:>9.4f}"
        )
    print("\nA threshold of 0 B disables the lossy path entirely (pure E2MC);")
    print("larger thresholds trade a little accuracy for fewer 32 B bursts.")


if __name__ == "__main__":
    main()
