"""Shared machinery for the evaluation experiments (Figs. 7–9).

The central object is :class:`SLCStudy`: for every benchmark it simulates the
E2MC lossless baseline and the requested TSLC variants on the same workload
data and exposes the normalized metrics of the paper's figures (speedup,
application error, bandwidth, energy, EDP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.e2mc import E2MCCompressor
from repro.compression.stats import geometric_mean
from repro.core.config import SLCConfig, SLCVariant
from repro.core.slc import SLCCompressor
from repro.gpu.backends import CompressionBackend, LosslessBackend, SLCBackend
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

#: backend label used for the lossless baseline in every study
BASELINE_LABEL = "E2MC"

#: the three TSLC variants of Fig. 7/8, in plotting order
VARIANT_LABELS = {
    SLCVariant.SIMP: "TSLC-SIMP",
    SLCVariant.PRED: "TSLC-PRED",
    SLCVariant.OPT: "TSLC-OPT",
}


def make_e2mc_backend(config: GPUConfig, mag_bytes: int | None = None) -> LosslessBackend:
    """The E2MC lossless baseline backend (46/20-cycle latencies)."""
    compressor = E2MCCompressor(
        block_size_bytes=config.block_size_bytes,
        symbol_bytes=2,
        num_pdw=4,
    )
    latency = config.latency
    return LosslessBackend(
        compressor,
        mag_bytes=mag_bytes if mag_bytes is not None else config.mag_bytes,
        compress_cycles=latency.e2mc_compress_cycles,
        decompress_cycles=latency.e2mc_decompress_cycles,
    )


def make_slc_backend(
    config: GPUConfig,
    variant: SLCVariant,
    lossy_threshold_bytes: int = 16,
    mag_bytes: int | None = None,
) -> SLCBackend:
    """A TSLC backend of the given variant/threshold/MAG (60/20-cycle latencies)."""
    mag = mag_bytes if mag_bytes is not None else config.mag_bytes
    slc_config = SLCConfig(
        block_size_bytes=config.block_size_bytes,
        mag_bytes=mag,
        lossy_threshold_bytes=lossy_threshold_bytes,
        variant=variant,
    )
    latency = config.latency
    return SLCBackend(
        SLCCompressor(slc_config),
        compress_cycles=latency.tslc_compress_cycles,
        decompress_cycles=latency.tslc_decompress_cycles,
    )


@dataclass
class SLCStudy:
    """Results of simulating all benchmarks under the baseline and variants.

    ``results[workload][scheme]`` holds the :class:`SimulationResult` of one
    (workload, scheme) pair; ``scheme`` is :data:`BASELINE_LABEL` or one of
    the variant labels.
    """

    baseline_label: str = BASELINE_LABEL
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)

    def workloads(self) -> list[str]:
        """Benchmarks in the order they were simulated."""
        return list(self.results)

    def schemes(self) -> list[str]:
        """Scheme labels present for the first workload (baseline first)."""
        if not self.results:
            return []
        first = next(iter(self.results.values()))
        return list(first)

    # ------------------------------------------------------------------ #
    # normalized metrics (the y-axes of Figs. 7–9)

    def speedup(self, workload: str, scheme: str) -> float:
        """Execution-time speedup of ``scheme`` over the baseline."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].speedup_over(baseline)

    def error_percent(self, workload: str, scheme: str) -> float:
        """Application error of ``scheme`` in percent."""
        return self.results[workload][scheme].error_percent

    def normalized_bandwidth(self, workload: str, scheme: str) -> float:
        """Off-chip traffic normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].bandwidth_ratio_over(baseline)

    def normalized_energy(self, workload: str, scheme: str) -> float:
        """Energy normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].energy_ratio_over(baseline)

    def normalized_edp(self, workload: str, scheme: str) -> float:
        """EDP normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].edp_ratio_over(baseline)

    def geomean(self, metric: str, scheme: str) -> float:
        """Geometric mean of a normalized metric over all benchmarks."""
        getter = {
            "speedup": self.speedup,
            "bandwidth": self.normalized_bandwidth,
            "energy": self.normalized_energy,
            "edp": self.normalized_edp,
        }[metric]
        return geometric_mean([getter(w, scheme) for w in self.workloads()])


def run_slc_study(
    workload_names: list[str] | None = None,
    variants: list[SLCVariant] | None = None,
    lossy_threshold_bytes: int = 16,
    mag_bytes: int | None = None,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    compute_error: bool = True,
) -> SLCStudy:
    """Simulate every benchmark under E2MC and the requested TSLC variants.

    Args:
        workload_names: benchmarks to include (default: all nine, paper order).
        variants: TSLC variants to simulate (default: SIMP, PRED, OPT).
        lossy_threshold_bytes: the SLC lossy threshold (16 B in Fig. 7/8).
        mag_bytes: memory access granularity (default: the GPU config's 32 B).
        scale: workload input scale (default: each workload's default).
        seed: RNG seed for data generation.
        config: GPU configuration (Table II defaults).
        compute_error: whether to re-run kernels on degraded inputs to obtain
            the application error (disable for timing-only studies).
    """
    workload_names = list(workload_names or PAPER_WORKLOAD_ORDER)
    variants = list(variants or [SLCVariant.SIMP, SLCVariant.PRED, SLCVariant.OPT])
    config = config or GPUConfig()
    simulator = GPUSimulator(config=config)
    study = SLCStudy()

    for name in workload_names:
        kwargs = {"seed": seed}
        if scale is not None:
            kwargs["scale"] = scale
        per_scheme: dict[str, SimulationResult] = {}

        baseline_backend = make_e2mc_backend(config, mag_bytes=mag_bytes)
        workload = get_workload(name, **kwargs)
        per_scheme[BASELINE_LABEL] = simulator.run(
            workload, baseline_backend, compute_error=False
        )

        for variant in variants:
            backend = make_slc_backend(
                config,
                variant,
                lossy_threshold_bytes=lossy_threshold_bytes,
                mag_bytes=mag_bytes,
            )
            workload = get_workload(name, **kwargs)
            per_scheme[VARIANT_LABELS[variant]] = simulator.run(
                workload, backend, compute_error=compute_error
            )
        study.results[name] = per_scheme
    return study
