"""Shared machinery for the evaluation experiments (Figs. 7–9).

The central object is :class:`SLCStudy`: for every benchmark it simulates the
E2MC lossless baseline and the requested TSLC variants on the same workload
data and exposes the normalized metrics of the paper's figures (speedup,
application error, bandwidth, energy, EDP).

Since the campaign subsystem landed, :func:`run_slc_study` is a thin wrapper
over :func:`repro.campaign.run_campaign`: the (workload × scheme) grid is a
:class:`~repro.campaign.CampaignSpec`, which buys parallel execution
(``workers``) and persistent caching (``store_dir``) for free while keeping
the serial semantics bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.executor import run_campaign
from repro.campaign.spec import (
    BASELINE_SCHEME,
    SCHEME_VARIANTS,
    CampaignSpec,
    config_to_overrides,
)
from repro.campaign.store import ResultStore
from repro.campaign.worker import build_backend
from repro.compression.stats import geometric_mean
from repro.core.config import SLCVariant
from repro.gpu.backends import LosslessBackend, SLCBackend
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimulationResult
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

#: backend label used for the lossless baseline in every study
BASELINE_LABEL = BASELINE_SCHEME

#: the three TSLC variants of Fig. 7/8, in plotting order
VARIANT_LABELS = {variant: label for label, variant in SCHEME_VARIANTS.items()}


def make_e2mc_backend(config: GPUConfig, mag_bytes: int | None = None) -> LosslessBackend:
    """The E2MC lossless baseline backend (46/20-cycle latencies)."""
    return build_backend(BASELINE_SCHEME, config, mag_bytes=mag_bytes)


def make_slc_backend(
    config: GPUConfig,
    variant: SLCVariant,
    lossy_threshold_bytes: int = 16,
    mag_bytes: int | None = None,
) -> SLCBackend:
    """A TSLC backend of the given variant/threshold/MAG (60/20-cycle latencies)."""
    return build_backend(
        VARIANT_LABELS[variant],
        config,
        lossy_threshold_bytes=lossy_threshold_bytes,
        mag_bytes=mag_bytes,
    )


@dataclass
class SLCStudy:
    """Results of simulating all benchmarks under the baseline and variants.

    ``results[workload][scheme]`` holds the :class:`SimulationResult` of one
    (workload, scheme) pair; ``scheme`` is :data:`BASELINE_LABEL` or one of
    the variant labels.
    """

    baseline_label: str = BASELINE_LABEL
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)

    def workloads(self) -> list[str]:
        """Benchmarks in the order they were simulated."""
        return list(self.results)

    def schemes(self) -> list[str]:
        """Union of scheme labels across all workloads (baseline first)."""
        labels: list[str] = []
        for per_scheme in self.results.values():
            for label in per_scheme:
                if label not in labels:
                    labels.append(label)
        if self.baseline_label in labels:
            labels.remove(self.baseline_label)
            labels.insert(0, self.baseline_label)
        return labels

    # ------------------------------------------------------------------ #
    # normalized metrics (the y-axes of Figs. 7–9)

    def speedup(self, workload: str, scheme: str) -> float:
        """Execution-time speedup of ``scheme`` over the baseline."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].speedup_over(baseline)

    def error_percent(self, workload: str, scheme: str) -> float:
        """Application error of ``scheme`` in percent."""
        return self.results[workload][scheme].error_percent

    def normalized_bandwidth(self, workload: str, scheme: str) -> float:
        """Off-chip traffic normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].bandwidth_ratio_over(baseline)

    def normalized_energy(self, workload: str, scheme: str) -> float:
        """Energy normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].energy_ratio_over(baseline)

    def normalized_edp(self, workload: str, scheme: str) -> float:
        """EDP normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].edp_ratio_over(baseline)

    def geomean(self, metric: str, scheme: str) -> float:
        """Geometric mean of a normalized metric over all benchmarks."""
        getter = {
            "speedup": self.speedup,
            "bandwidth": self.normalized_bandwidth,
            "energy": self.normalized_energy,
            "edp": self.normalized_edp,
        }[metric]
        return geometric_mean([getter(w, scheme) for w in self.workloads()])


def run_slc_study(
    workload_names: list[str] | None = None,
    variants: list[SLCVariant] | None = None,
    lossy_threshold_bytes: int = 16,
    mag_bytes: int | None = None,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    compute_error: bool = True,
    workers: int = 1,
    store_dir: str | Path | None = None,
) -> SLCStudy:
    """Simulate every benchmark under E2MC and the requested TSLC variants.

    Args:
        workload_names: benchmarks to include (default: all nine, paper order).
        variants: TSLC variants to simulate (default: SIMP, PRED, OPT).
        lossy_threshold_bytes: the SLC lossy threshold (16 B in Fig. 7/8).
        mag_bytes: memory access granularity (default: the GPU config's 32 B).
        scale: workload input scale (default: each workload's default).
        seed: RNG seed for data generation.
        config: GPU configuration (Table II defaults).
        compute_error: whether to re-run kernels on degraded inputs to obtain
            the application error (disable for timing-only studies).
        workers: worker processes for the sweep (1 = in-process, serial).
        store_dir: optional campaign directory; when set, already-computed
            (workload, scheme) cells are served from the persistent store.
    """
    workload_names = list(workload_names or PAPER_WORKLOAD_ORDER)
    variants = list(variants or [SLCVariant.SIMP, SLCVariant.PRED, SLCVariant.OPT])
    spec = CampaignSpec(
        name="slc-study",
        workloads=tuple(workload_names),
        schemes=(BASELINE_SCHEME, *(VARIANT_LABELS[v] for v in variants)),
        lossy_thresholds=(lossy_threshold_bytes,),
        mags=(mag_bytes,),
        scales=(scale,),
        seeds=(seed,),
        compute_error=compute_error,
        config_overrides=config_to_overrides(config),
    )
    store = ResultStore(store_dir) if store_dir is not None else None
    outcome = run_campaign(spec, store=store, workers=workers)
    outcome.raise_for_failures()

    # Key the study by the names the caller passed (jobs normalize to
    # uppercase internally), so e.g. workload_names=["bs"] stays "bs".
    names_by_upper: dict[str, str] = {}
    for name in workload_names:
        names_by_upper.setdefault(name.upper(), name)
    study = SLCStudy()
    for job, record in outcome.iter_records():
        name = names_by_upper.get(job.workload, job.workload)
        study.results.setdefault(name, {})[job.scheme] = record.result
    return study
