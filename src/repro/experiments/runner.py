"""Compatibility wrappers for the evaluation experiments (Figs. 7–9).

The implementation lives in the declarative Study framework now
(:mod:`repro.studies`): :class:`~repro.studies.slc.SLCSweepStudy` owns the
(workload × scheme) grid and the :class:`~repro.studies.slc.SLCStudy`
aggregation; this module re-exports the historical entry points
(``run_slc_study``, ``SLCStudy``, the backend builders) unchanged.
"""

from __future__ import annotations

from repro.campaign.spec import BASELINE_SCHEME
from repro.campaign.worker import build_backend
from repro.core.config import SLCVariant
from repro.gpu.backends import LosslessBackend, SLCBackend
from repro.gpu.config import GPUConfig
from repro.studies.slc import (
    BASELINE_LABEL,
    VARIANT_LABELS,
    SLCStudy,
    run_slc_study,
    slc_study_from_records,
)

__all__ = [
    "BASELINE_LABEL",
    "VARIANT_LABELS",
    "SLCStudy",
    "run_slc_study",
    "slc_study_from_records",
    "make_e2mc_backend",
    "make_slc_backend",
]


def make_e2mc_backend(config: GPUConfig, mag_bytes: int | None = None) -> LosslessBackend:
    """The E2MC lossless baseline backend (46/20-cycle latencies)."""
    return build_backend(BASELINE_SCHEME, config, mag_bytes=mag_bytes)


def make_slc_backend(
    config: GPUConfig,
    variant: SLCVariant,
    lossy_threshold_bytes: int = 16,
    mag_bytes: int | None = None,
) -> SLCBackend:
    """A TSLC backend of the given variant/threshold/MAG (60/20-cycle latencies)."""
    return build_backend(
        VARIANT_LABELS[variant],
        config,
        lossy_threshold_bytes=lossy_threshold_bytes,
        mag_bytes=mag_bytes,
    )
