"""Table I — frequency, area and power of the SLC hardware additions."""

from __future__ import annotations

from repro.hardware.synthesis import SynthesisResult, overhead_summary, table1


def run_table1() -> dict[str, SynthesisResult]:
    """Regenerate Table I from the analytic 32 nm cost model."""
    return table1()


def run_overhead_summary() -> dict[str, float]:
    """The Section III-H overhead percentages (vs. GTX580 and E2MC)."""
    return overhead_summary()


def format_table1(results: dict[str, SynthesisResult] | None = None) -> str:
    """Render Table I plus the overhead summary as text."""
    results = results or run_table1()
    summary = run_overhead_summary()
    lines = [
        "Table I — frequency, area and power of SLC (32 nm analytic model)",
        f"{'unit':<14} {'freq (GHz)':>11} {'area (mm^2)':>12} {'power (mW)':>11}",
    ]
    for label in ("compressor", "decompressor"):
        result = results[label]
        lines.append(
            f"{label:<14} {result.frequency_ghz:>11.2f} {result.area_mm2:>12.5f} "
            f"{result.power_mw:>11.3f}"
        )
    lines.append(
        "overhead: "
        f"{summary['area_percent_of_gtx580']:.4f}% of GTX580 area, "
        f"{summary['power_percent_of_gtx580']:.4f}% of GTX580 power, "
        f"{summary['area_percent_of_e2mc']:.1f}% of E2MC area"
    )
    return "\n".join(lines)
