"""Table I — SLC hardware cost (compatibility wrapper).

The implementation is :class:`repro.studies.hardware.Table1Study`; this
module keeps the historical ``run_table1``/``format_table1`` entry points.
"""

from __future__ import annotations

from repro.hardware.synthesis import SynthesisResult, overhead_summary, table1
from repro.studies.hardware import Table1Study, format_table1

__all__ = ["Table1Study", "run_table1", "run_overhead_summary", "format_table1"]


def run_table1() -> dict[str, SynthesisResult]:
    """Regenerate Table I from the analytic 32 nm cost model."""
    return table1()


def run_overhead_summary() -> dict[str, float]:
    """The Section III-H overhead percentages (vs. GTX580 and E2MC)."""
    return overhead_summary()
