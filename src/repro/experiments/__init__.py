"""Experiment harness: compatibility wrappers, one module per paper artefact.

Every experiment still exposes its historical ``run_*`` function returning
plain data structures and a ``format_*`` renderer, but the implementations
live in the declarative Study framework (:mod:`repro.studies`): each figure
is a registered :class:`~repro.studies.base.Study` whose grid runs on the
campaign engine, so ``run_fig7``/``run_fig8``/``run_fig9`` accept
``workers=`` for parallel sweeps and ``store_dir=`` to serve previously
simulated cells from any result-store backend.  New code should use
``repro.studies`` (or the ``repro study`` CLI) directly.
"""

from repro.experiments.fig1_compression_ratio import (
    Fig1Row,
    format_fig1,
    run_fig1,
)
from repro.experiments.fig2_distribution import (
    Fig2Distribution,
    format_fig2,
    run_fig2,
)
from repro.experiments.fig7_speedup_error import (
    Fig7Row,
    format_fig7,
    run_fig7,
)
from repro.experiments.fig8_bandwidth_energy import (
    Fig8Row,
    format_fig8,
    run_fig8,
)
from repro.experiments.fig9_mag_sensitivity import (
    Fig9Row,
    format_fig9,
    run_fig9,
)
from repro.experiments.runner import SLCStudy, run_slc_study
from repro.experiments.table1_hardware import format_table1, run_table1

__all__ = [
    "run_fig1",
    "format_fig1",
    "Fig1Row",
    "run_fig2",
    "format_fig2",
    "Fig2Distribution",
    "run_table1",
    "format_table1",
    "run_fig7",
    "format_fig7",
    "Fig7Row",
    "run_fig8",
    "format_fig8",
    "Fig8Row",
    "run_fig9",
    "format_fig9",
    "Fig9Row",
    "run_slc_study",
    "SLCStudy",
]
