"""Fig. 2 — compressed-block distribution (compatibility wrapper).

The implementation is :class:`repro.studies.compression.Fig2Study`; this
module keeps the historical ``run_fig2``/``format_fig2`` entry points.
"""

from __future__ import annotations

from repro.studies.compression import Fig2Distribution, Fig2Study, format_fig2
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

__all__ = ["Fig2Distribution", "Fig2Study", "run_fig2", "format_fig2"]


def run_fig2(
    workload_names: list[str] | None = None,
    mag_bytes: int = 32,
    scale: float | None = None,
    seed: int = 2019,
) -> Fig2Distribution:
    """Regenerate the Fig. 2 distribution using the E2MC compressor."""
    study = Fig2Study(
        workloads=tuple(workload_names or PAPER_WORKLOAD_ORDER),
        mag_bytes=mag_bytes,
        scale=scale,
        seed=seed,
    )
    return study.run().data
