"""Fig. 2 — distribution of compressed blocks above MAG multiples (E2MC).

For every benchmark the blocks are compressed with E2MC and binned by how
many bytes their compressed size lies above the largest MAG multiple below
it.  Blocks at or below one MAG land in the 0 B bin, uncompressed blocks in
the 32 B bin.  The paper's observation: a significant share of blocks sit
only a few bytes above a multiple — the opportunity SLC exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.fig1_compression_ratio import (
    compression_stats_for_blocks,
    workload_blocks,
)
from repro.workloads.registry import PAPER_WORKLOAD_ORDER


@dataclass
class Fig2Distribution:
    """Per-benchmark histograms of bytes-above-MAG (fractions of all blocks)."""

    mag_bytes: int = 32
    per_workload: dict[str, dict[int, float]] = field(default_factory=dict)

    def heatmap(self, bin_width: int = 4) -> tuple[list[str], list[int], list[list[float]]]:
        """The Fig. 2 heat map: benchmarks × byte bins → fraction of blocks.

        Returns (workload names, bin lower edges, matrix of fractions).
        """
        edges = list(range(0, self.mag_bytes + bin_width, bin_width))
        matrix: list[list[float]] = []
        names = list(self.per_workload)
        for name in names:
            histogram = self.per_workload[name]
            row = [0.0] * len(edges)
            for extra_bytes, fraction in histogram.items():
                bin_index = min(len(edges) - 1, extra_bytes // bin_width)
                row[bin_index] += fraction
            matrix.append(row)
        return names, edges, matrix

    def fraction_within_threshold(self, workload: str, threshold_bytes: int) -> float:
        """Fraction of blocks at most ``threshold_bytes`` above a MAG multiple.

        Blocks exactly on a multiple (the 0 B bin) are excluded: they need no
        approximation.  This is the share of blocks SLC can convert to the
        lower budget with the given lossy threshold.
        """
        histogram = self.per_workload[workload]
        return sum(
            fraction
            for extra, fraction in histogram.items()
            if 0 < extra <= threshold_bytes
        )


def run_fig2(
    workload_names: list[str] | None = None,
    mag_bytes: int = 32,
    scale: float | None = None,
    seed: int = 2019,
) -> Fig2Distribution:
    """Regenerate the Fig. 2 distribution using the E2MC compressor."""
    workload_names = list(workload_names or PAPER_WORKLOAD_ORDER)
    distribution = Fig2Distribution(mag_bytes=mag_bytes)
    for name in workload_names:
        blocks = workload_blocks(name, scale=scale, seed=seed)
        stats = compression_stats_for_blocks(blocks, "e2mc", mag_bytes)
        distribution.per_workload[name] = stats.extra_byte_distribution()
    return distribution


def format_fig2(distribution: Fig2Distribution, bin_width: int = 4) -> str:
    """Render the Fig. 2 heat map as a text table (percent of blocks)."""
    names, edges, matrix = distribution.heatmap(bin_width=bin_width)
    header = "bytes above MAG:" + "".join(f"{edge:>7}" for edge in edges)
    lines = [
        f"Fig. 2 — distribution of compressed blocks above MAG (MAG = {distribution.mag_bytes} B)",
        header,
    ]
    for name, row in zip(names, matrix):
        cells = "".join(f"{100.0 * value:>7.1f}" for value in row)
        lines.append(f"{name:<16}{cells}")
    return "\n".join(lines)
