"""Fig. 8 — normalized bandwidth/energy/EDP (compatibility wrapper).

The implementation is :class:`repro.studies.performance.Fig8Study`; this
module keeps the historical ``run_fig8``/``format_fig8`` entry points,
including reuse of an existing Fig. 7 study.
"""

from __future__ import annotations

from repro.campaign.spec import config_to_overrides
from repro.experiments.runner import SLCStudy
from repro.gpu.config import GPUConfig
from repro.studies.performance import Fig8Row, Fig8Study, fig8_rows, format_fig8
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

__all__ = ["Fig8Row", "Fig8Study", "run_fig8", "format_fig8"]


def run_fig8(
    workload_names: list[str] | None = None,
    lossy_threshold_bytes: int = 16,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    study: SLCStudy | None = None,
    workers: int = 1,
    store_dir=None,
) -> tuple[list[Fig8Row], SLCStudy]:
    """Regenerate Fig. 8 (per-benchmark rows plus GM rows).

    Runs as a campaign when no ``study`` is supplied: ``workers``
    parallelizes the grid, ``store_dir`` enables the persistent cache.
    """
    if study is not None:
        return fig8_rows(study), study
    result = Fig8Study(
        workloads=tuple(workload_names or PAPER_WORKLOAD_ORDER),
        lossy_threshold_bytes=lossy_threshold_bytes,
        scale=scale,
        seed=seed,
        config_overrides=config_to_overrides(config),
    ).run(store=store_dir, workers=workers)
    return result.data["rows"], result.data["study"]
