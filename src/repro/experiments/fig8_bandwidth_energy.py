"""Fig. 8 — off-chip bandwidth, energy and EDP of TSLC normalized to E2MC.

Reuses the Fig. 7 simulation study.  Paper shape: roughly 14 % less off-chip
traffic, about 8 % less energy and about 17 % lower EDP at the geometric
mean, with only slight differences between the three TSLC variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SLCVariant
from repro.experiments.runner import VARIANT_LABELS, SLCStudy, run_slc_study
from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class Fig8Row:
    """Normalized bandwidth/energy/EDP of one (benchmark, variant) pair."""

    workload: str
    scheme: str
    normalized_bandwidth: float
    normalized_energy: float
    normalized_edp: float


def run_fig8(
    workload_names: list[str] | None = None,
    lossy_threshold_bytes: int = 16,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    study: SLCStudy | None = None,
    workers: int = 1,
    store_dir=None,
) -> tuple[list[Fig8Row], SLCStudy]:
    """Regenerate Fig. 8 (per-benchmark rows plus GM rows).

    Runs as a campaign when no ``study`` is supplied: ``workers``
    parallelizes the grid, ``store_dir`` enables the persistent cache.
    """
    if study is None:
        study = run_slc_study(
            workload_names=workload_names,
            variants=[SLCVariant.SIMP, SLCVariant.PRED, SLCVariant.OPT],
            lossy_threshold_bytes=lossy_threshold_bytes,
            scale=scale,
            seed=seed,
            config=config,
            compute_error=False,
            workers=workers,
            store_dir=store_dir,
        )
    schemes = [s for s in study.schemes() if s != study.baseline_label]
    rows: list[Fig8Row] = []
    for workload in study.workloads():
        for scheme in schemes:
            rows.append(
                Fig8Row(
                    workload=workload,
                    scheme=scheme,
                    normalized_bandwidth=study.normalized_bandwidth(workload, scheme),
                    normalized_energy=study.normalized_energy(workload, scheme),
                    normalized_edp=study.normalized_edp(workload, scheme),
                )
            )
    for scheme in schemes:
        rows.append(
            Fig8Row(
                workload="GM",
                scheme=scheme,
                normalized_bandwidth=study.geomean("bandwidth", scheme),
                normalized_energy=study.geomean("energy", scheme),
                normalized_edp=study.geomean("edp", scheme),
            )
        )
    return rows, study


def format_fig8(rows: list[Fig8Row]) -> str:
    """Render the Fig. 8 data as a text table."""
    lines = [
        "Fig. 8 — bandwidth, energy and EDP of TSLC normalized to E2MC",
        f"{'benchmark':<9} {'scheme':<10} {'bandwidth':>10} {'energy':>8} {'EDP':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.workload:<9} {row.scheme:<10} {row.normalized_bandwidth:>10.3f} "
            f"{row.normalized_energy:>8.3f} {row.normalized_edp:>8.3f}"
        )
    return "\n".join(lines)
