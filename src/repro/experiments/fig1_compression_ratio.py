"""Fig. 1 — raw vs. effective compression ratio (compatibility wrapper).

The implementation is :class:`repro.studies.compression.Fig1Study`; this
module keeps the historical ``run_fig1``/``format_fig1`` entry points and
re-exports the shared block helpers.
"""

from __future__ import annotations

from repro.compression.registry import FIG1_COMPRESSORS
from repro.studies.compression import (
    Fig1Row,
    Fig1Study,
    compression_stats_for_blocks,
    fig1_rows,
    format_fig1,
    workload_blocks,
)
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

__all__ = [
    "Fig1Row",
    "Fig1Study",
    "run_fig1",
    "format_fig1",
    "workload_blocks",
    "compression_stats_for_blocks",
]


def run_fig1(
    workload_names: list[str] | None = None,
    compressors: list[str] | None = None,
    mag_bytes: int = 32,
    scale: float | None = None,
    seed: int = 2019,
) -> list[Fig1Row]:
    """Regenerate the per-benchmark bars of Fig. 1 (plus the GM bars)."""
    return fig1_rows(
        list(workload_names or PAPER_WORKLOAD_ORDER),
        list(compressors or FIG1_COMPRESSORS),
        mag_bytes=mag_bytes,
        scale=scale,
        seed=seed,
    )
