"""Fig. 1 — raw vs. effective compression ratio of BDI, FPC, C-PACK and E2MC.

For every benchmark, every block of the workload's data is compressed with
each technique; the raw ratio ignores MAG while the effective ratio rounds
every compressed size up to the next 32 B multiple.  The paper's headline:
the effective geometric mean is 18–23 % below the raw one for all four
schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.registry import FIG1_COMPRESSORS, get_compressor
from repro.compression.stats import CompressionStats, geometric_mean
from repro.utils.blocks import array_to_blocks
from repro.utils.sampling import sample_evenly
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload


@dataclass(frozen=True)
class Fig1Row:
    """Raw/effective ratio of one (benchmark, compressor) pair."""

    workload: str
    compressor: str
    raw_ratio: float
    effective_ratio: float

    @property
    def effective_loss_percent(self) -> float:
        """How much the effective ratio falls short of the raw ratio."""
        return (1.0 - self.effective_ratio / self.raw_ratio) * 100.0


def workload_blocks(
    name: str, scale: float | None = None, seed: int = 2019, block_size_bytes: int = 128
) -> list[bytes]:
    """All input-region blocks of one benchmark (the data Fig. 1/2 compress)."""
    kwargs = {"seed": seed}
    if scale is not None:
        kwargs["scale"] = scale
    workload = get_workload(name, **kwargs)
    regions = workload.generate()
    blocks: list[bytes] = []
    for region in regions.values():
        blocks.extend(array_to_blocks(region.array, block_size_bytes))
    return blocks


def compression_stats_for_blocks(
    blocks: list[bytes],
    compressor_name: str,
    mag_bytes: int = 32,
    block_size_bytes: int = 128,
    train_samples: int = 1024,
) -> CompressionStats:
    """Compress ``blocks`` with one technique and accumulate MAG statistics."""
    compressor = get_compressor(compressor_name, block_size_bytes=block_size_bytes)
    compressor.train(sample_evenly(blocks, train_samples))
    stats = CompressionStats(block_size_bytes=block_size_bytes, mag_bytes=mag_bytes)
    if compressor_name == "e2mc":
        # The compressed size of an E2MC block is the sum of its code lengths
        # plus the parallel-decoding header; the batched LUT kernel computes
        # every block's size in one gather + row sum, matching what the
        # hardware adder tree does without any bit-level encoding.
        stats.add_blocks(compressor.compressed_size_bits_batch(blocks))
    else:
        for block in blocks:
            stats.add_block(compressor.compress(block).compressed_size_bits)
    return stats


def run_fig1(
    workload_names: list[str] | None = None,
    compressors: list[str] | None = None,
    mag_bytes: int = 32,
    scale: float | None = None,
    seed: int = 2019,
) -> list[Fig1Row]:
    """Regenerate the per-benchmark bars of Fig. 1 (plus the GM bars)."""
    workload_names = list(workload_names or PAPER_WORKLOAD_ORDER)
    compressors = list(compressors or FIG1_COMPRESSORS)
    rows: list[Fig1Row] = []
    per_compressor_raw: dict[str, list[float]] = {c: [] for c in compressors}
    per_compressor_eff: dict[str, list[float]] = {c: [] for c in compressors}

    for name in workload_names:
        blocks = workload_blocks(name, scale=scale, seed=seed)
        for compressor_name in compressors:
            stats = compression_stats_for_blocks(blocks, compressor_name, mag_bytes)
            rows.append(
                Fig1Row(
                    workload=name,
                    compressor=compressor_name,
                    raw_ratio=stats.raw_ratio,
                    effective_ratio=stats.effective_ratio,
                )
            )
            per_compressor_raw[compressor_name].append(stats.raw_ratio)
            per_compressor_eff[compressor_name].append(stats.effective_ratio)

    for compressor_name in compressors:
        rows.append(
            Fig1Row(
                workload="GM",
                compressor=compressor_name,
                raw_ratio=geometric_mean(per_compressor_raw[compressor_name]),
                effective_ratio=geometric_mean(per_compressor_eff[compressor_name]),
            )
        )
    return rows


def format_fig1(rows: list[Fig1Row]) -> str:
    """Render the Fig. 1 data as a text table."""
    lines = [
        "Fig. 1 — raw vs. effective compression ratio (MAG = 32 B)",
        f"{'benchmark':<8} {'scheme':<7} {'raw':>6} {'effective':>10} {'loss %':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row.workload:<8} {row.compressor:<7} {row.raw_ratio:>6.2f} "
            f"{row.effective_ratio:>10.2f} {row.effective_loss_percent:>7.1f}"
        )
    return "\n".join(lines)
