"""Fig. 9 / Section V-C — sensitivity of SLC to the memory access granularity.

TSLC-OPT is simulated with MAGs of 16, 32 and 64 B, with the lossy threshold
set to half the MAG (the paper's choice, because one threshold is not
meaningful across MAGs).  Section V-C also reports the E2MC effective
compression ratio at each MAG (1.41 / 1.31 / 1.16 with a MAG-independent raw
ratio of 1.54), which :func:`run_effective_ratio_by_mag` regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.stats import geometric_mean
from repro.core.config import SLCVariant
from repro.experiments.fig1_compression_ratio import (
    compression_stats_for_blocks,
    workload_blocks,
)
from repro.experiments.runner import VARIANT_LABELS, SLCStudy, run_slc_study
from repro.gpu.config import GPUConfig
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

#: MAGs evaluated in Fig. 9
FIG9_MAGS = (16, 32, 64)


@dataclass(frozen=True)
class Fig9Row:
    """Speedup/error of TSLC-OPT at one MAG for one benchmark."""

    workload: str
    mag_bytes: int
    speedup: float
    error_percent: float


def run_fig9(
    workload_names: list[str] | None = None,
    mags: tuple[int, ...] = FIG9_MAGS,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    workers: int = 1,
    store_dir=None,
) -> tuple[list[Fig9Row], dict[int, SLCStudy]]:
    """Regenerate Fig. 9 (per-benchmark rows plus GM rows, one study per MAG).

    Each MAG runs as its own campaign; a shared ``store_dir`` caches all of
    them side by side (MAG and threshold are part of every job's hash).
    """
    rows: list[Fig9Row] = []
    studies: dict[int, SLCStudy] = {}
    opt_label = VARIANT_LABELS[SLCVariant.OPT]
    for mag in mags:
        study = run_slc_study(
            workload_names=workload_names,
            variants=[SLCVariant.OPT],
            lossy_threshold_bytes=mag // 2,
            mag_bytes=mag,
            scale=scale,
            seed=seed,
            config=config,
            workers=workers,
            store_dir=store_dir,
        )
        studies[mag] = study
        for workload in study.workloads():
            rows.append(
                Fig9Row(
                    workload=workload,
                    mag_bytes=mag,
                    speedup=study.speedup(workload, opt_label),
                    error_percent=study.error_percent(workload, opt_label),
                )
            )
        rows.append(
            Fig9Row(
                workload="GM",
                mag_bytes=mag,
                speedup=study.geomean("speedup", opt_label),
                error_percent=float("nan"),
            )
        )
    return rows, studies


def run_effective_ratio_by_mag(
    workload_names: list[str] | None = None,
    mags: tuple[int, ...] = FIG9_MAGS,
    scale: float | None = None,
    seed: int = 2019,
) -> dict[int, dict[str, float]]:
    """Section V-C: E2MC raw and effective compression ratio per MAG.

    Returns ``{mag: {"raw": gm_raw, "effective": gm_effective}}``; the raw
    geometric mean is identical across MAGs by construction.
    """
    workload_names = list(workload_names or PAPER_WORKLOAD_ORDER)
    results: dict[int, dict[str, float]] = {}
    per_workload_blocks = {
        name: workload_blocks(name, scale=scale, seed=seed) for name in workload_names
    }
    for mag in mags:
        raw_values = []
        effective_values = []
        for name in workload_names:
            stats = compression_stats_for_blocks(per_workload_blocks[name], "e2mc", mag)
            raw_values.append(stats.raw_ratio)
            effective_values.append(stats.effective_ratio)
        results[mag] = {
            "raw": geometric_mean(raw_values),
            "effective": geometric_mean(effective_values),
        }
    return results


def format_fig9(rows: list[Fig9Row]) -> str:
    """Render the Fig. 9 data as a text table."""
    lines = [
        "Fig. 9 — TSLC-OPT speedup and error across MAGs (threshold = MAG/2)",
        f"{'benchmark':<9} {'MAG (B)':>8} {'speedup':>8} {'error %':>9}",
    ]
    for row in rows:
        error = "-" if row.error_percent != row.error_percent else f"{row.error_percent:.4f}"
        lines.append(
            f"{row.workload:<9} {row.mag_bytes:>8} {row.speedup:>8.3f} {error:>9}"
        )
    return "\n".join(lines)
