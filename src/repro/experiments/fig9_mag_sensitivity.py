"""Fig. 9 / Section V-C — MAG sensitivity (compatibility wrapper).

The implementation is :class:`repro.studies.performance.Fig9Study` (a
coupled grid: threshold = MAG/2 per sub-spec); this module keeps the
historical ``run_fig9``/``format_fig9``/``run_effective_ratio_by_mag``
entry points.
"""

from __future__ import annotations

from repro.campaign.spec import config_to_overrides
from repro.experiments.runner import SLCStudy
from repro.gpu.config import GPUConfig
from repro.studies.compression import FIG9_MAGS, effective_ratio_by_mag
from repro.studies.performance import Fig9Row, Fig9Study, format_fig9
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

__all__ = [
    "FIG9_MAGS",
    "Fig9Row",
    "Fig9Study",
    "run_fig9",
    "format_fig9",
    "run_effective_ratio_by_mag",
]


def run_fig9(
    workload_names: list[str] | None = None,
    mags: tuple[int, ...] = FIG9_MAGS,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    workers: int = 1,
    store_dir=None,
) -> tuple[list[Fig9Row], dict[int, SLCStudy]]:
    """Regenerate Fig. 9 (per-benchmark rows plus GM rows, one study per MAG).

    The MAGs run as one coupled campaign grid; a shared ``store_dir`` caches
    every cell (MAG and threshold are part of every job's hash).
    """
    result = Fig9Study(
        workloads=tuple(workload_names or PAPER_WORKLOAD_ORDER),
        mags=tuple(mags),
        scale=scale,
        seed=seed,
        config_overrides=config_to_overrides(config),
    ).run(store=store_dir, workers=workers)
    return result.data["rows"], result.data["studies"]


def run_effective_ratio_by_mag(
    workload_names: list[str] | None = None,
    mags: tuple[int, ...] = FIG9_MAGS,
    scale: float | None = None,
    seed: int = 2019,
) -> dict[int, dict[str, float]]:
    """Section V-C: E2MC raw and effective compression ratio per MAG.

    Returns ``{mag: {"raw": gm_raw, "effective": gm_effective}}``; the raw
    geometric mean is identical across MAGs by construction.
    """
    return effective_ratio_by_mag(workload_names, mags=mags, scale=scale, seed=seed)
