"""Fig. 7 — TSLC speedup and application error (compatibility wrapper).

The implementation is :class:`repro.studies.performance.Fig7Study`; this
module keeps the historical ``run_fig7``/``format_fig7`` entry points,
including the ``study=`` shortcut Fig. 8 uses to avoid re-simulating.
"""

from __future__ import annotations

from repro.campaign.spec import config_to_overrides
from repro.experiments.runner import BASELINE_LABEL, SLCStudy
from repro.gpu.config import GPUConfig
from repro.studies.performance import Fig7Row, Fig7Study, fig7_rows, format_fig7
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

__all__ = ["Fig7Row", "Fig7Study", "run_fig7", "format_fig7", "BASELINE_LABEL"]


def run_fig7(
    workload_names: list[str] | None = None,
    lossy_threshold_bytes: int = 16,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    study: SLCStudy | None = None,
    workers: int = 1,
    store_dir=None,
) -> tuple[list[Fig7Row], SLCStudy]:
    """Regenerate Fig. 7.

    Returns the per-benchmark rows (plus GM rows for the speedup) and the
    underlying :class:`SLCStudy`, which Fig. 8 reuses to avoid re-simulating.
    The study runs as a campaign: ``workers`` parallelizes the grid and
    ``store_dir`` serves already-simulated cells from the result store.
    """
    if study is not None:
        return fig7_rows(study), study
    result = Fig7Study(
        workloads=tuple(workload_names or PAPER_WORKLOAD_ORDER),
        lossy_threshold_bytes=lossy_threshold_bytes,
        scale=scale,
        seed=seed,
        config_overrides=config_to_overrides(config),
    ).run(store=store_dir, workers=workers)
    return result.data["rows"], result.data["study"]
