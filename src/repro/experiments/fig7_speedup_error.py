"""Fig. 7 — speedup and application error of the TSLC variants vs. E2MC.

TSLC-SIMP, TSLC-PRED and TSLC-OPT are simulated with a 16 B lossy threshold
and 32 B MAG; speedups are normalized to the E2MC lossless baseline and the
error uses each benchmark's Table III metric.  Paper shape: 5–17 % speedup
per benchmark (≈ 9–10 % geometric mean), with errors well below 10 % and the
prediction-based variants much more accurate than plain truncation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SLCVariant
from repro.experiments.runner import (
    BASELINE_LABEL,
    VARIANT_LABELS,
    SLCStudy,
    run_slc_study,
)
from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class Fig7Row:
    """Speedup/error of one (benchmark, TSLC variant) pair."""

    workload: str
    scheme: str
    speedup: float
    error_percent: float


def run_fig7(
    workload_names: list[str] | None = None,
    lossy_threshold_bytes: int = 16,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    study: SLCStudy | None = None,
    workers: int = 1,
    store_dir=None,
) -> tuple[list[Fig7Row], SLCStudy]:
    """Regenerate Fig. 7.

    Returns the per-benchmark rows (plus GM rows for the speedup) and the
    underlying :class:`SLCStudy`, which Fig. 8 reuses to avoid re-simulating.
    The study runs as a campaign: ``workers`` parallelizes the grid and
    ``store_dir`` serves already-simulated cells from the result store.
    """
    if study is None:
        study = run_slc_study(
            workload_names=workload_names,
            variants=[SLCVariant.SIMP, SLCVariant.PRED, SLCVariant.OPT],
            lossy_threshold_bytes=lossy_threshold_bytes,
            scale=scale,
            seed=seed,
            config=config,
            workers=workers,
            store_dir=store_dir,
        )
    rows: list[Fig7Row] = []
    schemes = [s for s in study.schemes() if s != study.baseline_label]
    for workload in study.workloads():
        for scheme in schemes:
            rows.append(
                Fig7Row(
                    workload=workload,
                    scheme=scheme,
                    speedup=study.speedup(workload, scheme),
                    error_percent=study.error_percent(workload, scheme),
                )
            )
    for scheme in schemes:
        rows.append(
            Fig7Row(
                workload="GM",
                scheme=scheme,
                speedup=study.geomean("speedup", scheme),
                error_percent=float("nan"),
            )
        )
    return rows, study


def format_fig7(rows: list[Fig7Row]) -> str:
    """Render the Fig. 7 data as a text table."""
    lines = [
        "Fig. 7 — speedup and error of TSLC vs. E2MC "
        f"(baseline = {BASELINE_LABEL}, threshold 16 B, MAG 32 B)",
        f"{'benchmark':<9} {'scheme':<10} {'speedup':>8} {'error %':>9}",
    ]
    for row in rows:
        error = "-" if row.error_percent != row.error_percent else f"{row.error_percent:.4f}"
        lines.append(
            f"{row.workload:<9} {row.scheme:<10} {row.speedup:>8.3f} {error:>9}"
        )
    return "\n".join(lines)
