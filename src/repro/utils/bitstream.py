"""Bit-level writer/reader used by the compressor implementations.

The hardware compressors in the paper emit variable-length codewords that are
packed MSB-first into a compressed block.  ``BitWriter`` and ``BitReader``
model that packing exactly so that compressed sizes are bit-accurate and
round-trips (compress then decompress) can be verified in tests.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates variable-length bit fields, MSB-first."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)

    def write(self, value: int, width: int) -> None:
        """Write ``value`` using exactly ``width`` bits (MSB first).

        Raises:
            ValueError: if ``value`` does not fit in ``width`` bits or is
                negative, or if ``width`` is negative.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        if width < value.bit_length():
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_bits(self, bits: list[int]) -> None:
        """Append a raw list of 0/1 bits."""
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit}")
            self._bits.append(bit)

    def getvalue(self) -> bytes:
        """Return the packed bytes, padding the final byte with zeros."""
        out = bytearray()
        acc = 0
        count = 0
        for bit in self._bits:
            acc = (acc << 1) | bit
            count += 1
            if count == 8:
                out.append(acc)
                acc = 0
                count = 0
        if count:
            out.append(acc << (8 - count))
        return bytes(out)

    def bits(self) -> list[int]:
        """Return a copy of the raw bit list."""
        return list(self._bits)


class BitReader:
    """Reads bit fields from data produced by :class:`BitWriter`."""

    def __init__(self, data: bytes | list[int], bit_length: int | None = None) -> None:
        if isinstance(data, (bytes, bytearray)):
            bits = []
            for byte in data:
                for shift in range(7, -1, -1):
                    bits.append((byte >> shift) & 1)
        else:
            bits = list(data)
        if bit_length is not None:
            if bit_length > len(bits):
                raise ValueError(
                    f"bit_length {bit_length} exceeds available bits {len(bits)}"
                )
            bits = bits[:bit_length]
        self._bits = bits
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read position in bits."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return len(self._bits) - self._pos

    def read(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if self._pos + width > len(self._bits):
            raise EOFError(
                f"requested {width} bits but only {self.remaining} remain"
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read(1)

    def peek(self, width: int) -> int:
        """Return the next ``width`` bits without consuming them."""
        pos = self._pos
        try:
            return self.read(width)
        finally:
            self._pos = pos
