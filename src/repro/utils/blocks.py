"""Helpers for slicing NumPy arrays into fixed-size memory blocks.

GPU memory compression operates on cache-line-sized blocks (128 B in the
paper).  Workload data lives in NumPy arrays; these helpers convert between
array storage and the byte blocks the compressors and the memory controller
see, and between blocks and the 16-bit symbol streams E2MC/SLC operate on.
"""

from __future__ import annotations

import numpy as np

DEFAULT_BLOCK_SIZE = 128
SYMBOL_BYTES = 2
WORD_BYTES = 4


def array_to_blocks(array: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> list[bytes]:
    """Split an array's raw bytes into ``block_size`` chunks.

    The final block is zero-padded to ``block_size`` bytes, mirroring how a
    memory allocation is padded to whole cache lines.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    raw = np.ascontiguousarray(array).tobytes()
    blocks = []
    for start in range(0, len(raw), block_size):
        chunk = raw[start:start + block_size]
        if len(chunk) < block_size:
            chunk = chunk + b"\x00" * (block_size - len(chunk))
        blocks.append(chunk)
    return blocks


def blocks_to_array(
    blocks: list[bytes],
    dtype: np.dtype,
    shape: tuple[int, ...],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """Reassemble an array from blocks produced by :func:`array_to_blocks`."""
    raw = b"".join(blocks)
    count = int(np.prod(shape))
    itemsize = np.dtype(dtype).itemsize
    needed = count * itemsize
    if len(raw) < needed:
        raise ValueError(
            f"blocks provide {len(raw)} bytes but shape {shape} needs {needed}"
        )
    flat = np.frombuffer(raw[:needed], dtype=dtype)
    return flat.reshape(shape).copy()


def block_to_symbols(block: bytes, symbol_bytes: int = SYMBOL_BYTES) -> list[int]:
    """Split a block into fixed-width little-endian symbols (16-bit default)."""
    if len(block) % symbol_bytes:
        raise ValueError(
            f"block length {len(block)} is not a multiple of symbol size {symbol_bytes}"
        )
    symbols = []
    for start in range(0, len(block), symbol_bytes):
        symbols.append(int.from_bytes(block[start:start + symbol_bytes], "little"))
    return symbols


def symbols_to_block(symbols: list[int], symbol_bytes: int = SYMBOL_BYTES) -> bytes:
    """Inverse of :func:`block_to_symbols`."""
    out = bytearray()
    limit = 1 << (8 * symbol_bytes)
    for symbol in symbols:
        if not 0 <= symbol < limit:
            raise ValueError(f"symbol {symbol} out of range for {symbol_bytes} bytes")
        out.extend(int(symbol).to_bytes(symbol_bytes, "little"))
    return bytes(out)


def bytes_to_words(block: bytes, word_bytes: int = WORD_BYTES) -> list[int]:
    """Split a block into fixed-width little-endian words (32-bit default)."""
    return block_to_symbols(block, symbol_bytes=word_bytes)


def words_to_bytes(words: list[int], word_bytes: int = WORD_BYTES) -> bytes:
    """Inverse of :func:`bytes_to_words`."""
    return symbols_to_block(words, symbol_bytes=word_bytes)
