"""Shared low-level utilities: bit-level I/O and block manipulation."""

from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.blocks import (
    array_to_blocks,
    blocks_to_array,
    block_to_symbols,
    bytes_to_words,
    symbols_to_block,
    words_to_bytes,
)
from repro.utils.sampling import sample_evenly

__all__ = [
    "BitReader",
    "BitWriter",
    "sample_evenly",
    "array_to_blocks",
    "blocks_to_array",
    "block_to_symbols",
    "symbols_to_block",
    "bytes_to_words",
    "words_to_bytes",
]
