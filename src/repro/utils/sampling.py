"""Evenly-spaced sampling helpers (the E2MC online-sampling stand-in)."""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def sample_evenly(items: Sequence[T], target: int) -> list[T]:
    """Return up to ``target`` items spread evenly across ``items``.

    Used to build the E2MC/SLC symbol-frequency table from a subset of a
    workload's blocks, mirroring the paper's online sampling window while
    keeping simulation cost bounded for very large inputs.
    """
    if target <= 0:
        raise ValueError("target must be positive")
    n = len(items)
    if n <= target:
        return list(items)
    stride = n / target
    return [items[int(i * stride)] for i in range(target)]
