"""Lightweight span tracer (zero-dependency, contextvar-based).

A *span* is one timed phase — ``sim.replay``, ``codec.store_batch``,
``campaign.run`` — recorded as a plain dict compatible with the Chrome
trace-event format, so a whole campaign's timeline (parent process and
every pool worker) can be inspected in ``chrome://tracing`` or Perfetto.

Design constraints, in order:

1. **Disabled means free.**  Tracing is off by default and
   :func:`span` then returns a shared no-op context manager: one module
   attribute read, no allocation, no clock call.  The instrumented hot
   paths (simulator phases, replay stages, batched stores) cost ≲2%
   even with instrumentation compiled in.
2. **Process-portable.**  Spans carry wall-clock microsecond timestamps
   (``time.time_ns``), which all processes on a host share, plus their
   ``pid``/``tid`` — so worker spans serialized back over the
   ``ProcessPoolExecutor`` boundary merge into one coherent timeline.
   Durations come from ``time.perf_counter_ns`` (monotonic).
3. **Context-aware.**  A :data:`contextvars.ContextVar` tracks the
   innermost open span, so each span records its parent's name without
   the instrumentation sites threading anything through.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "enabled",
    "enable",
    "disable",
    "span",
    "drain",
    "extend",
    "collected",
    "chrome_trace",
    "write_chrome_trace",
]

_enabled: bool = False

#: finished spans of this process (plus any merged via :func:`extend`),
#: already in serialized dict form
_collected: list[dict] = []

#: name of the innermost open span in the current context (parent tracking)
_current_span: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def enabled() -> bool:
    """Whether span collection is on in this process."""
    return _enabled


def enable(on: bool = True) -> None:
    """Turn span collection on (or off with ``on=False``)."""
    global _enabled
    _enabled = bool(on)


def disable() -> None:
    """Turn span collection off."""
    enable(False)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """One open span; records itself into :data:`_collected` on exit."""

    __slots__ = ("name", "cat", "args", "_token", "_wall_ns", "_perf_ns")

    def __init__(self, name: str, cat: str, args: dict) -> None:
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_ActiveSpan":
        parent = _current_span.get()
        if parent is not None:
            self.args.setdefault("parent", parent)
        self._token = _current_span.set(self.name)
        self._wall_ns = time.time_ns()
        self._perf_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        dur_ns = time.perf_counter_ns() - self._perf_ns
        _current_span.reset(self._token)
        _collected.append(
            {
                "name": self.name,
                "cat": self.cat,
                "ts": self._wall_ns // 1000,
                "dur": max(1, dur_ns // 1000),
                "pid": os.getpid(),
                "tid": threading.get_native_id(),
                "args": self.args,
            }
        )
        # Per-phase wall time doubles as a metric when the registry is on.
        from repro.obs import metrics

        if metrics.enabled():
            metrics.observe(f"phase.{self.name}.wall_s", dur_ns / 1e9)
        return False


def span(name: str, cat: str = "repro", **args):
    """Context manager timing one phase; free when tracing is disabled."""
    if not _enabled:
        return _NULL_SPAN
    return _ActiveSpan(name, cat, args)


def mark() -> int:
    """Current buffer position, for :func:`drain` with ``from_index``."""
    return len(_collected)


def drain(from_index: int = 0) -> list[dict]:
    """Return collected span dicts from ``from_index`` on and remove them.

    ``execute_job`` drains from a mark taken at job start, so in-process
    execution attaches only the job's own spans to its record — spans the
    campaign executor opened earlier stay in the buffer.
    """
    global _collected
    spans = _collected[from_index:]
    del _collected[from_index:]
    return spans


def extend(spans: list[dict]) -> None:
    """Merge externally collected span dicts (e.g. from pool workers)."""
    _collected.extend(spans)


def collected() -> list[dict]:
    """The collected spans without draining (mainly for tests)."""
    return list(_collected)


def chrome_trace(spans: list[dict]) -> dict:
    """Wrap span dicts as a Chrome trace-event JSON object.

    Every span becomes a complete (``"ph": "X"``) event; one
    ``process_name`` metadata event per distinct pid labels the main
    process vs. the pool workers in the viewer.
    """
    main_pid = os.getpid()
    events: list[dict] = []
    for pid in sorted({s["pid"] for s in spans}):
        label = "repro (main)" if pid == main_pid else f"repro worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for s in spans:
        events.append(
            {
                "name": s["name"],
                "cat": s.get("cat", "repro"),
                "ph": "X",
                "ts": s["ts"],
                "dur": s["dur"],
                "pid": s["pid"],
                "tid": s["tid"],
                "args": s.get("args", {}),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, spans: list[dict]) -> int:
    """Write spans as Chrome trace-event JSON; returns the span count."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans)) + "\n", encoding="utf-8")
    return len(spans)
