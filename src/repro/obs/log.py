"""One logging setup for the whole ``repro`` CLI.

Campaign/study progress, error lines and observability notices all route
through the ``repro`` logger hierarchy instead of bare ``print()`` calls,
so a single ``--log-level`` flag controls verbosity everywhere.  Progress
stays on **stderr** by default (stdout is reserved for command output:
tables, CSV, summaries that scripts grep).

The handler resolves ``sys.stderr`` at emit time rather than capturing it
at setup time — pytest's ``capsys`` and test-injected streams keep
working no matter when logging was configured.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["LOG_LEVELS", "setup_logging", "get_logger"]

#: accepted ``--log-level`` names, mapped to stdlib levels
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_ROOT = "repro"


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler bound to whatever ``sys.stderr`` currently is."""

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # the base __init__ assigns; ignore
        pass


def setup_logging(level: str = "info") -> logging.Logger:
    """Configure the ``repro`` logger (idempotent; returns it).

    Messages are emitted verbatim (no timestamp/level prefix) so progress
    lines look exactly like the prints they replaced; ``--log-level
    debug`` switches to a prefixed format for actual debugging.
    """
    try:
        numeric = LOG_LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; available: {', '.join(LOG_LEVELS)}"
        ) from None
    logger = logging.getLogger(_ROOT)
    logger.setLevel(numeric)
    logger.propagate = False
    if not any(isinstance(h, _DynamicStderrHandler) for h in logger.handlers):
        logger.addHandler(_DynamicStderrHandler())
    fmt = (
        "%(asctime)s %(levelname)s %(name)s: %(message)s"
        if numeric <= logging.DEBUG
        else "%(message)s"
    )
    for handler in logger.handlers:
        if isinstance(handler, _DynamicStderrHandler):
            handler.setFormatter(logging.Formatter(fmt))
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``name`` may include dots)."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")
