"""Committed performance snapshots and the regression gate over them.

The perf trajectory is a sequence of ``BENCH_NNNN.json`` files committed at
the repository root — one per PR that moved a performance number — each
holding named metrics::

    {
      "label": "BENCH_0006",
      "created": "2026-08-08T12:00:00+00:00",
      "tolerance": 0.35,
      "metrics": {
        "kernels_gm_speedup": {"value": 19.2, "unit": "x",
                               "higher_is_better": true, "gate": true},
        "job_nn_tslc_opt_s":  {"value": 0.61, "unit": "s",
                               "higher_is_better": false, "gate": false}
      }
    }

**Gated** metrics are dimensionless speedup ratios (batched vs. scalar GM
speedups), which transfer across machines; :func:`compare` fails a gated
metric whose current value falls outside the tolerance band of the latest
committed snapshot.  Absolute times (end-to-end job seconds) are recorded
``gate: false`` — trajectory context, not portable pass/fail signals.

``repro bench`` (see :mod:`repro.obs.cli`) is the front end: ``snapshot``
writes the next numbered file, ``check`` is the CI regression gate, and
the benchmark suite feeds it through ``--bench-record`` (see
``benchmarks/conftest.py``) via :func:`record`.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "DEFAULT_TOLERANCE",
    "SNAPSHOT_PATTERN",
    "metric",
    "record",
    "load_recorded",
    "make_snapshot",
    "save_snapshot",
    "load_snapshot",
    "snapshot_paths",
    "latest_snapshot",
    "next_snapshot_path",
    "compare",
    "TrajectoryReport",
]

#: default relative tolerance band for gated metrics; generous because the
#: gate compares runs from different machines (CI runner vs. the snapshot's)
DEFAULT_TOLERANCE = 0.35

#: committed snapshot file names: BENCH_0006.json, BENCH_0007.json, …
SNAPSHOT_PATTERN = re.compile(r"^BENCH_(\d{4})\.json$")


def metric(
    value: float,
    unit: str = "",
    higher_is_better: bool = True,
    gate: bool = True,
    tolerance: float | None = None,
) -> dict:
    """One snapshot metric entry (``tolerance`` overrides the snapshot's)."""
    entry = {
        "value": float(value),
        "unit": unit,
        "higher_is_better": bool(higher_is_better),
        "gate": bool(gate),
    }
    if tolerance is not None:
        entry["tolerance"] = float(tolerance)
    return entry


# --------------------------------------------------------------------- #
# recorded-metrics files (what a benchmark run measures *now*)


def record(
    path: str | Path,
    name: str,
    value: float,
    unit: str = "",
    higher_is_better: bool = True,
    gate: bool = True,
) -> None:
    """Merge one measured metric into the recorded-metrics file at ``path``.

    The file accumulates across pytest invocations (CI runs the kernels,
    replay and codec smokes as separate steps), so it is read-modify-write
    rather than truncate-on-first-use.
    """
    path = Path(path)
    data = load_recorded(path) if path.exists() else {"metrics": {}}
    data["metrics"][name] = metric(
        value, unit=unit, higher_is_better=higher_is_better, gate=gate
    )
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def load_recorded(path: str | Path) -> dict:
    """Read a recorded-metrics file (also accepts a full snapshot)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if "metrics" not in data:
        raise ValueError(f"{path} holds no 'metrics' object")
    return data


# --------------------------------------------------------------------- #
# committed snapshots


def make_snapshot(
    metrics: dict[str, dict],
    label: str,
    tolerance: float = DEFAULT_TOLERANCE,
    created: str | None = None,
) -> dict:
    """Assemble a snapshot document from metric entries."""
    if created is None:
        created = datetime.now(timezone.utc).isoformat(timespec="seconds")
    return {
        "label": label,
        "created": created,
        "tolerance": float(tolerance),
        "metrics": dict(metrics),
    }


def save_snapshot(path: str | Path, snapshot: dict) -> None:
    """Write a snapshot document as pretty-printed JSON."""
    Path(path).write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")


def load_snapshot(path: str | Path) -> dict:
    """Read one committed snapshot."""
    return load_recorded(path)


def snapshot_paths(directory: str | Path = ".") -> list[Path]:
    """Every committed ``BENCH_NNNN.json`` under ``directory``, in order."""
    directory = Path(directory)
    found = [
        (int(m.group(1)), path)
        for path in directory.glob("BENCH_*.json")
        if (m := SNAPSHOT_PATTERN.match(path.name))
    ]
    return [path for _, path in sorted(found)]


def latest_snapshot(directory: str | Path = ".") -> tuple[Path, dict] | None:
    """The newest committed snapshot (path, document), or None."""
    paths = snapshot_paths(directory)
    if not paths:
        return None
    return paths[-1], load_snapshot(paths[-1])


def next_snapshot_path(directory: str | Path = ".") -> Path:
    """The path the next numbered snapshot should be written to."""
    paths = snapshot_paths(directory)
    number = 1
    if paths:
        number = int(SNAPSHOT_PATTERN.match(paths[-1].name).group(1)) + 1
    return Path(directory) / f"BENCH_{number:04d}.json"


# --------------------------------------------------------------------- #
# the regression gate


@dataclass
class TrajectoryReport:
    """Outcome of comparing current metrics against a committed snapshot."""

    baseline_label: str
    #: (name, current, baseline, bound) for gated metrics outside tolerance
    regressions: list[tuple[str, float, float, float]] = field(default_factory=list)
    #: (name, current, baseline) for gated metrics inside tolerance
    passed: list[tuple[str, float, float]] = field(default_factory=list)
    #: (name, current) for ungated or baseline-missing metrics
    informational: list[tuple[str, float]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no gated metric regressed."""
        return not self.regressions

    def format(self) -> str:
        """Human-readable gate report."""
        lines = [f"perf trajectory vs. {self.baseline_label}:"]
        for name, current, baseline, bound in self.regressions:
            lines.append(
                f"  REGRESSION {name}: {current:g} vs. baseline {baseline:g} "
                f"(bound {bound:g})"
            )
        for name, current, baseline in self.passed:
            lines.append(f"  ok {name}: {current:g} (baseline {baseline:g})")
        for name, current in self.informational:
            lines.append(f"  info {name}: {current:g}")
        if not self.regressions and not self.passed:
            lines.append("  (no gated metrics in common — nothing checked)")
        return "\n".join(lines)


def compare(
    current: dict[str, dict],
    baseline: dict,
    tolerance: float | None = None,
) -> TrajectoryReport:
    """Gate ``current`` metric entries against a ``baseline`` snapshot.

    A gated metric regresses when it falls outside the tolerance band around
    the baseline value — below ``baseline * (1 - tol)`` for
    higher-is-better metrics, above ``baseline * (1 + tol)`` otherwise.
    Tolerance resolution order: per-metric ``tolerance`` in the baseline
    entry, then the explicit ``tolerance`` argument, then the snapshot's
    document-level tolerance, then :data:`DEFAULT_TOLERANCE`.  Metrics
    marked ``gate: false`` (in either side) or absent from the baseline are
    reported as informational, never failed.
    """
    report = TrajectoryReport(baseline_label=baseline.get("label", "?"))
    base_metrics = baseline.get("metrics", {})
    doc_tolerance = tolerance if tolerance is not None else baseline.get(
        "tolerance", DEFAULT_TOLERANCE
    )
    for name in sorted(current):
        entry = current[name]
        value = float(entry["value"])
        base = base_metrics.get(name)
        gated = entry.get("gate", True) and (base or {}).get("gate", True)
        if base is None or not gated:
            report.informational.append((name, value))
            continue
        base_value = float(base["value"])
        tol = float(base.get("tolerance", doc_tolerance))
        if entry.get("higher_is_better", True):
            bound = base_value * (1.0 - tol)
            regressed = value < bound
        else:
            bound = base_value * (1.0 + tol)
            regressed = value > bound
        if regressed:
            report.regressions.append((name, value, base_value, bound))
        else:
            report.passed.append((name, value, base_value))
    return report
