"""Direct perf measurements behind ``repro bench snapshot --measure``.

The benchmark suite under ``benchmarks/`` is the authoritative harness (it
asserts speedup floors and feeds the gate via ``--bench-record``), but it
only runs under pytest.  This module measures the same three batched-vs-
scalar geometric-mean speedups — analysis kernels, trace replay, payload
codec — plus two end-to-end job times with the same methodology
(best-of-N wall time over identical inputs), so a snapshot can be taken
with nothing but the installed package::

    repro bench snapshot --measure --quick

Quick mode mirrors the CI smoke benchmarks (three workloads, benchmark
scale); full mode mirrors the full suite (all nine paper workloads,
trace-heavy scale for replay).  Quick and full numbers are *not*
comparable to each other, so metric names carry a ``_quick`` suffix in
quick mode and the gate only compares like with like.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.campaign.spec import Job
from repro.campaign.worker import build_backend, simulate_job
from repro.compression.e2mc import E2MCCompressor
from repro.compression.stats import geometric_mean
from repro.core.config import SLCConfig, SLCVariant
from repro.core.slc import SLCCompressor
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig
from repro.gpu.memory_controller import MemoryController
from repro.gpu.simulator import GPUSimulator
from repro.obs import trajectory
from repro.obs.metrics import measure_peak_mib
from repro.replay import replay_trace, replay_trace_scalar
from repro.utils.blocks import array_to_blocks
from repro.utils.sampling import sample_evenly
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

__all__ = [
    "QUICK_WORKLOADS",
    "measure_kernels_gm",
    "measure_codec_gm",
    "measure_decode_gm",
    "measure_replay_gm",
    "measure_replay_peak_mib",
    "measure_job_seconds",
    "collect_metrics",
]

#: the CI smoke subset (matches the benchmark suite's quick mode)
QUICK_WORKLOADS = ("NN", "FWT", "DCT")
#: benchmark-default input scale for kernels/codec (and quick replay)
BENCH_SCALE = 1.0 / 512.0
#: trace-heavy scale for the full replay sweep
REPLAY_FULL_SCALE = 1.0 / 64.0
#: per-workload block cap for the codec measurement (scalar path ~1 ms/block)
CODEC_MAX_BLOCKS = 384
#: decode-measurement batch sizes (matches the benchmark suite)
DECODE_ROWS = 8192
QUICK_DECODE_ROWS = 2048
#: chunk budget for the bounded-memory replay measurement
CHUNK_ACCESSES = 128


def _time_best(fn: Callable[[], object], repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _workload_blocks(name: str, scale: float, cap: int | None = None) -> list[bytes]:
    workload = get_workload(name, scale=scale, seed=2019)
    blocks = [
        block
        for region in workload.generate().values()
        for block in array_to_blocks(region.array)
    ]
    return sample_evenly(blocks, cap) if cap else blocks


def measure_kernels_gm(
    workloads: tuple[str, ...], scale: float = BENCH_SCALE
) -> float:
    """GM speedup of ``analyze_batch`` over the per-block scalar analyze."""
    config = SLCConfig(variant=SLCVariant.OPT)
    speedups = []
    for name in workloads:
        blocks = _workload_blocks(name, scale)
        slc = SLCCompressor(config)
        slc.train(sample_evenly(blocks, 1024))
        scalar_s = _time_best(lambda: [slc.analyze(block) for block in blocks])
        batch_s = _time_best(lambda: slc.analyze_batch(blocks))
        speedups.append(scalar_s / batch_s)
    return geometric_mean(speedups)


def measure_codec_gm(
    workloads: tuple[str, ...], scale: float = BENCH_SCALE
) -> float:
    """GM speedup of the batched payload codec roundtrip over the scalar one."""
    config = SLCConfig(variant=SLCVariant.OPT)
    speedups = []
    for name in workloads:
        blocks = _workload_blocks(name, scale, cap=CODEC_MAX_BLOCKS)
        slc = SLCCompressor(config)
        slc.train(sample_evenly(blocks, 1024))

        def scalar() -> None:
            for compressed in [slc.compress(block) for block in blocks]:
                slc.decompress(compressed)

        scalar_s = _time_best(scalar)
        batch_s = _time_best(lambda: slc.decompress_batch(slc.compress_batch(blocks)))
        speedups.append(scalar_s / batch_s)
    return geometric_mean(speedups)


def measure_decode_gm(
    workloads: tuple[str, ...],
    scale: float = BENCH_SCALE,
    n_rows: int = QUICK_DECODE_ROWS,
) -> float:
    """GM speedup of the fused multi-symbol decode over the lockstep oracle."""
    import numpy as np

    speedups = []
    for name in workloads:
        blocks = _workload_blocks(name, scale, cap=CODEC_MAX_BLOCKS)
        compressor = E2MCCompressor()
        compressor.train(sample_evenly(blocks, 1024))
        payloads: list[bytes] = []
        bits: list[int] = []
        for compressed in compressor.compress_batch(blocks):
            if compressed.is_compressed:
                data, payload_bits = compressed.payload
                payloads.append(data)
                bits.append(payload_bits)
        if not payloads:  # pragma: no cover - every paper workload compresses
            continue
        reps = -(-n_rows // len(payloads))
        payloads = (payloads * reps)[:n_rows]
        bit_lengths = np.asarray((bits * reps)[:n_rows], dtype=np.int64)
        counts = np.full(
            len(payloads), compressor.symbols_per_block, dtype=np.int64
        )
        lut = compressor.model.codec_table()
        oracle_s = _time_best(
            lambda: lut.decode_rows_lockstep(payloads, bit_lengths, counts)
        )
        fused_s = _time_best(lambda: lut.decode_rows(payloads, bit_lengths, counts))
        speedups.append(oracle_s / fused_s)
    return geometric_mean(speedups)


class _ReplaySetup:
    """One workload's replay inputs with rebuildable mutable state.

    The expensive one-time stages (data generation, kernel execution,
    training, trace construction) run once; :meth:`fresh_state` rebuilds
    the L2 and controllers (with the host-to-device copy applied) so each
    timed replay starts from an identical machine state.
    """

    def __init__(self, name: str, scale: float, scheme: str = "E2MC") -> None:
        self.config = GPUConfig()
        workload = get_workload(name, scale=scale, seed=2019)
        self.backend = build_backend(scheme, self.config)
        simulator = GPUSimulator(config=self.config)
        self.input_regions = workload.generate()
        exact = workload.run(workload.input_arrays(self.input_regions))
        self.all_regions = dict(self.input_regions)
        self.all_regions.update(workload.output_regions(exact))
        self.region_blocks = {
            region_name: array_to_blocks(region.array, self.config.block_size_bytes)
            for region_name, region in self.all_regions.items()
        }
        self.base_addresses = simulator._layout(self.all_regions, self.region_blocks)
        simulator._train_backend(self.backend, self.input_regions, self.region_blocks)
        self.trace = workload.trace(
            self.all_regions, block_size_bytes=self.config.block_size_bytes
        )
        self.interleave = simulator.CHANNEL_INTERLEAVE_BLOCKS

    def fresh_state(self) -> tuple[SetAssociativeCache, list[MemoryController]]:
        config = self.config
        controllers = [
            MemoryController(
                controller_id=i,
                backend=self.backend,
                mag_bytes=config.mag_bytes,
                block_size_bytes=config.block_size_bytes,
            )
            for i in range(config.num_memory_controllers)
        ]
        for name, region in self.input_regions.items():
            base = self.base_addresses[name]
            stored_blocks = self.backend.store_batch(
                self.region_blocks[name], approximable=region.approximable
            )
            for index, stored in enumerate(stored_blocks):
                address = base + index
                controllers[
                    (address // self.interleave) % len(controllers)
                ].record_stored(address, stored, count_traffic=False)
        l2 = SetAssociativeCache(
            size_bytes=config.l2_cache_kb * 1024,
            line_bytes=config.l2_line_bytes,
            ways=config.l2_ways,
        )
        return l2, controllers

    def time_replay(self, engine, repeats: int = 2) -> float:
        best = float("inf")
        for _ in range(repeats):
            l2, controllers = self.fresh_state()
            start = time.perf_counter()
            engine(
                self.trace,
                all_regions=self.all_regions,
                region_blocks=self.region_blocks,
                base_addresses=self.base_addresses,
                l2=l2,
                controllers=controllers,
                interleave_blocks=self.interleave,
            )
            best = min(best, time.perf_counter() - start)
        return best


def measure_replay_gm(workloads: tuple[str, ...], scale: float) -> float:
    """GM speedup of the vectorized replay engine over the scalar loop."""
    speedups = []
    for name in workloads:
        setup = _ReplaySetup(name, scale)
        scalar_s = setup.time_replay(replay_trace_scalar)
        vector_s = setup.time_replay(replay_trace)
        speedups.append(scalar_s / vector_s)
    return geometric_mean(speedups)


def measure_replay_peak_mib(
    scale: float, chunk_accesses: int = CHUNK_ACCESSES
) -> float:
    """tracemalloc peak (MiB) of one chunked replay of the TP trace."""
    setup = _ReplaySetup("TP", scale)
    l2, controllers = setup.fresh_state()
    _, peak = measure_peak_mib(
        replay_trace,
        setup.trace,
        all_regions=setup.all_regions,
        region_blocks=setup.region_blocks,
        base_addresses=setup.base_addresses,
        l2=l2,
        controllers=controllers,
        interleave_blocks=setup.interleave,
        chunk_accesses=chunk_accesses,
    )
    return peak


def measure_job_seconds(scale: float = BENCH_SCALE) -> dict[str, float]:
    """End-to-end wall time of two representative campaign jobs."""
    jobs = {
        "job_nn_tslc_opt_s": Job(
            workload="NN", scheme="TSLC-OPT", scale=scale, seed=2019,
            compute_error=False,
        ),
        "job_tp_e2mc_s": Job(
            workload="TP", scheme="E2MC", scale=scale, seed=2019,
            compute_error=False,
        ),
    }
    return {
        name: _time_best(lambda job=job: simulate_job(job))
        for name, job in jobs.items()
    }


def collect_metrics(quick: bool = True, progress=None) -> dict[str, dict]:
    """Measure the full metric set for a snapshot (``repro bench snapshot``).

    Quick mode takes ~10 s and matches the CI smoke benchmarks; full mode
    matches the full benchmark suite (minutes).  ``progress`` is called
    with a status string before each measurement family.
    """
    suffix = "_quick" if quick else ""
    workloads = QUICK_WORKLOADS if quick else PAPER_WORKLOAD_ORDER
    replay_scale = BENCH_SCALE if quick else REPLAY_FULL_SCALE
    say = progress or (lambda message: None)

    metrics: dict[str, dict] = {}
    say("measuring analysis kernels (batched vs. scalar)")
    metrics[f"kernels_gm_speedup{suffix}"] = trajectory.metric(
        measure_kernels_gm(workloads), unit="x"
    )
    say("measuring trace replay (vectorized vs. scalar)")
    metrics[f"replay_gm_speedup{suffix}"] = trajectory.metric(
        measure_replay_gm(workloads, replay_scale), unit="x"
    )
    say("measuring payload codec (batched vs. scalar)")
    metrics[f"codec_gm_speedup{suffix}"] = trajectory.metric(
        measure_codec_gm(workloads), unit="x"
    )
    say("measuring fused decode (vs. searchsorted oracle)")
    metrics[f"decode_gm_speedup{suffix}"] = trajectory.metric(
        measure_decode_gm(
            workloads, n_rows=QUICK_DECODE_ROWS if quick else DECODE_ROWS
        ),
        unit="x",
    )
    say("measuring chunked-replay memory peak")
    metrics[f"replay_peak_mib{suffix}"] = trajectory.metric(
        measure_replay_peak_mib(replay_scale),
        unit="MiB", higher_is_better=False, gate=False,
    )
    say("measuring end-to-end job times")
    for name, seconds in measure_job_seconds().items():
        metrics[name] = trajectory.metric(
            seconds, unit="s", higher_is_better=False, gate=False
        )
    return metrics
