"""Process-local metrics registry: counters and value statistics.

Two primitive kinds cover everything the simulator needs:

* **counters** (:func:`inc`) — monotonically accumulated totals: blocks
  compressed, codec bits stored, MDC fast-path vs. fallback invocations,
  campaign cache hits.
* **values** (:func:`observe`) — summary statistics (count/sum/min/max,
  so mean is derivable) over observed samples: L2 hit rate per job,
  per-phase wall time, codec throughput.

The registry is module-global and process-local.  Workers snapshot it per
job (:func:`snapshot` + :func:`clear`), the snapshot rides back on the
:class:`~repro.campaign.store.JobRecord`, and :func:`merge` folds any
number of snapshots together — which is also how ``repro campaign status
--metrics`` aggregates a whole store.

Like :mod:`repro.obs.tracing`, collection is **off by default** and every
instrumentation site guards on :func:`enabled`, so the disabled cost is a
single module attribute read.

``tracemalloc`` peak tracking is a further opt-in on top (it slows
allocation-heavy code measurably): :func:`enable_tracemalloc`, or the
``REPRO_OBS_TRACEMALLOC=1`` environment variable.
"""

from __future__ import annotations

import os
import sys
import tracemalloc

__all__ = [
    "enabled",
    "enable",
    "disable",
    "inc",
    "observe",
    "snapshot",
    "clear",
    "merge",
    "format_metrics",
    "enable_tracemalloc",
    "tracemalloc_enabled",
    "start_tracemalloc",
    "stop_tracemalloc",
    "peak_rss_mib",
    "measure_peak_mib",
]

_enabled: bool = False
_counters: dict[str, float] = {}
_values: dict[str, dict] = {}

_tracemalloc: bool = bool(os.environ.get("REPRO_OBS_TRACEMALLOC"))


def enabled() -> bool:
    """Whether metric collection is on in this process."""
    return _enabled


def enable(on: bool = True) -> None:
    """Turn metric collection on (or off with ``on=False``)."""
    global _enabled
    _enabled = bool(on)


def disable() -> None:
    """Turn metric collection off."""
    enable(False)


def inc(name: str, value: float = 1) -> None:
    """Add ``value`` to the counter ``name`` (no-op while disabled)."""
    if not _enabled:
        return
    _counters[name] = _counters.get(name, 0) + value


def observe(name: str, value: float) -> None:
    """Fold one sample into the value statistic ``name`` (no-op while disabled)."""
    if not _enabled:
        return
    stat = _values.get(name)
    if stat is None:
        _values[name] = {"count": 1, "sum": value, "min": value, "max": value}
    else:
        stat["count"] += 1
        stat["sum"] += value
        if value < stat["min"]:
            stat["min"] = value
        if value > stat["max"]:
            stat["max"] = value


def snapshot() -> dict:
    """The registry's current contents as a plain (picklable) dict."""
    return {
        "counters": dict(_counters),
        "values": {name: dict(stat) for name, stat in _values.items()},
    }


def clear() -> None:
    """Reset every counter and value statistic."""
    _counters.clear()
    _values.clear()


def merge(*snapshots: dict) -> dict:
    """Fold snapshots together: counters sum, value statistics combine."""
    counters: dict[str, float] = {}
    values: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, stat in (snap.get("values") or {}).items():
            merged = values.get(name)
            if merged is None:
                values[name] = dict(stat)
            else:
                merged["count"] += stat["count"]
                merged["sum"] += stat["sum"]
                merged["min"] = min(merged["min"], stat["min"])
                merged["max"] = max(merged["max"], stat["max"])
    return {"counters": counters, "values": values}


def format_metrics(snap: dict) -> str:
    """Render a snapshot as aligned, sorted text lines."""
    lines: list[str] = []
    counters = snap.get("counters") or {}
    values = snap.get("values") or {}
    width = max((len(name) for name in (*counters, *values)), default=0)
    for name in sorted(counters):
        value = counters[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"  {name:<{width}}  {rendered}")
    for name in sorted(values):
        stat = values[name]
        mean = stat["sum"] / stat["count"] if stat["count"] else 0.0
        lines.append(
            f"  {name:<{width}}  mean {mean:g}  min {stat['min']:g}  "
            f"max {stat['max']:g}  n {stat['count']}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# optional tracemalloc peak tracking


def tracemalloc_enabled() -> bool:
    """Whether per-job tracemalloc peak tracking is requested."""
    return _tracemalloc


def enable_tracemalloc(on: bool = True) -> None:
    """Request per-job tracemalloc peak tracking (workers inherit it)."""
    global _tracemalloc
    _tracemalloc = bool(on)


def start_tracemalloc() -> bool:
    """Begin a peak measurement; returns False when not requested/available."""
    if not (_enabled and _tracemalloc):
        return False
    tracemalloc.start()
    return True


def stop_tracemalloc() -> None:
    """End a peak measurement, recording ``job.tracemalloc_peak_kb``."""
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    observe("job.tracemalloc_peak_kb", peak / 1024.0)


# --------------------------------------------------------------------- #
# peak-memory observability


def peak_rss_mib() -> float:
    """This process's high-water resident set size, in MiB.

    Reads ``getrusage(RUSAGE_SELF).ru_maxrss`` — kibibytes on Linux, bytes
    on macOS.  A process-lifetime high-water mark: it never decreases, so
    it bounds (rather than equals) any one phase's footprint.  Returns 0.0
    where the resource module is unavailable.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is in bytes
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def measure_peak_mib(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` under tracemalloc, returning
    ``(result, peak_mib)``.

    The peak is the tracemalloc high-water mark of Python allocations made
    *during the call* — unlike :func:`peak_rss_mib` it resets per
    measurement, which is what the replay benchmarks need to show that
    chunked replay bounds its working set.  If tracemalloc is already
    tracing (e.g. ``REPRO_OBS_TRACEMALLOC``), the outer trace is left
    running and its peak is reset rather than stopped.
    """
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    try:
        result = fn(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, peak / (1024.0 * 1024.0)
