"""``repro bench`` — take, inspect and gate on perf-trajectory snapshots.

Subcommands (registered into the main ``repro`` parser)::

    repro bench snapshot   write the next committed BENCH_NNNN.json
    repro bench check      gate current numbers against the latest snapshot
    repro bench list       print the committed trajectory

Current numbers come from either a recorded-metrics file (``--from``,
written by the benchmark suite's ``--bench-record`` option — what CI
does) or a direct in-process measurement (``--measure``, quick by
default; see :mod:`repro.obs.bench`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs import metrics, tracing, trajectory
from repro.obs.log import get_logger

logger = get_logger("obs.bench")


def enable_observability(args: argparse.Namespace) -> None:
    """Turn on tracing/metrics per the ``--trace``/``--metrics`` CLI flags."""
    if getattr(args, "trace", None):
        tracing.enable()
    if getattr(args, "metrics", False):
        metrics.enable()


def finish_trace(args: argparse.Namespace) -> None:
    """Drain collected spans into the ``--trace`` Chrome trace file."""
    if not getattr(args, "trace", None):
        return
    n = tracing.write_chrome_trace(args.trace, tracing.drain())
    get_logger("obs.trace").info(
        "wrote %d spans to %s (chrome://tracing / Perfetto)", n, args.trace
    )


def _current_metrics(args: argparse.Namespace) -> dict[str, dict] | None:
    """Resolve the current metric set from ``--from`` or ``--measure``."""
    if getattr(args, "from_path", None):
        return trajectory.load_recorded(args.from_path)["metrics"]
    if getattr(args, "measure", False):
        from repro.obs.bench import collect_metrics  # heavy import, on demand

        return collect_metrics(quick=not args.full, progress=logger.info)
    return None


def cmd_snapshot(args: argparse.Namespace) -> int:
    """``bench snapshot``: persist current numbers as the next BENCH file."""
    metrics = _current_metrics(args)
    if metrics is None:
        logger.error("error: bench snapshot needs --from FILE or --measure")
        return 2
    out = Path(args.out) if args.out else trajectory.next_snapshot_path(args.dir)
    if out.exists() and not args.force:
        logger.error(
            "error: %s already exists — snapshots are committed history; "
            "rerun with --force to overwrite, or drop --out to auto-pick "
            "the next free label (%s)",
            out,
            trajectory.next_snapshot_path(args.dir).name,
        )
        return 2
    label = out.stem if hasattr(out, "stem") else str(out)
    tolerance = (
        args.tolerance if args.tolerance is not None else trajectory.DEFAULT_TOLERANCE
    )
    snapshot = trajectory.make_snapshot(metrics, label=label, tolerance=tolerance)
    trajectory.save_snapshot(out, snapshot)
    print(f"wrote {len(metrics)} metrics to {out}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """``bench check``: the regression gate (nonzero exit on regression)."""
    latest = trajectory.latest_snapshot(args.dir)
    if latest is None:
        logger.error("error: no committed BENCH_*.json under %s", args.dir)
        return 2
    path, baseline = latest
    metrics = _current_metrics(args)
    if metrics is None:
        logger.error("error: bench check needs --from FILE or --measure")
        return 2
    report = trajectory.compare(metrics, baseline, tolerance=args.tolerance)
    print(report.format())
    if not report.ok:
        logger.error(
            "%d metric(s) regressed vs. %s", len(report.regressions), path
        )
        return 1
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """``bench list``: the committed trajectory, one line per gated metric."""
    paths = trajectory.snapshot_paths(args.dir)
    if not paths:
        print(f"no committed BENCH_*.json under {args.dir}")
        return 1
    for path in paths:
        snapshot = trajectory.load_snapshot(path)
        print(f"{snapshot.get('label', path.stem)}  ({snapshot.get('created', '?')})")
        for name in sorted(snapshot["metrics"]):
            entry = snapshot["metrics"][name]
            flag = "" if entry.get("gate", True) else "  [info]"
            print(f"  {name:<28} {entry['value']:g}{entry.get('unit', '')}{flag}")
    return 0


def add_bench_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``bench`` subcommand tree on the main ``repro`` parser."""
    bench = sub.add_parser(
        "bench", help="perf-trajectory snapshots and the regression gate"
    )
    bench_sub = bench.add_subparsers(dest="subcommand", required=True)

    def add_source(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--from",
            dest="from_path",
            default=None,
            metavar="FILE",
            help="recorded-metrics JSON (written via pytest --bench-record)",
        )
        parser.add_argument(
            "--measure",
            action="store_true",
            help="measure in-process instead of reading a recorded file",
        )
        parser.add_argument(
            "--full",
            action="store_true",
            help="with --measure: the full 9-workload sweep (minutes)",
        )
        parser.add_argument(
            "--dir", default=".", help="directory holding BENCH_*.json snapshots"
        )
        parser.add_argument(
            "--tolerance",
            type=float,
            default=None,
            help="relative tolerance band override for gated metrics",
        )

    snapshot = bench_sub.add_parser(
        "snapshot", help="write the next committed BENCH_NNNN.json"
    )
    add_source(snapshot)
    snapshot.add_argument(
        "--out", default=None, help="explicit output path (default: next number)"
    )
    snapshot.add_argument(
        "--force",
        action="store_true",
        help="allow overwriting an existing snapshot file",
    )
    snapshot.set_defaults(func=cmd_snapshot)

    check = bench_sub.add_parser(
        "check", help="gate current numbers against the latest snapshot"
    )
    add_source(check)
    check.set_defaults(func=cmd_check)

    listing = bench_sub.add_parser("list", help="print the committed trajectory")
    listing.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json snapshots"
    )
    listing.set_defaults(func=cmd_list)
