"""Cross-layer observability: tracing, metrics and the perf trajectory.

Three concerns, one package, all **off by default** so the simulation hot
path pays (almost) nothing when nobody is watching:

* :mod:`repro.obs.tracing` — a zero-dependency, contextvar-based span
  tracer.  The simulator phases, the replay engine and the campaign
  executor are instrumented with :func:`~repro.obs.tracing.span` blocks;
  ``repro campaign run``/``repro study run`` expose ``--trace out.json``
  which writes the collected spans (main process *and* worker processes,
  merged) as Chrome trace-event JSON viewable in ``chrome://tracing`` or
  Perfetto.
* :mod:`repro.obs.metrics` — a process-local registry of counters and
  value statistics (blocks compressed, codec throughput, L2/MDC hit
  rates, per-phase wall time …).  Worker snapshots ride back on each
  :class:`~repro.campaign.store.JobRecord` and ``repro campaign status
  --metrics`` aggregates them across a whole store.
* :mod:`repro.obs.trajectory` — committed ``BENCH_*.json`` performance
  snapshots plus the comparison logic behind ``repro bench check``, the
  CI regression gate that keeps "fast as the hardware allows" measured
  instead of remembered.

:func:`state` / :func:`apply_state` / :func:`worker_init` carry the
enable flags across the ``ProcessPoolExecutor`` boundary so spans and
metrics recorded inside worker processes are collected exactly like the
parent's.
"""

from __future__ import annotations

from repro.obs import metrics, tracing

__all__ = [
    "metrics",
    "tracing",
    "state",
    "apply_state",
    "worker_init",
]


def state() -> dict:
    """The process's observability switches as a picklable dict."""
    return {
        "tracing": tracing.enabled(),
        "metrics": metrics.enabled(),
        "tracemalloc": metrics.tracemalloc_enabled(),
    }


def apply_state(obs_state: dict) -> None:
    """Apply a :func:`state` dict to this process (used in workers)."""
    tracing.enable(bool(obs_state.get("tracing")))
    metrics.enable(bool(obs_state.get("metrics")))
    metrics.enable_tracemalloc(bool(obs_state.get("tracemalloc")))


def worker_init(obs_state: dict) -> None:
    """``ProcessPoolExecutor`` initializer: inherit the parent's switches.

    Top-level (picklable) so it survives the ``spawn`` start method; under
    ``fork`` it is also what makes the flags explicit instead of relying on
    inherited module state.
    """
    apply_state(obs_state)
