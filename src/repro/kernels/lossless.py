"""Vectorized size-analysis kernels for the classic lossless compressors.

PRs 2–4 vectorized the E2MC/SLC pipeline; this module does the same for the
remaining registry schemes — BDI, FPC, C-Pack and BPC — so that *every*
:class:`~repro.compression.base.BlockCompressor` can ride the batched
``store_batch`` path of :class:`~repro.gpu.backends.LosslessBackend`.

Each kernel computes, for all blocks of a region at once, exactly the
``compressed_size_bits`` the scalar ``compress()`` implementation would
report — the scalar path remains the n = 1 oracle and the equivalence is
pinned bit-for-bit by ``tests/test_lossless_batch.py`` (hypothesis suites
plus real workload regions) and the golden-result suite.

Only the *size* analysis is vectorized: that is all the memory-controller
backends need (burst counts and stored bits follow from the size), and it is
what the compression hardware's parallel pattern detectors compute in one
cycle anyway.  Payload encode/decode stays scalar via the compressors'
``compress``/``decompress``.

Techniques shared by the kernels:

* blocks become an ``(n_blocks, block_bytes)`` uint8 matrix via one
  ``np.frombuffer`` over the joined buffer, then ``.view()`` reinterprets
  rows as 16/32/64-bit little-endian words without copying;
* wrap-around deltas are computed in unsigned arithmetic and reinterpreted
  as two's-complement via ``.view(signed)`` — the exact semantics of the
  scalar ``_to_signed`` helpers;
* zero-run accounting (FPC word runs, BPC plane runs) finds run starts and
  lengths over the whole batch at once by diffing the flattened, row-padded
  zero mask, then bins per-row token costs with ``np.bincount``.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.compression.base import CompressionError
from repro.kernels import backend as _backend

#: the (base_bytes, delta_bytes) encodings of the scalar BDI implementation,
#: in the same trial order
_BDI_ENCODINGS = ((8, 1), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1))

#: BDI encoding-selector bits (mirrors ``repro.compression.bdi._ENCODING_BITS``)
_BDI_ENCODING_BITS = 4


def _sharded(kernel):
    """Shard a size kernel across threads (``REPRO_KERNEL_BACKEND=threaded``).

    Blocks are independent, so contiguous slices of the batch run the
    identical NumPy kernel concurrently and concatenate bit-exactly.  When
    the threaded backend is off (or the batch is small) the kernel runs
    single-shot, unchanged.
    """

    @functools.wraps(kernel)
    def wrapper(blocks: list[bytes], block_size_bytes: int = 128) -> np.ndarray:
        shards = _backend.run_sharded(
            lambda lo, hi: kernel(blocks[lo:hi], block_size_bytes), len(blocks)
        )
        if shards is not None:
            return np.concatenate(shards)
        return kernel(blocks, block_size_bytes)

    return wrapper


def _byte_matrix(blocks: list[bytes], block_size_bytes: int) -> np.ndarray:
    """All blocks as one ``(n, block_size_bytes)`` uint8 matrix (zero-copy rows)."""
    n = len(blocks)
    joined = b"".join(blocks)
    if len(joined) != n * block_size_bytes:
        raise CompressionError(
            f"expected {n} blocks of {block_size_bytes} bytes, "
            f"got {len(joined)} bytes total"
        )
    return np.frombuffer(joined, dtype=np.uint8).reshape(n, block_size_bytes)


def _zero_run_bits(zero_mask: np.ndarray, max_run: int, token_bits: int) -> np.ndarray:
    """Per-row bit cost of run-length encoding the True runs of ``zero_mask``.

    A run of length L costs ``ceil(L / max_run)`` tokens of ``token_bits``
    each — the chunking both the FPC zero-run prefix (max 8 words / 6 bits)
    and the BPC zero-plane run (max 32 planes / 7 bits) use.  Rows are
    independent: a padding False column stops runs at row boundaries.
    """
    n, width = zero_mask.shape
    padded = np.zeros((n, width + 1), dtype=bool)
    padded[:, :width] = zero_mask
    diff = np.diff(padded.ravel().astype(np.int8), prepend=np.int8(0))
    starts = np.flatnonzero(diff == 1)
    if starts.size == 0:
        return np.zeros(n, dtype=np.int64)
    ends = np.flatnonzero(diff == -1)
    tokens = (ends - starts + max_run - 1) // max_run
    rows = starts // (width + 1)
    counts = np.bincount(rows, weights=tokens, minlength=n)
    return counts.astype(np.int64) * token_bits


# --------------------------------------------------------------------- #
# BDI


@_sharded
def bdi_size_bits(blocks: list[bytes], block_size_bytes: int = 128) -> np.ndarray:
    """Per-block ``compressed_size_bits`` of :class:`BDICompressor`.

    For every encoding, words are viewed at the base width; the delta from
    the first word is taken with unsigned wrap-around and reinterpreted as
    signed, and a word is encodable if either that delta or the word itself
    (against the implicit zero base) fits the delta width.  The smallest
    valid encoding wins, clamped at the raw block size; the all-zeros and
    repeated-value specials override everything, uncapped — exactly like the
    scalar path.
    """
    raw = _byte_matrix(blocks, block_size_bytes)
    n = raw.shape[0]
    block_bits = block_size_bytes * 8
    sizes = np.full(n, block_bits, dtype=np.int64)

    for base_bytes, delta_bytes in _BDI_ENCODINGS:
        if block_size_bytes % base_bytes:
            continue
        n_words = block_size_bytes // base_bytes
        size_bits = (
            _BDI_ENCODING_BITS + base_bytes * 8 + n_words + n_words * delta_bytes * 8
        )
        unsigned = raw.view(f"<u{base_bytes}")
        signed = unsigned.view(f"<i{base_bytes}")
        delta = (unsigned - unsigned[:, :1]).view(f"<i{base_bytes}")
        half = 1 << (delta_bytes * 8 - 1)
        fits_base = (delta >= -half) & (delta < half)
        fits_zero = ((signed >= -half) & (signed < half)) | (unsigned < half)
        valid = (fits_base | fits_zero).all(axis=1)
        np.minimum(sizes, np.where(valid, size_bits, block_bits), out=sizes)

    repeated = np.ones(n, dtype=bool)
    for start in range(8, block_size_bytes, 8):
        if start + 8 <= block_size_bytes:
            repeated &= (raw[:, start:start + 8] == raw[:, :8]).all(axis=1)
        else:
            # a trailing partial group can never equal the 8-byte first group
            repeated[:] = False
            break
    sizes[repeated] = 64 + _BDI_ENCODING_BITS
    zeros = ~raw.any(axis=1)
    sizes[zeros] = 8 + _BDI_ENCODING_BITS
    return sizes


# --------------------------------------------------------------------- #
# FPC


@_sharded
def fpc_size_bits(blocks: list[bytes], block_size_bytes: int = 128) -> np.ndarray:
    """Per-block ``compressed_size_bits`` of :class:`FPCCompressor`.

    Non-zero words are classified with ``np.select`` in the scalar encoder's
    precedence order (sign-extended 4/8/16 bits, zero-padded half, two
    sign-extended halves, repeated bytes, uncompressed); zero words pay only
    their run tokens (6 bits per run chunk of up to 8 words).
    """
    if block_size_bytes % 4:
        raise CompressionError("FPC blocks must be a multiple of 4 bytes")
    raw = _byte_matrix(blocks, block_size_bytes)
    block_bits = block_size_bytes * 8
    words = raw.view("<u4")
    signed = words.view("<i4")
    zero = words == 0

    low = words & np.uint32(0xFFFF)
    high = words >> np.uint32(16)
    low_fits8 = (low < 128) | (low >= 0xFF80)
    high_fits8 = (high < 128) | (high >= 0xFF80)
    # all four bytes equal <=> the word is its low byte replicated
    repeated = ((words & np.uint32(0xFF)) * np.uint32(0x01010101)) == words

    cost = np.select(
        [
            (signed >= -8) & (signed < 8),
            (signed >= -128) & (signed < 128),
            (signed >= -(1 << 15)) & (signed < (1 << 15)),
            low == 0,
            low_fits8 & high_fits8,
            repeated,
        ],
        [7, 11, 19, 19, 19, 11],
        default=35,
    )
    word_bits = np.where(zero, 0, cost).sum(axis=1, dtype=np.int64)
    run_bits = _zero_run_bits(zero, max_run=8, token_bits=6)
    total = word_bits + run_bits
    return np.where(total >= block_bits, block_bits, total).astype(np.int64)


# --------------------------------------------------------------------- #
# C-Pack


@_sharded
def cpack_size_bits(blocks: list[bytes], block_size_bytes: int = 128) -> np.ndarray:
    """Per-block ``compressed_size_bits`` of :class:`CPackCompressor`.

    The 16-entry FIFO dictionary is inherently sequential in the word
    position, so the kernel loops over the (at most 32) word positions and
    vectorizes across blocks: the dictionary is an ``(n, 16)`` state matrix,
    matches are broadcast compares masked by each row's fill count, and the
    FIFO push is a conditional row shift.  Pattern precedence and push rules
    mirror the scalar encoder exactly (zero, low-byte, full match, high-24
    partial, high-16 partial, uncompressed).
    """
    if block_size_bytes % 4:
        raise CompressionError("C-Pack blocks must be a multiple of 4 bytes")
    raw = _byte_matrix(blocks, block_size_bytes)
    block_bits = block_size_bytes * 8
    words = raw.view("<u4")
    n, n_words = words.shape

    dictionary = np.zeros((n, 16), dtype=np.uint32)
    fill = np.zeros(n, dtype=np.int64)
    slots = np.arange(16)
    sizes = np.zeros(n, dtype=np.int64)

    for position in range(n_words):
        word = words[:, position]
        valid = slots[None, :] < fill[:, None]
        full = ((dictionary == word[:, None]) & valid).any(axis=1)
        high24 = (
            ((dictionary >> np.uint32(8)) == (word >> np.uint32(8))[:, None]) & valid
        ).any(axis=1)
        high16 = (
            ((dictionary >> np.uint32(16)) == (word >> np.uint32(16))[:, None]) & valid
        ).any(axis=1)

        is_zero = word == 0
        is_byte = ~is_zero & (word <= 0xFF)
        rest = ~is_zero & ~is_byte
        m_full = rest & full
        m_high24 = rest & ~full & high24
        m_high16 = rest & ~full & ~high24 & high16
        sizes += np.select(
            [is_zero, is_byte, m_full, m_high24, m_high16],
            [2, 12, 6, 16, 24],
            default=34,
        )

        push = rest & ~full  # MMMX, MMXX and XXXX all push the word
        pushing = np.flatnonzero(push)
        if pushing.size:
            shifting = pushing[fill[pushing] >= 16]
            if shifting.size:
                dictionary[shifting, :-1] = dictionary[shifting, 1:]
                dictionary[shifting, -1] = word[shifting]
            appending = pushing[fill[pushing] < 16]
            if appending.size:
                dictionary[appending, fill[appending]] = word[appending]
                fill[appending] += 1

    return np.where(sizes >= block_bits, block_bits, sizes).astype(np.int64)


# --------------------------------------------------------------------- #
# BPC


@_sharded
def bpc_size_bits(blocks: list[bytes], block_size_bytes: int = 128) -> np.ndarray:
    """Per-block ``compressed_size_bits`` of :class:`BPCCompressor`.

    Word deltas (33-bit two's complement, exact in int64) are transposed
    into 33 bit planes per block — each plane an integer of ``n_words - 1``
    bits, so the whole transpose is 33 masked dot products — then the DBX
    XOR and the plane encodings (zero runs of up to 32 planes at 7 bits,
    all-ones at 2, single-one at 8, raw at ``2 + width``) are evaluated for
    all blocks at once.  Supports up to 64 words (256-byte blocks), where a
    plane still fits an int64.
    """
    if block_size_bytes % 4:
        raise CompressionError("BPC blocks must be a multiple of 4 bytes")
    n_words = block_size_bytes // 4
    if n_words - 1 > 63:
        raise CompressionError("bpc_size_bits supports at most 256-byte blocks")
    raw = _byte_matrix(blocks, block_size_bytes)
    block_bits = block_size_bytes * 8
    words = raw.view("<u4").astype(np.int64)
    n = words.shape[0]
    width = n_words - 1

    deltas = np.diff(words, axis=1) & ((1 << 33) - 1)
    weights = np.int64(1) << np.arange(width, dtype=np.int64)
    planes = np.empty((n, 33), dtype=np.int64)
    for bit in range(33):
        planes[:, bit] = (((deltas >> bit) & 1) * weights).sum(axis=1)
    dbx = np.empty_like(planes)
    dbx[:, :-1] = planes[:, :-1] ^ planes[:, 1:]
    dbx[:, -1] = planes[:, -1]

    zero = dbx == 0
    all_ones = (1 << width) - 1
    single_one = (dbx & (dbx - 1)) == 0
    cost = np.select([dbx == all_ones, single_one], [2, 8], default=2 + width)
    plane_bits = np.where(zero, 0, cost).sum(axis=1, dtype=np.int64)
    run_bits = _zero_run_bits(zero, max_run=32, token_bits=7)
    total = 32 + plane_bits + run_bits
    return np.where(total >= block_bits, block_bits, total).astype(np.int64)
