"""Batched NumPy analysis kernels for the E2MC/SLC hot path.

The scalar compressor code paths (:mod:`repro.compression.e2mc`,
:mod:`repro.core.slc`) process one block at a time with Python loops — fine
for unit-level reasoning, far too slow for campaign sweeps that analyze every
block of every region of nine workloads.  This package re-expresses the
size-analysis pipeline as array programs over all blocks of a region at once:

* :class:`~repro.kernels.symbols.BatchSymbolView` — raw region bytes as an
  ``(n_blocks, symbols_per_block)`` matrix via one :func:`numpy.frombuffer`;
* :class:`~repro.kernels.lut.CodeLengthLUT` — the trained Huffman code
  expanded into a 65536-entry code-length table, so per-block code lengths
  are one fancy-index and payload sizes a row sum;
* :mod:`~repro.kernels.tree` — the TSLC adder tree as per-level prefix-sum
  gathers plus an ``argmax`` priority encoder (including the TSLC-OPT
  staggered windows);
* :mod:`~repro.kernels.decision` — the Fig. 4 mode decision (bit budget,
  threshold, burst accounting) as elementwise array arithmetic;
* :mod:`~repro.kernels.codec` — the payload codec: bulk Huffman
  encode/decode through dense codeword tables + ``np.packbits`` assembly,
  and the TSLC truncation/prediction pass that materializes degraded block
  bytes for a whole region at once.

The scalar path remains the n = 1 reference: `analyze_batch` results are
bit-exact against per-block `analyze` (enforced by
``tests/test_batch_kernels.py``) and the batch codec against per-block
`compress`/`decompress`/`apply_decision` (``tests/test_codec.py`` and the
golden-result suite).

Execution backend: every kernel runs pure single-threaded NumPy by default;
``REPRO_KERNEL_BACKEND=threaded|numba`` (see :mod:`repro.kernels.backend`)
routes the hottest kernels through a thread-sharded or JIT path with silent
fallback — never changing results, only wall-clock.
"""

from repro.kernels.backend import active_backend, requested_backend, run_sharded
from repro.kernels.codec import FusedDecodeTable, HuffmanCodecLUT, reconstruct_rows
from repro.kernels.decision import BatchDecisions, analyze_code_lengths
from repro.kernels.lut import CodeLengthLUT
from repro.kernels.symbols import BatchSymbolView, as_symbol_view
from repro.kernels.tree import BatchSelection, BatchTreePlan, select_subblocks

__all__ = [
    "BatchDecisions",
    "BatchSelection",
    "BatchSymbolView",
    "BatchTreePlan",
    "CodeLengthLUT",
    "FusedDecodeTable",
    "HuffmanCodecLUT",
    "active_backend",
    "analyze_code_lengths",
    "as_symbol_view",
    "reconstruct_rows",
    "requested_backend",
    "run_sharded",
    "select_subblocks",
]
