"""Optional accelerated kernel backend: ``REPRO_KERNEL_BACKEND``.

Every batched kernel in this package is pure NumPy by default.  This module
adds an opt-in execution backend behind the same scalar-oracle pattern the
kernels themselves follow — the accelerated paths must produce bit-identical
results, and anything unavailable degrades silently to pure NumPy:

* ``numpy`` (default) — single-threaded NumPy array programs.
* ``threaded`` — row/block-partitionable kernels (payload codec pack/decode,
  the Fig. 4 decision kernel, the lossless size kernels) split their batch
  across a small thread pool.  NumPy releases the GIL inside its ufuncs, so
  shards genuinely overlap; every shard runs the identical NumPy code on a
  contiguous slice, which keeps results bit-exact by construction.
* ``numba`` — kernels with a numba implementation (currently the Huffman
  decode) run JIT-compiled; everything else, and every process where numba
  is not importable or fails to compile, falls back to NumPy silently.

Selection is by environment variable so campaign pool workers (both fork and
spawn start methods) inherit it without any plumbing through job hashes::

    REPRO_KERNEL_BACKEND=threaded    # or numpy / numba
    REPRO_KERNEL_THREADS=4           # optional thread-pool width

The backend never changes *what* is computed, only *how* — the golden-result
suite and ``tests/test_kernel_backend.py`` pin all backends to identical
outputs.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from typing import Callable, TypeVar

__all__ = [
    "VALID_BACKENDS",
    "active_backend",
    "requested_backend",
    "numba_available",
    "thread_workers",
    "shard_ranges",
    "run_sharded",
    "shard_threshold",
]

#: accepted ``REPRO_KERNEL_BACKEND`` values
VALID_BACKENDS = ("numpy", "threaded", "numba")

#: smallest batch (rows/blocks) worth sharding across threads — below this
#: the pool dispatch overhead beats any overlap
MIN_SHARD_ROWS = 256

T = TypeVar("T")


def requested_backend() -> str:
    """The backend named by ``REPRO_KERNEL_BACKEND`` (invalid → ``numpy``).

    Read from the environment on every call so tests (and campaign workers
    that set the variable after import) see changes immediately.
    """
    name = os.environ.get("REPRO_KERNEL_BACKEND", "numpy").strip().lower()
    return name if name in VALID_BACKENDS else "numpy"


@lru_cache(maxsize=1)
def numba_available() -> bool:
    """Whether numba imports in this process (probed once, cached)."""
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def active_backend() -> str:
    """The backend that will actually run: the requested one, downgraded
    to ``numpy`` when ``numba`` was requested but is not importable."""
    name = requested_backend()
    if name == "numba" and not numba_available():
        return "numpy"
    return name


def thread_workers() -> int:
    """Thread-pool width for the ``threaded`` backend."""
    raw = os.environ.get("REPRO_KERNEL_THREADS", "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return min(8, os.cpu_count() or 1)


def shard_threshold() -> int:
    """Batch size below which sharding is skipped (kept callable for tests)."""
    return MIN_SHARD_ROWS


_pool: ThreadPoolExecutor | None = None
_pool_width: int = 0


def _get_pool(width: int) -> ThreadPoolExecutor:
    """The process-wide kernel thread pool (rebuilt if the width changed)."""
    global _pool, _pool_width
    if _pool is None or _pool_width != width:
        if _pool is not None:
            _pool.shutdown(wait=False)
        _pool = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="repro-kernel"
        )
        _pool_width = width
    return _pool


def shard_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into up to ``parts`` contiguous, near-equal slices."""
    parts = max(1, min(parts, n))
    bounds = [n * i // parts for i in range(parts + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(parts) if bounds[i + 1] > bounds[i]]


def run_sharded(
    work: Callable[[int, int], T], n: int, *, min_rows: int | None = None
) -> list[T] | None:
    """Run ``work(lo, hi)`` over contiguous shards of ``range(n)`` in threads.

    Returns the per-shard results in order, or ``None`` when the active
    backend is not ``threaded`` or the batch is too small to be worth
    splitting — callers then take their single-shot NumPy path.  A shard
    that raises propagates its exception to the caller unchanged.
    """
    threshold = MIN_SHARD_ROWS if min_rows is None else min_rows
    if active_backend() != "threaded" or n < 2 * threshold:
        return None
    workers = thread_workers()
    ranges = shard_ranges(n, workers)
    if len(ranges) < 2:
        return None
    pool = _get_pool(workers)
    futures = [pool.submit(work, lo, hi) for lo, hi in ranges]
    return [future.result() for future in futures]
