"""Batched symbol views: raw region bytes as an ``(n_blocks, symbols)`` matrix.

The scalar path slices every block out of its region and converts it to a
Python list of symbols (:func:`repro.utils.blocks.block_to_symbols`).  For a
whole region that is two Python loops per block; the batch path instead views
the raw bytes through :func:`numpy.frombuffer` once, yielding a
``(n_blocks, symbols_per_block)`` unsigned-integer matrix that every
downstream kernel (code-length LUT, adder tree, Fig. 4 decision) indexes
without further per-block work.
"""

from __future__ import annotations

import numpy as np

#: little-endian unsigned dtypes by symbol width (matches the byte order of
#: :func:`repro.utils.blocks.block_to_symbols`)
SYMBOL_DTYPES = {1: np.dtype("u1"), 2: np.dtype("<u2"), 4: np.dtype("<u4")}


class BatchSymbolView:
    """All blocks of a byte region as one ``(n_blocks, symbols_per_block)`` matrix.

    Args:
        raw: the region's raw bytes (``bytes``, ``bytearray`` or a NumPy
            array, which is flattened to its underlying bytes).  A trailing
            partial block is zero-padded, mirroring
            :func:`repro.utils.blocks.array_to_blocks`.
        block_size_bytes: memory block size (128 B in the paper).
        symbol_bytes: symbol width; 1, 2 and 4 byte symbols are supported
            (2-byte/16-bit symbols are the paper's configuration).
    """

    def __init__(
        self,
        raw: bytes | bytearray | np.ndarray,
        block_size_bytes: int = 128,
        symbol_bytes: int = 2,
    ) -> None:
        if block_size_bytes <= 0:
            raise ValueError(f"block_size_bytes must be positive, got {block_size_bytes}")
        if symbol_bytes not in SYMBOL_DTYPES:
            raise ValueError(
                f"unsupported symbol width {symbol_bytes}; supported: "
                f"{sorted(SYMBOL_DTYPES)}"
            )
        if block_size_bytes % symbol_bytes:
            raise ValueError(
                f"block size {block_size_bytes} is not a multiple of "
                f"symbol size {symbol_bytes}"
            )
        if isinstance(raw, np.ndarray):
            raw = np.ascontiguousarray(raw).tobytes()
        else:
            raw = bytes(raw)
        remainder = len(raw) % block_size_bytes
        if remainder:
            raw = raw + b"\x00" * (block_size_bytes - remainder)
        self.block_size_bytes = block_size_bytes
        self.symbol_bytes = symbol_bytes
        flat = np.frombuffer(raw, dtype=SYMBOL_DTYPES[symbol_bytes])
        self.symbols = flat.reshape(-1, block_size_bytes // symbol_bytes)
        self._raw = raw

    @classmethod
    def from_blocks(
        cls,
        blocks: list[bytes],
        block_size_bytes: int = 128,
        symbol_bytes: int = 2,
    ) -> "BatchSymbolView":
        """Build a view from pre-sliced blocks (each exactly one block long)."""
        for index, block in enumerate(blocks):
            if len(block) != block_size_bytes:
                raise ValueError(
                    f"block {index} is {len(block)} bytes, expected {block_size_bytes}"
                )
        return cls(b"".join(blocks), block_size_bytes, symbol_bytes)

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        block_size_bytes: int = 128,
        symbol_bytes: int = 2,
    ) -> "BatchSymbolView":
        """Build a view over a workload region's array (zero-padded)."""
        return cls(array, block_size_bytes, symbol_bytes)

    @property
    def n_blocks(self) -> int:
        """Number of blocks in the view."""
        return self.symbols.shape[0]

    @property
    def symbols_per_block(self) -> int:
        """Symbols in one block (64 for 128 B blocks / 16-bit symbols)."""
        return self.symbols.shape[1]

    def __len__(self) -> int:
        return self.n_blocks

    def __iter__(self):
        """Iterate the view as per-block bytes (scalar-fallback friendly)."""
        for index in range(self.n_blocks):
            yield self.block_bytes(index)

    def block_bytes(self, index: int) -> bytes:
        """Raw bytes of block ``index`` (for scalar fallbacks and reconstruction)."""
        start = index * self.block_size_bytes
        return self._raw[start:start + self.block_size_bytes]


def as_symbol_view(
    blocks: "BatchSymbolView | list[bytes]",
    block_size_bytes: int,
    symbol_bytes: int,
) -> BatchSymbolView:
    """Coerce ``blocks`` (a view or a block list) into a :class:`BatchSymbolView`."""
    if isinstance(blocks, BatchSymbolView):
        if (blocks.block_size_bytes, blocks.symbol_bytes) != (
            block_size_bytes,
            symbol_bytes,
        ):
            raise ValueError(
                "symbol view geometry "
                f"({blocks.block_size_bytes} B blocks, {blocks.symbol_bytes} B symbols) "
                f"does not match the compressor ({block_size_bytes} B, {symbol_bytes} B)"
            )
        return blocks
    return BatchSymbolView.from_blocks(list(blocks), block_size_bytes, symbol_bytes)
