"""Vectorized Fig. 4 mode decision: SLC analysis for all blocks at once.

Given the per-symbol code lengths of every block in a region (one LUT gather,
see :mod:`repro.kernels.lut`), this kernel evaluates the whole SLC decision
flow as array operations: payload sizes are row sums, bit budgets and extra
bits are elementwise arithmetic, the lossy-candidate filter is a boolean
mask, and the sub-block search runs through the vectorized adder tree of
:mod:`repro.kernels.tree`.  The output is bit-exact against
:meth:`repro.core.slc.SLCCompressor.analyze` (which remains the n = 1
reference implementation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SLCConfig, SLCMode
from repro.core.header import header_size_bits
from repro.kernels import backend as _backend
from repro.kernels.tree import BatchTreePlan, select_subblocks

#: integer mode codes used inside the result arrays
MODE_UNCOMPRESSED = 0
MODE_LOSSLESS = 1
MODE_LOSSY = 2

_MODE_ENUMS = {
    MODE_UNCOMPRESSED: SLCMode.UNCOMPRESSED,
    MODE_LOSSLESS: SLCMode.LOSSLESS,
    MODE_LOSSY: SLCMode.LOSSY,
}


@dataclass(frozen=True)
class BatchDecisions:
    """Array-of-structs result of the batched Fig. 4 decision.

    One entry per block; every field mirrors the corresponding
    :class:`~repro.core.slc.SLCDecision` attribute.
    """

    mode: np.ndarray
    comp_size_bits: np.ndarray
    stored_size_bits: np.ndarray
    bit_budget_bits: np.ndarray
    extra_bits: np.ndarray
    bursts: np.ndarray
    approx_start: np.ndarray
    approx_count: np.ndarray
    bits_removed: np.ndarray
    used_extra_node: np.ndarray

    def __len__(self) -> int:
        return len(self.mode)

    @property
    def lossy_mask(self) -> np.ndarray:
        """Boolean mask of blocks that took the lossy path."""
        return self.mode == MODE_LOSSY

    def to_decisions(self) -> list:
        """Materialize scalar :class:`~repro.core.slc.SLCDecision` objects."""
        from repro.core.slc import SLCDecision

        return [
            SLCDecision(
                mode=_MODE_ENUMS[mode],
                comp_size_bits=comp,
                stored_size_bits=stored,
                bit_budget_bits=budget,
                extra_bits=extra,
                bursts=bursts,
                approx_start=start,
                approx_count=count,
                bits_removed=removed,
                used_extra_node=used_extra,
            )
            for mode, comp, stored, budget, extra, bursts, start, count, removed, used_extra in zip(
                self.mode.tolist(),
                self.comp_size_bits.tolist(),
                self.stored_size_bits.tolist(),
                self.bit_budget_bits.tolist(),
                self.extra_bits.tolist(),
                self.bursts.tolist(),
                self.approx_start.tolist(),
                self.approx_count.tolist(),
                self.bits_removed.tolist(),
                self.used_extra_node.tolist(),
            )
        ]


def analyze_code_lengths(
    config: SLCConfig,
    code_lengths: np.ndarray,
    trained: bool,
    approximable: bool = True,
    plan: BatchTreePlan | None = None,
) -> BatchDecisions:
    """Run the SLC mode decision for every block of a region at once.

    Args:
        config: SLC parameters (MAG, threshold, variant, ...).
        code_lengths: ``(n_blocks, symbols_per_block)`` per-symbol code
            lengths (the LUT gather of the region's symbol matrix).
        trained: whether the baseline model is trained; untrained models
            store every block uncompressed, as in the scalar path.
        approximable: whether the region is safe to approximate.
        plan: optional precomputed tree layout (built from ``config`` when
            omitted; callers analyzing many regions should reuse one).

    Under ``REPRO_KERNEL_BACKEND=threaded`` large batches run as contiguous
    block shards on the kernel thread pool (blocks are independent and the
    tree plan is read-only, so the shards concatenate bit-exactly).
    """
    lengths = np.asarray(code_lengths, dtype=np.int64)
    shards = _backend.run_sharded(
        lambda lo, hi: _analyze_code_lengths_impl(
            config, lengths[lo:hi], trained, approximable, plan
        ),
        lengths.shape[0],
    )
    if shards is not None:
        return BatchDecisions(
            *(
                np.concatenate([getattr(s, name) for s in shards])
                for name in (
                    "mode",
                    "comp_size_bits",
                    "stored_size_bits",
                    "bit_budget_bits",
                    "extra_bits",
                    "bursts",
                    "approx_start",
                    "approx_count",
                    "bits_removed",
                    "used_extra_node",
                )
            )
        )
    return _analyze_code_lengths_impl(config, lengths, trained, approximable, plan)


def _analyze_code_lengths_impl(
    config: SLCConfig,
    lengths: np.ndarray,
    trained: bool,
    approximable: bool,
    plan: BatchTreePlan | None,
) -> BatchDecisions:
    """Single-shot NumPy body of :func:`analyze_code_lengths`."""
    n_blocks = lengths.shape[0]
    block_bits = config.block_size_bits
    mag_bits = config.mag_bits

    lossless_header = header_size_bits(False, config.block_size_bytes, config.num_pdw)
    lossy_header = header_size_bits(True, config.block_size_bytes, config.num_pdw)

    payload = lengths.sum(axis=1, dtype=np.int64)
    comp = payload + lossless_header

    mode = np.full(n_blocks, MODE_UNCOMPRESSED, dtype=np.int64)
    comp_out = np.full(n_blocks, block_bits, dtype=np.int64)
    stored = np.full(n_blocks, block_bits, dtype=np.int64)
    budget_out = np.full(n_blocks, block_bits, dtype=np.int64)
    extra_out = np.zeros(n_blocks, dtype=np.int64)
    bursts = np.full(n_blocks, config.max_bursts, dtype=np.int64)
    approx_start = np.zeros(n_blocks, dtype=np.int64)
    approx_count = np.zeros(n_blocks, dtype=np.int64)
    bits_removed = np.zeros(n_blocks, dtype=np.int64)
    used_extra = np.zeros(n_blocks, dtype=bool)

    if not trained or n_blocks == 0:
        return BatchDecisions(
            mode, comp_out, stored, budget_out, extra_out, bursts,
            approx_start, approx_count, bits_removed, used_extra,
        )

    compressible = comp < block_bits
    # Bit budget: largest MAG multiple <= the compressed size, clamped below
    # to one MAG (the >= block-size clamp is the uncompressed branch above).
    budget = np.where(comp <= mag_bits, mag_bits, (comp // mag_bits) * mag_bits)
    # Blocks below one MAG have a budget above their size; their extra is 0.
    extra = np.maximum(0, comp - budget)

    # Lossless bookkeeping for every compressible block (the lossy rows are
    # overwritten below).
    mode[compressible] = MODE_LOSSLESS
    comp_out[compressible] = comp[compressible]
    stored[compressible] = comp[compressible]
    budget_out[compressible] = budget[compressible]
    extra_out[compressible] = extra[compressible]
    stored_bytes = np.minimum((comp + 7) // 8, config.block_size_bytes)
    lossless_bursts = np.maximum(1, -(-stored_bytes // config.mag_bytes))
    bursts[compressible] = lossless_bursts[compressible]

    candidate = (
        compressible
        & approximable
        & (extra > 0)
        & (extra <= config.lossy_threshold_bits)
    )
    if not candidate.any():
        return BatchDecisions(
            mode, comp_out, stored, budget_out, extra_out, bursts,
            approx_start, approx_count, bits_removed, used_extra,
        )

    if plan is None:
        plan = BatchTreePlan(
            config.symbols_per_block,
            extra_nodes=config.opt_extra_nodes if config.uses_optimized_tree else None,
            max_symbols=config.max_approx_symbols,
        )

    # The truncated sub-block must also absorb the larger lossy header.
    required = extra + (lossy_header - lossless_header)
    rows = np.nonzero(candidate)[0]
    selection = select_subblocks(lengths[rows], required[rows], plan)

    lossy_rows = rows[selection.found]
    if len(lossy_rows):
        chosen = selection.found
        mode[lossy_rows] = MODE_LOSSY
        stored[lossy_rows] = (
            payload[lossy_rows] - selection.bits_removed[chosen] + lossy_header
        )
        bursts[lossy_rows] = np.maximum(1, budget[lossy_rows] // mag_bits)
        approx_start[lossy_rows] = selection.start_symbol[chosen]
        approx_count[lossy_rows] = selection.symbol_count[chosen]
        bits_removed[lossy_rows] = selection.bits_removed[chosen]
        used_extra[lossy_rows] = selection.used_extra_node[chosen]

    return BatchDecisions(
        mode, comp_out, stored, budget_out, extra_out, bursts,
        approx_start, approx_count, bits_removed, used_extra,
    )
