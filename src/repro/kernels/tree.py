"""Vectorized TSLC adder tree: sub-block selection for all blocks at once.

The scalar :class:`~repro.core.tree.AdderTree` builds per-level window sums
with Python list comprehensions and scans nodes with a Python loop, once per
block.  Here the node *layout* (window starts per level, including the
TSLC-OPT staggered windows) is computed once per configuration as a
:class:`BatchTreePlan`; the data-dependent window sums are then one gather of
a prefix-sum array per level, and the priority encoder is an ``argmax`` over
the eligibility matrix.  Levels are scanned lowest-first, exactly mirroring
``AdderTree.select_subblock``: the first level with an eligible window wins,
and within a level the node with the smallest start symbol (aligned before
staggered on ties) wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import extra_node_starts


@dataclass(frozen=True)
class LevelPlan:
    """Static node layout of one tree level.

    Attributes:
        level: 1-based tree level (windows of ``2**level`` symbols).
        window: symbols per window.
        starts: start symbol of every node, sorted ascending; on equal starts
            the aligned node precedes the staggered one, matching the stable
            sort in ``AdderTree.nodes_at_level``.
        is_extra: per-node flag marking TSLC-OPT staggered windows.
    """

    level: int
    window: int
    starts: np.ndarray
    is_extra: np.ndarray


class BatchTreePlan:
    """Node layout of the adder tree for one (symbols, extra-nodes) geometry."""

    def __init__(
        self,
        n_symbols: int,
        extra_nodes: dict[int, int] | None = None,
        max_symbols: int | None = None,
    ) -> None:
        if n_symbols <= 0 or n_symbols & (n_symbols - 1):
            raise ValueError(
                f"number of symbols must be a power of two, got {n_symbols}"
            )
        self.n_symbols = n_symbols
        self.n_levels = n_symbols.bit_length() - 1
        extra_nodes = extra_nodes or {}
        for level in extra_nodes:
            if not 1 <= level <= self.n_levels:
                raise ValueError(
                    f"extra-node level {level} outside valid range 1..{self.n_levels}"
                )
        self.levels: list[LevelPlan] = []
        for level in range(1, self.n_levels + 1):
            window = 1 << level
            if max_symbols is not None and window > max_symbols:
                break
            aligned = np.arange(0, n_symbols, window, dtype=np.int64)
            extra = np.asarray(
                extra_node_starts(n_symbols, level, extra_nodes.get(level, 0)),
                dtype=np.int64,
            )
            starts = np.concatenate([aligned, extra])
            is_extra = np.concatenate(
                [np.zeros(len(aligned), bool), np.ones(len(extra), bool)]
            )
            # Stable sort keeps aligned nodes ahead of staggered ones when a
            # staggered window happens to share a start symbol.
            order = np.argsort(starts, kind="stable")
            self.levels.append(
                LevelPlan(
                    level=level,
                    window=window,
                    starts=starts[order],
                    is_extra=is_extra[order],
                )
            )


@dataclass(frozen=True)
class BatchSelection:
    """Vectorized result of ``AdderTree.select_subblock`` over many blocks.

    Rows where ``found`` is ``False`` had no window of at most ``max_symbols``
    symbols covering the required bits (the scalar path returns ``None``);
    their other fields are zero.
    """

    found: np.ndarray
    level: np.ndarray
    start_symbol: np.ndarray
    symbol_count: np.ndarray
    bits_removed: np.ndarray
    used_extra_node: np.ndarray


def select_subblocks(
    code_lengths: np.ndarray,
    required_bits: np.ndarray,
    plan: BatchTreePlan,
) -> BatchSelection:
    """Pick the sub-block to truncate for every block at once.

    Args:
        code_lengths: ``(n_blocks, n_symbols)`` per-symbol code lengths.
        required_bits: ``(n_blocks,)`` bits each truncation must cover
            (must be positive, as in the scalar path).
        plan: the static node layout for this geometry.
    """
    lengths = np.asarray(code_lengths, dtype=np.int64)
    required = np.asarray(required_bits, dtype=np.int64)
    n_blocks = lengths.shape[0]
    if lengths.shape[1] != plan.n_symbols:
        raise ValueError(
            f"expected {plan.n_symbols} symbols per block, got {lengths.shape[1]}"
        )
    if np.any(required <= 0):
        raise ValueError("required_bits must be positive")

    found = np.zeros(n_blocks, dtype=bool)
    level = np.zeros(n_blocks, dtype=np.int64)
    start = np.zeros(n_blocks, dtype=np.int64)
    count = np.zeros(n_blocks, dtype=np.int64)
    bits = np.zeros(n_blocks, dtype=np.int64)
    extra = np.zeros(n_blocks, dtype=bool)

    if n_blocks == 0 or not plan.levels:
        return BatchSelection(found, level, start, count, bits, extra)

    # Window sums at every level are gathers of one prefix-sum array:
    # sum(lengths[s : s + w]) == prefix[s + w] - prefix[s].
    prefix = np.zeros((n_blocks, plan.n_symbols + 1), dtype=np.int64)
    np.cumsum(lengths, axis=1, out=prefix[:, 1:])

    for level_plan in plan.levels:
        pending = ~found
        if not pending.any():
            break
        node_sums = (
            prefix[np.ix_(pending, level_plan.starts + level_plan.window)]
            - prefix[np.ix_(pending, level_plan.starts)]
        )
        eligible = node_sums >= required[pending, None]
        hit = eligible.any(axis=1)
        if not hit.any():
            continue
        first = eligible.argmax(axis=1)
        rows = np.nonzero(pending)[0][hit]
        chosen = first[hit]
        found[rows] = True
        level[rows] = level_plan.level
        start[rows] = level_plan.starts[chosen]
        count[rows] = level_plan.window
        bits[rows] = node_sums[hit, chosen]
        extra[rows] = level_plan.is_extra[chosen]

    return BatchSelection(found, level, start, count, bits, extra)
