"""Batched payload codec: Huffman bits and SLC truncation for whole regions.

The analysis kernels (:mod:`repro.kernels.lut`, :mod:`repro.kernels.decision`)
compute *sizes* without materializing a single payload bit; this module is
their counterpart for the moments a payload actually has to exist — storing a
block (the degraded bytes a later read returns), compressing it (the Huffman
bitstream) and decompressing it (symbols back out of the bitstream).  The
scalar path does all three one symbol at a time (`BitWriter`/`BitReader`
loops, per-symbol dict lookups, the Python list surgery of
:func:`repro.core.prediction.predict_truncated_symbols`); here each becomes
an array program over every block of a region at once:

* :class:`HuffmanCodecLUT` — the trained canonical Huffman code as dense
  per-symbol *codeword* and *length* tables (untabled symbols are
  escape-extended: ``(escape_codeword << symbol_bits) | symbol``), plus the
  canonical decode arrays: all codewords left-justified to the maximum code
  length, sorted ascending.  A prefix-free code's left-justified codewords
  are strictly increasing, so decoding one symbol is a ``searchsorted`` of
  the next ``max_length`` bits — whatever bits follow the codeword cannot
  push the value past the next left-justified codeword.
* :meth:`HuffmanCodecLUT.encode_rows` — bulk MSB-first bit packing: per-symbol
  codeword bits are exploded with prefix-sum offsets + ``np.repeat`` and
  reassembled per row with :func:`numpy.packbits`, bit-exact against
  ``BitWriter.getvalue()``.
* :meth:`HuffmanCodecLUT.decode_rows` — multi-symbol *fused* decode: a
  k-bit table (:class:`FusedDecodeTable`, built once per trained code) whose
  entries resolve as many whole symbols as fit in the next ``k`` window bits
  plus the bits they consume, so a 64-symbol block decodes in a handful of
  table probes instead of 64 lockstep rounds.  Rows whose next codeword (or
  escape + raw bits) does not fit the window — escape-heavy data, near-max
  code lengths — fall back to a vectorized single-symbol ``searchsorted``
  step for just that round.  :meth:`HuffmanCodecLUT.decode_rows_lockstep`
  keeps the original one-``searchsorted``-per-slot loop as the bit-exact
  oracle (identical symbols *and* identical error behavior), and
  ``REPRO_KERNEL_BACKEND`` (:mod:`repro.kernels.backend`) optionally routes
  the decode through a thread-sharded or numba-jitted implementation.
* :func:`reconstruct_rows` — the TSLC truncated-symbol reconstruction
  (zero fill for SIMP, the lane-aware nearest-kept-symbol predictor for
  PRED/OPT) as masked gathers, bit-exact against
  :func:`~repro.core.prediction.predict_truncated_symbols`.

The scalar implementations remain the n = 1 oracles; ``tests/test_codec.py``
and ``tests/test_golden_results.py`` enforce bit-exact equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.compression.base import CompressionError, DecompressionError
from repro.kernels import backend as kernel_backend
from repro.kernels.lut import MAX_LUT_SYMBOL_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (e2mc -> codec)
    from repro.compression.e2mc import SymbolModel

#: widest symbol for which the dense codeword table is sensible; the codec
#: tables are only coherent when they cover exactly the widths the
#: code-length LUT covers, so the bound is shared, not re-declared
MAX_CODEC_SYMBOL_BYTES = MAX_LUT_SYMBOL_BYTES

#: probe width of the fused multi-symbol decode table (2**k entries)
FUSE_BITS = 16

#: most symbols one fused-table entry resolves — highly compressible regions
#: (the common case: truncated floats are mostly zero symbols) reach 1-bit
#: codewords, so a 16-bit window can hold up to 16 of them
FUSE_MAX_SYMBOLS = 16

#: longest codeword the fused decoder handles: a peek of ``max_length`` bits
#: at any within-byte offset (≤ 7) must fit one gathered 64-bit window
FUSE_MAX_CODE_LENGTH = 56

#: zero bytes appended to each packed payload row so every fused-path peek
#: (k-bit window, max_length window, escape raw bits at position + length)
#: stays inside the matrix: the furthest read starts before
#: ``bit_length + max_length`` and spans 8 gathered bytes
_DECODE_PAD_BYTES = 16


@dataclass(frozen=True)
class FusedDecodeTable:
    """The k-bit multi-symbol decode table of one trained Huffman code.

    Entry ``w`` describes what canonical decoding does to a bitstream whose
    next ``k`` bits equal ``w``: the first :attr:`count` ``[w]`` symbols that
    resolve *entirely* inside those ``k`` bits (escapes count only when the
    escape codeword plus the raw symbol bits fit), their values in
    :attr:`symbols` ``[w, :count]``, and the cumulative bits consumed after
    each in :attr:`cum_bits` ``[w, :count]``.  ``count == 0`` marks windows
    whose first codeword does not fit — the decoder takes one vectorized
    single-symbol step there instead (the escape-heavy fallback), keyed by
    :attr:`first`: the decode-table index of the window's leading codeword
    whenever that codeword's own length fits the window (``-1`` when even
    identifying it needs more than ``k`` bits, the only case that still
    pays a ``searchsorted``).  ``count`` can be zero while ``first`` is
    valid — an escape codeword fitting the window whose raw symbol bits
    do not.

    Correctness rests on the same property as the ``searchsorted`` decode:
    a prefix-free code commits to a symbol after its ``length`` bits, so any
    symbol accepted with ``cum_bits <= k`` depends only on real window bits.
    """

    symbols: np.ndarray
    cum_bits: np.ndarray
    count: np.ndarray
    first: np.ndarray
    k: int


def _build_fused_table(lut: "HuffmanCodecLUT") -> FusedDecodeTable:
    """Construct the fused table by vectorized decoding of all 2**k windows."""
    k = FUSE_BITS
    size = 1 << k
    window = np.arange(size, dtype=np.uint64)
    consumed = np.zeros(size, dtype=np.int64)
    count = np.zeros(size, dtype=np.int64)
    symbols = np.zeros((size, FUSE_MAX_SYMBOLS), dtype=np.int64)
    cum_bits = np.zeros((size, FUSE_MAX_SYMBOLS), dtype=np.int64)
    active = np.ones(size, dtype=bool)
    max_length = lut.max_length
    symbol_bits = lut.symbol_bits
    raw_mask = np.uint64((1 << symbol_bits) - 1)
    for j in range(FUSE_MAX_SYMBOLS):
        rem = k - consumed
        remaining = window & (
            (np.uint64(1) << rem.astype(np.uint64)) - np.uint64(1)
        )
        # Left-justify the remaining window bits to max_length (zero-padded
        # when fewer than max_length remain — safe, because a symbol is only
        # accepted when its codeword lies inside the real bits).
        shift = rem - max_length
        value = (remaining >> np.maximum(shift, 0).astype(np.uint64)) << (
            np.maximum(-shift, 0).astype(np.uint64)
        )
        index = np.maximum(
            np.searchsorted(lut.dec_lj, value, side="right") - 1, 0
        )
        if j == 0:
            # The window's leading codeword is identified with certainty
            # whenever its own length fits the window — recorded even when
            # the symbol does not resolve (escape raw bits overflowing),
            # so the single-step fallback can skip its searchsorted.
            first = np.where(lut.dec_lengths[index] <= k, index, -1)
        symbol = lut.dec_symbols[index].copy()
        length = lut.dec_lengths[index].copy()
        escaped = symbol < 0
        needed = np.where(escaped, length + symbol_bits, length)
        ok = active & (needed <= rem)
        raw_rows = ok & escaped
        if raw_rows.any():
            raw_shift = (rem - needed)[raw_rows].astype(np.uint64)
            symbol[raw_rows] = (
                (remaining[raw_rows] >> raw_shift) & raw_mask
            ).astype(np.int64)
        symbols[ok, j] = symbol[ok]
        consumed[ok] += needed[ok]
        cum_bits[ok, j] = consumed[ok]
        count[ok] += 1
        active = ok
        if not active.any():
            break
    # Trim to the widest entry actually produced: production codes resolve
    # 2-4 symbols per window, so the tables shrink ~4-8x and the hot
    # per-probe gathers stay cache-resident.  Symbols fit int32 (<= 16-bit
    # raw values); count/cum_bits stay int64 so the probe arithmetic
    # (minimum with the remaining budget, position updates) needs no
    # per-probe casts.
    width = max(1, int(count.max()))
    symbols = np.ascontiguousarray(symbols[:, :width]).astype(np.int32)
    cum_bits = np.ascontiguousarray(cum_bits[:, :width])
    for table in (symbols, cum_bits, count, first):
        table.setflags(write=False)
    return FusedDecodeTable(
        symbols=symbols, cum_bits=cum_bits, count=count, first=first, k=k
    )


# ------------------------------------------------------------------ #
# optional numba-jitted row decoder (REPRO_KERNEL_BACKEND=numba)

_numba_decode = None
_numba_decode_failed = False


def _numba_decode_kernel():
    """Build (once) the numba-jitted per-row decoder; ``None`` when numba is
    missing or compilation fails — callers then fall back to NumPy silently."""
    global _numba_decode, _numba_decode_failed
    if _numba_decode is not None:
        return _numba_decode
    if _numba_decode_failed or not kernel_backend.numba_available():
        _numba_decode_failed = True
        return None
    try:  # pragma: no cover - requires numba (exercised by the CI numba leg)
        from numba import njit

        @njit(cache=True, nogil=True)
        def kernel(packed, bit_lengths, symbol_counts, dec_lj, dec_symbols,
                   dec_lengths, max_length, symbol_bits, out, positions):
            n_rows = packed.shape[0]
            n_codes = dec_lj.shape[0]
            for r in range(n_rows):
                pos = 0
                limit = bit_lengths[r]
                for s in range(symbol_counts[r]):
                    if pos >= limit:
                        return r
                    value = 0
                    for b in range(max_length):
                        p = pos + b
                        value = (value << 1) | (
                            (packed[r, p >> 3] >> (7 - (p & 7))) & 1
                        )
                    lo = 0
                    hi = n_codes
                    while lo < hi:
                        mid = (lo + hi) >> 1
                        if dec_lj[mid] <= value:
                            lo = mid + 1
                        else:
                            hi = mid
                    idx = lo - 1 if lo > 0 else 0
                    symbol = dec_symbols[idx]
                    length = dec_lengths[idx]
                    if symbol < 0:
                        raw = 0
                        for b in range(symbol_bits):
                            p = pos + length + b
                            raw = (raw << 1) | (
                                (packed[r, p >> 3] >> (7 - (p & 7))) & 1
                            )
                        symbol = raw
                        length = length + symbol_bits
                    out[r, s] = symbol
                    pos = pos + length
                positions[r] = pos
            return -1

        _numba_decode = kernel
    except Exception:
        _numba_decode_failed = True
        return None
    return _numba_decode


@dataclass(frozen=True)
class HuffmanCodecLUT:
    """A trained symbol model's full codec (encode + decode) as NumPy tables.

    Attributes:
        codewords: ``(2**symbol_bits,)`` uint64 array mapping raw symbol →
            emitted bit pattern.  Tabled symbols hold their Huffman codeword;
            untabled symbols hold the escape codeword followed by the raw
            symbol bits (``(escape << symbol_bits) | symbol``).
        lengths: ``(2**symbol_bits,)`` int64 array of the matching bit counts
            (same values as :class:`~repro.kernels.lut.CodeLengthLUT`).
        dec_lj: left-justified codewords (``codeword << (max_length - len)``)
            of every coded symbol including the escape, sorted ascending.
        dec_symbols: symbol decoded at each ``dec_lj`` entry;
            the escape marker is its natural negative sentinel
            (:data:`~repro.compression.e2mc.ESCAPE_SYMBOL`).
        dec_lengths: codeword length (escape raw bits *not* included) at each
            ``dec_lj`` entry.
        max_length: longest codeword length in bits.
        symbol_bits: raw symbol width in bits.
        trained: whether the tables came from a trained model; encode/decode
            raise on untrained tables, matching the scalar paths.
    """

    codewords: np.ndarray
    lengths: np.ndarray
    dec_lj: np.ndarray
    dec_symbols: np.ndarray
    dec_lengths: np.ndarray
    max_length: int
    symbol_bits: int
    trained: bool

    @classmethod
    def from_model(cls, model: "SymbolModel") -> "HuffmanCodecLUT":
        """Expand a :class:`~repro.compression.e2mc.SymbolModel` into tables.

        Raises :class:`ValueError` for symbol widths whose dense tables would
        not fit in memory; callers fall back to the scalar path in that case.
        """
        if model.symbol_bytes > MAX_CODEC_SYMBOL_BYTES:
            raise ValueError(
                f"cannot build a dense codec LUT for {model.symbol_bytes}-byte symbols"
            )
        symbol_bits = model.symbol_bits
        empty = np.zeros(0, dtype=np.int64)
        if not model.trained:
            return cls(
                codewords=np.zeros(0, dtype=np.uint64),
                lengths=empty,
                dec_lj=np.zeros(0, dtype=np.uint64),
                dec_symbols=empty,
                dec_lengths=empty,
                max_length=0,
                symbol_bits=symbol_bits,
                trained=False,
            )

        from repro.compression.e2mc import ESCAPE_SYMBOL

        size = 1 << symbol_bits
        escape_code, _ = model.code.encode(ESCAPE_SYMBOL)
        # Escape-extended defaults: escape codeword followed by the raw bits.
        codewords = (np.uint64(escape_code) << np.uint64(symbol_bits)) + np.arange(
            size, dtype=np.uint64
        )
        lengths = model.code_length_table().table.astype(np.int64)
        tabled = [(s, cw) for s, cw in model.code.codewords.items() if s >= 0]
        if tabled:
            symbols, codes = zip(*tabled)
            codewords[np.asarray(symbols, dtype=np.int64)] = np.asarray(
                codes, dtype=np.uint64
            )
        max_length = model.code.max_length()
        entries = sorted(
            (code << (max_length - model.code.lengths[symbol]), symbol)
            for symbol, code in model.code.codewords.items()
        )
        dec_lj = np.asarray([lj for lj, _ in entries], dtype=np.uint64)
        dec_symbols = np.asarray([s for _, s in entries], dtype=np.int64)
        dec_lengths = np.asarray(
            [model.code.lengths[s] for _, s in entries], dtype=np.int64
        )
        for table in (codewords, lengths, dec_lj, dec_symbols, dec_lengths):
            table.setflags(write=False)
        return cls(
            codewords=codewords,
            lengths=lengths,
            dec_lj=dec_lj,
            dec_symbols=dec_symbols,
            dec_lengths=dec_lengths,
            max_length=max_length,
            symbol_bits=symbol_bits,
            trained=True,
        )

    # ------------------------------------------------------------------ #
    # encode

    def encode_rows(
        self, symbols: np.ndarray, row_counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Huffman-encode many symbol rows into packed payload bytes at once.

        Args:
            symbols: flat concatenation of every row's symbols, in row order
                (rows may have different symbol counts — SLC's lossy rows
                keep fewer symbols than lossless ones).
            row_counts: ``(n_rows,)`` number of symbols per row.

        Returns:
            ``(packed, row_bits)`` where ``packed`` is an
            ``(n_rows, max_row_bytes)`` uint8 matrix and row ``i``'s payload
            is ``packed[i, :(row_bits[i] + 7) // 8].tobytes()`` — identical
            bytes and bit count to the scalar
            :meth:`~repro.compression.e2mc.SymbolModel.encode_symbol` loop
            plus ``BitWriter.getvalue()``.
        """
        if not self.trained:
            raise CompressionError("symbol model must be trained before encoding")
        row_counts = np.asarray(row_counts, dtype=np.int64)
        n_rows = row_counts.shape[0]
        flat = np.asarray(symbols).reshape(-1)
        if int(row_counts.sum()) != flat.size:
            raise ValueError(
                f"row_counts sum to {int(row_counts.sum())} symbols "
                f"but {flat.size} were given"
            )
        sharded = self._encode_rows_sharded(flat, row_counts)
        if sharded is not None:
            return sharded
        return self._encode_rows_impl(flat, row_counts)

    def _encode_rows_sharded(
        self, flat: np.ndarray, row_counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Thread-sharded encode (``REPRO_KERNEL_BACKEND=threaded``).

        Rows are independent, so contiguous row shards encode concurrently
        and their packed matrices paste back (right-padded with the zero
        bytes the single-shot path would also emit).  ``None`` when sharding
        does not apply.
        """
        n_rows = row_counts.shape[0]
        bounds = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(row_counts, out=bounds[1:])
        shards = kernel_backend.run_sharded(
            lambda lo, hi: self._encode_rows_impl(
                flat[bounds[lo] : bounds[hi]], row_counts[lo:hi]
            ),
            n_rows,
        )
        if shards is None:
            return None
        row_bits = np.concatenate([bits for _, bits in shards])
        width = max(packed.shape[1] for packed, _ in shards)
        out = np.zeros((n_rows, width), dtype=np.uint8)
        lo = 0
        for packed, _ in shards:
            out[lo : lo + packed.shape[0], : packed.shape[1]] = packed
            lo += packed.shape[0]
        return out, row_bits

    def _encode_rows_impl(
        self, flat: np.ndarray, row_counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One-shot NumPy encode of pre-validated rows."""
        n_rows = row_counts.shape[0]
        lens = self.lengths[flat]
        # Bit offset of every symbol (prefix sums across the flat stream).
        sym_start = np.zeros(flat.size + 1, dtype=np.int64)
        np.cumsum(lens, out=sym_start[1:])
        total_bits = int(sym_start[-1])
        row_sym_start = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(row_counts, out=row_sym_start[1:])
        row_bit_start = sym_start[row_sym_start[:-1]]
        row_bits = sym_start[row_sym_start[1:]] - row_bit_start
        if total_bits == 0:
            return np.zeros((n_rows, 0), dtype=np.uint8), row_bits

        # Explode codewords into individual bits, MSB first: bit k of a
        # symbol's emission is (codeword >> (length - 1 - k)) & 1.
        codes = self.codewords[flat]
        sym_of_bit = np.repeat(np.arange(flat.size, dtype=np.int64), lens)
        within = np.arange(total_bits, dtype=np.int64) - sym_start[sym_of_bit]
        shifts = (lens[sym_of_bit] - 1 - within).astype(np.uint64)
        bits = ((codes[sym_of_bit] >> shifts) & np.uint64(1)).astype(np.uint8)

        # Scatter the flat bit stream into per-row lanes and pack bytes.
        width = (int(row_bits.max()) + 7) // 8 * 8
        lanes = np.zeros((n_rows, width), dtype=np.uint8)
        row_of_bit = np.repeat(np.arange(n_rows, dtype=np.int64), row_bits)
        column = np.arange(total_bits, dtype=np.int64) - np.repeat(
            row_bit_start, row_bits
        )
        lanes[row_of_bit, column] = bits
        return np.packbits(lanes, axis=1), row_bits

    def payloads_from_rows(
        self, packed: np.ndarray, row_bits: np.ndarray
    ) -> list[tuple[bytes, int]]:
        """Slice :meth:`encode_rows` output into per-row ``(bytes, bits)``."""
        return [
            (packed[i, : (bits + 7) // 8].tobytes(), int(bits))
            for i, bits in enumerate(row_bits.tolist())
        ]

    # ------------------------------------------------------------------ #
    # decode

    def fused_supported(self) -> bool:
        """Whether the fused multi-symbol decoder covers this code."""
        return self.trained and 0 < self.max_length <= FUSE_MAX_CODE_LENGTH

    def fused_table(self) -> FusedDecodeTable:
        """The k-bit fused decode table (built once, cached on the LUT)."""
        if not self.fused_supported():
            raise ValueError("fused decode tables need a trained, bounded code")
        cached = getattr(self, "_fused_cache", None)
        if cached is None:
            cached = _build_fused_table(self)
            object.__setattr__(self, "_fused_cache", cached)
        return cached

    def decode_rows(
        self,
        payloads: list[bytes],
        bit_lengths: np.ndarray,
        symbol_counts: np.ndarray,
    ) -> np.ndarray:
        """Decode many Huffman payloads at once.

        Dispatches to the fused multi-symbol table decoder (a handful of
        k-bit probes per row instead of one ``searchsorted`` round per
        symbol slot), optionally thread-sharded or numba-jitted under
        ``REPRO_KERNEL_BACKEND`` (:mod:`repro.kernels.backend`).  Codes the
        fused tables cannot cover fall back to
        :meth:`decode_rows_lockstep`, which remains the bit-exact oracle —
        every path returns identical symbols and raises identically.

        Args:
            payloads: per-row packed payload bytes (as produced by
                :meth:`encode_rows` / ``BitWriter.getvalue()``).
            bit_lengths: ``(n_rows,)`` meaningful bits per payload.
            symbol_counts: ``(n_rows,)`` symbols to decode per row.

        Returns:
            ``(n_rows, max(symbol_counts))`` int64 matrix; row ``i``'s first
            ``symbol_counts[i]`` entries are its decoded symbols (the rest
            are zero).

        Raises:
            DecompressionError: if the model is untrained or a codeword runs
                past the end of a payload (the scalar reader's ``EOFError``).
        """
        if not self.fused_supported():
            return self.decode_rows_lockstep(payloads, bit_lengths, symbol_counts)
        backend = kernel_backend.active_backend()
        if backend == "numba":
            decoded = self._decode_rows_numba(payloads, bit_lengths, symbol_counts)
            if decoded is not None:
                return decoded
        elif backend == "threaded":
            decoded = self._decode_rows_sharded(payloads, bit_lengths, symbol_counts)
            if decoded is not None:
                return decoded
        return self._decode_rows_fused(payloads, bit_lengths, symbol_counts)

    def _packed_rows(self, payloads: list[bytes], n_rows: int) -> np.ndarray:
        """Payload bytes as one zero-padded ``(n_rows, bytes)`` matrix."""
        lens = np.fromiter((len(p) for p in payloads), np.int64, n_rows)
        max_bytes = int(lens.max(initial=0))
        packed = np.zeros((n_rows, max_bytes + _DECODE_PAD_BYTES), dtype=np.uint8)
        total = int(lens.sum())
        if total:
            flat = np.frombuffer(b"".join(payloads), dtype=np.uint8)
            starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
            width = packed.shape[1]
            row_starts = np.arange(n_rows, dtype=np.int64) * width - starts
            index = np.arange(total, dtype=np.int64) + np.repeat(row_starts, lens)
            packed.reshape(-1)[index] = flat
        return packed

    @staticmethod
    def _peek_view(packed: np.ndarray) -> np.ndarray:
        """A byte-strided uint64 window view over the packed payload matrix.

        ``view[r, b]`` is the 8 bytes starting at byte ``b`` of row ``r`` as
        one (unaligned, overlapping) machine-order uint64 — one fancy gather
        plus a byteswap replaces an 8-byte gather-and-reduce per peek.
        """
        n_rows, width = packed.shape
        return np.ndarray(
            buffer=packed.data,
            dtype=np.uint64,
            shape=(n_rows, width - 7),
            strides=(packed.strides[0], 1),
        )

    @staticmethod
    def _peek_bits(
        view: np.ndarray, rows: np.ndarray, positions: np.ndarray, nbits: int
    ) -> np.ndarray:
        """Read ``nbits`` (≤ 56) MSB-first bits at per-row bit positions.

        ``view`` is the :meth:`_peek_view` of the packed matrix; the worst
        case (within-byte offset 7 + 56-bit peek) fits one uint64 window.
        """
        value = view[rows, positions >> 3].byteswap()
        offset = (positions & 7).astype(np.uint64)
        shift = np.uint64(64 - nbits) - offset
        return (value >> shift) & np.uint64((1 << nbits) - 1)

    def _decode_rows_fused(
        self,
        payloads: list[bytes],
        bit_lengths: np.ndarray,
        symbol_counts: np.ndarray,
    ) -> np.ndarray:
        """Multi-symbol fused decode (see :class:`FusedDecodeTable`).

        Per round, every unfinished row probes the k-bit table once and
        commits all the whole symbols its entry resolves; rows whose entry
        resolves none (long codeword / escape overflowing the window) take
        one vectorized ``searchsorted`` step instead — and when most of a
        batch gets stuck on the very first probe (escape-heavy data), those
        rows are handed to :meth:`decode_rows_lockstep` wholesale, which is
        faster than dragging them through fused rounds one symbol at a
        time.  Error behavior is the oracle's: a symbol is never committed
        if it would *start* at or past ``bit_length`` (``take`` is clamped
        so the next round's pre-check raises), and a final straddle check
        mirrors the oracle's end-of-stream check.
        """
        bit_lengths = np.asarray(bit_lengths, dtype=np.int64)
        symbol_counts = np.asarray(symbol_counts, dtype=np.int64)
        n_rows = len(payloads)
        data_bits = np.fromiter(
            (len(payload) * 8 for payload in payloads), np.int64, n_rows
        )
        if np.any(bit_lengths > data_bits):
            raise DecompressionError("bit_length exceeds the available payload bytes")
        max_count = int(symbol_counts.max(initial=0))
        out = np.zeros((n_rows, max_count), dtype=np.int64)
        if n_rows == 0 or max_count == 0:
            return out
        packed = self._packed_rows(payloads, n_rows)
        view = self._peek_view(packed)
        fused = self.fused_table()
        k = fused.k
        k_mask = np.uint64((1 << k) - 1)
        offsets = np.arange(fused.symbols.shape[1], dtype=np.int64)
        out_flat = out.reshape(-1)
        position = np.zeros(n_rows, dtype=np.int64)
        done = np.zeros(n_rows, dtype=np.int64)
        # An escape's raw bits can be read from the step's gathered word
        # only while escape-code + raw bits fit past the worst byte offset.
        raw_in_word = 7 + self.max_length + self.symbol_bits <= 64
        max_len_mask = np.uint64((1 << self.max_length) - 1)
        raw_mask = np.uint64((1 << self.symbol_bits) - 1)

        def single_step(s_rows: np.ndarray, p: np.ndarray) -> None:
            """Decode exactly one symbol per row at bit positions ``p`` —
            the only way past an escape or a codeword longer than the
            window.  One word gather + one searchsorted, vectorized."""
            word = view[s_rows, p >> 3].byteswap()
            off = p & 7
            w16 = (word >> (np.uint64(64 - k) - off.astype(np.uint64))) & k_mask
            index = fused.first[w16]
            miss = index < 0
            if miss.any():
                # Leading codeword longer than the window — the rare case
                # that still needs the full left-justified searchsorted.
                values = (
                    word[miss]
                    >> (
                        np.uint64(64 - self.max_length)
                        - off[miss].astype(np.uint64)
                    )
                ) & max_len_mask
                index[miss] = (
                    np.searchsorted(self.dec_lj, values, side="right") - 1
                )
            symbol = self.dec_symbols[index]
            length = self.dec_lengths[index]
            escaped = symbol < 0
            if escaped.any():
                symbol = symbol.copy()
                length = length.copy()
                if raw_in_word:
                    raw = (
                        word[escaped]
                        >> (
                            np.uint64(64 - self.symbol_bits)
                            - (off[escaped] + length[escaped]).astype(np.uint64)
                        )
                    ) & raw_mask
                else:
                    raw = self._peek_bits(
                        view,
                        s_rows[escaped],
                        p[escaped] + length[escaped],
                        self.symbol_bits,
                    )
                symbol[escaped] = raw.astype(np.int64)
                length[escaped] += self.symbol_bits
            out[s_rows, done[s_rows]] = symbol
            position[s_rows] = p + length
            done[s_rows] += 1

        first_round = True
        while True:
            active = np.nonzero(done < symbol_counts)[0]
            if not active.size:
                break
            rows = active
            pos = position[rows]
            bl_r = bit_lengths[rows]
            if np.any(pos >= bl_r):
                raise DecompressionError("codeword ran past the end of the bitstream")
            # One payload gather per round: 64 bits starting at the byte
            # containing `pos`.  After the in-byte offset (<= 7) that word
            # holds >= 57 stream bits — enough to chain three k-bit probes
            # (two earlier probes consume <= 2k = 32 bits) without touching
            # payload memory again.
            word = view[rows, pos >> 3].byteswap()
            budget = symbol_counts[rows] - done[rows]
            base = done[rows]
            left = budget.copy()
            rowbase = rows * max_count + base
            # The output cursor (absolute flat index of each row's next
            # symbol slot) and the window shift are the only per-probe
            # state; bits consumed and symbols resolved fall out of them
            # after the chain (`shift0 - shift`, `cursor - rowbase`).
            cursor = rowbase.copy()
            shift0 = np.uint64(64 - k) - (pos & 7).astype(np.uint64)
            shift = shift0.copy()
            # End-of-stream bookkeeping (overrun zeroing, near-end take
            # clamp) can only trigger within 3k consumed bits of a row's
            # bit_length — skip it wholesale for rounds that never get
            # close, which is every round but a row's last.
            checked = bool((bl_r - pos).min() <= 4 * k)
            for _ in range(3):
                window = (word >> shift) & k_mask
                take = np.minimum(fused.count[window], left)
                if checked:
                    pos_cur = pos + (shift0 - shift).astype(np.int64)
                    take[pos_cur >= bl_r] = 0
                    # A symbol must never start at/past bit_length (the
                    # oracle raises there); cum_bits <= k, so only rows
                    # within k bits of the end can overrun — clamping
                    # their take makes the next round's pre-check raise
                    # identically.
                    rem = bl_r - pos_cur
                    near = (take > 1) & (rem <= k)
                    if near.any():
                        cum = fused.cum_bits[window[near]]
                        starts_ok = (
                            offsets[None, :-1] < (take[near] - 1)[:, None]
                        ) & (cum[:, :-1] < rem[near][:, None])
                        take[near] = 1 + starts_ok.sum(axis=1)
                t_max = int(take.max(initial=0))
                if t_max == 0:
                    break
                good = np.nonzero(take > 0)[0]
                t = take[good]
                w = window[good]
                dest = cursor[good]
                if t_max <= 4:
                    # Few symbols per window (the typical mid-entropy
                    # case): scatter column by column on shrinking row
                    # subsets — cheaper than materializing the 2D mask.
                    out_flat[dest] = fused.symbols[w, 0]
                    for j in range(1, t_max):
                        more = np.nonzero(t > j)[0]
                        out_flat[dest[more] + j] = fused.symbols[w[more], j]
                else:
                    valid = offsets[None, :t_max] < t[:, None]
                    flat = dest[:, None] + offsets[None, :t_max]
                    out_flat[flat[valid]] = fused.symbols[w, :t_max][valid]
                cursor[good] = dest + t
                left[good] -= t
                shift[good] -= fused.cum_bits[w, t - 1].astype(np.uint64)
                # Chain on only while most rows still resolve symbols —
                # every probe costs full-width vector ops, so once the
                # productive set is a minority the next round (which
                # compacts `rows`) is cheaper than another probe here.
                if good.size * 2 < rows.size:
                    break
            consumed = (shift0 - shift).astype(np.int64)
            total = cursor - rowbase
            position[rows] = pos + consumed
            done[rows] = base + total
            # Rows genuinely stuck — their current window resolves nothing
            # (`take == 0` survives every probe once a window's count is
            # zero: an escape or long codeword blocks it) — advance one
            # symbol so the next round's chain resumes right behind it.
            # Rows that merely ran out of probes keep their cheap fused
            # path next round.
            pos_cur = pos + consumed
            blocked = np.nonzero((take == 0) & (left > 0) & (pos_cur < bl_r))[0]
            if blocked.size:
                if first_round:
                    zero = blocked[total[blocked] == 0]
                    if zero.size * 4 >= rows.size:
                        # Escape-heavy batch: the oracle's one-searchsorted-
                        # per-slot loop beats fused rounds that resolve one
                        # symbol each.
                        s_rows = rows[zero]
                        decoded = self.decode_rows_lockstep(
                            [payloads[i] for i in s_rows.tolist()],
                            bit_lengths[s_rows],
                            symbol_counts[s_rows],
                        )
                        out[s_rows, : decoded.shape[1]] = decoded
                        position[s_rows] = bit_lengths[s_rows]
                        done[s_rows] = symbol_counts[s_rows]
                        blocked = blocked[total[blocked] > 0]
                if blocked.size:
                    s_rows = rows[blocked]
                    single_step(s_rows, pos_cur[blocked])
                    # Escape runs (JM) block the same rows round after
                    # round; a second step here halves their round count
                    # for one extra pass over an already-small subset.
                    for _ in range(2):
                        s_rows = s_rows[
                            (done[s_rows] < symbol_counts[s_rows])
                            & (position[s_rows] < bit_lengths[s_rows])
                        ]
                        if not s_rows.size:
                            break
                        single_step(s_rows, position[s_rows])
            first_round = False
        if np.any(position > bit_lengths):
            raise DecompressionError("codeword ran past the end of the bitstream")
        return out

    def _decode_rows_sharded(
        self,
        payloads: list[bytes],
        bit_lengths: np.ndarray,
        symbol_counts: np.ndarray,
    ) -> np.ndarray | None:
        """Thread-sharded fused decode (``REPRO_KERNEL_BACKEND=threaded``).

        Rows are independent, so contiguous row shards decode concurrently
        through :meth:`_decode_rows_fused` and paste back.  ``None`` when
        sharding does not apply.
        """
        bit_lengths = np.asarray(bit_lengths, dtype=np.int64)
        symbol_counts = np.asarray(symbol_counts, dtype=np.int64)
        n_rows = len(payloads)
        shards = kernel_backend.run_sharded(
            lambda lo, hi: self._decode_rows_fused(
                payloads[lo:hi], bit_lengths[lo:hi], symbol_counts[lo:hi]
            ),
            n_rows,
        )
        if shards is None:
            return None
        max_count = int(symbol_counts.max(initial=0))
        out = np.zeros((n_rows, max_count), dtype=np.int64)
        lo = 0
        for part in shards:
            out[lo : lo + part.shape[0], : part.shape[1]] = part
            lo += part.shape[0]
        return out

    def _decode_rows_numba(
        self,
        payloads: list[bytes],
        bit_lengths: np.ndarray,
        symbol_counts: np.ndarray,
    ) -> np.ndarray | None:
        """Numba-jitted decode (``REPRO_KERNEL_BACKEND=numba``).

        One nopython pass over the rows: per-symbol peek, binary search of
        the left-justified codewords, escape raw bits — the lockstep
        algorithm without the per-slot Python overhead.  ``None`` (silent
        NumPy fallback) when numba is missing or failed to compile.
        """
        kernel = _numba_decode_kernel()
        if kernel is None:
            return None
        bit_lengths = np.asarray(bit_lengths, dtype=np.int64)
        symbol_counts = np.asarray(symbol_counts, dtype=np.int64)
        n_rows = len(payloads)
        data_bits = np.fromiter(
            (len(payload) * 8 for payload in payloads), np.int64, n_rows
        )
        if np.any(bit_lengths > data_bits):
            raise DecompressionError("bit_length exceeds the available payload bytes")
        max_count = int(symbol_counts.max(initial=0))
        out = np.zeros((n_rows, max_count), dtype=np.int64)
        if n_rows == 0 or max_count == 0:
            return out
        packed = self._packed_rows(payloads, n_rows)
        positions = np.zeros(n_rows, dtype=np.int64)
        # max_length <= 56 (fused_supported gate), so the left-justified
        # codewords fit int64 — numba-friendlier than mixing uint64 in.
        bad_row = kernel(
            packed, bit_lengths, symbol_counts,
            self.dec_lj.astype(np.int64), self.dec_symbols, self.dec_lengths,
            self.max_length, self.symbol_bits, out, positions,
        )
        if bad_row >= 0 or np.any(positions > bit_lengths):
            raise DecompressionError("codeword ran past the end of the bitstream")
        return out

    def decode_rows_lockstep(
        self,
        payloads: list[bytes],
        bit_lengths: np.ndarray,
        symbol_counts: np.ndarray,
    ) -> np.ndarray:
        """Decode many Huffman payloads in lockstep — the bit-exact oracle.

        One Python iteration per symbol *slot* with one ``searchsorted``
        across all unfinished rows per iteration; :meth:`decode_rows` (the
        fused decoder) is pinned to this path symbol-for-symbol and
        error-for-error by the codec test suite.  Same arguments, returns
        and raises as :meth:`decode_rows`.
        """
        if not self.trained:
            raise DecompressionError("symbol model must be trained before decoding")
        bit_lengths = np.asarray(bit_lengths, dtype=np.int64)
        symbol_counts = np.asarray(symbol_counts, dtype=np.int64)
        n_rows = len(payloads)
        data_bits = np.fromiter(
            (len(payload) * 8 for payload in payloads), np.int64, n_rows
        )
        if np.any(bit_lengths > data_bits):
            raise DecompressionError("bit_length exceeds the available payload bytes")
        max_count = int(symbol_counts.max(initial=0))
        out = np.zeros((n_rows, max_count), dtype=np.int64)
        if n_rows == 0 or max_count == 0:
            return out

        # All payload bits as one (n_rows, bits) matrix, zero-padded on the
        # right so a peek window never leaves the matrix.  The padding can
        # never change a decode: the searchsorted below only commits to the
        # leading `length` bits of a window, and those always lie inside the
        # payload for well-formed streams (enforced by the final check).
        max_bytes = max(len(payload) for payload in payloads)
        packed = np.zeros((n_rows, max_bytes), dtype=np.uint8)
        for i, payload in enumerate(payloads):
            if payload:
                packed[i, : len(payload)] = np.frombuffer(payload, dtype=np.uint8)
        pad = self.max_length + self.symbol_bits
        bits = np.zeros((n_rows, max_bytes * 8 + pad), dtype=np.uint8)
        bits[:, : max_bytes * 8] = np.unpackbits(packed, axis=1)

        peek_weights = (
            1 << np.arange(self.max_length - 1, -1, -1, dtype=np.int64)
        ).astype(np.uint64)
        raw_weights = 1 << np.arange(self.symbol_bits - 1, -1, -1, dtype=np.int64)
        peek_offsets = np.arange(self.max_length, dtype=np.int64)
        raw_offsets = np.arange(self.symbol_bits, dtype=np.int64)

        position = np.zeros(n_rows, dtype=np.int64)
        for slot in range(max_count):
            active = np.nonzero(symbol_counts > slot)[0]
            if not active.size:
                break
            pos = position[active]
            # Every pending symbol needs at least one more payload bit; this
            # also keeps every peek inside the padded bit matrix (positions
            # never exceed data_bits, so windows stay within `pad`).
            if np.any(pos >= bit_lengths[active]):
                raise DecompressionError("codeword ran past the end of the bitstream")
            window = bits[active[:, None], pos[:, None] + peek_offsets]
            values = (window.astype(np.uint64) * peek_weights).sum(axis=1)
            index = np.searchsorted(self.dec_lj, values, side="right") - 1
            symbol = self.dec_symbols[index].copy()
            length = self.dec_lengths[index].copy()
            escaped = symbol < 0
            if escaped.any():
                rows = active[escaped]
                raw_pos = pos[escaped] + length[escaped]
                raw = bits[rows[:, None], raw_pos[:, None] + raw_offsets]
                symbol[escaped] = (raw.astype(np.int64) * raw_weights).sum(axis=1)
                length[escaped] += self.symbol_bits
            out[active, slot] = symbol
            position[active] = pos + length

        if np.any(position > bit_lengths):
            raise DecompressionError("codeword ran past the end of the bitstream")
        return out


def reconstruct_rows(
    symbols: np.ndarray,
    approx_start: np.ndarray,
    approx_count: np.ndarray,
    *,
    use_prediction: bool,
    element_symbols: int,
) -> np.ndarray:
    """Fill every row's truncated symbol range, vectorized over rows.

    Bit-exact against
    :func:`~repro.core.prediction.predict_truncated_symbols`: TSLC-SIMP
    (``use_prediction=False``) zero-fills; TSLC-PRED/OPT predict each
    truncated symbol from the nearest preceding kept symbol at the same
    within-element lane, then the nearest following one, then any kept
    neighbour (zero only when the whole row was truncated).

    Args:
        symbols: ``(n_rows, n_symbols)`` matrix whose entries *outside* each
            row's truncated range hold the kept symbol values (entries inside
            the range are ignored and overwritten).
        approx_start: ``(n_rows,)`` first truncated symbol per row.
        approx_count: ``(n_rows,)`` truncated symbols per row (may be 0).
        use_prediction: ``True`` for TSLC-PRED/OPT, ``False`` for TSLC-SIMP.
        element_symbols: symbols per data element (the predictor's lane
            stride).

    Returns:
        A new matrix of the same shape and dtype with the ranges filled.
    """
    if element_symbols <= 0:
        raise ValueError("element_symbols must be positive")
    sym = np.asarray(symbols)
    n_rows, n_symbols = sym.shape
    start = np.asarray(approx_start, dtype=np.int64)
    count = np.asarray(approx_count, dtype=np.int64)
    if np.any(count < 0) or np.any(start < 0):
        raise ValueError("approximation range must be non-negative")
    if np.any(start + count > n_symbols):
        raise ValueError("approximated range exceeds the block")
    out = sym.copy()
    max_count = int(count.max(initial=0))
    if n_rows == 0 or max_count == 0:
        return out

    offsets = np.arange(max_count, dtype=np.int64)
    valid = offsets[None, :] < count[:, None]
    target = np.where(valid, start[:, None] + offsets[None, :], 0)
    if use_prediction:
        end = (start + count)[:, None]
        lane = target % element_symbols
        # Mirrors predictor_symbol_index: the first preceding candidate at
        # the same lane is start - element_symbols + lane (< start always),
        # the first following one is end + lane (>= end always); then fall
        # back to any kept neighbour, and to zero when nothing was kept.
        before = start[:, None] - element_symbols + lane
        after = end + lane
        predictor = np.where(
            before >= 0,
            before,
            np.where(
                after < n_symbols,
                after,
                np.where(
                    start[:, None] > 0,
                    start[:, None] - 1,
                    np.where(end < n_symbols, end, -1),
                ),
            ),
        )
        gathered = np.take_along_axis(out, np.clip(predictor, 0, n_symbols - 1), axis=1)
        fill = np.where(predictor >= 0, gathered, 0).astype(out.dtype)
    else:
        fill = np.zeros(target.shape, dtype=out.dtype)

    rows = np.broadcast_to(np.arange(n_rows)[:, None], target.shape)
    out[rows[valid], target[valid]] = fill[valid]
    return out
