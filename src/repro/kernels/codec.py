"""Batched payload codec: Huffman bits and SLC truncation for whole regions.

The analysis kernels (:mod:`repro.kernels.lut`, :mod:`repro.kernels.decision`)
compute *sizes* without materializing a single payload bit; this module is
their counterpart for the moments a payload actually has to exist — storing a
block (the degraded bytes a later read returns), compressing it (the Huffman
bitstream) and decompressing it (symbols back out of the bitstream).  The
scalar path does all three one symbol at a time (`BitWriter`/`BitReader`
loops, per-symbol dict lookups, the Python list surgery of
:func:`repro.core.prediction.predict_truncated_symbols`); here each becomes
an array program over every block of a region at once:

* :class:`HuffmanCodecLUT` — the trained canonical Huffman code as dense
  per-symbol *codeword* and *length* tables (untabled symbols are
  escape-extended: ``(escape_codeword << symbol_bits) | symbol``), plus the
  canonical decode arrays: all codewords left-justified to the maximum code
  length, sorted ascending.  A prefix-free code's left-justified codewords
  are strictly increasing, so decoding one symbol is a ``searchsorted`` of
  the next ``max_length`` bits — whatever bits follow the codeword cannot
  push the value past the next left-justified codeword.
* :meth:`HuffmanCodecLUT.encode_rows` — bulk MSB-first bit packing: per-symbol
  codeword bits are exploded with prefix-sum offsets + ``np.repeat`` and
  reassembled per row with :func:`numpy.packbits`, bit-exact against
  ``BitWriter.getvalue()``.
* :meth:`HuffmanCodecLUT.decode_rows` — all rows decode in lockstep: one
  Python iteration per symbol *slot* (64 for the paper geometry), with the
  peek / ``searchsorted`` / escape-raw-bits / advance steps vectorized across
  every block of the region.
* :func:`reconstruct_rows` — the TSLC truncated-symbol reconstruction
  (zero fill for SIMP, the lane-aware nearest-kept-symbol predictor for
  PRED/OPT) as masked gathers, bit-exact against
  :func:`~repro.core.prediction.predict_truncated_symbols`.

The scalar implementations remain the n = 1 oracles; ``tests/test_codec.py``
and ``tests/test_golden_results.py`` enforce bit-exact equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.compression.base import CompressionError, DecompressionError
from repro.kernels.lut import MAX_LUT_SYMBOL_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (e2mc -> codec)
    from repro.compression.e2mc import SymbolModel

#: widest symbol for which the dense codeword table is sensible; the codec
#: tables are only coherent when they cover exactly the widths the
#: code-length LUT covers, so the bound is shared, not re-declared
MAX_CODEC_SYMBOL_BYTES = MAX_LUT_SYMBOL_BYTES


@dataclass(frozen=True)
class HuffmanCodecLUT:
    """A trained symbol model's full codec (encode + decode) as NumPy tables.

    Attributes:
        codewords: ``(2**symbol_bits,)`` uint64 array mapping raw symbol →
            emitted bit pattern.  Tabled symbols hold their Huffman codeword;
            untabled symbols hold the escape codeword followed by the raw
            symbol bits (``(escape << symbol_bits) | symbol``).
        lengths: ``(2**symbol_bits,)`` int64 array of the matching bit counts
            (same values as :class:`~repro.kernels.lut.CodeLengthLUT`).
        dec_lj: left-justified codewords (``codeword << (max_length - len)``)
            of every coded symbol including the escape, sorted ascending.
        dec_symbols: symbol decoded at each ``dec_lj`` entry;
            the escape marker is its natural negative sentinel
            (:data:`~repro.compression.e2mc.ESCAPE_SYMBOL`).
        dec_lengths: codeword length (escape raw bits *not* included) at each
            ``dec_lj`` entry.
        max_length: longest codeword length in bits.
        symbol_bits: raw symbol width in bits.
        trained: whether the tables came from a trained model; encode/decode
            raise on untrained tables, matching the scalar paths.
    """

    codewords: np.ndarray
    lengths: np.ndarray
    dec_lj: np.ndarray
    dec_symbols: np.ndarray
    dec_lengths: np.ndarray
    max_length: int
    symbol_bits: int
    trained: bool

    @classmethod
    def from_model(cls, model: "SymbolModel") -> "HuffmanCodecLUT":
        """Expand a :class:`~repro.compression.e2mc.SymbolModel` into tables.

        Raises :class:`ValueError` for symbol widths whose dense tables would
        not fit in memory; callers fall back to the scalar path in that case.
        """
        if model.symbol_bytes > MAX_CODEC_SYMBOL_BYTES:
            raise ValueError(
                f"cannot build a dense codec LUT for {model.symbol_bytes}-byte symbols"
            )
        symbol_bits = model.symbol_bits
        empty = np.zeros(0, dtype=np.int64)
        if not model.trained:
            return cls(
                codewords=np.zeros(0, dtype=np.uint64),
                lengths=empty,
                dec_lj=np.zeros(0, dtype=np.uint64),
                dec_symbols=empty,
                dec_lengths=empty,
                max_length=0,
                symbol_bits=symbol_bits,
                trained=False,
            )

        from repro.compression.e2mc import ESCAPE_SYMBOL

        size = 1 << symbol_bits
        escape_code, _ = model.code.encode(ESCAPE_SYMBOL)
        # Escape-extended defaults: escape codeword followed by the raw bits.
        codewords = (np.uint64(escape_code) << np.uint64(symbol_bits)) + np.arange(
            size, dtype=np.uint64
        )
        lengths = model.code_length_table().table.astype(np.int64)
        tabled = [(s, cw) for s, cw in model.code.codewords.items() if s >= 0]
        if tabled:
            symbols, codes = zip(*tabled)
            codewords[np.asarray(symbols, dtype=np.int64)] = np.asarray(
                codes, dtype=np.uint64
            )
        max_length = model.code.max_length()
        entries = sorted(
            (code << (max_length - model.code.lengths[symbol]), symbol)
            for symbol, code in model.code.codewords.items()
        )
        dec_lj = np.asarray([lj for lj, _ in entries], dtype=np.uint64)
        dec_symbols = np.asarray([s for _, s in entries], dtype=np.int64)
        dec_lengths = np.asarray(
            [model.code.lengths[s] for _, s in entries], dtype=np.int64
        )
        for table in (codewords, lengths, dec_lj, dec_symbols, dec_lengths):
            table.setflags(write=False)
        return cls(
            codewords=codewords,
            lengths=lengths,
            dec_lj=dec_lj,
            dec_symbols=dec_symbols,
            dec_lengths=dec_lengths,
            max_length=max_length,
            symbol_bits=symbol_bits,
            trained=True,
        )

    # ------------------------------------------------------------------ #
    # encode

    def encode_rows(
        self, symbols: np.ndarray, row_counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Huffman-encode many symbol rows into packed payload bytes at once.

        Args:
            symbols: flat concatenation of every row's symbols, in row order
                (rows may have different symbol counts — SLC's lossy rows
                keep fewer symbols than lossless ones).
            row_counts: ``(n_rows,)`` number of symbols per row.

        Returns:
            ``(packed, row_bits)`` where ``packed`` is an
            ``(n_rows, max_row_bytes)`` uint8 matrix and row ``i``'s payload
            is ``packed[i, :(row_bits[i] + 7) // 8].tobytes()`` — identical
            bytes and bit count to the scalar
            :meth:`~repro.compression.e2mc.SymbolModel.encode_symbol` loop
            plus ``BitWriter.getvalue()``.
        """
        if not self.trained:
            raise CompressionError("symbol model must be trained before encoding")
        row_counts = np.asarray(row_counts, dtype=np.int64)
        n_rows = row_counts.shape[0]
        flat = np.asarray(symbols).reshape(-1)
        if int(row_counts.sum()) != flat.size:
            raise ValueError(
                f"row_counts sum to {int(row_counts.sum())} symbols "
                f"but {flat.size} were given"
            )
        lens = self.lengths[flat]
        # Bit offset of every symbol (prefix sums across the flat stream).
        sym_start = np.zeros(flat.size + 1, dtype=np.int64)
        np.cumsum(lens, out=sym_start[1:])
        total_bits = int(sym_start[-1])
        row_sym_start = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(row_counts, out=row_sym_start[1:])
        row_bit_start = sym_start[row_sym_start[:-1]]
        row_bits = sym_start[row_sym_start[1:]] - row_bit_start
        if total_bits == 0:
            return np.zeros((n_rows, 0), dtype=np.uint8), row_bits

        # Explode codewords into individual bits, MSB first: bit k of a
        # symbol's emission is (codeword >> (length - 1 - k)) & 1.
        codes = self.codewords[flat]
        sym_of_bit = np.repeat(np.arange(flat.size, dtype=np.int64), lens)
        within = np.arange(total_bits, dtype=np.int64) - sym_start[sym_of_bit]
        shifts = (lens[sym_of_bit] - 1 - within).astype(np.uint64)
        bits = ((codes[sym_of_bit] >> shifts) & np.uint64(1)).astype(np.uint8)

        # Scatter the flat bit stream into per-row lanes and pack bytes.
        width = (int(row_bits.max()) + 7) // 8 * 8
        lanes = np.zeros((n_rows, width), dtype=np.uint8)
        row_of_bit = np.repeat(np.arange(n_rows, dtype=np.int64), row_bits)
        column = np.arange(total_bits, dtype=np.int64) - np.repeat(
            row_bit_start, row_bits
        )
        lanes[row_of_bit, column] = bits
        return np.packbits(lanes, axis=1), row_bits

    def payloads_from_rows(
        self, packed: np.ndarray, row_bits: np.ndarray
    ) -> list[tuple[bytes, int]]:
        """Slice :meth:`encode_rows` output into per-row ``(bytes, bits)``."""
        return [
            (packed[i, : (bits + 7) // 8].tobytes(), int(bits))
            for i, bits in enumerate(row_bits.tolist())
        ]

    # ------------------------------------------------------------------ #
    # decode

    def decode_rows(
        self,
        payloads: list[bytes],
        bit_lengths: np.ndarray,
        symbol_counts: np.ndarray,
    ) -> np.ndarray:
        """Decode many Huffman payloads in lockstep.

        Args:
            payloads: per-row packed payload bytes (as produced by
                :meth:`encode_rows` / ``BitWriter.getvalue()``).
            bit_lengths: ``(n_rows,)`` meaningful bits per payload.
            symbol_counts: ``(n_rows,)`` symbols to decode per row.

        Returns:
            ``(n_rows, max(symbol_counts))`` int64 matrix; row ``i``'s first
            ``symbol_counts[i]`` entries are its decoded symbols (the rest
            are zero).

        Raises:
            DecompressionError: if the model is untrained or a codeword runs
                past the end of a payload (the scalar reader's ``EOFError``).
        """
        if not self.trained:
            raise DecompressionError("symbol model must be trained before decoding")
        bit_lengths = np.asarray(bit_lengths, dtype=np.int64)
        symbol_counts = np.asarray(symbol_counts, dtype=np.int64)
        n_rows = len(payloads)
        data_bits = np.fromiter(
            (len(payload) * 8 for payload in payloads), np.int64, n_rows
        )
        if np.any(bit_lengths > data_bits):
            raise DecompressionError("bit_length exceeds the available payload bytes")
        max_count = int(symbol_counts.max(initial=0))
        out = np.zeros((n_rows, max_count), dtype=np.int64)
        if n_rows == 0 or max_count == 0:
            return out

        # All payload bits as one (n_rows, bits) matrix, zero-padded on the
        # right so a peek window never leaves the matrix.  The padding can
        # never change a decode: the searchsorted below only commits to the
        # leading `length` bits of a window, and those always lie inside the
        # payload for well-formed streams (enforced by the final check).
        max_bytes = max(len(payload) for payload in payloads)
        packed = np.zeros((n_rows, max_bytes), dtype=np.uint8)
        for i, payload in enumerate(payloads):
            if payload:
                packed[i, : len(payload)] = np.frombuffer(payload, dtype=np.uint8)
        pad = self.max_length + self.symbol_bits
        bits = np.zeros((n_rows, max_bytes * 8 + pad), dtype=np.uint8)
        bits[:, : max_bytes * 8] = np.unpackbits(packed, axis=1)

        peek_weights = (
            1 << np.arange(self.max_length - 1, -1, -1, dtype=np.int64)
        ).astype(np.uint64)
        raw_weights = 1 << np.arange(self.symbol_bits - 1, -1, -1, dtype=np.int64)
        peek_offsets = np.arange(self.max_length, dtype=np.int64)
        raw_offsets = np.arange(self.symbol_bits, dtype=np.int64)

        position = np.zeros(n_rows, dtype=np.int64)
        for slot in range(max_count):
            active = np.nonzero(symbol_counts > slot)[0]
            if not active.size:
                break
            pos = position[active]
            # Every pending symbol needs at least one more payload bit; this
            # also keeps every peek inside the padded bit matrix (positions
            # never exceed data_bits, so windows stay within `pad`).
            if np.any(pos >= bit_lengths[active]):
                raise DecompressionError("codeword ran past the end of the bitstream")
            window = bits[active[:, None], pos[:, None] + peek_offsets]
            values = (window.astype(np.uint64) * peek_weights).sum(axis=1)
            index = np.searchsorted(self.dec_lj, values, side="right") - 1
            symbol = self.dec_symbols[index].copy()
            length = self.dec_lengths[index].copy()
            escaped = symbol < 0
            if escaped.any():
                rows = active[escaped]
                raw_pos = pos[escaped] + length[escaped]
                raw = bits[rows[:, None], raw_pos[:, None] + raw_offsets]
                symbol[escaped] = (raw.astype(np.int64) * raw_weights).sum(axis=1)
                length[escaped] += self.symbol_bits
            out[active, slot] = symbol
            position[active] = pos + length

        if np.any(position > bit_lengths):
            raise DecompressionError("codeword ran past the end of the bitstream")
        return out


def reconstruct_rows(
    symbols: np.ndarray,
    approx_start: np.ndarray,
    approx_count: np.ndarray,
    *,
    use_prediction: bool,
    element_symbols: int,
) -> np.ndarray:
    """Fill every row's truncated symbol range, vectorized over rows.

    Bit-exact against
    :func:`~repro.core.prediction.predict_truncated_symbols`: TSLC-SIMP
    (``use_prediction=False``) zero-fills; TSLC-PRED/OPT predict each
    truncated symbol from the nearest preceding kept symbol at the same
    within-element lane, then the nearest following one, then any kept
    neighbour (zero only when the whole row was truncated).

    Args:
        symbols: ``(n_rows, n_symbols)`` matrix whose entries *outside* each
            row's truncated range hold the kept symbol values (entries inside
            the range are ignored and overwritten).
        approx_start: ``(n_rows,)`` first truncated symbol per row.
        approx_count: ``(n_rows,)`` truncated symbols per row (may be 0).
        use_prediction: ``True`` for TSLC-PRED/OPT, ``False`` for TSLC-SIMP.
        element_symbols: symbols per data element (the predictor's lane
            stride).

    Returns:
        A new matrix of the same shape and dtype with the ranges filled.
    """
    if element_symbols <= 0:
        raise ValueError("element_symbols must be positive")
    sym = np.asarray(symbols)
    n_rows, n_symbols = sym.shape
    start = np.asarray(approx_start, dtype=np.int64)
    count = np.asarray(approx_count, dtype=np.int64)
    if np.any(count < 0) or np.any(start < 0):
        raise ValueError("approximation range must be non-negative")
    if np.any(start + count > n_symbols):
        raise ValueError("approximated range exceeds the block")
    out = sym.copy()
    max_count = int(count.max(initial=0))
    if n_rows == 0 or max_count == 0:
        return out

    offsets = np.arange(max_count, dtype=np.int64)
    valid = offsets[None, :] < count[:, None]
    target = np.where(valid, start[:, None] + offsets[None, :], 0)
    if use_prediction:
        end = (start + count)[:, None]
        lane = target % element_symbols
        # Mirrors predictor_symbol_index: the first preceding candidate at
        # the same lane is start - element_symbols + lane (< start always),
        # the first following one is end + lane (>= end always); then fall
        # back to any kept neighbour, and to zero when nothing was kept.
        before = start[:, None] - element_symbols + lane
        after = end + lane
        predictor = np.where(
            before >= 0,
            before,
            np.where(
                after < n_symbols,
                after,
                np.where(
                    start[:, None] > 0,
                    start[:, None] - 1,
                    np.where(end < n_symbols, end, -1),
                ),
            ),
        )
        gathered = np.take_along_axis(out, np.clip(predictor, 0, n_symbols - 1), axis=1)
        fill = np.where(predictor >= 0, gathered, 0).astype(out.dtype)
    else:
        fill = np.zeros(target.shape, dtype=out.dtype)

    rows = np.broadcast_to(np.arange(n_rows)[:, None], target.shape)
    out[rows[valid], target[valid]] = fill[valid]
    return out
