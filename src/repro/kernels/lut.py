"""Code-length lookup table: the trained Huffman code as one NumPy array.

E2MC's central property (and the reason SLC's adder tree exists) is that the
compressed size of a block is the *sum of its per-symbol code lengths*.  The
scalar path resolves every symbol through a dict lookup; here the trained
:class:`~repro.compression.huffman.HuffmanCode` is expanded once into a
``2**symbol_bits``-entry array (65536 entries for 16-bit symbols) where
tabled symbols hold their codeword length and every other entry holds the
escape length plus the raw symbol bits.  Per-block code lengths then become a
single fancy-index and payload sizes a row sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: widest symbol for which materializing the full table is sensible
#: (2 bytes -> 65536 entries; 4-byte symbols would need 2**32 entries)
MAX_LUT_SYMBOL_BYTES = 2


@dataclass(frozen=True)
class CodeLengthLUT:
    """Dense per-symbol code-length table for a trained symbol model.

    Attributes:
        table: ``(2**symbol_bits,)`` int32 array mapping symbol -> coded bits.
        symbol_bits: raw symbol width in bits.
        trained: whether the table came from a trained model.  An untrained
            table maps every symbol to its raw width, matching
            :meth:`SymbolModel.code_length` before training.
    """

    table: np.ndarray
    symbol_bits: int
    trained: bool

    @classmethod
    def from_model(cls, model) -> "CodeLengthLUT":
        """Expand a :class:`~repro.compression.e2mc.SymbolModel` into a LUT.

        Raises :class:`ValueError` for symbol widths whose table would not
        fit in memory; callers fall back to the scalar path in that case.
        """
        from repro.compression.e2mc import ESCAPE_SYMBOL

        if model.symbol_bytes > MAX_LUT_SYMBOL_BYTES:
            raise ValueError(
                f"cannot build a dense LUT for {model.symbol_bytes}-byte symbols"
            )
        symbol_bits = model.symbol_bits
        size = 1 << symbol_bits
        if not model.trained:
            return cls(
                table=np.full(size, symbol_bits, dtype=np.int32),
                symbol_bits=symbol_bits,
                trained=False,
            )
        escape_bits = model.code.lengths[ESCAPE_SYMBOL] + symbol_bits
        table = np.full(size, escape_bits, dtype=np.int32)
        coded = [(s, length) for s, length in model.code.lengths.items() if s >= 0]
        if coded:
            symbols, lengths = zip(*coded)
            table[np.asarray(symbols, dtype=np.int64)] = np.asarray(
                lengths, dtype=np.int32
            )
        table.setflags(write=False)
        return cls(table=table, symbol_bits=symbol_bits, trained=True)

    def lengths(self, symbols: np.ndarray) -> np.ndarray:
        """Code lengths of ``symbols`` (any shape), as int32 of the same shape."""
        return self.table[symbols]

    def payload_bits(self, symbols: np.ndarray) -> np.ndarray:
        """Per-block payload sizes: row sums of the code lengths."""
        return self.table[symbols].sum(axis=-1, dtype=np.int64)
