"""SLC reproduction library.

This package reproduces *SLC: Memory Access Granularity Aware Selective Lossy
Compression for GPUs* (Lal, Lucas, Juurlink — DATE 2019).  It contains:

* ``repro.compression`` — lossless block compressors (BDI, FPC, C-PACK, E2MC,
  BPC) and raw/effective compression-ratio accounting.
* ``repro.core`` — the paper's contribution: the MAG-aware selective lossy
  compression (SLC) scheme with its tree-based symbol selector (TSLC), the
  value-similarity predictor and the optimized tree (TSLC-OPT).
* ``repro.gpu`` — a trace-driven GPU performance and energy model standing in
  for GPGPU-Sim / GPUSimPow (caches, GDDR5 burst accounting, memory
  controllers with integrated compression, timing and energy models).
* ``repro.hardware`` — an analytic 32 nm hardware cost model for the SLC logic.
* ``repro.workloads`` — NumPy re-implementations of the nine benchmarks used in
  the paper's evaluation, including data generation and per-kernel error
  metrics.
* ``repro.metrics`` — error and performance metrics (MRE, NRMSE, image diff,
  miss rate, speedup, bandwidth, energy, EDP).
* ``repro.approx`` — the safe-to-approximate memory-region model (the paper's
  extended ``cudaMalloc``).
* ``repro.campaign`` — the sweep engine: declarative campaign specs expand a
  (workload × scheme × MAG × threshold × seed) grid into content-hashed
  jobs, a process-pool executor fans them out with per-job failure capture,
  and a JSONL result store keyed by job hash makes re-runs free.  Driven
  from Python or via the ``repro`` CLI (``python -m repro campaign run``).
* ``repro.studies`` — the declarative Study framework: every evaluation
  artefact (paper figure/table, ablation, response surface, seed-variance
  bands, GPU-scaling curves) is a registered ``Study`` whose grid rides the
  campaign engine; ``python -m repro study run|list|export`` drives them.
* ``repro.experiments`` — compatibility wrappers, one module per paper
  table/figure, over the corresponding studies.  Every figure is a campaign
  under the hood: Figs. 7/8 are the (9 workloads × {E2MC,
  TSLC-SIMP/PRED/OPT}) grid at threshold 16 B, Fig. 9 one sub-grid per
  MAG ∈ {16, 32, 64} B with threshold MAG/2, and
  :func:`repro.experiments.run_slc_study` accepts ``workers=`` and
  ``store_dir=`` to parallelize and cache any of them.
"""

from repro._version import __version__
from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.compression import (
    BDICompressor,
    BPCCompressor,
    CPackCompressor,
    E2MCCompressor,
    FPCCompressor,
    available_compressors,
    get_compressor,
)
from repro.core import (
    SLCCompressor,
    SLCConfig,
    SLCMode,
    SLCVariant,
)
from repro.gpu import GPUConfig, GPUSimulator, SimulationResult
from repro.workloads import available_workloads, get_workload

__all__ = [
    "__version__",
    "CampaignSpec",
    "ResultStore",
    "run_campaign",
    "BDICompressor",
    "FPCCompressor",
    "CPackCompressor",
    "E2MCCompressor",
    "BPCCompressor",
    "available_compressors",
    "get_compressor",
    "SLCCompressor",
    "SLCConfig",
    "SLCMode",
    "SLCVariant",
    "GPUConfig",
    "GPUSimulator",
    "SimulationResult",
    "available_workloads",
    "get_workload",
]
