"""``python -m repro`` — dispatch to the campaign/study CLI."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
