"""Bit-Plane Compression (BPC).

Kim et al., "Bit-plane Compression: Transforming Data for Better Compression
in Many-core Architectures", ISCA 2016.  The block is viewed as a sequence of
32-bit words; consecutive words are delta-transformed, the deltas are
transposed into bit planes (DBP), adjacent bit planes are XORed (DBX) and the
result is encoded with run-length and frequent-pattern codes.

The paper under reproduction discusses BPC only qualitatively (Section II-A,
arguing that it too suffers from MAG); it is included here so that the
qualitative claim can be checked quantitatively as an extension experiment.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    BlockCompressor,
    CompressedBlock,
    DecompressionError,
    store_uncompressed,
)
from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.blocks import bytes_to_words, words_to_bytes

_WORD_BITS = 32


def _delta_transform(words: list[int]) -> tuple[int, list[int]]:
    """Return (first word, signed deltas between consecutive words)."""
    base = words[0]
    deltas = []
    previous = base
    for word in words[1:]:
        delta = word - previous
        deltas.append(delta)
        previous = word
    return base, deltas


def _inverse_delta(base: int, deltas: list[int]) -> list[int]:
    words = [base]
    for delta in deltas:
        words.append((words[-1] + delta) & 0xFFFFFFFF)
    return words


def _to_bit_planes(deltas: list[int], plane_bits: int) -> list[int]:
    """Transpose deltas (as two's-complement of ``plane_bits`` bits) into planes."""
    mask = (1 << plane_bits) - 1
    planes = []
    for bit in range(plane_bits):
        plane = 0
        for position, delta in enumerate(deltas):
            value = delta & mask
            plane |= ((value >> bit) & 1) << position
        planes.append(plane)
    return planes


def _from_bit_planes(planes: list[int], count: int, plane_bits: int) -> list[int]:
    deltas = []
    for position in range(count):
        value = 0
        for bit in range(plane_bits):
            value |= ((planes[bit] >> position) & 1) << bit
        # interpret as signed two's complement
        if value >= 1 << (plane_bits - 1):
            value -= 1 << plane_bits
        deltas.append(value)
    return deltas


class BPCCompressor(BlockCompressor):
    """Bit-plane compression over 32-bit words with DBP/DBX transforms."""

    name = "bpc"
    batched_analysis = True

    #: deltas of consecutive 32-bit words need up to 33 bits
    _DELTA_BITS = 33

    def compressed_size_bits_batch(self, blocks: list[bytes]) -> np.ndarray:
        """Vectorized size analysis (bit-exact against :meth:`compress`).

        The kernel packs each bit plane into an int64, which caps it at
        64-word (256-byte) blocks; larger blocks use the scalar fallback.
        """
        if self.block_size_bytes % 4 or self.block_size_bytes > 256:
            return super().compressed_size_bits_batch(blocks)
        from repro.kernels.lossless import bpc_size_bits

        return bpc_size_bits(blocks, self.block_size_bytes)

    def compress(self, block: bytes) -> CompressedBlock:
        self._check_block(block)
        words = bytes_to_words(block)
        base, deltas = _delta_transform(words)
        planes = _to_bit_planes(deltas, self._DELTA_BITS)
        # DBX: XOR adjacent planes (plane i ^ plane i+1); the last plane is kept.
        dbx = [planes[i] ^ planes[i + 1] for i in range(len(planes) - 1)]
        dbx.append(planes[-1])

        writer = BitWriter()
        writer.write(base, _WORD_BITS)
        plane_width = len(deltas)
        run_zero = 0
        for plane in dbx:
            if plane == 0:
                run_zero += 1
                continue
            if run_zero:
                self._emit_zero_run(writer, run_zero)
                run_zero = 0
            self._emit_plane(writer, plane, plane_width)
        if run_zero:
            self._emit_zero_run(writer, run_zero)

        size_bits = writer.bit_length
        if size_bits >= self.block_size_bits:
            return store_uncompressed(self, block)
        return CompressedBlock(
            algorithm=self.name,
            original_size_bits=self.block_size_bits,
            compressed_size_bits=size_bits,
            payload=(writer.getvalue(), size_bits, plane_width),
        )

    def decompress(self, compressed: CompressedBlock) -> bytes:
        if isinstance(compressed.payload, (bytes, bytearray)):
            return bytes(compressed.payload)
        data, size_bits, plane_width = compressed.payload
        reader = BitReader(data, bit_length=size_bits)
        base = reader.read(_WORD_BITS)
        dbx: list[int] = []
        while len(dbx) < self._DELTA_BITS:
            dbx.extend(self._read_plane(reader, plane_width))
        if len(dbx) != self._DELTA_BITS:
            raise DecompressionError(
                f"BPC decoded {len(dbx)} planes, expected {self._DELTA_BITS}"
            )
        planes = [0] * self._DELTA_BITS
        planes[-1] = dbx[-1]
        for index in range(self._DELTA_BITS - 2, -1, -1):
            planes[index] = dbx[index] ^ planes[index + 1]
        deltas = _from_bit_planes(planes, plane_width, self._DELTA_BITS)
        words = _inverse_delta(base, deltas)
        return words_to_bytes(words)

    # ------------------------------------------------------------------ #
    # plane encodings: 2-bit prefix {zero-run, all-ones, single-one, raw}

    _ZERO_RUN = 0b00
    _ALL_ONES = 0b01
    _SINGLE_ONE = 0b10
    _RAW = 0b11

    def _emit_zero_run(self, writer: BitWriter, run: int) -> None:
        while run > 0:
            chunk = min(run, 32)
            writer.write(self._ZERO_RUN, 2)
            writer.write(chunk - 1, 5)
            run -= chunk

    def _emit_plane(self, writer: BitWriter, plane: int, width: int) -> None:
        all_ones = (1 << width) - 1
        if plane == all_ones:
            writer.write(self._ALL_ONES, 2)
            return
        if plane & (plane - 1) == 0:
            writer.write(self._SINGLE_ONE, 2)
            writer.write(plane.bit_length() - 1, 6)
            return
        writer.write(self._RAW, 2)
        writer.write(plane, width)

    def _read_plane(self, reader: BitReader, width: int) -> list[int]:
        prefix = reader.read(2)
        if prefix == self._ZERO_RUN:
            run = reader.read(5) + 1
            return [0] * run
        if prefix == self._ALL_ONES:
            return [(1 << width) - 1]
        if prefix == self._SINGLE_ONE:
            position = reader.read(6)
            return [1 << position]
        if prefix == self._RAW:
            return [reader.read(width)]
        raise DecompressionError(f"unknown BPC plane prefix {prefix:#04b}")
