"""E2MC: entropy-encoding based memory compression for GPUs.

Lal et al., "E2MC: Entropy Encoding Based Memory Compression for GPUs",
IPDPS 2017 — the lossless baseline on which SLC is built.  E2MC Huffman-codes
fixed-width symbols (16-bit symbols give the best results in the paper) using
a probability table built by online sampling.  Symbols outside the table are
emitted with an escape code followed by the raw symbol bits.

Two properties of E2MC matter for SLC and are modelled faithfully here:

* the compressed size of a block equals the sum of its per-symbol code
  lengths (plus a small header with parallel decoding pointers), so it can be
  computed quickly by an adder tree without producing the compressed bits;
* symbols are independent codewords, so dropping a contiguous run of symbols
  shrinks the block by exactly the sum of their code lengths.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.compression.base import (
    BlockCompressor,
    CompressedBlock,
    CompressionError,
    DecompressionError,
    store_uncompressed,
)
from repro.compression.huffman import HuffmanCode, build_huffman_code
from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.blocks import block_to_symbols, symbols_to_block

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernels -> e2mc)
    from repro.kernels.codec import HuffmanCodecLUT
    from repro.kernels.lut import CodeLengthLUT
    from repro.kernels.symbols import BatchSymbolView

#: Pseudo-symbol used as the escape marker inside the Huffman table.  Real
#: symbols are non-negative, so a negative key can never collide.
ESCAPE_SYMBOL = -1


@dataclass
class SymbolModel:
    """Huffman probability model over fixed-width symbols.

    The model mirrors the E2MC hardware: a bounded-size frequency table of the
    most common symbols (filled by sampling), a length-limited canonical
    Huffman code over those symbols plus an escape symbol, and an escape path
    that emits the raw symbol bits after the escape codeword.
    """

    symbol_bytes: int = 2
    max_table_entries: int = 1024
    max_code_length: int = 24
    code: HuffmanCode = field(default_factory=HuffmanCode)
    trained: bool = False

    @property
    def symbol_bits(self) -> int:
        """Width of a raw symbol in bits."""
        return self.symbol_bytes * 8

    def fit(self, blocks: list[bytes]) -> None:
        """Build the probability table from sample blocks (online sampling).

        Narrow symbols (1 or 2 bytes) are counted in one :func:`numpy.bincount`
        over the concatenated sample bytes; wider symbols fall back to the
        per-block Python loop.
        """
        if (
            self.symbol_bytes in (1, 2)
            and blocks
            and all(len(block) % self.symbol_bytes == 0 for block in blocks)
        ):
            from repro.kernels.symbols import SYMBOL_DTYPES

            flat = np.frombuffer(
                b"".join(blocks), dtype=SYMBOL_DTYPES[self.symbol_bytes]
            )
            bincount = np.bincount(flat, minlength=1 << self.symbol_bits)
            nonzero = np.nonzero(bincount)[0]
            counts: Mapping[int, int] = dict(
                zip(nonzero.tolist(), bincount[nonzero].tolist())
            )
        else:
            counter: Counter[int] = Counter()
            for block in blocks:
                counter.update(block_to_symbols(block, self.symbol_bytes))
            counts = counter
        self.fit_counts(counts)

    def fit_counts(self, counts: Mapping[int, int]) -> None:
        """Build the probability table from pre-computed symbol counts.

        Table admission is deterministic — symbols are ranked by descending
        count with the symbol value breaking ties — so the same counts always
        yield the same code regardless of how (or in which order) they were
        accumulated.
        """
        if not counts:
            raise CompressionError("cannot train a symbol model on no data")
        ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        table = dict(ordered[: self.max_table_entries])
        escaped = sum(counts.values()) - sum(table.values())
        # The escape symbol always gets a codeword so unseen symbols at
        # compression time remain encodable.
        table[ESCAPE_SYMBOL] = max(1, escaped)
        self.code = build_huffman_code(table, max_length=self.max_code_length)
        self.trained = True

    def _per_code_cache(self, attr: str, builder):
        """A derived table rebuilt lazily whenever the model is retrained.

        All derived tables (dense length LUT, dense codec tables, the scalar
        decoding dict) share one invalidation rule — rebuild when the code
        object is replaced or the trained flag flips — so it lives in one
        place instead of three hand-rolled copies.
        """
        key = getattr(self, f"_{attr}_key", None)
        if key is None or key[0] is not self.code or key[1] != self.trained:
            setattr(self, f"_{attr}", builder())
            setattr(self, f"_{attr}_key", (self.code, self.trained))
        return getattr(self, f"_{attr}")

    def code_length_table(self) -> "CodeLengthLUT":
        """The code as a dense per-symbol length table (cached per code).

        The table is the batch-kernel counterpart of :meth:`code_length`:
        entry ``s`` holds the coded length of symbol ``s``, with untabled
        symbols mapped to escape-plus-raw bits.  Rebuilt lazily whenever the
        model is retrained.
        """
        from repro.kernels.lut import CodeLengthLUT

        return self._per_code_cache("lut", lambda: CodeLengthLUT.from_model(self))

    def codec_table(self) -> "HuffmanCodecLUT":
        """The code as dense codeword/decode tables (cached per code).

        The batch-codec counterpart of :meth:`encode_symbol` /
        :meth:`decode_symbol`: per-symbol codewords (escape-extended for
        untabled symbols) plus the canonical left-justified decode arrays.
        Rebuilt lazily whenever the model is retrained.
        """
        from repro.kernels.codec import HuffmanCodecLUT

        return self._per_code_cache("codec", lambda: HuffmanCodecLUT.from_model(self))

    def code_length(self, symbol: int) -> int:
        """Coded length of ``symbol`` in bits (escape + raw bits if untabled)."""
        if not self.trained:
            return self.symbol_bits
        if symbol in self.code.lengths:
            return self.code.lengths[symbol]
        return self.code.lengths[ESCAPE_SYMBOL] + self.symbol_bits

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        """Append the codeword (or escape + raw bits) for ``symbol``."""
        if not self.trained:
            raise CompressionError("symbol model must be trained before encoding")
        if symbol in self.code.codewords:
            codeword, length = self.code.encode(symbol)
            writer.write(codeword, length)
            return
        codeword, length = self.code.encode(ESCAPE_SYMBOL)
        writer.write(codeword, length)
        writer.write(symbol, self.symbol_bits)

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one symbol from the bitstream."""
        if not self.trained:
            raise DecompressionError("symbol model must be trained before decoding")
        table = self._decoding_table()
        code = 0
        for length in range(1, self.code.max_length() + 1):
            code = (code << 1) | reader.read_bit()
            symbol = table.get((code, length))
            if symbol is None:
                continue
            if symbol == ESCAPE_SYMBOL:
                return reader.read(self.symbol_bits)
            return symbol
        raise DecompressionError("no codeword matched the input bitstream")

    def _decoding_table(self) -> dict[tuple[int, int], int]:
        return self._per_code_cache("decoding", self.code.decoding_table)


class E2MCCompressor(BlockCompressor):
    """Entropy-encoding (Huffman) memory compressor, the SLC baseline.

    Args:
        block_size_bytes: memory block size (128 B in the paper).
        symbol_bytes: symbol width (2 bytes / 16-bit symbols, the best
            configuration reported by the E2MC paper and used for SLC).
        num_pdw: number of parallel decoding ways; the header carries
            ``num_pdw - 1`` decoding pointers for compressed blocks.
        max_table_entries: probability-table capacity.
        max_code_length: codeword length cap of the hardware decoder.
        include_header: whether to charge the parallel-decoding-pointer header
            to each compressed block (uncompressed blocks carry no header,
            matching the paper).
    """

    name = "e2mc"

    def __init__(
        self,
        block_size_bytes: int = 128,
        symbol_bytes: int = 2,
        num_pdw: int = 4,
        max_table_entries: int = 1024,
        max_code_length: int = 24,
        include_header: bool = True,
    ) -> None:
        super().__init__(block_size_bytes)
        if block_size_bytes % symbol_bytes:
            raise ValueError(
                f"block size {block_size_bytes} is not a multiple of symbol size {symbol_bytes}"
            )
        self.symbol_bytes = symbol_bytes
        self.num_pdw = num_pdw
        self.include_header = include_header
        self.model = SymbolModel(
            symbol_bytes=symbol_bytes,
            max_table_entries=max_table_entries,
            max_code_length=max_code_length,
        )

    # ------------------------------------------------------------------ #
    # model management

    def train(self, blocks: list[bytes]) -> None:
        """Build the symbol probability table from sample blocks."""
        self.model.fit(blocks)

    @property
    def trained(self) -> bool:
        """Whether the probability table has been built."""
        return self.model.trained

    @property
    def symbols_per_block(self) -> int:
        """Number of symbols in one block (64 for 128 B blocks / 16-bit symbols)."""
        return self.block_size_bytes // self.symbol_bytes

    @property
    def header_bits(self) -> int:
        """Per-block header: parallel decoding pointers for compressed blocks.

        Each pointer holds a bit offset within the compressed block; the paper
        stores ``num_pdw - 1`` pointers of N bits where ``2**N`` is the block
        size in bytes.
        """
        if not self.include_header:
            return 0
        pointer_bits = max(1, (self.block_size_bytes - 1).bit_length())
        return (self.num_pdw - 1) * pointer_bits

    # ------------------------------------------------------------------ #
    # SLC support

    def symbol_code_lengths(self, block: bytes) -> list[int]:
        """Per-symbol code lengths of ``block`` (input to SLC's adder tree)."""
        self._check_block(block)
        symbols = block_to_symbols(block, self.symbol_bytes)
        return [self.model.code_length(symbol) for symbol in symbols]

    def payload_size_bits(self, block: bytes) -> int:
        """Sum of the per-symbol code lengths, without the header."""
        return sum(self.symbol_code_lengths(block))

    def symbol_code_lengths_batch(
        self, blocks: "BatchSymbolView | list[bytes]"
    ) -> np.ndarray:
        """Per-symbol code lengths of many blocks as an ``(n, symbols)`` matrix.

        One LUT gather replaces the per-symbol dict lookups of
        :meth:`symbol_code_lengths`; only defined for symbol widths the dense
        LUT supports (up to 2 bytes).
        """
        from repro.kernels.symbols import as_symbol_view

        view = as_symbol_view(blocks, self.block_size_bytes, self.symbol_bytes)
        return self.model.code_length_table().lengths(view.symbols)

    def compressed_size_bits_batch(
        self, blocks: "BatchSymbolView | list[bytes]"
    ) -> np.ndarray:
        """Total stored bits per block, exactly as :meth:`compress` reports.

        Payload row sums plus the parallel-decoding header, clamped at the
        raw block size (blocks that would not shrink are stored raw); an
        untrained model stores everything raw.
        """
        from repro.kernels.symbols import as_symbol_view

        view = as_symbol_view(blocks, self.block_size_bytes, self.symbol_bytes)
        if not self.model.trained:
            return np.full(view.n_blocks, self.block_size_bits, dtype=np.int64)
        sizes = self.model.code_length_table().payload_bits(view.symbols)
        sizes += self.header_bits
        return np.minimum(sizes, self.block_size_bits)

    # ------------------------------------------------------------------ #
    # BlockCompressor interface

    def compress(self, block: bytes) -> CompressedBlock:
        self._check_block(block)
        if not self.model.trained:
            return store_uncompressed(self, block)
        symbols = block_to_symbols(block, self.symbol_bytes)
        writer = BitWriter()
        for symbol in symbols:
            self.model.encode_symbol(writer, symbol)
        payload_bits = writer.bit_length
        total_bits = payload_bits + self.header_bits
        if total_bits >= self.block_size_bits:
            return store_uncompressed(self, block)
        return CompressedBlock(
            algorithm=self.name,
            original_size_bits=self.block_size_bits,
            compressed_size_bits=total_bits,
            payload=(writer.getvalue(), payload_bits),
            metadata={"header_bits": self.header_bits, "payload_bits": payload_bits},
        )

    def decompress(self, compressed: CompressedBlock) -> bytes:
        if isinstance(compressed.payload, (bytes, bytearray)):
            return bytes(compressed.payload)
        data, payload_bits = compressed.payload
        reader = BitReader(data, bit_length=payload_bits)
        symbols = [
            self.model.decode_symbol(reader) for _ in range(self.symbols_per_block)
        ]
        return symbols_to_block(symbols, self.symbol_bytes)

    # ------------------------------------------------------------------ #
    # batched payload codec

    def _codec_supported(self) -> bool:
        """Whether the dense codec tables cover this geometry."""
        from repro.kernels.codec import MAX_CODEC_SYMBOL_BYTES

        return self.symbol_bytes <= MAX_CODEC_SYMBOL_BYTES

    def compress_batch(
        self, blocks: "BatchSymbolView | list[bytes]"
    ) -> list[CompressedBlock]:
        """Compress many blocks at once through the batched payload codec.

        Identical results to per-block :meth:`compress` (which remains the
        n = 1 oracle): the same payload bytes, bit counts and metadata, with
        incompressible blocks stored raw.  Falls back to the scalar loop for
        symbol widths the dense codec tables cannot cover.
        """
        from repro.kernels.symbols import BatchSymbolView, as_symbol_view

        if not self._codec_supported():
            if isinstance(blocks, BatchSymbolView):
                blocks = list(blocks)
            return [self.compress(block) for block in blocks]
        view = as_symbol_view(blocks, self.block_size_bytes, self.symbol_bytes)
        if not self.model.trained:
            return [
                store_uncompressed(self, view.block_bytes(i))
                for i in range(view.n_blocks)
            ]
        results: list[CompressedBlock | None] = [None] * view.n_blocks
        payload_bits = self.model.code_length_table().payload_bits(view.symbols)
        compressible = payload_bits + self.header_bits < self.block_size_bits
        encode_rows = np.nonzero(compressible)[0]
        if encode_rows.size:
            codec = self.model.codec_table()
            packed, row_bits = codec.encode_rows(
                view.symbols[encode_rows].reshape(-1),
                np.full(encode_rows.size, self.symbols_per_block, dtype=np.int64),
            )
            for row, (data, bits) in zip(
                encode_rows.tolist(), codec.payloads_from_rows(packed, row_bits)
            ):
                results[row] = CompressedBlock(
                    algorithm=self.name,
                    original_size_bits=self.block_size_bits,
                    compressed_size_bits=bits + self.header_bits,
                    payload=(data, bits),
                    metadata={"header_bits": self.header_bits, "payload_bits": bits},
                )
        for row in np.nonzero(~compressible)[0].tolist():
            results[row] = store_uncompressed(self, view.block_bytes(row))
        return results

    def decompress_batch(self, compressed: list[CompressedBlock]) -> list[bytes]:
        """Decompress many blocks at once through the batched payload codec.

        Identical results to per-block :meth:`decompress`; raw (uncompressed)
        payloads pass through, Huffman payloads decode in lockstep.
        """
        if not self._codec_supported():
            return [self.decompress(block) for block in compressed]
        from repro.kernels.symbols import SYMBOL_DTYPES

        results: list[bytes | None] = [None] * len(compressed)
        coded_rows: list[int] = []
        payloads: list[bytes] = []
        bit_lengths: list[int] = []
        for row, block in enumerate(compressed):
            if isinstance(block.payload, (bytes, bytearray)):
                results[row] = bytes(block.payload)
            else:
                data, payload_bits = block.payload
                coded_rows.append(row)
                payloads.append(data)
                bit_lengths.append(payload_bits)
        if coded_rows:
            symbols = self.model.codec_table().decode_rows(
                payloads,
                np.asarray(bit_lengths, dtype=np.int64),
                np.full(len(coded_rows), self.symbols_per_block, dtype=np.int64),
            )
            raw = symbols.astype(SYMBOL_DTYPES[self.symbol_bytes])
            for index, row in enumerate(coded_rows):
                results[row] = raw[index].tobytes()
        return results
