"""Name-based registry of the lossless compressors.

The experiment harness, the memory-controller backends and the examples look
compressors up by the short names used in the paper's figures ("bdi", "fpc",
"cpack", "e2mc", "bpc").  Each entry also carries the scheme's default
compress/decompress latencies in memory-controller cycles, so backends read
per-scheme numbers instead of hard-coding E2MC's everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compression.base import BlockCompressor
from repro.compression.bdi import BDICompressor
from repro.compression.bpc import BPCCompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.e2mc import E2MCCompressor
from repro.compression.fpc import FPCCompressor


@dataclass(frozen=True)
class SchemeInfo:
    """One registry entry: constructor plus per-scheme latency defaults."""

    factory: Callable[..., BlockCompressor]
    #: compression latency in memory-controller cycles (one 128 B block)
    compress_cycles: int
    #: decompression latency in memory-controller cycles
    decompress_cycles: int


_REGISTRY: dict[str, SchemeInfo] = {}


def register_compressor(
    name: str,
    factory: Callable[..., BlockCompressor],
    *,
    compress_cycles: int,
    decompress_cycles: int,
) -> None:
    """Register a compressor under a (case-insensitive) short name.

    Raises:
        ValueError: if the name is already taken — silently overwriting an
            existing scheme would let two campaigns address different
            compressors by the same name, corrupting cached results.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(
            f"compressor {name!r} is already registered "
            f"(available: {', '.join(available_compressors())}); "
            "pick a distinct name instead of overwriting"
        )
    _REGISTRY[key] = SchemeInfo(
        factory=factory,
        compress_cycles=int(compress_cycles),
        decompress_cycles=int(decompress_cycles),
    )


def available_compressors() -> list[str]:
    """Names of all registered lossless compressors."""
    return sorted(_REGISTRY)


def _scheme_info(name: str) -> SchemeInfo:
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown compressor {name!r}; available: {', '.join(available_compressors())}"
        )
    return _REGISTRY[key]


def get_compressor(name: str, **kwargs) -> BlockCompressor:
    """Instantiate a compressor by its short name.

    Args:
        name: one of :func:`available_compressors` (case-insensitive).
        **kwargs: forwarded to the compressor constructor
            (e.g. ``block_size_bytes``).
    """
    return _scheme_info(name).factory(**kwargs)


def scheme_latency(name: str) -> tuple[int, int]:
    """Default (compress, decompress) controller-cycle latencies of a scheme."""
    info = _scheme_info(name)
    return info.compress_cycles, info.decompress_cycles


# Latency defaults, in memory-controller cycles per 128 B block.  E2MC's are
# the numbers the paper simulates with (Section IV); the others are pipeline
# estimates from the original proposals scaled to a 128 B block: BDI
# compresses/decompresses through parallel subtractor arrays in 1-2 cycles
# (Pekhimenko et al., PACT 2012), FPC reports a 5-cycle decompression
# pipeline (Alameldeen & Wood), C-Pack processes two words per cycle — 32
# words make 16 cycles each way (Chen et al., TVLSI 2010) — and BPC takes
# roughly a dozen cycles through the DBP/DBX transform (Kim et al.,
# ISCA 2016).
register_compressor("bdi", BDICompressor, compress_cycles=2, decompress_cycles=1)
register_compressor("fpc", FPCCompressor, compress_cycles=8, decompress_cycles=5)
register_compressor("cpack", CPackCompressor, compress_cycles=16, decompress_cycles=16)
register_compressor("e2mc", E2MCCompressor, compress_cycles=46, decompress_cycles=20)
register_compressor("bpc", BPCCompressor, compress_cycles=12, decompress_cycles=10)

#: The four techniques compared quantitatively in Fig. 1 of the paper.
FIG1_COMPRESSORS = ("bdi", "fpc", "cpack", "e2mc")
