"""Name-based registry of the lossless compressors.

The experiment harness and the examples look compressors up by the short
names used in the paper's figures ("bdi", "fpc", "cpack", "e2mc", "bpc").
"""

from __future__ import annotations

from typing import Callable

from repro.compression.base import BlockCompressor
from repro.compression.bdi import BDICompressor
from repro.compression.bpc import BPCCompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.e2mc import E2MCCompressor
from repro.compression.fpc import FPCCompressor

_REGISTRY: dict[str, Callable[..., BlockCompressor]] = {
    "bdi": BDICompressor,
    "fpc": FPCCompressor,
    "cpack": CPackCompressor,
    "e2mc": E2MCCompressor,
    "bpc": BPCCompressor,
}

#: The four techniques compared quantitatively in Fig. 1 of the paper.
FIG1_COMPRESSORS = ("bdi", "fpc", "cpack", "e2mc")


def available_compressors() -> list[str]:
    """Names of all registered lossless compressors."""
    return sorted(_REGISTRY)


def get_compressor(name: str, **kwargs) -> BlockCompressor:
    """Instantiate a compressor by its short name.

    Args:
        name: one of :func:`available_compressors` (case-insensitive).
        **kwargs: forwarded to the compressor constructor
            (e.g. ``block_size_bytes``).
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown compressor {name!r}; available: {', '.join(available_compressors())}"
        )
    return _REGISTRY[key](**kwargs)
