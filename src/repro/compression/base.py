"""Common interfaces and result types for block compressors."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np


class CompressionError(RuntimeError):
    """Raised when a block cannot be compressed (malformed input)."""


class DecompressionError(RuntimeError):
    """Raised when a compressed payload cannot be decoded back to a block."""


@dataclass(frozen=True)
class CompressedBlock:
    """Result of compressing one memory block.

    Attributes:
        algorithm: name of the compressor that produced this result.
        original_size_bits: size of the uncompressed block in bits.
        compressed_size_bits: size of the compressed representation in bits,
            including any per-block header the scheme requires.  If the
            compressed representation would be larger than the original, the
            compressor stores the block uncompressed and this equals
            ``original_size_bits``.
        payload: algorithm-specific encoded representation sufficient to
            reconstruct the block via ``decompress``.
        lossless: ``True`` for the compressors in this package; the SLC lossy
            path (in :mod:`repro.core`) sets this to ``False``.
        metadata: optional algorithm-specific extras (e.g. per-symbol code
            lengths for E2MC, which SLC's adder tree consumes).
    """

    algorithm: str
    original_size_bits: int
    compressed_size_bits: int
    payload: Any
    lossless: bool = True
    metadata: dict = field(default_factory=dict)

    @property
    def original_size_bytes(self) -> int:
        """Uncompressed block size in whole bytes."""
        return self.original_size_bits // 8

    @property
    def compressed_size_bytes(self) -> int:
        """Compressed size in bytes, rounded up to the next whole byte."""
        return (self.compressed_size_bits + 7) // 8

    @property
    def compression_ratio(self) -> float:
        """Raw (MAG-unaware) compression ratio of this block."""
        if self.compressed_size_bits == 0:
            return float(self.original_size_bits)
        return self.original_size_bits / self.compressed_size_bits

    @property
    def is_compressed(self) -> bool:
        """Whether the block is stored in compressed form at all."""
        return self.compressed_size_bits < self.original_size_bits


class BlockCompressor(ABC):
    """Abstract base class for fixed-size block compressors.

    All compressors operate on ``block_size_bytes`` blocks (128 B by default,
    the cache-line size of current GPUs assumed throughout the paper).
    """

    name: str = "abstract"

    #: True when :meth:`compressed_size_bits_batch` is a vectorized kernel
    #: rather than the scalar fallback loop (the loop stays available on the
    #: base class and is the n = 1 oracle every kernel is tested against)
    batched_analysis: bool = False

    def __init__(self, block_size_bytes: int = 128) -> None:
        if block_size_bytes <= 0:
            raise ValueError(f"block size must be positive, got {block_size_bytes}")
        self.block_size_bytes = block_size_bytes

    @property
    def block_size_bits(self) -> int:
        """Block size in bits."""
        return self.block_size_bytes * 8

    def _check_block(self, block: bytes) -> None:
        if len(block) != self.block_size_bytes:
            raise CompressionError(
                f"{self.name}: expected a {self.block_size_bytes}-byte block, "
                f"got {len(block)} bytes"
            )

    @abstractmethod
    def compress(self, block: bytes) -> CompressedBlock:
        """Compress one block and return the result descriptor."""

    @abstractmethod
    def decompress(self, compressed: CompressedBlock) -> bytes:
        """Reconstruct the original block from a ``CompressedBlock``."""

    def compressed_size_bits(self, block: bytes) -> int:
        """Convenience: compressed size of ``block`` in bits."""
        return self.compress(block).compressed_size_bits

    def compressed_size_bytes(self, block: bytes) -> int:
        """Convenience: compressed size of ``block`` in bytes (rounded up)."""
        return self.compress(block).compressed_size_bytes

    def roundtrip(self, block: bytes) -> bytes:
        """Compress then decompress a block (used heavily in tests)."""
        return self.decompress(self.compress(block))

    # ------------------------------------------------------------------ #
    # batched protocol (the vectorized store path of LosslessBackend)

    def compressed_size_bits_batch(self, blocks: list[bytes]) -> np.ndarray:
        """Compressed sizes of many blocks at once, as an int64 array of bits.

        The default loops :meth:`compress` per block, so *every* compressor
        supports the batched store path.  Compressors with vectorized
        size-analysis kernels (BDI/FPC/C-Pack/BPC via
        :mod:`repro.kernels.lossless`, E2MC via its LUT kernels) override
        this and set :attr:`batched_analysis`; overrides must stay bit-exact
        against this scalar loop.
        """
        return np.asarray(
            [self.compress(block).compressed_size_bits for block in blocks],
            dtype=np.int64,
        )

    def analyze_batch(self, blocks: list[bytes]) -> np.ndarray:
        """Batched size analysis — the entry point backends dispatch through.

        Alias of :meth:`compressed_size_bits_batch` (compressors override
        only that method); separated so the backend-facing protocol name is
        stable even if size analysis ever grows beyond plain sizes.
        """
        return self.compressed_size_bits_batch(blocks)

    def compress_batch(self, blocks: list[bytes]) -> list[CompressedBlock]:
        """Batched :meth:`compress`; the default loops (E2MC vectorizes)."""
        return [self.compress(block) for block in blocks]

    def decompress_batch(self, compressed: list[CompressedBlock]) -> list[bytes]:
        """Batched :meth:`decompress`; the default loops (E2MC vectorizes)."""
        return [self.decompress(block) for block in compressed]

    def train(self, blocks: list[bytes]) -> None:  # noqa: B027 - optional hook
        """Optional hook: adapt the compressor's model to sample data.

        Stateless compressors (BDI, FPC, C-PACK, BPC) ignore this; E2MC uses
        it to build its symbol-frequency table (the paper's online sampling
        of 20 M instructions).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(block_size_bytes={self.block_size_bytes})"


def as_block_bytes(block: bytes) -> bytes:
    """``block`` as :class:`bytes` without copying when it already is one.

    Store paths build millions of block descriptors whose data is the input
    block verbatim; ``bytes(block)`` would copy every one of them.
    """
    return block if isinstance(block, bytes) else bytes(block)


def store_uncompressed(compressor: BlockCompressor, block: bytes) -> CompressedBlock:
    """Build the fallback descriptor for a block stored uncompressed."""
    return CompressedBlock(
        algorithm=compressor.name,
        original_size_bits=compressor.block_size_bits,
        compressed_size_bits=compressor.block_size_bits,
        payload=as_block_bytes(block),
        metadata={"uncompressed": True},
    )
