"""Raw vs. effective compression-ratio accounting around MAG.

The central observation of the paper (Section I and II-B) is that memory can
only be fetched in multiples of the memory access granularity (MAG, 32 B for
GDDR5), so the *effective* compressed size of a block is its compressed size
rounded up to the next MAG multiple.  These helpers implement that accounting
and the per-benchmark aggregation used in Fig. 1 and Fig. 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

DEFAULT_MAG_BYTES = 32
DEFAULT_BLOCK_BYTES = 128


def bursts_for_size(compressed_bytes: float, mag_bytes: int = DEFAULT_MAG_BYTES) -> int:
    """Number of MAG-sized bursts needed to fetch ``compressed_bytes``.

    A block always costs at least one burst: even a fully compressed block
    cannot be fetched with fewer than MAG bytes.
    """
    if mag_bytes <= 0:
        raise ValueError(f"MAG must be positive, got {mag_bytes}")
    if compressed_bytes < 0:
        raise ValueError(f"compressed size must be non-negative, got {compressed_bytes}")
    return max(1, math.ceil(compressed_bytes / mag_bytes))


def effective_compressed_bytes(
    compressed_bytes: float, mag_bytes: int = DEFAULT_MAG_BYTES
) -> int:
    """Compressed size scaled up to the nearest MAG multiple (≥ one MAG)."""
    return bursts_for_size(compressed_bytes, mag_bytes) * mag_bytes


def extra_bytes_above_mag(
    compressed_bytes: float, mag_bytes: int = DEFAULT_MAG_BYTES
) -> int:
    """Bytes above the largest MAG multiple ≤ the compressed size.

    This is the x-axis of the Fig. 2 heat map.  Blocks at or below one MAG are
    binned at 0 (they can never be fetched with less than one burst), and a
    block that is an exact MAG multiple also reports 0.
    """
    if mag_bytes <= 0:
        raise ValueError(f"MAG must be positive, got {mag_bytes}")
    size = math.ceil(compressed_bytes)
    if size <= mag_bytes:
        return 0
    return int(size % mag_bytes)


def raw_compression_ratio(original_bytes: float, compressed_bytes: float) -> float:
    """MAG-unaware compression ratio."""
    if compressed_bytes <= 0:
        raise ValueError(f"compressed size must be positive, got {compressed_bytes}")
    return original_bytes / compressed_bytes


def effective_compression_ratio(
    original_bytes: float,
    compressed_bytes: float,
    mag_bytes: int = DEFAULT_MAG_BYTES,
) -> float:
    """Compression ratio after rounding the compressed size up to MAG."""
    return original_bytes / effective_compressed_bytes(compressed_bytes, mag_bytes)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, used throughout the paper to aggregate benchmarks."""
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
    log_sum = sum(math.log(value) for value in values)
    return math.exp(log_sum / len(values))


@dataclass
class CompressionStats:
    """Accumulates per-block compression results for one benchmark.

    Feeding every block of a workload through :meth:`add_block` yields the raw
    and effective compression ratios plotted in Fig. 1 and the distribution of
    compressed sizes above MAG multiples plotted in Fig. 2.
    """

    block_size_bytes: int = DEFAULT_BLOCK_BYTES
    mag_bytes: int = DEFAULT_MAG_BYTES
    total_blocks: int = 0
    total_original_bytes: int = 0
    total_compressed_bytes: float = 0.0
    total_effective_bytes: int = 0
    total_bursts: int = 0
    uncompressed_blocks: int = 0
    extra_byte_histogram: dict[int, int] = field(default_factory=dict)

    def add_block(self, compressed_size_bits: int) -> None:
        """Record one block's lossless compressed size (in bits).

        Burst counting goes through :func:`bursts_for_size` on the (clamped)
        compressed size, so MAGs that do not divide the block size are
        charged correctly: a 128 B block under a 48 B MAG needs 3 bursts
        (144 B fetched), not ``128 // 48 == 2``.
        """
        if compressed_size_bits < 0:
            raise ValueError("compressed size cannot be negative")
        compressed_bytes = compressed_size_bits / 8.0
        compressed_bytes = min(compressed_bytes, float(self.block_size_bytes))
        self.total_blocks += 1
        self.total_original_bytes += self.block_size_bytes
        self.total_compressed_bytes += compressed_bytes
        bursts = bursts_for_size(compressed_bytes, self.mag_bytes)
        self.total_effective_bytes += bursts * self.mag_bytes
        self.total_bursts += bursts
        if compressed_bytes >= self.block_size_bytes:
            self.uncompressed_blocks += 1
            # Uncompressed blocks are binned at exactly one MAG above the
            # previous multiple in the paper's Fig. 2 (the "32B" column).
            bin_key = self.mag_bytes
        else:
            bin_key = extra_bytes_above_mag(compressed_bytes, self.mag_bytes)
        self.extra_byte_histogram[bin_key] = self.extra_byte_histogram.get(bin_key, 0) + 1

    def add_blocks(self, compressed_size_bits) -> None:
        """Record many blocks' compressed sizes (in bits) in one batch.

        Vectorized counterpart of :meth:`add_block` for the batched analysis
        kernels: ``compressed_size_bits`` is any integer array-like (e.g. the
        output of ``E2MCCompressor.compressed_size_bits_batch``).  The
        accumulated statistics are identical to looping ``add_block``.
        """
        sizes = np.atleast_1d(np.asarray(compressed_size_bits))
        if sizes.size == 0:
            return
        if np.any(sizes < 0):
            raise ValueError("compressed size cannot be negative")
        compressed = np.minimum(sizes / 8.0, float(self.block_size_bytes))
        bursts = np.maximum(
            1, np.ceil(compressed / self.mag_bytes).astype(np.int64)
        )
        self.total_blocks += int(sizes.size)
        self.total_original_bytes += self.block_size_bytes * int(sizes.size)
        self.total_compressed_bytes += float(compressed.sum())
        self.total_effective_bytes += int(bursts.sum()) * self.mag_bytes
        self.total_bursts += int(bursts.sum())
        uncompressed = compressed >= self.block_size_bytes
        self.uncompressed_blocks += int(uncompressed.sum())
        size_ceil = np.ceil(compressed).astype(np.int64)
        bins = np.where(size_ceil <= self.mag_bytes, 0, size_ceil % self.mag_bytes)
        bins = np.where(uncompressed, self.mag_bytes, bins)
        for bin_key, count in zip(*np.unique(bins, return_counts=True)):
            key = int(bin_key)
            self.extra_byte_histogram[key] = (
                self.extra_byte_histogram.get(key, 0) + int(count)
            )

    @property
    def raw_ratio(self) -> float:
        """Raw compression ratio over all recorded blocks."""
        if self.total_compressed_bytes == 0:
            return float("nan")
        return self.total_original_bytes / self.total_compressed_bytes

    @property
    def effective_ratio(self) -> float:
        """Effective (MAG-aware) compression ratio over all recorded blocks."""
        if self.total_effective_bytes == 0:
            return float("nan")
        return self.total_original_bytes / self.total_effective_bytes

    @property
    def uncompressed_fraction(self) -> float:
        """Fraction of blocks stored uncompressed."""
        if self.total_blocks == 0:
            return 0.0
        return self.uncompressed_blocks / self.total_blocks

    def extra_byte_distribution(self) -> dict[int, float]:
        """Histogram of bytes-above-MAG as a fraction of all blocks."""
        if self.total_blocks == 0:
            return {}
        return {
            key: count / self.total_blocks
            for key, count in sorted(self.extra_byte_histogram.items())
        }

    def merge(self, other: "CompressionStats") -> "CompressionStats":
        """Combine statistics from two benchmark runs (same geometry)."""
        if (other.block_size_bytes, other.mag_bytes) != (
            self.block_size_bytes,
            self.mag_bytes,
        ):
            raise ValueError("cannot merge stats with different block/MAG geometry")
        merged = CompressionStats(self.block_size_bytes, self.mag_bytes)
        merged.total_blocks = self.total_blocks + other.total_blocks
        merged.total_original_bytes = self.total_original_bytes + other.total_original_bytes
        merged.total_compressed_bytes = (
            self.total_compressed_bytes + other.total_compressed_bytes
        )
        merged.total_effective_bytes = (
            self.total_effective_bytes + other.total_effective_bytes
        )
        merged.total_bursts = self.total_bursts + other.total_bursts
        merged.uncompressed_blocks = self.uncompressed_blocks + other.uncompressed_blocks
        histogram = dict(self.extra_byte_histogram)
        for key, count in other.extra_byte_histogram.items():
            histogram[key] = histogram.get(key, 0) + count
        merged.extra_byte_histogram = histogram
        return merged
