"""Lossless block compressors and compression-ratio accounting.

The paper compares four state-of-the-art lossless memory compression
techniques (Fig. 1) and builds SLC on top of the strongest one (E2MC).  This
package implements all of them plus BPC (discussed qualitatively in
Section II-A):

* :class:`BDICompressor` — Base-Delta-Immediate (Pekhimenko et al., PACT 2012)
* :class:`FPCCompressor` — Frequent Pattern Compression (Alameldeen et al.)
* :class:`CPackCompressor` — C-PACK (Chen et al., TVLSI 2010)
* :class:`E2MCCompressor` — entropy-encoding memory compression for GPUs
  (Lal et al., IPDPS 2017), the SLC baseline
* :class:`BPCCompressor` — Bit-Plane Compression (Kim et al., ISCA 2016)

:mod:`repro.compression.stats` implements the raw vs. effective compression
ratio accounting around the memory access granularity (MAG).
"""

from repro.compression.base import (
    BlockCompressor,
    CompressedBlock,
    CompressionError,
    DecompressionError,
    as_block_bytes,
)
from repro.compression.bdi import BDICompressor
from repro.compression.bpc import BPCCompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.e2mc import E2MCCompressor, SymbolModel
from repro.compression.fpc import FPCCompressor
from repro.compression.registry import (
    SchemeInfo,
    available_compressors,
    get_compressor,
    register_compressor,
    scheme_latency,
)
from repro.compression.stats import (
    CompressionStats,
    bursts_for_size,
    effective_compressed_bytes,
    effective_compression_ratio,
    extra_bytes_above_mag,
    geometric_mean,
    raw_compression_ratio,
)

__all__ = [
    "BlockCompressor",
    "CompressedBlock",
    "CompressionError",
    "DecompressionError",
    "BDICompressor",
    "FPCCompressor",
    "CPackCompressor",
    "E2MCCompressor",
    "SymbolModel",
    "BPCCompressor",
    "as_block_bytes",
    "available_compressors",
    "get_compressor",
    "register_compressor",
    "scheme_latency",
    "SchemeInfo",
    "CompressionStats",
    "bursts_for_size",
    "effective_compressed_bytes",
    "effective_compression_ratio",
    "extra_bytes_above_mag",
    "geometric_mean",
    "raw_compression_ratio",
]
