"""Frequent Pattern Compression (FPC).

Alameldeen & Wood, "Frequent Pattern Compression: A Significance-Based
Compression Scheme for L2 Caches".  Each 32-bit word is encoded with a 3-bit
prefix selecting one of seven frequent patterns (or the uncompressed
fallback); runs of zero words are additionally run-length encoded.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    BlockCompressor,
    CompressedBlock,
    DecompressionError,
    store_uncompressed,
)
from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.blocks import bytes_to_words, words_to_bytes

_PREFIX_BITS = 3

# Pattern identifiers (the 3-bit prefixes).
_ZERO_RUN = 0b000
_SIGN_EXT_4 = 0b001
_SIGN_EXT_8 = 0b010
_SIGN_EXT_16 = 0b011
_ZERO_PADDED_HALF = 0b100
_HALF_SIGN_EXT = 0b101
_REPEATED_BYTES = 0b110
_UNCOMPRESSED = 0b111

_MAX_ZERO_RUN = 8  # encoded in 3 bits (run length 1..8)


def _fits_signed_bits(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < 1 << (bits - 1)


def _to_signed32(word: int) -> int:
    return word - (1 << 32) if word >= 1 << 31 else word


def _to_signed16(half: int) -> int:
    return half - (1 << 16) if half >= 1 << 15 else half


class FPCCompressor(BlockCompressor):
    """Frequent Pattern Compression over 32-bit words."""

    name = "fpc"
    batched_analysis = True

    def compressed_size_bits_batch(self, blocks: list[bytes]) -> np.ndarray:
        """Vectorized size analysis (bit-exact against :meth:`compress`)."""
        if self.block_size_bytes % 4:
            return super().compressed_size_bits_batch(blocks)
        from repro.kernels.lossless import fpc_size_bits

        return fpc_size_bits(blocks, self.block_size_bytes)

    def compress(self, block: bytes) -> CompressedBlock:
        self._check_block(block)
        words = bytes_to_words(block)
        writer = BitWriter()
        index = 0
        while index < len(words):
            word = words[index]
            if word == 0:
                run = 1
                while (
                    index + run < len(words)
                    and words[index + run] == 0
                    and run < _MAX_ZERO_RUN
                ):
                    run += 1
                writer.write(_ZERO_RUN, _PREFIX_BITS)
                writer.write(run - 1, 3)
                index += run
                continue
            self._encode_word(writer, word)
            index += 1

        size_bits = writer.bit_length
        if size_bits >= self.block_size_bits:
            return store_uncompressed(self, block)
        return CompressedBlock(
            algorithm=self.name,
            original_size_bits=self.block_size_bits,
            compressed_size_bits=size_bits,
            payload=(writer.getvalue(), size_bits),
        )

    def decompress(self, compressed: CompressedBlock) -> bytes:
        if isinstance(compressed.payload, (bytes, bytearray)):
            return bytes(compressed.payload)
        data, size_bits = compressed.payload
        reader = BitReader(data, bit_length=size_bits)
        n_words = self.block_size_bytes // 4
        words: list[int] = []
        while len(words) < n_words:
            prefix = reader.read(_PREFIX_BITS)
            words.extend(self._decode_word(reader, prefix))
        if len(words) != n_words:
            raise DecompressionError(
                f"FPC decoded {len(words)} words, expected {n_words}"
            )
        return words_to_bytes(words)

    # ------------------------------------------------------------------ #
    # per-word encode/decode

    def _encode_word(self, writer: BitWriter, word: int) -> None:
        signed = _to_signed32(word)
        if _fits_signed_bits(signed, 4):
            writer.write(_SIGN_EXT_4, _PREFIX_BITS)
            writer.write(signed & 0xF, 4)
            return
        if _fits_signed_bits(signed, 8):
            writer.write(_SIGN_EXT_8, _PREFIX_BITS)
            writer.write(signed & 0xFF, 8)
            return
        if _fits_signed_bits(signed, 16):
            writer.write(_SIGN_EXT_16, _PREFIX_BITS)
            writer.write(signed & 0xFFFF, 16)
            return
        if word & 0xFFFF == 0:
            writer.write(_ZERO_PADDED_HALF, _PREFIX_BITS)
            writer.write(word >> 16, 16)
            return
        low = word & 0xFFFF
        high = word >> 16
        if _fits_signed_bits(_to_signed16(low), 8) and _fits_signed_bits(
            _to_signed16(high), 8
        ):
            writer.write(_HALF_SIGN_EXT, _PREFIX_BITS)
            writer.write(high & 0xFF, 8)
            writer.write(low & 0xFF, 8)
            return
        byte_values = word.to_bytes(4, "little")
        if len(set(byte_values)) == 1:
            writer.write(_REPEATED_BYTES, _PREFIX_BITS)
            writer.write(byte_values[0], 8)
            return
        writer.write(_UNCOMPRESSED, _PREFIX_BITS)
        writer.write(word, 32)

    def _decode_word(self, reader: BitReader, prefix: int) -> list[int]:
        if prefix == _ZERO_RUN:
            run = reader.read(3) + 1
            return [0] * run
        if prefix == _SIGN_EXT_4:
            value = reader.read(4)
            if value >= 8:
                value -= 16
            return [value & 0xFFFFFFFF]
        if prefix == _SIGN_EXT_8:
            value = reader.read(8)
            if value >= 128:
                value -= 256
            return [value & 0xFFFFFFFF]
        if prefix == _SIGN_EXT_16:
            value = reader.read(16)
            if value >= 1 << 15:
                value -= 1 << 16
            return [value & 0xFFFFFFFF]
        if prefix == _ZERO_PADDED_HALF:
            return [reader.read(16) << 16]
        if prefix == _HALF_SIGN_EXT:
            high = reader.read(8)
            low = reader.read(8)
            if high >= 128:
                high -= 256
            if low >= 128:
                low -= 256
            return [((high & 0xFFFF) << 16) | (low & 0xFFFF)]
        if prefix == _REPEATED_BYTES:
            byte = reader.read(8)
            return [int.from_bytes(bytes([byte]) * 4, "little")]
        if prefix == _UNCOMPRESSED:
            return [reader.read(32)]
        raise DecompressionError(f"unknown FPC prefix {prefix:#05b}")
