"""Canonical Huffman coding used by the E2MC entropy compressor.

E2MC (Lal et al., IPDPS 2017) builds a Huffman code over 16-bit symbols from
frequencies sampled at run time.  The hardware stores *code lengths* in a
table so the compressed size of a block can be computed by summing the code
lengths of its symbols — the property SLC's adder tree exploits.  This module
implements a canonical, optionally length-limited Huffman code with exactly
that interface.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass
class HuffmanCode:
    """A canonical Huffman code: per-symbol lengths and codewords."""

    lengths: dict[int, int] = field(default_factory=dict)
    codewords: dict[int, int] = field(default_factory=dict)

    def code_length(self, symbol: int, default: int | None = None) -> int:
        """Code length of ``symbol``; ``default`` if the symbol is not coded."""
        if symbol in self.lengths:
            return self.lengths[symbol]
        if default is None:
            raise KeyError(f"symbol {symbol} has no codeword")
        return default

    def encode(self, symbol: int) -> tuple[int, int]:
        """Return ``(codeword, length)`` for ``symbol``."""
        return self.codewords[symbol], self.lengths[symbol]

    def max_length(self) -> int:
        """Longest codeword length (0 for an empty code)."""
        return max(self.lengths.values(), default=0)

    def decoding_table(self) -> dict[tuple[int, int], int]:
        """Map ``(codeword, length)`` back to the symbol (for decoders)."""
        return {(code, self.lengths[sym]): sym for sym, code in self.codewords.items()}


def _length_limited_lengths(
    frequencies: dict[int, int], max_length: int
) -> dict[int, int]:
    """Length-limited code lengths via iterative frequency flattening.

    When the unconstrained Huffman tree is deeper than ``max_length`` the
    frequency distribution is repeatedly flattened (halved, floored at 1) and
    the tree rebuilt.  This converges to a balanced tree in the limit, so as
    long as ``2**max_length >= len(frequencies)`` a valid code is found.  The
    resulting code is near-optimal, which matches what the E2MC hardware's
    bounded-depth decoder achieves.
    """
    n = len(frequencies)
    if (1 << max_length) < n:
        raise ValueError(
            f"cannot build a {max_length}-bit-limited code for {n} symbols"
        )
    current = dict(frequencies)
    while True:
        lengths = _huffman_lengths(current)
        if max(lengths.values()) <= max_length:
            return lengths
        current = {s: max(1, f // 2) for s, f in current.items()}


def build_huffman_code(
    frequencies: dict[int, int], max_length: int | None = None
) -> HuffmanCode:
    """Build a canonical Huffman code from symbol frequencies.

    Args:
        frequencies: symbol → occurrence count (must be positive).
        max_length: optional cap on codeword length.  When the unconstrained
            Huffman tree exceeds the cap, near-optimal length-limited code
            lengths are computed by iterative frequency flattening
            (:func:`_length_limited_lengths`): the frequency distribution is
            repeatedly halved (floored at 1) and the tree rebuilt until it
            fits, which is guaranteed whenever
            ``2**max_length >= len(frequencies)``.
    """
    cleaned = {int(s): int(f) for s, f in frequencies.items() if f > 0}
    if not cleaned:
        return HuffmanCode()
    if len(cleaned) == 1:
        symbol = next(iter(cleaned))
        return HuffmanCode(lengths={symbol: 1}, codewords={symbol: 0})

    lengths = _huffman_lengths(cleaned)
    if max_length is not None and max(lengths.values()) > max_length:
        lengths = _length_limited_lengths(cleaned, max_length)
    codewords = canonical_codewords(lengths)
    return HuffmanCode(lengths=lengths, codewords=codewords)


def _huffman_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Unconstrained Huffman code lengths via the classic heap construction."""
    heap: list[tuple[int, int, list[int]]] = []
    for tie_break, (symbol, freq) in enumerate(sorted(frequencies.items())):
        heapq.heappush(heap, (freq, tie_break, [symbol]))
    lengths = {symbol: 0 for symbol in frequencies}
    counter = len(frequencies)
    while len(heap) > 1:
        freq_a, _, symbols_a = heapq.heappop(heap)
        freq_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a + symbols_b:
            lengths[symbol] += 1
        counter += 1
        heapq.heappush(heap, (freq_a + freq_b, counter, symbols_a + symbols_b))
    return lengths


def canonical_codewords(lengths: dict[int, int]) -> dict[int, int]:
    """Assign canonical codewords given per-symbol code lengths."""
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codewords: dict[int, int] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        if length <= 0:
            raise ValueError(f"symbol {symbol} has non-positive code length {length}")
        code <<= length - previous_length
        codewords[symbol] = code
        code += 1
        previous_length = length
    return codewords


def kraft_sum(lengths: dict[int, int]) -> float:
    """Kraft inequality sum; ≤ 1 for any prefix-free code."""
    return sum(2.0 ** -length for length in lengths.values())
