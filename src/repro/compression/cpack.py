"""C-PACK: Cache Packer compression.

Chen et al., "C-Pack: A High-Performance Microprocessor Cache Compression
Algorithm", IEEE TVLSI 2010.  Each 32-bit word is matched against a small
dictionary of recently seen words and against static zero patterns; six
pattern codes cover full/partial dictionary matches and zero words.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    BlockCompressor,
    CompressedBlock,
    DecompressionError,
    store_uncompressed,
)
from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.blocks import bytes_to_words, words_to_bytes

_DICT_ENTRIES = 16
_DICT_INDEX_BITS = 4

# Pattern codes from the C-PACK paper (code, code length in bits).
_ZZZZ = (0b00, 2)          # all-zero word
_XXXX = (0b01, 2)          # uncompressed word (followed by 32 bits)
_MMMM = (0b10, 2)          # full dictionary match (followed by index)
_MMXX = (0b1100, 4)        # 2-byte partial match (index + 16 literal bits)
_ZZZX = (0b1101, 4)        # word with only the low byte non-zero (8 literal bits)
_MMMX = (0b1110, 4)        # 3-byte partial match (index + 8 literal bits)


class CPackCompressor(BlockCompressor):
    """C-PACK block compressor with a 16-entry FIFO dictionary."""

    name = "cpack"
    batched_analysis = True

    def compressed_size_bits_batch(self, blocks: list[bytes]) -> np.ndarray:
        """Vectorized size analysis (bit-exact against :meth:`compress`)."""
        if self.block_size_bytes % 4:
            return super().compressed_size_bits_batch(blocks)
        from repro.kernels.lossless import cpack_size_bits

        return cpack_size_bits(blocks, self.block_size_bytes)

    def compress(self, block: bytes) -> CompressedBlock:
        self._check_block(block)
        words = bytes_to_words(block)
        writer = BitWriter()
        dictionary: list[int] = []
        for word in words:
            self._encode_word(writer, word, dictionary)
        size_bits = writer.bit_length
        if size_bits >= self.block_size_bits:
            return store_uncompressed(self, block)
        return CompressedBlock(
            algorithm=self.name,
            original_size_bits=self.block_size_bits,
            compressed_size_bits=size_bits,
            payload=(writer.getvalue(), size_bits),
        )

    def decompress(self, compressed: CompressedBlock) -> bytes:
        if isinstance(compressed.payload, (bytes, bytearray)):
            return bytes(compressed.payload)
        data, size_bits = compressed.payload
        reader = BitReader(data, bit_length=size_bits)
        n_words = self.block_size_bytes // 4
        dictionary: list[int] = []
        words: list[int] = []
        for _ in range(n_words):
            words.append(self._decode_word(reader, dictionary))
        return words_to_bytes(words)

    # ------------------------------------------------------------------ #
    # internals

    def _push_dictionary(self, dictionary: list[int], word: int) -> None:
        """FIFO insertion of words that were not full matches or zeros."""
        dictionary.append(word)
        if len(dictionary) > _DICT_ENTRIES:
            dictionary.pop(0)

    def _encode_word(self, writer: BitWriter, word: int, dictionary: list[int]) -> None:
        if word == 0:
            code, width = _ZZZZ
            writer.write(code, width)
            return
        if word <= 0xFF:
            code, width = _ZZZX
            writer.write(code, width)
            writer.write(word, 8)
            return
        if word in dictionary:
            code, width = _MMMM
            writer.write(code, width)
            writer.write(dictionary.index(word), _DICT_INDEX_BITS)
            return
        # Partial matches: compare the high bytes against dictionary entries.
        for index, entry in enumerate(dictionary):
            if (entry >> 8) == (word >> 8):
                code, width = _MMMX
                writer.write(code, width)
                writer.write(index, _DICT_INDEX_BITS)
                writer.write(word & 0xFF, 8)
                self._push_dictionary(dictionary, word)
                return
        for index, entry in enumerate(dictionary):
            if (entry >> 16) == (word >> 16):
                code, width = _MMXX
                writer.write(code, width)
                writer.write(index, _DICT_INDEX_BITS)
                writer.write(word & 0xFFFF, 16)
                self._push_dictionary(dictionary, word)
                return
        code, width = _XXXX
        writer.write(code, width)
        writer.write(word, 32)
        self._push_dictionary(dictionary, word)

    def _decode_word(self, reader: BitReader, dictionary: list[int]) -> int:
        first_two = reader.read(2)
        if first_two == _ZZZZ[0]:
            return 0
        if first_two == _XXXX[0]:
            word = reader.read(32)
            self._push_dictionary(dictionary, word)
            return word
        if first_two == _MMMM[0]:
            index = reader.read(_DICT_INDEX_BITS)
            if index >= len(dictionary):
                raise DecompressionError(f"C-PACK dictionary index {index} out of range")
            return dictionary[index]
        # first_two == 0b11: read two more bits to disambiguate the 4-bit codes.
        rest = reader.read(2)
        code = (first_two << 2) | rest
        if code == _MMXX[0]:
            index = reader.read(_DICT_INDEX_BITS)
            literal = reader.read(16)
            if index >= len(dictionary):
                raise DecompressionError(f"C-PACK dictionary index {index} out of range")
            word = (dictionary[index] & 0xFFFF0000) | literal
            self._push_dictionary(dictionary, word)
            return word
        if code == _ZZZX[0]:
            return reader.read(8)
        if code == _MMMX[0]:
            index = reader.read(_DICT_INDEX_BITS)
            literal = reader.read(8)
            if index >= len(dictionary):
                raise DecompressionError(f"C-PACK dictionary index {index} out of range")
            word = (dictionary[index] & 0xFFFFFF00) | literal
            self._push_dictionary(dictionary, word)
            return word
        raise DecompressionError(f"unknown C-PACK code {code:#06b}")
