"""Base-Delta-Immediate (BDI) compression.

Pekhimenko et al., "Base-Delta-Immediate Compression: Practical Data
Compression for On-chip Caches", PACT 2012.  A block is represented as one
base value plus small per-word deltas.  Eight encodings are tried (plus the
all-zero and repeated-value special cases) and the smallest valid one wins.

The implementation below follows the canonical two-base variant: deltas are
taken either from the first word of the block (the "base") or from an
implicit zero base, whichever is smaller per word, with a one-bit mask per
word selecting which base was used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import (
    BlockCompressor,
    CompressedBlock,
    DecompressionError,
    store_uncompressed,
)


@dataclass(frozen=True)
class _BDIEncoding:
    """One (base size, delta size) configuration of BDI."""

    name: str
    base_bytes: int
    delta_bytes: int


# The eight encodings evaluated by the original BDI proposal for 32-byte and
# 64-byte lines, applied here to 128-byte blocks.
_ENCODINGS = (
    _BDIEncoding("base8-delta1", 8, 1),
    _BDIEncoding("base8-delta2", 8, 2),
    _BDIEncoding("base8-delta4", 8, 4),
    _BDIEncoding("base4-delta1", 4, 1),
    _BDIEncoding("base4-delta2", 4, 2),
    _BDIEncoding("base2-delta1", 2, 1),
)

_ENCODING_BITS = 4  # encoding selector stored with each compressed block


def _to_signed(value: int, size_bytes: int) -> int:
    bits = size_bytes * 8
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _fits_signed(value: int, size_bytes: int) -> bool:
    bits = size_bytes * 8
    return -(1 << (bits - 1)) <= value < 1 << (bits - 1)


class BDICompressor(BlockCompressor):
    """Base-Delta-Immediate block compressor."""

    name = "bdi"
    batched_analysis = True

    def compressed_size_bits_batch(self, blocks: list[bytes]) -> np.ndarray:
        """Vectorized size analysis (bit-exact against :meth:`compress`)."""
        from repro.kernels.lossless import bdi_size_bits

        return bdi_size_bits(blocks, self.block_size_bytes)

    def compress(self, block: bytes) -> CompressedBlock:
        self._check_block(block)
        if not any(block):
            return CompressedBlock(
                algorithm=self.name,
                original_size_bits=self.block_size_bits,
                compressed_size_bits=8 + _ENCODING_BITS,
                payload=("zeros", None),
            )
        repeated = self._repeated_value(block)
        if repeated is not None:
            return CompressedBlock(
                algorithm=self.name,
                original_size_bits=self.block_size_bits,
                compressed_size_bits=64 + _ENCODING_BITS,
                payload=("repeat", repeated),
            )

        best: tuple[int, _BDIEncoding, tuple] | None = None
        for encoding in _ENCODINGS:
            packed = self._try_encoding(block, encoding)
            if packed is None:
                continue
            size_bits = self._encoded_size_bits(encoding)
            if best is None or size_bits < best[0]:
                best = (size_bits, encoding, packed)
        if best is None or best[0] >= self.block_size_bits:
            return store_uncompressed(self, block)
        size_bits, encoding, packed = best
        return CompressedBlock(
            algorithm=self.name,
            original_size_bits=self.block_size_bits,
            compressed_size_bits=size_bits,
            payload=(encoding.name, packed),
            metadata={"encoding": encoding.name},
        )

    def decompress(self, compressed: CompressedBlock) -> bytes:
        kind, payload = (
            compressed.payload
            if isinstance(compressed.payload, tuple)
            else ("raw", compressed.payload)
        )
        if isinstance(compressed.payload, (bytes, bytearray)):
            return bytes(compressed.payload)
        if kind == "zeros":
            return b"\x00" * self.block_size_bytes
        if kind == "repeat":
            count = self.block_size_bytes // 8
            return payload.to_bytes(8, "little") * count
        encoding = self._encoding_by_name(kind)
        base, mask, deltas = payload
        out = bytearray()
        for use_base, delta in zip(mask, deltas):
            value = (base + delta) if use_base else delta
            value &= (1 << (encoding.base_bytes * 8)) - 1
            out.extend(value.to_bytes(encoding.base_bytes, "little"))
        if len(out) != self.block_size_bytes:
            raise DecompressionError(
                f"BDI payload reconstructs {len(out)} bytes, "
                f"expected {self.block_size_bytes}"
            )
        return bytes(out)

    # ------------------------------------------------------------------ #
    # internals

    def _repeated_value(self, block: bytes) -> int | None:
        """Return the repeated 8-byte value if the block is one value repeated."""
        first = block[:8]
        for start in range(8, len(block), 8):
            if block[start:start + 8] != first:
                return None
        return int.from_bytes(first, "little")

    def _encoding_by_name(self, name: str) -> _BDIEncoding:
        for encoding in _ENCODINGS:
            if encoding.name == name:
                return encoding
        raise DecompressionError(f"unknown BDI encoding {name!r}")

    def _encoded_size_bits(self, encoding: _BDIEncoding) -> int:
        n_words = self.block_size_bytes // encoding.base_bytes
        return (
            _ENCODING_BITS
            + encoding.base_bytes * 8  # the base value
            + n_words  # one-bit mask: delta from base or from zero
            + n_words * encoding.delta_bytes * 8
        )

    def _try_encoding(self, block: bytes, encoding: _BDIEncoding) -> tuple | None:
        """Return (base, mask, deltas) if every word fits, else None."""
        if self.block_size_bytes % encoding.base_bytes:
            return None
        words = [
            int.from_bytes(block[i:i + encoding.base_bytes], "little")
            for i in range(0, self.block_size_bytes, encoding.base_bytes)
        ]
        base = words[0]
        mask = []
        deltas = []
        for word in words:
            delta_base = _to_signed((word - base) & ((1 << (encoding.base_bytes * 8)) - 1),
                                    encoding.base_bytes)
            if _fits_signed(delta_base, encoding.delta_bytes):
                mask.append(True)
                deltas.append(delta_base)
                continue
            # Fall back to the implicit zero base ("immediate" values).
            if _fits_signed(_to_signed(word, encoding.base_bytes), encoding.delta_bytes) or \
                    word < (1 << (encoding.delta_bytes * 8 - 1)):
                mask.append(False)
                deltas.append(word)
                continue
            return None
        return base, mask, deltas
