"""Application-specific error metrics (Table III).

The paper uses mean relative error (MRE) for numeric outputs, normalized
root-mean-square error (NRMSE) for signal/transform outputs, an image
difference for image outputs and the miss rate (fraction of flipped boolean
decisions) for JM.  All metrics are reported in percent.
"""

from __future__ import annotations

import numpy as np


def _as_float_arrays(exact, approx) -> tuple[np.ndarray, np.ndarray]:
    exact_arr = np.asarray(exact, dtype=np.float64)
    approx_arr = np.asarray(approx, dtype=np.float64)
    if exact_arr.shape != approx_arr.shape:
        raise ValueError(
            f"shape mismatch between exact {exact_arr.shape} and approx {approx_arr.shape}"
        )
    return exact_arr, approx_arr


def mean_relative_error_percent(
    exact, approx, epsilon: float = 1e-6, clip_percent: float = 100.0
) -> float:
    """Mean relative error in percent.

    Per-element relative errors are computed against ``max(|exact|, epsilon)``
    to avoid division by zero and clipped at ``clip_percent`` (an element that
    is completely wrong should count as 100 % wrong, not as an unbounded
    outlier) — the convention used by the approximate-computing benchmarks the
    paper draws from.
    """
    exact_arr, approx_arr = _as_float_arrays(exact, approx)
    if exact_arr.size == 0:
        return 0.0
    denom = np.maximum(np.abs(exact_arr), epsilon)
    relative = np.abs(exact_arr - approx_arr) / denom * 100.0
    relative = np.minimum(relative, clip_percent)
    return float(np.mean(relative))


def nrmse_percent(exact, approx) -> float:
    """Normalized root-mean-square error in percent (normalized by the range)."""
    exact_arr, approx_arr = _as_float_arrays(exact, approx)
    if exact_arr.size == 0:
        return 0.0
    rmse = float(np.sqrt(np.mean((exact_arr - approx_arr) ** 2)))
    value_range = float(np.max(exact_arr) - np.min(exact_arr))
    if value_range == 0:
        value_range = max(abs(float(np.max(exact_arr))), 1e-12)
    return rmse / value_range * 100.0


def image_diff_percent(exact, approx) -> float:
    """Image difference in percent.

    Computed as the NRMSE over pixel values, matching the "Image diff."
    metric of the AxBench/Rodinia image benchmarks.
    """
    return nrmse_percent(exact, approx)


def miss_rate_percent(exact, approx) -> float:
    """Fraction of boolean decisions that flipped, in percent (the JM metric)."""
    exact_arr = np.asarray(exact, dtype=bool)
    approx_arr = np.asarray(approx, dtype=bool)
    if exact_arr.shape != approx_arr.shape:
        raise ValueError(
            f"shape mismatch between exact {exact_arr.shape} and approx {approx_arr.shape}"
        )
    if exact_arr.size == 0:
        return 0.0
    return float(np.mean(exact_arr != approx_arr)) * 100.0
