"""Statistical fidelity metrics for lossy-compressed data.

The paper judges each benchmark by one application-specific error number
(Table III).  Real users of lossy compression — the science-data community
in particular — additionally judge the *data itself* with distribution- and
correlation-level statistics; this module provides the three the enstools
compression suite standardizes on, fully vectorized:

* **Pearson correlation** between the exact and degraded values — linear
  association, 1.0 for undamaged data.
* **Two-sample Kolmogorov–Smirnov statistic** — the maximum distance
  between the two empirical CDFs, 0.0 for identical value distributions.
* **IQR-normalized error** — per-element absolute error normalized by the
  interquartile range of the exact data (a robust scale, insensitive to
  outliers), reported as mean and max.

All functions accept array-likes of any shape (values are compared
element-wise / as flattened samples), raise ``ValueError`` on empty inputs,
shape mismatches and non-finite values, and are deterministic — the golden
suite pins them bit-exactly through the simulator.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

__all__ = [
    "pearson_correlation",
    "ks_statistic",
    "iqr_normalized_errors",
    "fidelity_panel",
    "fidelity_summary",
]


def _validated(exact, approx) -> tuple[np.ndarray, np.ndarray]:
    """Common validation: matching shapes, non-empty, all-finite float64."""
    exact_arr = np.asarray(exact, dtype=np.float64)
    approx_arr = np.asarray(approx, dtype=np.float64)
    if exact_arr.shape != approx_arr.shape:
        raise ValueError(
            f"shape mismatch between exact {exact_arr.shape} and "
            f"approx {approx_arr.shape}"
        )
    if exact_arr.size == 0:
        raise ValueError("fidelity metrics are undefined for empty arrays")
    if not np.all(np.isfinite(exact_arr)):
        raise ValueError("exact array contains non-finite values")
    if not np.all(np.isfinite(approx_arr)):
        raise ValueError("approx array contains non-finite values")
    return exact_arr.reshape(-1), approx_arr.reshape(-1)


def pearson_correlation(exact, approx) -> float:
    """Pearson correlation coefficient between exact and approx values.

    Bounded to [-1, 1].  A constant field has no variance to correlate, so
    the convention for degenerate inputs is: 1.0 when the arrays are
    element-wise identical (undamaged data is perfectly faithful no matter
    its shape), 0.0 otherwise.
    """
    exact_arr, approx_arr = _validated(exact, approx)
    exact_dev = exact_arr - exact_arr.mean()
    approx_dev = approx_arr - approx_arr.mean()
    denom = float(np.sqrt(np.dot(exact_dev, exact_dev) * np.dot(approx_dev, approx_dev)))
    if denom == 0.0:
        return 1.0 if np.array_equal(exact_arr, approx_arr) else 0.0
    corr = float(np.dot(exact_dev, approx_dev)) / denom
    return float(np.clip(corr, -1.0, 1.0))


def ks_statistic(exact, approx) -> float:
    """Two-sample Kolmogorov–Smirnov statistic over the value distributions.

    The maximum absolute distance between the empirical CDFs of the two
    (flattened) samples, bounded to [0, 1]; 0.0 iff the sorted multisets of
    values coincide.  Computed with two sorts and ``searchsorted`` — no
    per-element Python loop.
    """
    exact_arr, approx_arr = _validated(exact, approx)
    exact_sorted = np.sort(exact_arr)
    approx_sorted = np.sort(approx_arr)
    probe = np.concatenate([exact_sorted, approx_sorted])
    cdf_exact = np.searchsorted(exact_sorted, probe, side="right") / exact_sorted.size
    cdf_approx = np.searchsorted(approx_sorted, probe, side="right") / approx_sorted.size
    return float(np.max(np.abs(cdf_exact - cdf_approx)))


def _iqr_scale(exact_arr: np.ndarray) -> float:
    """Robust normalization scale: IQR, falling back for degenerate data.

    A constant (or nearly constant) field has zero interquartile range; the
    fallbacks keep the metric finite: full value range first, then the
    magnitude of the constant itself, then 1.0 for an all-zero field.
    """
    q25, q75 = np.percentile(exact_arr, [25.0, 75.0])
    scale = float(q75 - q25)
    if scale > 0.0:
        return scale
    scale = float(exact_arr.max() - exact_arr.min())
    if scale > 0.0:
        return scale
    return max(abs(float(exact_arr.flat[0])), 1.0)


def iqr_normalized_errors(exact, approx) -> tuple[float, float]:
    """(mean, max) of ``|exact - approx| / IQR(exact)``.

    Normalizing by the interquartile range of the exact data makes the
    error dimensionless and invariant under any affine transform
    ``x -> a*x + b`` (a > 0) applied to both arrays, so thresholds carry
    across variables with different units — the property enstools relies
    on to compare compression quality across weather fields.
    """
    exact_arr, approx_arr = _validated(exact, approx)
    normalized = np.abs(exact_arr - approx_arr) / _iqr_scale(exact_arr)
    return float(normalized.mean()), float(normalized.max())


def fidelity_panel(exact, approx) -> dict[str, float]:
    """All fidelity metrics of one exact/approx array pair.

    Keys: ``pearson``, ``ks``, ``iqr_mean``, ``iqr_max``.
    """
    iqr_mean, iqr_max = iqr_normalized_errors(exact, approx)
    return {
        "pearson": pearson_correlation(exact, approx),
        "ks": ks_statistic(exact, approx),
        "iqr_mean": iqr_mean,
        "iqr_max": iqr_max,
    }


def fidelity_summary(
    exact_arrays: Mapping[str, np.ndarray],
    approx_arrays: Mapping[str, np.ndarray],
) -> dict[str, float]:
    """Worst-case fidelity panel over several named array pairs.

    Used by the simulator to collapse a workload's approximable regions
    into one record-level panel: the *minimum* Pearson correlation and the
    *maximum* KS / IQR errors across regions, i.e. the least faithful
    region dominates.  Keys are prefixed ``fidelity_`` to match the
    ``SimulationResult.extra_metrics`` entries.
    """
    if set(exact_arrays) != set(approx_arrays):
        raise ValueError(
            f"array name mismatch: exact has {sorted(exact_arrays)}, "
            f"approx has {sorted(approx_arrays)}"
        )
    if not exact_arrays:
        raise ValueError("fidelity summary needs at least one array pair")
    panels = [
        fidelity_panel(exact_arrays[name], approx_arrays[name])
        for name in exact_arrays
    ]
    return {
        "fidelity_pearson": min(panel["pearson"] for panel in panels),
        "fidelity_ks": max(panel["ks"] for panel in panels),
        "fidelity_iqr_mean": max(panel["iqr_mean"] for panel in panels),
        "fidelity_iqr_max": max(panel["iqr_max"] for panel in panels),
    }
