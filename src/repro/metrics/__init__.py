"""Error and performance metrics used throughout the evaluation."""

from repro.metrics.error import (
    image_diff_percent,
    mean_relative_error_percent,
    miss_rate_percent,
    nrmse_percent,
)
from repro.metrics.fidelity import (
    fidelity_panel,
    fidelity_summary,
    iqr_normalized_errors,
    ks_statistic,
    pearson_correlation,
)
from repro.metrics.performance import (
    bandwidth_reduction_percent,
    edp_reduction_percent,
    energy_reduction_percent,
    normalized_metric,
    speedup,
    summarize_geomean,
)

__all__ = [
    "mean_relative_error_percent",
    "nrmse_percent",
    "image_diff_percent",
    "miss_rate_percent",
    "pearson_correlation",
    "ks_statistic",
    "iqr_normalized_errors",
    "fidelity_panel",
    "fidelity_summary",
    "speedup",
    "normalized_metric",
    "bandwidth_reduction_percent",
    "energy_reduction_percent",
    "edp_reduction_percent",
    "summarize_geomean",
]
