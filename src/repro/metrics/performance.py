"""Performance metrics: speedup, bandwidth/energy/EDP reductions, geomeans.

All helpers validate both operands uniformly: baselines must be strictly
positive (every ratio here divides by the baseline), measured quantities must
be positive where a zero is physically meaningless (execution times) and
merely non-negative where it is not (traffic, energy, EDP — a perfect
reduction is a valid data point).  Invalid operands raise :class:`ValueError`.
"""

from __future__ import annotations

from repro.compression.stats import geometric_mean


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def speedup(baseline_time_s: float, time_s: float) -> float:
    """Execution-time speedup of a scheme over a baseline (>1 is faster)."""
    _require_positive("baseline_time_s", baseline_time_s)
    _require_positive("time_s", time_s)
    return baseline_time_s / time_s


def normalized_metric(value: float, baseline_value: float) -> float:
    """A metric normalized to a baseline (the y-axes of Figs. 7–9)."""
    _require_positive("baseline_value", baseline_value)
    _require_non_negative("value", value)
    return value / baseline_value


def bandwidth_reduction_percent(baseline_bytes: float, bytes_transferred: float) -> float:
    """Percentage reduction in off-chip traffic relative to a baseline."""
    _require_positive("baseline_bytes", baseline_bytes)
    _require_non_negative("bytes_transferred", bytes_transferred)
    return (1.0 - bytes_transferred / baseline_bytes) * 100.0


def energy_reduction_percent(baseline_energy_j: float, energy_j: float) -> float:
    """Percentage reduction in energy relative to a baseline."""
    _require_positive("baseline_energy_j", baseline_energy_j)
    _require_non_negative("energy_j", energy_j)
    return (1.0 - energy_j / baseline_energy_j) * 100.0


def edp_reduction_percent(baseline_edp: float, edp: float) -> float:
    """Percentage reduction in energy-delay product relative to a baseline."""
    _require_positive("baseline_edp", baseline_edp)
    _require_non_negative("edp", edp)
    return (1.0 - edp / baseline_edp) * 100.0


def summarize_geomean(values: dict[str, float]) -> float:
    """Geometric mean over a per-benchmark dictionary (the paper's GM bars)."""
    return geometric_mean(list(values.values()))
