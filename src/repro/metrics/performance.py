"""Performance metrics: speedup, bandwidth/energy/EDP reductions, geomeans."""

from __future__ import annotations

from repro.compression.stats import geometric_mean


def speedup(baseline_time_s: float, time_s: float) -> float:
    """Execution-time speedup of a scheme over a baseline (>1 is faster)."""
    if time_s <= 0:
        raise ValueError("execution time must be positive")
    return baseline_time_s / time_s


def normalized_metric(value: float, baseline_value: float) -> float:
    """A metric normalized to a baseline (the y-axes of Figs. 7–9)."""
    if baseline_value == 0:
        raise ZeroDivisionError("baseline value is zero")
    return value / baseline_value


def bandwidth_reduction_percent(baseline_bytes: float, bytes_transferred: float) -> float:
    """Percentage reduction in off-chip traffic relative to a baseline."""
    if baseline_bytes <= 0:
        raise ValueError("baseline traffic must be positive")
    return (1.0 - bytes_transferred / baseline_bytes) * 100.0


def energy_reduction_percent(baseline_energy_j: float, energy_j: float) -> float:
    """Percentage reduction in energy relative to a baseline."""
    if baseline_energy_j <= 0:
        raise ValueError("baseline energy must be positive")
    return (1.0 - energy_j / baseline_energy_j) * 100.0


def edp_reduction_percent(baseline_edp: float, edp: float) -> float:
    """Percentage reduction in energy-delay product relative to a baseline."""
    if baseline_edp <= 0:
        raise ValueError("baseline EDP must be positive")
    return (1.0 - edp / baseline_edp) * 100.0


def summarize_geomean(values: dict[str, float]) -> float:
    """Geometric mean over a per-benchmark dictionary (the paper's GM bars)."""
    return geometric_mean(list(values.values()))
