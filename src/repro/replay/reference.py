"""The scalar trace-replay loop, kept as the n = 1 reference.

This is the loop that used to live inline in ``GPUSimulator.run``: one L2
lookup per access, one memory-controller method chain per miss.  It defines
the semantics the vectorized engine (:mod:`repro.replay.engine`) must
reproduce bit-exactly, and remains selectable via
``GPUSimulator(replay_mode="scalar")`` for audits and benchmarks.
"""

from __future__ import annotations

from repro.gpu.cache import SetAssociativeCache
from repro.gpu.memory_controller import MemoryController
from repro.gpu.trace import MemoryTrace
from repro.workloads.base import Region


def replay_trace_scalar(
    trace: MemoryTrace,
    *,
    all_regions: dict[str, Region],
    region_blocks: dict[str, list[bytes]],
    base_addresses: dict[str, int],
    l2: SetAssociativeCache,
    controllers: list[MemoryController],
    interleave_blocks: int,
) -> None:
    """Replay the kernel's block trace through the L2, one access at a time.

    Args:
        trace: the workload's block-granular memory trace.
        all_regions: every region the trace references.
        region_blocks: per-region raw block contents.
        base_addresses: global base block address of every region.
        l2: the shared L2 cache.
        controllers: the memory controllers (block addresses interleave
            across them in groups of ``interleave_blocks``).
        interleave_blocks: consecutive blocks kept on one controller.
    """
    num_controllers = len(controllers)
    for access in trace:
        region = all_regions[access.region]
        address = base_addresses[access.region] + access.block_index
        for _ in range(access.count):
            hit = l2.access(address, is_write=access.is_write)
            if hit:
                continue
            controller = controllers[(address // interleave_blocks) % num_controllers]
            if access.is_write:
                block = region_blocks[access.region][access.block_index]
                controller.store_block(
                    address,
                    block,
                    approximable=region.approximable,
                    count_traffic=True,
                )
            else:
                controller.read_block(address)
