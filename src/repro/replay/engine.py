"""The vectorized trace-replay engine.

Reproduces the scalar kernel-execution loop of ``GPUSimulator.run`` —
per-access L2 lookups, per-miss memory-controller method chains — as a
handful of array passes, bit-exact on every counter the simulation result is
assembled from:

1. the trace is compiled to flat address/write/count arrays
   (:meth:`~repro.gpu.trace.MemoryTrace.compile`),
2. the L2 resolves all hits at once (:func:`~repro.replay.l2.replay_l2`)
   yielding the miss stream in trace order,
3. write misses go through the backend's batched analysis kernels *and*
   batched payload codec (``store_batch``: vectorized Fig. 4 decision plus
   one truncation/prediction pass producing every stored block's degraded
   bytes, see :mod:`repro.kernels.codec`), grouped by the region's
   ``approximable`` flag,
4. the miss stream is partitioned per memory controller
   (``CHANNEL_INTERLEAVE_BLOCKS`` interleave) and each controller's events
   run through a vectorized storage-timeline forward fill (the burst count a
   read fetches is the one recorded by the latest preceding store), the MDC
   model (:func:`~repro.replay.mdc.replay_mdc`) and the grouped DRAM
   row-buffer scan (:func:`~repro.replay.dram.replay_dram`).

The mutated objects (L2, controllers, their MDCs, channels and storage, and
the backend's own counters) end up in the same state the scalar loop leaves
them in, so result assembly and the degraded-input error computation are
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.cache import SetAssociativeCache
from repro.gpu.memory_controller import MemoryController
from repro.gpu.trace import MemoryTrace
from repro.obs import metrics
from repro.obs.tracing import span
from repro.replay.dram import replay_dram
from repro.replay.l2 import replay_l2
from repro.replay.mdc import replay_mdc
from repro.workloads.base import Region


def replay_trace(
    trace: MemoryTrace,
    *,
    all_regions: dict[str, Region],
    region_blocks: dict[str, list[bytes]],
    base_addresses: dict[str, int],
    l2: SetAssociativeCache,
    controllers: list[MemoryController],
    interleave_blocks: int,
    chunk_accesses: int | None = None,
) -> None:
    """Replay the kernel's block trace at array speed.

    Same signature and same observable effects as
    :func:`~repro.replay.reference.replay_trace_scalar`.

    With ``chunk_accesses`` set, the compiled trace is processed in bounded
    windows of at most that many compiled (RLE) entries, threading the L2,
    MDC, DRAM open-row and storage-timeline state across chunk boundaries
    through the mutable model objects themselves — every replay stage
    composes (:func:`~repro.replay.l2.replay_l2` seeds from and writes back
    the cache; controller storage/MDC/channel state advances in place), so
    all counters and stored payloads are bit-identical to the unchunked
    replay while peak memory stays O(chunk) instead of O(trace).
    """
    if chunk_accesses is not None:
        if chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive")
        n_chunks = 0
        for compiled in trace.compile_chunks(base_addresses, chunk_accesses):
            n_chunks += 1
            with span("replay.chunk", cat="replay", entries=len(compiled)):
                _replay_compiled(
                    compiled,
                    all_regions=all_regions,
                    region_blocks=region_blocks,
                    l2=l2,
                    controllers=controllers,
                    interleave_blocks=interleave_blocks,
                )
        if metrics.enabled():
            metrics.inc("replay.chunks", n_chunks)
            metrics.observe("replay.peak_rss_mib", metrics.peak_rss_mib())
        return
    with span("replay.compile", cat="replay"):
        compiled = trace.compile(base_addresses)
    _replay_compiled(
        compiled,
        all_regions=all_regions,
        region_blocks=region_blocks,
        l2=l2,
        controllers=controllers,
        interleave_blocks=interleave_blocks,
    )
    if metrics.enabled():
        metrics.observe("replay.peak_rss_mib", metrics.peak_rss_mib())


def _replay_compiled(
    compiled,
    *,
    all_regions: dict[str, Region],
    region_blocks: dict[str, list[bytes]],
    l2: SetAssociativeCache,
    controllers: list[MemoryController],
    interleave_blocks: int,
) -> None:
    """Replay one compiled window (the whole trace, or one chunk)."""
    with span("replay.l2", cat="replay", accesses=int(compiled.addresses.shape[0])):
        miss_mask = replay_l2(
            l2, compiled.addresses, compiled.is_write, compiled.counts
        )
    if metrics.enabled():
        metrics.inc("replay.accesses", int(compiled.counts.sum()))
        metrics.inc("replay.l2_misses", int(miss_mask.sum()))
    if not miss_mask.any():
        return

    miss_addr = compiled.addresses[miss_mask]
    miss_write = compiled.is_write[miss_mask]
    miss_region = compiled.region_index[miss_mask]
    miss_block = compiled.block_index[miss_mask]
    n_miss = miss_addr.shape[0]
    backend = controllers[0].backend

    # ------------------------------------------------------------------ #
    # write misses: batched compression decisions + batched payload codec,
    # grouped by approximable flag (per-block results and the backend's own
    # counters are identical to per-miss ``store`` calls; only the call
    # grouping differs).
    stored_by_miss: list = [None] * n_miss
    miss_bursts = np.zeros(n_miss, dtype=np.int64)
    write_indices = np.nonzero(miss_write)[0]
    if write_indices.size:
        with span("replay.store_batch", cat="replay",
                  writes=int(write_indices.size)):
            region_names = compiled.regions
            approximable = np.fromiter(
                (all_regions[name].approximable for name in region_names),
                np.bool_,
                len(region_names),
            )
            write_approx = approximable[miss_region[write_indices]]
            for flag in (True, False):
                selected = write_indices[write_approx == flag]
                if not selected.size:
                    continue
                blocks = [
                    region_blocks[region_names[ri]][bi]
                    for ri, bi in zip(
                        miss_region[selected].tolist(), miss_block[selected].tolist()
                    )
                ]
                for i, stored in zip(
                    selected.tolist(), backend.store_batch(blocks, approximable=flag)
                ):
                    stored_by_miss[i] = stored
                    miss_bursts[i] = stored.bursts

    # ------------------------------------------------------------------ #
    # per-controller miss-path accounting
    with span("replay.controllers", cat="replay", misses=n_miss):
        controller_index = (miss_addr // interleave_blocks) % len(controllers)
        by_controller = np.argsort(controller_index, kind="stable")
        counts = np.bincount(controller_index, minlength=len(controllers))
        offsets = np.cumsum(counts) - counts
        for c, controller in enumerate(controllers):
            if not counts[c]:
                continue
            events = by_controller[offsets[c] : offsets[c] + counts[c]]
            _replay_controller(
                controller,
                addresses=miss_addr[events],
                is_write=miss_write[events],
                stored_bursts=miss_bursts[events],
                stored_blocks=[stored_by_miss[i] for i in events.tolist()],
            )


def _replay_controller(
    controller: MemoryController,
    *,
    addresses: np.ndarray,
    is_write: np.ndarray,
    stored_bursts: np.ndarray,
    stored_blocks: list,
) -> None:
    """Account one controller's miss events (in service order)."""
    n = addresses.shape[0]
    is_read = ~is_write
    backend_max = controller.backend.max_bursts

    # Storage timeline: the burst count a read fetches is the one recorded
    # by the latest preceding store of that address — seeded from the
    # controller's storage (host-to-device copies), advanced by write
    # misses.  Computed as a per-address forward fill over events sorted by
    # (address, time).
    unique = np.unique(addresses)
    storage = controller._storage
    initial_bursts = np.fromiter(
        (
            stored.bursts if (stored := storage.get(address)) is not None else backend_max
            for address in unique.tolist()
        ),
        np.int64,
        unique.shape[0],
    )
    by_address = np.argsort(addresses, kind="stable")
    sorted_addresses = addresses[by_address]
    sorted_writes = is_write[by_address]
    sorted_bursts = stored_bursts[by_address]
    group = np.searchsorted(unique, sorted_addresses)
    group_start = np.searchsorted(sorted_addresses, unique)
    last_store = np.maximum.accumulate(
        np.where(sorted_writes, np.arange(n), -1)
    )
    stored_before = last_store >= group_start[group]
    sorted_actual = np.where(
        stored_before,
        sorted_bursts[np.maximum(last_store, 0)],
        initial_bursts[group],
    )
    actual = np.empty(n, dtype=np.int64)
    actual[by_address] = sorted_actual

    # MDC: reads do a lookup (miss -> conservative worst-case fetch), every
    # event refreshes the entry with the current burst count.
    values = np.where(is_write, stored_bursts, actual)
    mdc_hit = replay_mdc(controller.mdc, addresses, is_read, values)
    fetched = np.where(
        is_write,
        stored_bursts,
        np.where(mdc_hit, actual, controller.mdc.max_bursts),
    )

    stats = controller.stats
    n_reads = int(is_read.sum())
    n_writes = n - n_reads
    stats.reads += n_reads
    stats.writes += n_writes
    stats.read_bursts += int(fetched[is_read].sum())
    stats.write_bursts += int(stored_bursts[is_write].sum())
    stats.decompress_invocations += n_reads
    stats.compress_invocations += n_writes
    stats.mdc_extra_bursts += int((fetched[is_read] - actual[is_read]).sum())
    stats.lossy_blocks += sum(
        1 for stored in stored_blocks if stored is not None and stored.lossy
    )

    # Storage ends up holding each written address's final stored block.
    group_end = group_start + np.diff(np.append(group_start, n)) - 1
    final_store = last_store[group_end]
    for g in np.nonzero(final_store >= group_start)[0].tolist():
        event = int(by_address[final_store[g]])
        storage[int(unique[g])] = stored_blocks[event]

    replay_dram(
        controller.channel,
        addresses * controller.block_size_bytes,
        fetched,
    )
