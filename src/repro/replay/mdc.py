"""Array model of the memory controller's metadata cache (MDC).

Every miss-path event touches the MDC: an L2 read miss does a ``lookup``
followed by an ``update`` (:meth:`MemoryController.read_block`), and a write
miss or store does an ``update`` (:meth:`MemoryController.record_stored`).
Since every event ends with the address inserted most-recently-used, the MDC
behaves as a plain fully-associative LRU over the *event* stream, and a
lookup hits iff fewer than ``capacity_entries`` distinct addresses were
touched since the address's previous event — the same reuse-distance
condition the L2 model uses.

Two regimes:

* **No evictions possible** — the total distinct address count (resident
  entries plus the event stream's addresses) fits in the capacity.  Then a
  lookup hits iff the address was touched by an earlier event or is already
  resident, which is a couple of vectorized first-occurrence scans.  This is
  the regime every real simulation at benchmark scale runs in.
* **Evictions possible** — the distinct count exceeds the capacity.  The
  events are replayed through the real :class:`~repro.core.metadata_cache.
  MetadataCache` methods (exact by construction).  This only occurs for
  workloads whose footprint overflows the 8192-entry MDC, where the
  per-event cost is still far below the full scalar miss path.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.metadata_cache import MetadataCache
from repro.obs import metrics


def replay_mdc(
    mdc: MetadataCache,
    addresses: np.ndarray,
    is_lookup: np.ndarray,
    values: np.ndarray,
) -> np.ndarray:
    """Replay a controller's MDC event stream.

    Each event ``i`` is a ``lookup(addresses[i])`` (iff ``is_lookup[i]``)
    followed by an ``update(addresses[i], values[i])``.  Mutates ``mdc``
    (stats and resident entries, including LRU order) exactly as the
    equivalent method-call sequence would.

    Returns:
        Boolean array aligned with events: ``True`` where a lookup hit
        (``False`` on lookup misses and on non-lookup events).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    is_lookup = np.asarray(is_lookup, dtype=np.bool_)
    values = np.asarray(values, dtype=np.int64)
    n = addresses.shape[0]
    hits = np.zeros(n, dtype=np.bool_)
    if n == 0:
        return hits

    unique, first_index = np.unique(addresses, return_index=True)
    resident = np.fromiter(mdc._entries, np.int64, len(mdc._entries))
    untouched = resident[~np.isin(resident, unique)]
    if len(unique) + len(untouched) > mdc.capacity_entries:
        # Evictions are possible: replay through the exact scalar MDC.
        if metrics.enabled():
            metrics.inc("mdc.fallback")
        for i, (address, lookup, value) in enumerate(
            zip(addresses.tolist(), is_lookup.tolist(), values.tolist())
        ):
            if lookup:
                hits[i] = mdc.lookup(address) is not None
            mdc.update(address, value)
        return hits

    # No eviction can occur: a lookup hits iff the address was touched by an
    # earlier event or is already resident.
    if metrics.enabled():
        metrics.inc("mdc.fast_path")
    if values.min() < 1 or values.max() > mdc.max_bursts:
        raise ValueError(f"burst count must be 1..{mdc.max_bursts}")
    first_occurrence = np.zeros(n, dtype=np.bool_)
    first_occurrence[first_index] = True
    present_before = ~first_occurrence | np.isin(addresses, resident)
    hits = is_lookup & present_before
    lookups = int(is_lookup.sum())
    mdc.stats.hits += int(hits.sum())
    mdc.stats.misses += lookups - int(hits.sum())
    mdc.stats.updates += n

    # Rebuild the entries: untouched residents keep their relative LRU order
    # below every touched address; touched addresses rank by last event.
    last_index = n - 1 - np.unique(addresses[::-1], return_index=True)[1]
    recency = np.argsort(last_index)
    entries: OrderedDict[int, int] = OrderedDict()
    for address in untouched.tolist():
        entries[address] = mdc._entries[address]
    for address, index in zip(
        unique[recency].tolist(), last_index[recency].tolist()
    ):
        entries[address] = int(values[index])
    mdc._entries = entries
    return hits
