"""Batched row-buffer accounting for a GDDR5 channel.

Replaces per-request :meth:`~repro.gpu.dram.DRAMChannel.service` calls with
one grouped scan: requests are partitioned by bank (stable, so per-bank
order is the service order), row hits and misses fall out of comparing each
request's row with its predecessor in the same bank — seeded from the
channel's currently open rows, so state composes across kernels and a
:meth:`~repro.gpu.dram.DRAMChannel.reset_rows` between two scans is honored
— and the busy-cycle total is a handful of reductions over the burst counts
and miss penalties.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.dram import DRAMChannel


def replay_dram(
    channel: DRAMChannel, byte_addresses: np.ndarray, bursts: np.ndarray
) -> None:
    """Serve a request stream on ``channel`` at array speed.

    Mutates the channel (stats and per-bank open rows) exactly as the
    equivalent sequence of ``channel.service(address, bursts)`` calls would.

    Args:
        channel: the channel to account the requests on.
        byte_addresses: per-request byte addresses, in service order.
        bursts: per-request MAG burst counts.
    """
    byte_addresses = np.asarray(byte_addresses, dtype=np.int64)
    bursts = np.asarray(bursts, dtype=np.int64)
    n = byte_addresses.shape[0]
    if n == 0:
        return
    if bursts.min() <= 0:
        raise ValueError("bursts must be positive")

    timing = channel.timing
    rows = byte_addresses // timing.row_bytes
    banks = rows % timing.num_banks

    order = np.argsort(banks, kind="stable")
    sorted_banks = banks[order]
    sorted_rows = rows[order]

    # Previous row in the same bank; the first request of each bank group
    # compares against the bank's currently open row (-1 = precharged).
    previous_rows = np.empty(n, dtype=np.int64)
    previous_rows[1:] = sorted_rows[:-1]
    group_start = np.empty(n, dtype=np.bool_)
    group_start[0] = True
    group_start[1:] = sorted_banks[1:] != sorted_banks[:-1]
    start_indices = np.nonzero(group_start)[0]
    open_rows = np.fromiter(
        (
            -1 if (open_row := channel._open_rows[int(bank)]) is None else open_row
            for bank in sorted_banks[start_indices]
        ),
        np.int64,
        len(start_indices),
    )
    previous_rows[start_indices] = open_rows

    miss = sorted_rows != previous_rows
    pays_precharge = miss & (previous_rows != -1)
    row_misses = int(miss.sum())
    busy = (
        int(bursts.sum()) * max(timing.burst_cycles, timing.t_ccd)
        + row_misses * timing.t_rcd
        + int(pays_precharge.sum()) * timing.t_rp
    )

    channel.stats.requests += n
    channel.stats.bursts += int(bursts.sum())
    channel.stats.row_hits += n - row_misses
    channel.stats.row_misses += row_misses
    channel.stats.busy_cycles += busy

    # The last request of each bank group leaves its row open.
    end_indices = np.append(start_indices[1:] - 1, n - 1)
    for bank, row in zip(
        sorted_banks[end_indices].tolist(), sorted_rows[end_indices].tolist()
    ):
        channel._open_rows[bank] = row
