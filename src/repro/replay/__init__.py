"""Vectorized trace-replay engine.

Replaces the simulator's per-access Python loop — one ``OrderedDict`` L2
lookup per block access plus a chain of per-block memory-controller /
metadata-cache / DRAM-channel method calls per miss — with array-speed
equivalents that reproduce the scalar counters **bit-exactly**:

* :func:`repro.replay.l2.replay_l2` — exact set-associative LRU over a
  compiled trace, resolved per set via reuse distance (an access hits iff
  fewer than ``ways`` distinct lines in its set were touched since its
  previous use), with dirty tracking for eviction/writeback counts.
* :func:`repro.replay.mdc.replay_mdc` — exact fully-associative LRU
  metadata-cache replay over a controller's miss-event stream.
* :func:`repro.replay.dram.replay_dram` — grouped per-(controller, bank)
  row-hit/row-miss scan replacing per-request ``DRAMChannel.service`` calls.
* :func:`repro.replay.engine.replay_trace` — the orchestrator wired into
  ``GPUSimulator.run`` behind the ``replay_mode`` knob.
* :func:`repro.replay.reference.replay_trace_scalar` — the original scalar
  loop, kept as the n = 1 reference the equivalence suite checks against.
"""

from repro.replay.dram import replay_dram
from repro.replay.engine import replay_trace
from repro.replay.l2 import replay_l2
from repro.replay.mdc import replay_mdc
from repro.replay.reference import replay_trace_scalar

__all__ = [
    "replay_dram",
    "replay_l2",
    "replay_mdc",
    "replay_trace",
    "replay_trace_scalar",
]
