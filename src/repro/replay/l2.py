"""Array model of the set-associative LRU L2 cache.

The scalar :class:`~repro.gpu.cache.SetAssociativeCache` walks one
``OrderedDict`` per access.  This module resolves a whole compiled trace at
once: accesses are partitioned by set index, and hits are decided by reuse
distance — an access hits iff fewer than ``ways`` distinct lines in its set
were touched since the line's previous use.  The reuse distance is computed
exactly by advancing a bounded LRU *stack* (the ``ways`` most recently
touched distinct lines, most recent first) for every set simultaneously: the
per-set access streams are padded into a matrix and the stacks advance one
column at a time, so the Python-level loop runs ``O(max accesses per set)``
iterations instead of ``O(total accesses)`` — each iteration a handful of
NumPy operations over all sets.  A matched stack position *is* the access's
reuse distance; position ``>= ways`` (not found) is a miss.

Dirty state rides along in a parallel stack, which makes eviction and
writeback accounting exact: the victim of a miss in a full set is the
stack's last entry, and a writeback is charged iff its dirty bit is set —
identical to the scalar model, which is kept as the n = 1 reference oracle.

Back-to-back repeats (``counts > 1``) never expand: the first access of a
run resolves normally and the remaining ``count - 1`` are guaranteed hits on
the just-touched MRU line, exactly as in the scalar loop.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.gpu.cache import SetAssociativeCache


def replay_l2(
    cache: SetAssociativeCache,
    addresses: np.ndarray,
    is_write: np.ndarray,
    counts: np.ndarray | None = None,
) -> np.ndarray:
    """Replay a block-address stream through ``cache`` at array speed.

    Mutates ``cache`` exactly as the equivalent sequence of
    :meth:`~repro.gpu.cache.SetAssociativeCache.access` calls would — stats
    counters and the resident lines (with LRU order and dirty flags) end up
    identical.

    Args:
        cache: the cache to replay into (its current contents are the
            initial state, so successive replays compose).
        addresses: per-access global block addresses.
        is_write: per-access write flags.
        counts: optional per-access back-to-back repeat counts (RLE); a
            repeat contributes ``count - 1`` extra hits and nothing else.

    Returns:
        Boolean miss mask aligned with ``addresses`` (one entry per RLE
        access: only the first access of a repeat run can miss).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    is_write = np.asarray(is_write, dtype=np.bool_)
    n = addresses.shape[0]
    miss_mask = np.zeros(n, dtype=np.bool_)
    if counts is not None:
        counts = np.asarray(counts, dtype=np.int64)
        cache.stats.hits += int((counts - 1).sum())
    if n == 0:
        return miss_mask
    if addresses.min() < 0:
        raise ValueError("block address must be non-negative")

    num_sets, ways = cache.num_sets, cache.ways
    set_idx = addresses % num_sets

    # Stable partition by set: within a set, original order is preserved.
    order = np.argsort(set_idx, kind="stable")
    per_set = np.bincount(set_idx, minlength=num_sets)
    starts = np.cumsum(per_set) - per_set

    # Rows = active sets sorted by stream length (descending), so at column t
    # the active rows are a prefix and shorter streams simply drop out.
    active_sets = np.nonzero(per_set)[0]
    lengths = per_set[active_sets]
    by_length = np.argsort(-lengths, kind="stable")
    active_sets, lengths = active_sets[by_length], lengths[by_length]
    rows = active_sets.shape[0]
    max_len = int(lengths[0])
    row_of_set = np.full(num_sets, -1, dtype=np.int64)
    row_of_set[active_sets] = np.arange(rows)

    addr_mat = np.full((rows, max_len), -1, dtype=np.int64)
    write_mat = np.zeros((rows, max_len), dtype=np.bool_)
    pos_mat = np.zeros((rows, max_len), dtype=np.int64)
    sorted_sets = set_idx[order]
    row_col = (row_of_set[sorted_sets], np.arange(n) - starts[sorted_sets])
    addr_mat[row_col] = addresses[order]
    write_mat[row_col] = is_write[order]
    pos_mat[row_col] = order

    # LRU stacks (MRU first) seeded from the cache's current contents.
    stack = np.full((rows, ways), -1, dtype=np.int64)
    dirty = np.zeros((rows, ways), dtype=np.bool_)
    for row, set_index in enumerate(active_sets.tolist()):
        for col, (line, line_dirty) in enumerate(
            reversed(cache._sets[set_index].items())
        ):
            stack[row, col] = line
            dirty[row, col] = line_dirty

    hits = misses = evictions = writebacks = 0
    col_idx = np.arange(ways)
    # Number of rows still active at each column (lengths are descending).
    active_at = np.searchsorted(-lengths, -np.arange(max_len), side="left")
    for t in range(max_len):
        k = int(active_at[t])
        stacks, dirts = stack[:k], dirty[:k]
        addr = addr_mat[:k, t]
        write = write_mat[:k, t]

        match = stacks == addr[:, None]
        found = match.any(axis=1)
        pos = match.argmax(axis=1)
        victim = stacks[:, -1].copy()
        victim_dirty = dirts[:, -1].copy()
        new_dirty = (found & dirts[np.arange(k), pos]) | write

        # Rotate each stack: entries up to the touch point shift right and
        # the accessed line becomes MRU; a miss rotates the whole row,
        # pushing the LRU victim out.
        shifted = np.empty_like(stacks)
        shifted[:, 0] = addr
        shifted[:, 1:] = stacks[:, :-1]
        shifted_dirty = np.empty_like(dirts)
        shifted_dirty[:, 0] = new_dirty
        shifted_dirty[:, 1:] = dirts[:, :-1]
        cut = np.where(found, pos, ways - 1)
        moved = col_idx[None, :] <= cut[:, None]
        stack[:k] = np.where(moved, shifted, stacks)
        dirty[:k] = np.where(moved, shifted_dirty, dirts)

        miss = ~found
        evicted = miss & (victim != -1)
        hits += int(found.sum())
        misses += int(miss.sum())
        evictions += int(evicted.sum())
        writebacks += int((evicted & victim_dirty).sum())
        miss_mask[pos_mat[:k, t][miss]] = True

    cache.stats.hits += hits
    cache.stats.misses += misses
    cache.stats.evictions += evictions
    cache.stats.writebacks += writebacks

    # Write the final stacks back as OrderedDicts (LRU -> MRU order).
    for row, set_index in enumerate(active_sets.tolist()):
        resident: OrderedDict[int, bool] = OrderedDict()
        for col in range(ways - 1, -1, -1):
            if stack[row, col] != -1:
                resident[int(stack[row, col])] = bool(dirty[row, col])
        cache._sets[set_index] = resident
    return miss_mask
