"""GPU configuration mirroring Table II of the paper (a GTX580-like GPU)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LatencyConfig:
    """(De)compression latencies in memory-controller cycles (Section IV-A)."""

    #: E2MC compression latency per block
    e2mc_compress_cycles: int = 46
    #: E2MC decompression latency per block
    e2mc_decompress_cycles: int = 20
    #: TSLC compression latency (E2MC + 12 cycles to fetch code lengths
    #: + 2 cycles to add them and select the sub-block)
    tslc_compress_cycles: int = 60
    #: TSLC decompression latency (same as E2MC; the extra logic is trivial)
    tslc_decompress_cycles: int = 20
    #: baseline DRAM access latency seen by an L2 miss (core cycles)
    dram_access_latency_cycles: int = 220
    #: L2 hit latency (core cycles)
    l2_hit_latency_cycles: int = 32
    #: fraction of (de)compression latency that cannot be hidden by the
    #: GPU's thread-level parallelism (GPUs hide most of it, Section III-C)
    exposed_latency_fraction: float = 0.01


@dataclass(frozen=True)
class GPUConfig:
    """Baseline simulator configuration (Table II).

    The defaults describe the GTX580-like GPU of the paper: 16 SMs at
    822 MHz, 768 KB L2, six GDDR5 memory controllers at 1002 MHz with a
    32-bit bus and burst length 8, for 192.4 GB/s of total bandwidth and a
    memory access granularity of 32 B.
    """

    num_sms: int = 16
    sm_freq_mhz: float = 822.0
    max_threads_per_sm: int = 1536
    max_cta_size: int = 512
    registers_per_sm: int = 32768
    shared_memory_per_sm_kb: int = 48
    l1_cache_per_sm_kb: int = 16
    l2_cache_kb: int = 768
    l2_line_bytes: int = 128
    l2_ways: int = 16
    memory_type: str = "GDDR5"
    num_memory_controllers: int = 6
    memory_clock_mhz: float = 1002.0
    memory_bandwidth_gbps: float = 192.4
    bus_width_bits: int = 32
    burst_length: int = 8
    latency: LatencyConfig = field(default_factory=LatencyConfig)

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.num_memory_controllers <= 0:
            raise ValueError("SM and memory-controller counts must be positive")
        if self.sm_freq_mhz <= 0 or self.memory_clock_mhz <= 0:
            raise ValueError("clock frequencies must be positive")
        if self.l2_cache_kb <= 0 or self.l2_line_bytes <= 0:
            raise ValueError("L2 geometry must be positive")

    # ------------------------------------------------------------------ #
    # derived quantities

    @property
    def mag_bytes(self) -> int:
        """Memory access granularity: bus width × burst length (32 B here)."""
        return self.bus_width_bits // 8 * self.burst_length

    @property
    def block_size_bytes(self) -> int:
        """Memory block / L2 line size (128 B)."""
        return self.l2_line_bytes

    @property
    def bursts_per_block(self) -> int:
        """Bursts needed for an uncompressed block."""
        return self.block_size_bytes // self.mag_bytes

    @property
    def core_clock_hz(self) -> float:
        """SM clock in Hz."""
        return self.sm_freq_mhz * 1e6

    @property
    def memory_clock_hz(self) -> float:
        """Memory clock in Hz."""
        return self.memory_clock_mhz * 1e6

    @property
    def bandwidth_bytes_per_sec(self) -> float:
        """Total off-chip bandwidth in bytes/second."""
        return self.memory_bandwidth_gbps * 1e9

    @property
    def bandwidth_per_controller(self) -> float:
        """Off-chip bandwidth per memory controller in bytes/second."""
        return self.bandwidth_bytes_per_sec / self.num_memory_controllers

    @property
    def burst_transfer_seconds(self) -> float:
        """Time for one MAG burst on one controller at peak bandwidth."""
        return self.mag_bytes / self.bandwidth_per_controller

    @property
    def l2_num_lines(self) -> int:
        """Number of lines in the shared L2."""
        return self.l2_cache_kb * 1024 // self.l2_line_bytes

    @property
    def l2_num_sets(self) -> int:
        """Number of sets in the shared L2."""
        return max(1, self.l2_num_lines // self.l2_ways)

    @property
    def peak_throughput_ops(self) -> float:
        """Peak scalar operations per second (32 lanes per SM)."""
        return self.num_sms * 32 * self.core_clock_hz

    def scaled(self, **overrides) -> "GPUConfig":
        """Return a copy of the configuration with the given fields replaced."""
        values = {
            "num_sms": self.num_sms,
            "sm_freq_mhz": self.sm_freq_mhz,
            "max_threads_per_sm": self.max_threads_per_sm,
            "max_cta_size": self.max_cta_size,
            "registers_per_sm": self.registers_per_sm,
            "shared_memory_per_sm_kb": self.shared_memory_per_sm_kb,
            "l1_cache_per_sm_kb": self.l1_cache_per_sm_kb,
            "l2_cache_kb": self.l2_cache_kb,
            "l2_line_bytes": self.l2_line_bytes,
            "l2_ways": self.l2_ways,
            "memory_type": self.memory_type,
            "num_memory_controllers": self.num_memory_controllers,
            "memory_clock_mhz": self.memory_clock_mhz,
            "memory_bandwidth_gbps": self.memory_bandwidth_gbps,
            "bus_width_bits": self.bus_width_bits,
            "burst_length": self.burst_length,
            "latency": self.latency,
        }
        values.update(overrides)
        return GPUConfig(**values)

    def table2_rows(self) -> list[tuple[str, str]]:
        """The configuration formatted as the rows of Table II."""
        return [
            ("#SMs", str(self.num_sms)),
            ("SM freq (MHz)", f"{self.sm_freq_mhz:g}"),
            ("Max #Threads/SM", str(self.max_threads_per_sm)),
            ("Max CTA size", str(self.max_cta_size)),
            ("L1 $ size/SM", f"{self.l1_cache_per_sm_kb} KB"),
            ("L2 $ size", f"{self.l2_cache_kb} KB"),
            ("#Registers/SM", f"{self.registers_per_sm // 1024} K"),
            ("Shared memory/SM", f"{self.shared_memory_per_sm_kb} KB"),
            ("Memory type", self.memory_type),
            ("# Memory controllers", str(self.num_memory_controllers)),
            ("Memory clock", f"{self.memory_clock_mhz:g} MHz"),
            ("Memory bandwidth", f"{self.memory_bandwidth_gbps:g} GB/s"),
            ("Bus width", f"{self.bus_width_bits}-bit"),
            ("Burst length", str(self.burst_length)),
        ]
