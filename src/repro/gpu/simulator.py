"""Trace-driven GPU simulator.

Ties the substrates together: a workload generates its data and memory trace,
a compression backend decides how every block is stored, the L2 cache filters
the trace into memory-controller traffic, GDDR5 channels turn bursts into
busy time, and analytic timing/energy models turn the resulting counters into
execution time, energy and EDP.  Kernel outputs recomputed from the degraded
(approximated) inputs feed the application-specific error metric.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.backends import CompressionBackend
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig
from repro.gpu.energy import EnergyBreakdown, EnergyModel
from repro.gpu.memory_controller import MemoryController
from repro.gpu.sm import SMCluster
from repro.metrics.fidelity import fidelity_summary
from repro.obs import metrics
from repro.obs.tracing import span
from repro.replay.engine import replay_trace
from repro.replay.reference import replay_trace_scalar
from repro.utils.blocks import array_to_blocks, blocks_to_array
from repro.utils.sampling import sample_evenly
from repro.workloads.base import Region, Workload, WorkloadOutput


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulation run produces.

    The relative metrics of the paper's figures (speedup, normalized
    bandwidth, energy, EDP) are obtained by dividing the corresponding fields
    of two results (scheme vs. the E2MC baseline).
    """

    workload: str
    backend: str
    exec_time_s: float
    compute_time_s: float
    memory_time_s: float
    exposed_latency_s: float
    compute_ops: float
    total_bursts: int
    read_bursts: int
    write_bursts: int
    dram_bytes: int
    dram_row_misses: int
    l2_accesses: int
    l2_hit_rate: float
    stored_blocks: int
    lossy_blocks: int
    error_percent: float
    energy: EnergyBreakdown
    mdc_hit_rate: float = 1.0
    extra_metrics: dict = field(default_factory=dict)

    @property
    def energy_j(self) -> float:
        """Total energy in joules."""
        return self.energy.total_j

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy.edp(self.exec_time_s)

    @property
    def memory_bound_fraction(self) -> float:
        """How much of the execution time the memory system accounts for."""
        if self.exec_time_s == 0:
            return 0.0
        return min(1.0, self.memory_time_s / self.exec_time_s)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Execution-time speedup of this run relative to ``baseline``."""
        if self.exec_time_s == 0:
            raise ZeroDivisionError("cannot compute speedup of a zero-time run")
        return baseline.exec_time_s / self.exec_time_s

    def bandwidth_ratio_over(self, baseline: "SimulationResult") -> float:
        """Off-chip traffic of this run normalized to ``baseline`` (lower is better)."""
        if baseline.dram_bytes == 0:
            raise ZeroDivisionError("baseline transferred no data")
        return self.dram_bytes / baseline.dram_bytes

    def energy_ratio_over(self, baseline: "SimulationResult") -> float:
        """Energy of this run normalized to ``baseline`` (lower is better)."""
        return self.energy_j / baseline.energy_j

    def edp_ratio_over(self, baseline: "SimulationResult") -> float:
        """EDP of this run normalized to ``baseline`` (lower is better)."""
        return self.edp / baseline.edp

    # ------------------------------------------------------------------ #
    # serialization (the campaign result store persists results as JSON)

    def to_dict(self) -> dict:
        """The result as a JSON-serializable dict (lossless round trip).

        Floats survive JSON exactly (``json`` emits ``repr``-precision
        values), so ``from_dict(json.loads(json.dumps(to_dict())))``
        reconstructs an identical result.
        """
        return {
            "workload": self.workload,
            "backend": self.backend,
            "exec_time_s": self.exec_time_s,
            "compute_time_s": self.compute_time_s,
            "memory_time_s": self.memory_time_s,
            "exposed_latency_s": self.exposed_latency_s,
            "compute_ops": self.compute_ops,
            "total_bursts": self.total_bursts,
            "read_bursts": self.read_bursts,
            "write_bursts": self.write_bursts,
            "dram_bytes": self.dram_bytes,
            "dram_row_misses": self.dram_row_misses,
            "l2_accesses": self.l2_accesses,
            "l2_hit_rate": self.l2_hit_rate,
            "stored_blocks": self.stored_blocks,
            "lossy_blocks": self.lossy_blocks,
            "error_percent": self.error_percent,
            "energy": self.energy.to_dict(),
            "mdc_hit_rate": self.mdc_hit_rate,
            "extra_metrics": dict(self.extra_metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Reconstruct a result produced by :meth:`to_dict`."""
        return cls(
            workload=data["workload"],
            backend=data["backend"],
            exec_time_s=float(data["exec_time_s"]),
            compute_time_s=float(data["compute_time_s"]),
            memory_time_s=float(data["memory_time_s"]),
            exposed_latency_s=float(data["exposed_latency_s"]),
            compute_ops=float(data["compute_ops"]),
            total_bursts=int(data["total_bursts"]),
            read_bursts=int(data["read_bursts"]),
            write_bursts=int(data["write_bursts"]),
            dram_bytes=int(data["dram_bytes"]),
            dram_row_misses=int(data["dram_row_misses"]),
            l2_accesses=int(data["l2_accesses"]),
            l2_hit_rate=float(data["l2_hit_rate"]),
            stored_blocks=int(data["stored_blocks"]),
            lossy_blocks=int(data["lossy_blocks"]),
            error_percent=float(data["error_percent"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
            mdc_hit_rate=float(data.get("mdc_hit_rate", 1.0)),
            extra_metrics=dict(data.get("extra_metrics", {})),
        )


class GPUSimulator:
    """Trace-driven simulation of one workload under one compression backend.

    Args:
        config: GPU configuration (Table II by default).
        energy_model: energy model; a default :class:`EnergyModel` is created
            when omitted.
        sm_efficiency: achieved fraction of peak SM issue rate.
        overlap_penalty: fraction of the shorter of (compute, memory) time
            that is *not* hidden under the longer one — models imperfect
            overlap of computation and memory transfers.
        train_samples: number of blocks sampled per workload to train the
            compression backend's probability model (E2MC's online sampling).
        batch_store: run the host-to-device store phase through the backend's
            batched analysis kernels (:mod:`repro.kernels`), one
            ``store_batch`` call per region instead of one ``store`` call per
            block.  Results are identical; disable only to benchmark the
            scalar path.
        replay_mode: how the kernel-execution phase replays the block trace.
            ``"vectorized"`` (the default) runs the array engine
            (:mod:`repro.replay`): compiled trace, reuse-distance L2,
            batched miss-path accounting.  ``"scalar"`` runs the original
            per-access loop.  Results are bit-identical; the scalar mode
            exists as the reference oracle and for benchmarking.
        chunk_accesses: with the vectorized engine, replay the compiled
            trace in bounded windows of at most this many compiled (RLE)
            entries, threading L2/MDC/DRAM/storage state across chunk
            boundaries — same counters and payloads bit-exactly, peak
            memory O(chunk) instead of O(trace), which is what lets
            scale=1 runs fit a configured budget.  ``None`` (the default)
            replays the whole compiled trace in one pass; the scalar
            replay mode is inherently streaming and ignores it.
        payload_digest: record a SHA-256 digest of the final stored state —
            every stored block's address, burst count, stored bits, lossy
            flag and (possibly degraded) data bytes, in address order — as
            ``extra_metrics["payload_sha256"]``.  The golden-result suite
            uses it to pin the scalar and batched payload codecs to the
            same bytes; off by default because campaign results are meant
            to be content-comparable across runs that store different
            amounts of data (e.g. different trace subsets).
    """

    #: valid ``replay_mode`` values
    REPLAY_MODES = ("vectorized", "scalar")

    def __init__(
        self,
        config: GPUConfig | None = None,
        energy_model: EnergyModel | None = None,
        sm_efficiency: float = 0.7,
        overlap_penalty: float = 0.15,
        train_samples: int = 1024,
        batch_store: bool = True,
        replay_mode: str = "vectorized",
        chunk_accesses: int | None = None,
        payload_digest: bool = False,
    ) -> None:
        self.config = config or GPUConfig()
        self.energy_model = energy_model or EnergyModel()
        self.sm_cluster = SMCluster(self.config, efficiency=sm_efficiency)
        if not 0 <= overlap_penalty <= 1:
            raise ValueError("overlap_penalty must be within [0, 1]")
        if train_samples <= 0:
            raise ValueError("train_samples must be positive")
        if replay_mode not in self.REPLAY_MODES:
            raise ValueError(
                f"replay_mode must be one of {self.REPLAY_MODES}, got {replay_mode!r}"
            )
        if chunk_accesses is not None and chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive")
        self.overlap_penalty = overlap_penalty
        self.train_samples = train_samples
        self.batch_store = batch_store
        self.replay_mode = replay_mode
        self.chunk_accesses = chunk_accesses
        self.payload_digest = payload_digest

    # ------------------------------------------------------------------ #
    # public API

    def run(
        self,
        workload: Workload,
        backend: CompressionBackend,
        compute_error: bool = True,
    ) -> SimulationResult:
        """Simulate ``workload`` with ``backend`` and return the result."""
        block_size = self.config.block_size_bytes

        with span("sim.generate", cat="sim", workload=workload.name):
            input_regions = workload.generate()
            exact_outputs = workload.run(workload.input_arrays(input_regions))
            all_regions: dict[str, Region] = dict(input_regions)
            all_regions.update(workload.output_regions(exact_outputs))

            region_blocks = {
                name: array_to_blocks(region.array, block_size)
                for name, region in all_regions.items()
            }
            base_addresses = self._layout(all_regions, region_blocks)

        with span("sim.train", cat="sim", workload=workload.name):
            self._train_backend(backend, input_regions, region_blocks)

        controllers = [
            MemoryController(
                controller_id=i,
                backend=backend,
                mag_bytes=self.config.mag_bytes,
                block_size_bytes=block_size,
            )
            for i in range(self.config.num_memory_controllers)
        ]
        l2 = SetAssociativeCache(
            size_bytes=self.config.l2_cache_kb * 1024,
            line_bytes=self.config.l2_line_bytes,
            ways=self.config.l2_ways,
        )

        # Host-to-device copy: every input region is compressed and stored.
        # This traffic happens before the kernel and is not charged to it.
        # With batch_store the backend analyzes each region's blocks in one
        # vectorized call; the per-block loop only dispatches the results to
        # the interleaved controllers.
        with span("sim.h2d_store", cat="sim", workload=workload.name,
                  batch=self.batch_store):
            for name, region in input_regions.items():
                base = base_addresses[name]
                if self.batch_store:
                    stored_blocks = backend.store_batch(
                        region_blocks[name], approximable=region.approximable
                    )
                    for index, stored in enumerate(stored_blocks):
                        self._controller(controllers, base + index).record_stored(
                            base + index, stored, count_traffic=False
                        )
                else:
                    for index, block in enumerate(region_blocks[name]):
                        self._controller(controllers, base + index).store_block(
                            base + index,
                            block,
                            approximable=region.approximable,
                            count_traffic=False,
                        )

        # Kernel execution: replay the workload's block trace through the L2.
        # The vectorized engine (repro.replay) and the scalar per-access loop
        # produce bit-identical counters; the engine is the default because
        # trace replay dominates sweep time.
        with span("sim.trace_build", cat="sim", workload=workload.name):
            trace = workload.trace(all_regions, block_size_bytes=block_size)
        replay_kwargs = dict(
            all_regions=all_regions,
            region_blocks=region_blocks,
            base_addresses=base_addresses,
            l2=l2,
            controllers=controllers,
            interleave_blocks=self.CHANNEL_INTERLEAVE_BLOCKS,
        )
        if self.replay_mode == "vectorized":
            replay = replay_trace
            replay_kwargs["chunk_accesses"] = self.chunk_accesses
        else:
            # The scalar loop streams one access at a time already — a chunk
            # budget is meaningless there, so it is silently ignored.
            replay = replay_trace_scalar
        with span("sim.replay", cat="sim", workload=workload.name,
                  mode=self.replay_mode, accesses=len(trace)):
            replay(trace, **replay_kwargs)

        error_percent = 0.0
        fidelity: dict[str, float] = {}
        if compute_error:
            with span("sim.error", cat="sim", workload=workload.name):
                degraded = self._degraded_inputs(
                    workload, input_regions, region_blocks, base_addresses, controllers
                )
                approx_outputs = workload.run(degraded)
                error_percent = workload.error(exact_outputs, approx_outputs)
                fidelity = self._region_fidelity(input_regions, degraded)

        return self._assemble_result(
            workload, backend, all_regions, controllers, l2, error_percent,
            fidelity=fidelity,
        )

    # ------------------------------------------------------------------ #
    # pipeline stages

    def _layout(
        self,
        regions: dict[str, Region],
        region_blocks: dict[str, list[bytes]],
    ) -> dict[str, int]:
        """Assign each region a base block address in a flat address space."""
        base_addresses: dict[str, int] = {}
        next_block = 0
        for name in regions:
            base_addresses[name] = next_block
            next_block += len(region_blocks[name])
        return base_addresses

    #: consecutive blocks kept on the same controller (2 KB, one DRAM row)
    #: before moving to the next — the coarse interleaving real GPUs use to
    #: preserve row-buffer locality while still balancing channels.
    CHANNEL_INTERLEAVE_BLOCKS = 16

    def _controller(
        self, controllers: list[MemoryController], block_address: int
    ) -> MemoryController:
        """Interleave block addresses across memory controllers."""
        group = block_address // self.CHANNEL_INTERLEAVE_BLOCKS
        return controllers[group % len(controllers)]

    def _train_backend(
        self,
        backend: CompressionBackend,
        input_regions: dict[str, Region],
        region_blocks: dict[str, list[bytes]],
    ) -> None:
        """Sample input blocks to train the backend's probability model.

        The heavy part of training — counting 16-bit symbols over the sampled
        bytes — runs as one ``np.bincount`` inside the symbol model
        (:meth:`repro.compression.e2mc.SymbolModel.fit`) rather than a
        per-block ``Counter`` update.
        """
        all_blocks: list[bytes] = []
        for name in input_regions:
            all_blocks.extend(region_blocks[name])
        samples = sample_evenly(all_blocks, self.train_samples)
        if samples:
            backend.train(samples)

    def _degraded_inputs(
        self,
        workload: Workload,
        input_regions: dict[str, Region],
        region_blocks: dict[str, list[bytes]],
        base_addresses: dict[str, int],
        controllers: list[MemoryController],
    ) -> dict[str, np.ndarray]:
        """Reassemble the input arrays as the kernel would read them back."""
        degraded: dict[str, np.ndarray] = {}
        for name, region in input_regions.items():
            base = base_addresses[name]
            blocks = []
            for index, original in enumerate(region_blocks[name]):
                stored = self._controller(controllers, base + index).stored_data(
                    base + index
                )
                blocks.append(stored if stored is not None else original)
            degraded[name] = blocks_to_array(
                blocks, region.array.dtype, region.array.shape,
                block_size=self.config.block_size_bytes,
            )
        return degraded

    @staticmethod
    def _region_fidelity(
        input_regions: dict[str, Region],
        degraded: dict[str, np.ndarray],
    ) -> dict[str, float]:
        """Statistical fidelity panel over the degraded approximable inputs.

        Compares what the lossy path stored against the exact data, region
        by region, and keeps the worst case (min Pearson, max KS/IQR) —
        the data-level complement of the output-level application error,
        computed for every workload including ingested traces whose kernel
        is not re-runnable.  Non-approximable regions are exempt from the
        lossy path by construction and excluded.
        """
        exact = {
            name: region.array
            for name, region in input_regions.items()
            if region.approximable
        }
        if not exact:
            return {}
        return fidelity_summary(exact, {name: degraded[name] for name in exact})

    def _assemble_result(
        self,
        workload: Workload,
        backend: CompressionBackend,
        all_regions: dict[str, Region],
        controllers: list[MemoryController],
        l2: SetAssociativeCache,
        error_percent: float,
        fidelity: dict[str, float] | None = None,
    ) -> SimulationResult:
        read_bursts = sum(c.stats.read_bursts for c in controllers)
        write_bursts = sum(c.stats.write_bursts for c in controllers)
        total_bursts = read_bursts + write_bursts
        dram_bytes = total_bursts * self.config.mag_bytes
        row_misses = sum(c.channel.stats.row_misses for c in controllers)
        lossy_blocks = sum(c.stats.lossy_blocks for c in controllers)
        stored_blocks = sum(c.stored_blocks for c in controllers)
        compress_ops = sum(c.stats.compress_invocations for c in controllers)
        decompress_ops = sum(c.stats.decompress_invocations for c in controllers)
        mdc_hit_rates = [c.mdc.stats.hit_rate for c in controllers if c.mdc.stats.accesses]
        mdc_hit_rate = float(np.mean(mdc_hit_rates)) if mdc_hit_rates else 1.0

        compute_ops = workload.compute_ops(all_regions)
        compute_cycles = self.sm_cluster.compute_cycles(compute_ops)
        compute_time = compute_cycles / self.config.core_clock_hz

        busiest_channel = max(c.busy_memory_cycles for c in controllers)
        memory_time = busiest_channel / self.config.memory_clock_hz

        latency_cfg = self.config.latency
        reads = sum(c.stats.reads for c in controllers)
        writes = sum(c.stats.writes for c in controllers)
        exposed_cycles = latency_cfg.exposed_latency_fraction * (
            reads * backend.decompress_latency_cycles
            + writes * backend.compress_latency_cycles
        ) / max(1, len(controllers))
        exposed_time = exposed_cycles / self.config.memory_clock_hz

        exec_time = (
            max(compute_time, memory_time)
            + self.overlap_penalty * min(compute_time, memory_time)
            + exposed_time
        )

        energy = self.energy_model.evaluate(
            exec_time_s=exec_time,
            compute_ops=compute_ops,
            l2_accesses=l2.stats.accesses,
            dram_bursts=total_bursts,
            dram_row_misses=row_misses,
            compressed_blocks=compress_ops,
            decompressed_blocks=decompress_ops,
            mag_bytes=self.config.mag_bytes,
        )

        extra_metrics = {
            "mdc_extra_bursts": sum(c.stats.mdc_extra_bursts for c in controllers),
            # final stored footprint in bits; with the uncompressed footprint
            # (stored_blocks * block bits) this yields the raw compression
            # ratio of a run without re-walking the storage
            "stored_bits": sum(
                stored.stored_bits
                for controller in controllers
                for _, stored in controller.stored_items()
            ),
        }
        if fidelity:
            extra_metrics.update(fidelity)
        if self.payload_digest:
            extra_metrics["payload_sha256"] = self._payload_digest(controllers)

        if metrics.enabled():
            metrics.inc("sim.runs")
            metrics.inc("sim.stored_blocks", stored_blocks)
            metrics.inc("sim.lossy_blocks", lossy_blocks)
            metrics.inc("sim.total_bursts", total_bursts)
            metrics.inc("sim.dram_bytes", dram_bytes)
            metrics.observe("sim.l2_hit_rate", l2.stats.hit_rate)
            metrics.observe("sim.mdc_hit_rate", mdc_hit_rate)

        return SimulationResult(
            workload=workload.name,
            backend=backend.name,
            exec_time_s=exec_time,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            exposed_latency_s=exposed_time,
            compute_ops=compute_ops,
            total_bursts=total_bursts,
            read_bursts=read_bursts,
            write_bursts=write_bursts,
            dram_bytes=dram_bytes,
            dram_row_misses=row_misses,
            l2_accesses=l2.stats.accesses,
            l2_hit_rate=l2.stats.hit_rate,
            stored_blocks=stored_blocks,
            lossy_blocks=lossy_blocks,
            error_percent=error_percent,
            energy=energy,
            mdc_hit_rate=mdc_hit_rate,
            extra_metrics=extra_metrics,
        )

    @staticmethod
    def _payload_digest(controllers: list[MemoryController]) -> str:
        """SHA-256 over the final stored state of every block, address-ordered.

        Hashes address, burst count, stored bits, lossy flag and the stored
        (possibly degraded) data bytes, so two runs agree iff their payload
        codecs produced identical storage.
        """
        entries = [
            (address, stored)
            for controller in controllers
            for address, stored in controller.stored_items()
        ]
        digest = hashlib.sha256()
        for address, stored in sorted(entries, key=lambda item: item[0]):
            digest.update(
                f"{address}:{stored.bursts}:{stored.stored_bits}:"
                f"{int(stored.lossy)}:".encode()
            )
            digest.update(stored.data)
        return digest.hexdigest()
