"""Streaming-multiprocessor compute model.

The trace-driven simulator does not execute instructions; it needs the SMs
only to translate a workload's arithmetic work into compute cycles and to
bound how much memory latency the GPU can hide.  ``SMCluster`` models the 16
GTX580-class SMs of Table II as a throughput resource with an efficiency
factor for control/divergence overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class SMCluster:
    """Aggregate compute throughput of all SMs.

    Args:
        config: the GPU configuration (SM count, clock).
        lanes_per_sm: scalar operations issued per SM per core-clock cycle;
            GTX580 SMs have 32 CUDA cores running at twice the core clock, so
            64 is used as the effective per-core-cycle issue width.
        efficiency: achieved fraction of peak issue rate for real kernels
            (branching, scheduling and load-use stalls keep this below 1).
    """

    config: GPUConfig
    lanes_per_sm: int = 64
    efficiency: float = 0.7

    def __post_init__(self) -> None:
        if self.lanes_per_sm <= 0:
            raise ValueError("lanes_per_sm must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def peak_ops_per_cycle(self) -> float:
        """Scalar operations the whole GPU can issue per core cycle."""
        return self.config.num_sms * self.lanes_per_sm

    @property
    def sustained_ops_per_cycle(self) -> float:
        """Achievable operations per cycle including the efficiency factor."""
        return self.peak_ops_per_cycle * self.efficiency

    def compute_cycles(self, total_ops: float) -> float:
        """Core cycles to execute ``total_ops`` scalar operations."""
        if total_ops < 0:
            raise ValueError("total_ops must be non-negative")
        return total_ops / self.sustained_ops_per_cycle

    def concurrency(self) -> int:
        """Maximum resident threads across the GPU (latency-hiding capacity)."""
        return self.config.num_sms * self.config.max_threads_per_sm
