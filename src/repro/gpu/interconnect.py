"""Interconnection network between the SMs/L2 and the memory controllers.

The paper's system (Fig. 3) places a crossbar between the compute subsystem
and the memory partitions.  For a trace-driven model the interconnect matters
as (a) a per-message latency contribution and (b) a bandwidth ceiling that is
normally far above the DRAM bandwidth; both are modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class InterconnectStats:
    """Message and flit counters."""

    messages: int = 0
    flits: int = 0


@dataclass
class Interconnect:
    """A simple crossbar: fixed latency, flit-based bandwidth accounting.

    Args:
        latency_cycles: one-way traversal latency in core cycles.
        flit_bytes: flit width; a 128 B response occupies several flits.
        bisection_bytes_per_cycle: aggregate bandwidth in bytes per core cycle.
    """

    latency_cycles: int = 12
    flit_bytes: int = 32
    bisection_bytes_per_cycle: float = 512.0
    stats: InterconnectStats = field(default_factory=InterconnectStats)

    def transfer(self, payload_bytes: int) -> int:
        """Record a message and return its serialization cycles."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        flits = max(1, -(-payload_bytes // self.flit_bytes))
        self.stats.messages += 1
        self.stats.flits += flits
        return flits

    def occupancy_cycles(self) -> float:
        """Total cycles the crossbar has been occupied by recorded traffic."""
        return self.stats.flits * self.flit_bytes / self.bisection_bytes_per_cycle

    def round_trip_latency(self) -> int:
        """Request + response traversal latency in core cycles."""
        return 2 * self.latency_cycles
