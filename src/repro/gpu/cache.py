"""Set-associative cache model with LRU replacement.

Used for the shared L2 cache of the GPU model (and reusable for the per-SM L1
if a finer model is needed).  Operates at block (line) granularity on the
global addresses the simulator assigns to workload regions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss/writeback counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate; 0.0 when no access has been made."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        """Miss rate; 0.0 when no access has been made."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """A write-back, write-allocate, LRU set-associative cache.

    Args:
        size_bytes: total capacity.
        line_bytes: line (block) size.
        ways: associativity.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 128, ways: int = 16) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (line_bytes * ways):
            raise ValueError(
                f"cache size {size_bytes} is not divisible by line×ways "
                f"({line_bytes}×{ways})"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        # Each set maps line address -> dirty flag, ordered by recency.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _set_index(self, block_address: int) -> int:
        return block_address % self.num_sets

    def access(self, block_address: int, is_write: bool = False) -> bool:
        """Access a block; returns ``True`` on a hit.

        On a miss the line is allocated (write-allocate); the victim, if
        dirty, increments the writeback counter so the memory controller can
        account for the extra traffic.
        """
        if block_address < 0:
            raise ValueError("block address must be non-negative")
        target_set = self._sets[self._set_index(block_address)]
        if block_address in target_set:
            target_set.move_to_end(block_address)
            if is_write:
                target_set[block_address] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(target_set) >= self.ways:
            _, dirty = target_set.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        target_set[block_address] = is_write
        return False

    def contains(self, block_address: int) -> bool:
        """Whether a block is currently cached (does not update LRU/stats)."""
        return block_address in self._sets[self._set_index(block_address)]

    def flush(self) -> int:
        """Write back all dirty lines and empty the cache.

        Every resident line leaves the cache, so the ``evictions`` counter
        grows by the pre-flush occupancy — the same accounting as a capacity
        eviction in :meth:`access` (it used to count only capacity evictions,
        silently undercounting lines removed by a flush).

        Returns:
            The number of dirty lines written back.
        """
        writebacks = 0
        for cache_set in self._sets:
            for _, dirty in cache_set.items():
                if dirty:
                    writebacks += 1
            self.stats.evictions += len(cache_set)
            cache_set.clear()
        self.stats.writebacks += writebacks
        return writebacks

    @property
    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)
