"""Compression backends pluggable into the memory controller.

The memory controller does not care whether blocks are stored raw, losslessly
compressed or selectively-lossily compressed; it only needs, per block, the
number of MAG bursts to fetch, the bits actually stored and the data that a
subsequent read returns.  A :class:`CompressionBackend` provides exactly that
for three families:

* :class:`NoCompressionBackend` — the uncompressed baseline,
* :class:`LosslessBackend` — any :class:`~repro.compression.base.BlockCompressor`
  (BDI, FPC, C-PACK, E2MC, BPC) with MAG-aware burst accounting,
* :class:`SLCBackend` — the paper's selective lossy compression.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.compression.base import BlockCompressor, as_block_bytes
from repro.compression.registry import scheme_latency
from repro.compression.stats import bursts_for_size
from repro.core.config import SLCMode
from repro.core.slc import SLCCompressor
from repro.obs import metrics


@dataclass(frozen=True)
class StoredBlock:
    """What the memory controller records about one stored block."""

    #: MAG bursts needed to read the block back
    bursts: int
    #: bits actually stored (compressed payload + header)
    stored_bits: int
    #: the data a read of this block returns (may be degraded for lossy blocks)
    data: bytes
    #: whether symbols were approximated
    lossy: bool = False


class CompressionBackend(ABC):
    """Interface between the memory controller and a compression scheme."""

    name: str = "abstract"

    def __init__(self, block_size_bytes: int = 128, mag_bytes: int = 32) -> None:
        self.block_size_bytes = block_size_bytes
        self.mag_bytes = mag_bytes

    @property
    def max_bursts(self) -> int:
        """Bursts for an uncompressed block."""
        return self.block_size_bytes // self.mag_bytes

    def train(self, blocks: list[bytes]) -> None:  # noqa: B027 - optional hook
        """Adapt any probability model to sample data (E2MC / SLC only)."""

    @abstractmethod
    def store(self, block: bytes, approximable: bool = True) -> StoredBlock:
        """Decide how a block is stored and what a read of it returns."""

    def store_batch(
        self, blocks: list[bytes], approximable: bool = True
    ) -> list[StoredBlock]:
        """Batched :meth:`store` over all blocks of a region.

        The default simply loops; backends with vectorized analysis kernels
        (E2MC, SLC) override it.  Results are identical to calling
        :meth:`store` per block, in order.
        """
        return [self.store(block, approximable=approximable) for block in blocks]

    @property
    def compress_latency_cycles(self) -> int:
        """Compression latency in memory-controller cycles."""
        return 0

    @property
    def decompress_latency_cycles(self) -> int:
        """Decompression latency in memory-controller cycles."""
        return 0


class NoCompressionBackend(CompressionBackend):
    """Baseline: every block is stored raw and costs the full burst count."""

    name = "uncompressed"

    def store(self, block: bytes, approximable: bool = True) -> StoredBlock:
        return StoredBlock(
            bursts=self.max_bursts,
            stored_bits=self.block_size_bytes * 8,
            data=as_block_bytes(block),
            lossy=False,
        )


#: latency fallback for compressors that are not in the registry (custom /
#: test compressors): the E2MC figures this class used to hard-code
_FALLBACK_LATENCY = (46, 20)


class LosslessBackend(CompressionBackend):
    """MAG-aware storage through any lossless block compressor.

    Latencies default to the per-scheme figures the compression registry
    carries (:func:`repro.compression.registry.scheme_latency`); explicit
    ``compress_cycles``/``decompress_cycles`` arguments override them.
    """

    def __init__(
        self,
        compressor: BlockCompressor,
        mag_bytes: int = 32,
        compress_cycles: int | None = None,
        decompress_cycles: int | None = None,
    ) -> None:
        super().__init__(compressor.block_size_bytes, mag_bytes)
        self.compressor = compressor
        self.name = compressor.name
        if compress_cycles is None or decompress_cycles is None:
            try:
                default_compress, default_decompress = scheme_latency(compressor.name)
            except KeyError:
                default_compress, default_decompress = _FALLBACK_LATENCY
            if compress_cycles is None:
                compress_cycles = default_compress
            if decompress_cycles is None:
                decompress_cycles = default_decompress
        self._compress_cycles = int(compress_cycles)
        self._decompress_cycles = int(decompress_cycles)

    def train(self, blocks: list[bytes]) -> None:
        self.compressor.train(blocks)

    def store(self, block: bytes, approximable: bool = True) -> StoredBlock:
        compressed = self.compressor.compress(block)
        return self._stored(block, compressed.compressed_size_bits)

    def store_batch(
        self, blocks: list[bytes], approximable: bool = True
    ) -> list[StoredBlock]:
        """Batched stores through the compressor's batched size analysis.

        Every :class:`~repro.compression.base.BlockCompressor` provides
        ``analyze_batch`` — vectorized kernels for the registry schemes
        (E2MC's LUT gather, :mod:`repro.kernels.lossless` for BDI, FPC,
        C-Pack and BPC), the bit-exact scalar fallback loop for anything
        else — so the dispatch needs no per-scheme special case and matches
        :meth:`store` exactly.
        """
        return [
            self._stored(block, size_bits)
            for block, size_bits in zip(
                blocks, self.compressor.analyze_batch(blocks).tolist()
            )
        ]

    def _stored(self, block: bytes, size_bits: int) -> StoredBlock:
        stored_bytes = min((size_bits + 7) // 8, self.block_size_bytes)
        bursts = min(self.max_bursts, bursts_for_size(stored_bytes, self.mag_bytes))
        if metrics.enabled():
            metrics.inc("backend.blocks_compressed")
            metrics.inc("codec.stored_bits", size_bits)
        return StoredBlock(
            bursts=bursts,
            stored_bits=size_bits,
            data=as_block_bytes(block),
            lossy=False,
        )

    @property
    def compress_latency_cycles(self) -> int:
        return self._compress_cycles

    @property
    def decompress_latency_cycles(self) -> int:
        return self._decompress_cycles


class SLCBackend(CompressionBackend):
    """Selective lossy compression (the paper's contribution).

    Args:
        slc: the configured (and later trained) :class:`SLCCompressor`.
        compress_cycles: compression latency in controller cycles.
        decompress_cycles: decompression latency in controller cycles.
        batch_codec: materialize the degraded bytes of batched stores with
            the vectorized payload codec (:mod:`repro.kernels.codec`) instead
            of per-block :meth:`SLCCompressor.apply_decision` calls.  Results
            are identical either way; the codec microbenchmark flips this off
            to measure the scalar payload path.
    """

    def __init__(
        self,
        slc: SLCCompressor,
        compress_cycles: int = 60,
        decompress_cycles: int = 20,
        batch_codec: bool = True,
    ) -> None:
        super().__init__(slc.config.block_size_bytes, slc.config.mag_bytes)
        self.slc = slc
        self.name = f"slc-{slc.config.variant.value}"
        self._compress_cycles = compress_cycles
        self._decompress_cycles = decompress_cycles
        self.batch_codec = batch_codec
        self.lossy_blocks = 0
        self.total_blocks = 0
        self.total_overshoot_bits = 0

    def train(self, blocks: list[bytes]) -> None:
        self.slc.train(blocks)

    def store(self, block: bytes, approximable: bool = True) -> StoredBlock:
        decision = self.slc.analyze(block, approximable=approximable)
        return self._record(block, decision)

    def store_batch(
        self, blocks: list[bytes], approximable: bool = True
    ) -> list[StoredBlock]:
        """Batched stores: vectorized Fig. 4 decision + batched payload codec.

        The decision arrays come from :meth:`SLCCompressor.analyze_batch_arrays`
        and the degraded data of every lossy block from one vectorized
        truncation/prediction pass, so no per-block Python codec work
        remains.  Per-block results and the backend's own counters are
        identical to calling :meth:`store` per block, in order (the scalar
        path stays available as the oracle via ``batch_codec=False``).
        """
        view = self.slc.symbol_view(blocks)
        if view is None:
            return [self.store(block, approximable=approximable) for block in blocks]
        if not self.batch_codec:
            decisions = self.slc.analyze_batch(view, approximable=approximable)
            return [
                self._record(block, decision)
                for block, decision in zip(view, decisions)
            ]
        codec_start = time.perf_counter() if metrics.enabled() else 0.0
        decisions = self.slc.analyze_batch_arrays(view, approximable=approximable)
        data = self.slc.apply_decision_batch(view, decisions)
        lossy = decisions.lossy_mask
        self.total_blocks += len(decisions)
        self.lossy_blocks += int(lossy.sum())
        overshoot = decisions.bits_removed[lossy] - decisions.extra_bits[lossy]
        self.total_overshoot_bits += int(np.maximum(0, overshoot).sum())
        if metrics.enabled():
            # codec bits/s is derivable from the two counters (mean over
            # merged snapshots stays exact: total bits / total seconds)
            metrics.inc("codec.encode_s", time.perf_counter() - codec_start)
            metrics.inc("codec.stored_bits", int(decisions.stored_size_bits.sum()))
            metrics.inc("backend.blocks_compressed", len(decisions))
            metrics.inc("backend.lossy_blocks", int(lossy.sum()))
        return [
            StoredBlock(
                bursts=bursts,
                stored_bits=stored_bits,
                data=block_data,
                lossy=block_lossy,
            )
            for bursts, stored_bits, block_data, block_lossy in zip(
                decisions.bursts.tolist(),
                decisions.stored_size_bits.tolist(),
                data,
                lossy.tolist(),
            )
        ]

    def _record(self, block: bytes, decision) -> StoredBlock:
        data = self.slc.apply_decision(block, decision)
        self.total_blocks += 1
        if metrics.enabled():
            metrics.inc("backend.blocks_compressed")
            if decision.is_lossy:
                metrics.inc("backend.lossy_blocks")
        if decision.mode is SLCMode.LOSSY:
            self.lossy_blocks += 1
            self.total_overshoot_bits += decision.overshoot_bits
        return StoredBlock(
            bursts=decision.bursts,
            stored_bits=decision.stored_size_bits,
            data=data,
            lossy=decision.is_lossy,
        )

    @property
    def lossy_fraction(self) -> float:
        """Fraction of stored blocks that took the lossy path."""
        if not self.total_blocks:
            return 0.0
        return self.lossy_blocks / self.total_blocks

    @property
    def compress_latency_cycles(self) -> int:
        return self._compress_cycles

    @property
    def decompress_latency_cycles(self) -> int:
        return self._decompress_cycles
