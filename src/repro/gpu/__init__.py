"""Trace-driven GPU performance and energy model.

This package stands in for the GPGPU-Sim + GPUSimPow infrastructure of the
paper.  It is *trace driven*: workloads emit the stream of memory-block
accesses their kernels generate, an L2 cache model filters that stream, and
memory controllers with integrated (de)compressors turn the resulting misses
into GDDR5 bursts.  An analytic bounded-overlap timing model combines compute
and memory cycles into execution time, and an energy model derived from the
same counters produces energy and energy-delay product.

Absolute cycle counts differ from the cycle-accurate simulator used by the
authors, but the quantities SLC influences — DRAM burst counts, memory-bound
execution time, DRAM transfer energy — are modelled explicitly, so relative
results (speedup, bandwidth, energy, EDP versus the E2MC baseline) retain the
paper's shape.
"""

from repro.gpu.backends import (
    CompressionBackend,
    LosslessBackend,
    NoCompressionBackend,
    SLCBackend,
    StoredBlock,
)
from repro.gpu.cache import CacheStats, SetAssociativeCache
from repro.gpu.config import GPUConfig, LatencyConfig
from repro.gpu.dram import DRAMChannel, DRAMStats, GDDR5Timing
from repro.gpu.energy import EnergyBreakdown, EnergyModel
from repro.gpu.interconnect import Interconnect
from repro.gpu.memory_controller import MemoryController, MemoryControllerStats
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.gpu.trace import AccessType, MemoryAccess, MemoryTrace

__all__ = [
    "CompressionBackend",
    "NoCompressionBackend",
    "LosslessBackend",
    "SLCBackend",
    "StoredBlock",
    "GPUConfig",
    "LatencyConfig",
    "SetAssociativeCache",
    "CacheStats",
    "DRAMChannel",
    "DRAMStats",
    "GDDR5Timing",
    "Interconnect",
    "MemoryController",
    "MemoryControllerStats",
    "EnergyModel",
    "EnergyBreakdown",
    "GPUSimulator",
    "SimulationResult",
    "MemoryAccess",
    "MemoryTrace",
    "AccessType",
]
