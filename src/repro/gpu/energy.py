"""GPU energy model (the GPUSimPow stand-in).

Energy is assembled from the same counters the timing model produces:

* a constant-power component (chip static power plus the roughly
  execution-time-proportional dynamic power of the SMs, schedulers, and
  on-chip network),
* per-operation compute energy,
* per-access L2 energy,
* per-bit DRAM transfer energy plus per-activation row energy,
* per-block (de)compression energy taken from the RTL-calibrated hardware
  cost model (Table I) — negligible, as the paper reports.

The absolute numbers are textbook 40 nm-class estimates, not measurements;
what the reproduction relies on is that execution time and DRAM traffic
dominate, so the *relative* energy and EDP changes of SLC versus E2MC carry
over (Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParameters:
    """Technology/board constants used by the energy model."""

    #: chip constant power while a kernel runs (static + clocks + fans) [W]
    constant_power_w: float = 80.0
    #: per scalar operation energy in the SMs [J]
    energy_per_op_j: float = 12e-12
    #: per L2 access energy [J]
    energy_per_l2_access_j: float = 1.2e-9
    #: DRAM transfer energy per bit [J]
    dram_energy_per_bit_j: float = 18e-12
    #: DRAM row activation energy per row miss [J]
    dram_row_activate_j: float = 2.5e-9
    #: compressor energy per compressed block [J] (from Table I power/freq)
    compressor_energy_per_block_j: float = 70e-12
    #: decompressor energy per decompressed block [J]
    decompressor_energy_per_block_j: float = 8e-12


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component energy for one simulation."""

    constant_j: float
    compute_j: float
    l2_j: float
    dram_j: float
    compression_j: float

    def to_dict(self) -> dict:
        """The breakdown as a JSON-serializable dict (lossless round trip)."""
        return {
            "constant_j": self.constant_j,
            "compute_j": self.compute_j,
            "l2_j": self.l2_j,
            "dram_j": self.dram_j,
            "compression_j": self.compression_j,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        """Reconstruct a breakdown produced by :meth:`to_dict`."""
        return cls(
            constant_j=float(data["constant_j"]),
            compute_j=float(data["compute_j"]),
            l2_j=float(data["l2_j"]),
            dram_j=float(data["dram_j"]),
            compression_j=float(data["compression_j"]),
        )

    @property
    def total_j(self) -> float:
        """Total energy in joules."""
        return (
            self.constant_j
            + self.compute_j
            + self.l2_j
            + self.dram_j
            + self.compression_j
        )

    def edp(self, exec_time_s: float) -> float:
        """Energy-delay product in joule-seconds."""
        return self.total_j * exec_time_s

    @property
    def dram_fraction(self) -> float:
        """Fraction of total energy spent in DRAM transfers."""
        total = self.total_j
        if total == 0:
            return 0.0
        return self.dram_j / total


class EnergyModel:
    """Computes :class:`EnergyBreakdown` from simulation counters."""

    def __init__(self, params: EnergyParameters | None = None) -> None:
        self.params = params or EnergyParameters()

    def evaluate(
        self,
        exec_time_s: float,
        compute_ops: float,
        l2_accesses: int,
        dram_bursts: int,
        dram_row_misses: int,
        compressed_blocks: int = 0,
        decompressed_blocks: int = 0,
        mag_bytes: int = 32,
    ) -> EnergyBreakdown:
        """Combine counters into a per-component energy breakdown."""
        if exec_time_s < 0:
            raise ValueError("execution time must be non-negative")
        params = self.params
        constant = params.constant_power_w * exec_time_s
        compute = params.energy_per_op_j * compute_ops
        l2 = params.energy_per_l2_access_j * l2_accesses
        dram_bits = dram_bursts * mag_bytes * 8
        dram = (
            params.dram_energy_per_bit_j * dram_bits
            + params.dram_row_activate_j * dram_row_misses
        )
        compression = (
            params.compressor_energy_per_block_j * compressed_blocks
            + params.decompressor_energy_per_block_j * decompressed_blocks
        )
        return EnergyBreakdown(
            constant_j=constant,
            compute_j=compute,
            l2_j=l2,
            dram_j=dram,
            compression_j=compression,
        )
