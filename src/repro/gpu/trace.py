"""Memory access traces.

Workloads describe their DRAM-visible traffic as a sequence of block-level
accesses over named memory regions.  The trace is deliberately block-granular
(128 B) because that is the granularity at which the L2, the compressors and
the DRAM burst accounting all operate.

Internally a trace is a list of *segments*: either a single
:class:`MemoryAccess` (appended individually) or a compact array-backed
stream built by :meth:`MemoryTrace.add_stream`.  Million-access streaming
traces therefore never materialize per-access Python objects; the scalar
replay path generates :class:`MemoryAccess` objects lazily while iterating,
and the vectorized replay engine (:mod:`repro.replay`) consumes the flat
arrays produced by :meth:`MemoryTrace.as_arrays` / :meth:`MemoryTrace.compile`
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

import numpy as np


class AccessType(Enum):
    """Read or write, as seen at the L2 / memory-controller boundary."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryAccess:
    """One block-granular memory access.

    Attributes:
        region: name of the memory region (allocation) being accessed.
        block_index: index of the 128 B block within that region.
        access_type: read or write.
        count: how many times this access is repeated back to back (a compact
            representation for streaming loops).
    """

    region: str
    block_index: int
    access_type: AccessType = AccessType.READ
    count: int = 1

    def __post_init__(self) -> None:
        if self.block_index < 0:
            raise ValueError("block_index must be non-negative")
        if self.count <= 0:
            raise ValueError("count must be positive")

    @property
    def is_write(self) -> bool:
        """Whether the access is a write."""
        return self.access_type is AccessType.WRITE


@dataclass(frozen=True)
class _StreamSegment:
    """A run of single-count accesses to one region, stored as an array."""

    region: str
    block_indices: np.ndarray  # int64, one entry per access
    is_write: bool


@dataclass(frozen=True)
class TraceArrays:
    """A trace flattened to per-access NumPy columns (region-relative).

    Attributes:
        region_index: per-access index into :attr:`regions`.
        block_index: per-access block index within its region.
        is_write: per-access write flag.
        counts: per-access back-to-back repeat count (RLE, never expanded).
        regions: region names, in first-use order.
    """

    region_index: np.ndarray
    block_index: np.ndarray
    is_write: np.ndarray
    counts: np.ndarray
    regions: tuple[str, ...]

    def __len__(self) -> int:
        return int(self.region_index.shape[0])


@dataclass(frozen=True)
class CompiledTrace:
    """A trace compiled against a region layout: flat global addresses.

    This is the input format of the vectorized replay engine
    (:mod:`repro.replay`).  ``counts`` keeps the run-length encoding of
    back-to-back repeats: the engine resolves a repeated access as one real
    L2 lookup plus ``count - 1`` guaranteed hits, so repeats are never
    expanded on the hot path.  :meth:`expanded` materializes the full
    per-access sequence for reference models and tests.
    """

    #: per-access global block address (region base + block index)
    addresses: np.ndarray
    #: per-access write flag
    is_write: np.ndarray
    #: per-access back-to-back repeat count
    counts: np.ndarray
    #: per-access index into :attr:`regions`
    region_index: np.ndarray
    #: per-access block index within the region
    block_index: np.ndarray
    #: region names, in first-use order
    regions: tuple[str, ...]

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def total_accesses(self) -> int:
        """Number of accesses including repeat counts."""
        return int(self.counts.sum())

    def expanded(self) -> tuple[np.ndarray, np.ndarray]:
        """RLE-expanded ``(addresses, is_write)`` with repeats materialized."""
        return (
            np.repeat(self.addresses, self.counts),
            np.repeat(self.is_write, self.counts),
        )


class MemoryTrace:
    """An ordered sequence of :class:`MemoryAccess` entries."""

    def __init__(self, accesses: Iterable[MemoryAccess] | None = None) -> None:
        self._segments: list[MemoryAccess | _StreamSegment] = []
        if accesses:
            self.extend(accesses)

    def __len__(self) -> int:
        return sum(
            1 if isinstance(seg, MemoryAccess) else len(seg.block_indices)
            for seg in self._segments
        )

    def __iter__(self) -> Iterator[MemoryAccess]:
        for seg in self._segments:
            if isinstance(seg, MemoryAccess):
                yield seg
            else:
                access_type = AccessType.WRITE if seg.is_write else AccessType.READ
                for block in seg.block_indices.tolist():
                    yield MemoryAccess(
                        region=seg.region, block_index=block, access_type=access_type
                    )

    @property
    def accesses(self) -> tuple[MemoryAccess, ...]:
        """A read-only materialized view of the trace.

        Stream segments are expanded into :class:`MemoryAccess` objects on
        every call, so this is O(n) — iterate the trace or use
        :meth:`as_arrays` on hot paths.  The view is a tuple precisely so
        that mutating it (the old ``accesses`` backing list allowed
        ``trace.accesses.append(...)``) fails loudly instead of silently
        editing a throwaway copy; use :meth:`append` / :meth:`extend` /
        :meth:`add_stream` to grow a trace.
        """
        return tuple(self)

    def append(self, access: MemoryAccess) -> None:
        """Add one access to the end of the trace."""
        self._segments.append(access)

    def extend(self, accesses: Iterable[MemoryAccess]) -> None:
        """Add many accesses to the end of the trace."""
        self._segments.extend(accesses)

    def add_stream(
        self,
        region: str,
        num_blocks: int,
        access_type: AccessType = AccessType.READ,
        passes: int = 1,
        stride: int = 1,
    ) -> None:
        """Append a streaming sweep over a region.

        The sweep is stored as one array-backed segment — block indices are
        computed with NumPy and no per-access objects are created.

        Args:
            region: region name.
            num_blocks: number of blocks in the region.
            access_type: read or write.
            passes: how many times the whole region is swept.
            stride: block stride of the sweep (1 = fully sequential; larger
                strides model strided/column-major kernels such as transpose).
        """
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        blocks = np.arange(num_blocks, dtype=np.int64)
        if stride > 1:
            # One pass visits offset, offset+stride, ... for each offset in
            # range(stride): a stable sort of the indices by (index % stride).
            blocks = blocks[np.argsort(blocks % stride, kind="stable")]
        if passes > 1:
            blocks = np.tile(blocks, passes)
        self._segments.append(
            _StreamSegment(
                region=region,
                block_indices=blocks,
                is_write=access_type is AccessType.WRITE,
            )
        )

    def add_blocks(
        self,
        region: str,
        block_indices,
        access_type: AccessType = AccessType.READ,
    ) -> None:
        """Append an explicit sequence of single-count accesses to one region.

        The array-backed sibling of :meth:`add_stream` for callers that
        already hold the block indices — trace ingestion
        (:mod:`repro.workloads.traceio`) rebuilds captured traces through
        it without materializing per-access objects.
        """
        indices = np.ascontiguousarray(np.asarray(block_indices, dtype=np.int64))
        if indices.ndim != 1:
            raise ValueError("block_indices must be one-dimensional")
        if indices.size == 0:
            return
        if int(indices.min()) < 0:
            raise ValueError("block indices must be non-negative")
        self._segments.append(
            _StreamSegment(
                region=region,
                block_indices=indices,
                is_write=access_type is AccessType.WRITE,
            )
        )

    @property
    def total_accesses(self) -> int:
        """Total number of accesses including repeat counts."""
        return sum(
            seg.count if isinstance(seg, MemoryAccess) else len(seg.block_indices)
            for seg in self._segments
        )

    @property
    def read_accesses(self) -> int:
        """Total number of read accesses."""
        return self.total_accesses - self.write_accesses

    @property
    def write_accesses(self) -> int:
        """Total number of write accesses."""
        total = 0
        for seg in self._segments:
            if isinstance(seg, MemoryAccess):
                total += seg.count if seg.is_write else 0
            elif seg.is_write:
                total += len(seg.block_indices)
        return total

    def regions(self) -> list[str]:
        """Names of all regions referenced by the trace, in first-use order.

        Runs in one pass over the trace's segments using an order-preserving
        dict (a long trace over many regions used to pay an O(n²) list
        membership scan here).
        """
        return list(dict.fromkeys(seg.region for seg in self._segments))

    # ------------------------------------------------------------------ #
    # array compilation (consumed by the vectorized replay engine)

    def as_arrays(self) -> TraceArrays:
        """Flatten the trace to per-access NumPy columns.

        Array-backed stream segments are concatenated directly; individually
        appended accesses are converted in one pass.
        """
        regions = self.regions()
        region_ids = {name: i for i, name in enumerate(regions)}
        region_cols: list[np.ndarray] = []
        block_cols: list[np.ndarray] = []
        write_cols: list[np.ndarray] = []
        count_cols: list[np.ndarray] = []
        # Batch runs of individually appended accesses between stream segments.
        run: list[MemoryAccess] = []

        def flush_run() -> None:
            if not run:
                return
            region_cols.append(
                np.fromiter((region_ids[a.region] for a in run), np.int64, len(run))
            )
            block_cols.append(
                np.fromiter((a.block_index for a in run), np.int64, len(run))
            )
            write_cols.append(
                np.fromiter((a.is_write for a in run), np.bool_, len(run))
            )
            count_cols.append(np.fromiter((a.count for a in run), np.int64, len(run)))
            run.clear()

        for seg in self._segments:
            if isinstance(seg, MemoryAccess):
                run.append(seg)
                continue
            flush_run()
            n = len(seg.block_indices)
            region_cols.append(np.full(n, region_ids[seg.region], dtype=np.int64))
            block_cols.append(seg.block_indices)
            write_cols.append(np.full(n, seg.is_write, dtype=np.bool_))
            count_cols.append(np.ones(n, dtype=np.int64))
        flush_run()

        def cat(cols: list[np.ndarray], dtype) -> np.ndarray:
            if not cols:
                return np.empty(0, dtype=dtype)
            return np.concatenate(cols)

        return TraceArrays(
            region_index=cat(region_cols, np.int64),
            block_index=cat(block_cols, np.int64),
            is_write=cat(write_cols, np.bool_),
            counts=cat(count_cols, np.int64),
            regions=tuple(regions),
        )

    def compile(self, base_addresses: dict[str, int]) -> CompiledTrace:
        """Compile the trace against a region layout.

        Args:
            base_addresses: global base block address of every region the
                trace references (the simulator's flat address layout).

        Returns:
            A :class:`CompiledTrace` whose ``addresses`` column holds the
            global block address of every access.
        """
        arrays = self.as_arrays()
        bases = np.fromiter(
            (base_addresses[name] for name in arrays.regions),
            np.int64,
            len(arrays.regions),
        )
        addresses = (
            bases[arrays.region_index] + arrays.block_index
            if len(arrays)
            else np.empty(0, dtype=np.int64)
        )
        return CompiledTrace(
            addresses=addresses,
            is_write=arrays.is_write,
            counts=arrays.counts,
            region_index=arrays.region_index,
            block_index=arrays.block_index,
            regions=arrays.regions,
        )

    def compile_chunks(
        self, base_addresses: dict[str, int], max_accesses: int
    ) -> Iterator[CompiledTrace]:
        """Compile the trace as a stream of bounded-size chunks.

        Yields :class:`CompiledTrace` pieces of at most ``max_accesses``
        compiled entries each (an RLE entry — one row of the compiled
        columns, whatever its repeat ``count`` — is the unit, since peak
        memory scales with entries, not expanded accesses; an entry is never
        split, so repeat runs stay intact).  Concatenating the chunks
        reproduces :meth:`compile` exactly: all chunks share the full trace's
        ``regions`` tuple and region indexing, only the rows are windowed.

        Segments are flattened one at a time, so the full compiled-column
        set for the whole trace is never materialized — peak memory is
        O(largest segment + chunk size), which is what lets scale=1 replays
        run under a configurable budget.  An empty trace yields no chunks.
        """
        if max_accesses <= 0:
            raise ValueError("max_accesses must be positive")
        regions = tuple(self.regions())
        region_ids = {name: i for i, name in enumerate(regions)}
        bases = np.fromiter(
            (base_addresses[name] for name in regions), np.int64, len(regions)
        )

        pending: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        pending_rows = 0

        def emit() -> CompiledTrace:
            nonlocal pending, pending_rows
            region_index = np.concatenate([p[0] for p in pending])
            block_index = np.concatenate([p[1] for p in pending])
            is_write = np.concatenate([p[2] for p in pending])
            counts = np.concatenate([p[3] for p in pending])
            pending = []
            pending_rows = 0
            return CompiledTrace(
                addresses=bases[region_index] + block_index,
                is_write=is_write,
                counts=counts,
                region_index=region_index,
                block_index=block_index,
                regions=regions,
            )

        def columns(
            seg: MemoryAccess | _StreamSegment,
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
            if isinstance(seg, MemoryAccess):
                return (
                    np.array([region_ids[seg.region]], dtype=np.int64),
                    np.array([seg.block_index], dtype=np.int64),
                    np.array([seg.is_write], dtype=np.bool_),
                    np.array([seg.count], dtype=np.int64),
                )
            n = len(seg.block_indices)
            return (
                np.full(n, region_ids[seg.region], dtype=np.int64),
                seg.block_indices,
                np.full(n, seg.is_write, dtype=np.bool_),
                np.ones(n, dtype=np.int64),
            )

        for seg in self._segments:
            cols = columns(seg)
            offset, n = 0, cols[0].shape[0]
            while offset < n:
                room = max_accesses - pending_rows
                take = min(room, n - offset)
                pending.append(tuple(c[offset : offset + take] for c in cols))
                pending_rows += take
                offset += take
                if pending_rows == max_accesses:
                    yield emit()
        if pending_rows:
            yield emit()
