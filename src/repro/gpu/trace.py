"""Memory access traces.

Workloads describe their DRAM-visible traffic as a sequence of block-level
accesses over named memory regions.  The trace is deliberately block-granular
(128 B) because that is the granularity at which the L2, the compressors and
the DRAM burst accounting all operate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator


class AccessType(Enum):
    """Read or write, as seen at the L2 / memory-controller boundary."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryAccess:
    """One block-granular memory access.

    Attributes:
        region: name of the memory region (allocation) being accessed.
        block_index: index of the 128 B block within that region.
        access_type: read or write.
        count: how many times this access is repeated back to back (a compact
            representation for streaming loops).
    """

    region: str
    block_index: int
    access_type: AccessType = AccessType.READ
    count: int = 1

    def __post_init__(self) -> None:
        if self.block_index < 0:
            raise ValueError("block_index must be non-negative")
        if self.count <= 0:
            raise ValueError("count must be positive")

    @property
    def is_write(self) -> bool:
        """Whether the access is a write."""
        return self.access_type is AccessType.WRITE


@dataclass
class MemoryTrace:
    """An ordered sequence of :class:`MemoryAccess` entries."""

    accesses: list[MemoryAccess] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def append(self, access: MemoryAccess) -> None:
        """Add one access to the end of the trace."""
        self.accesses.append(access)

    def extend(self, accesses: Iterable[MemoryAccess]) -> None:
        """Add many accesses to the end of the trace."""
        self.accesses.extend(accesses)

    def add_stream(
        self,
        region: str,
        num_blocks: int,
        access_type: AccessType = AccessType.READ,
        passes: int = 1,
        stride: int = 1,
    ) -> None:
        """Append a streaming sweep over a region.

        Args:
            region: region name.
            num_blocks: number of blocks in the region.
            access_type: read or write.
            passes: how many times the whole region is swept.
            stride: block stride of the sweep (1 = fully sequential; larger
                strides model strided/column-major kernels such as transpose).
        """
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        for _ in range(passes):
            for offset in range(stride):
                for block in range(offset, num_blocks, stride):
                    self.accesses.append(
                        MemoryAccess(region=region, block_index=block, access_type=access_type)
                    )

    @property
    def total_accesses(self) -> int:
        """Total number of accesses including repeat counts."""
        return sum(access.count for access in self.accesses)

    @property
    def read_accesses(self) -> int:
        """Total number of read accesses."""
        return sum(a.count for a in self.accesses if not a.is_write)

    @property
    def write_accesses(self) -> int:
        """Total number of write accesses."""
        return sum(a.count for a in self.accesses if a.is_write)

    def regions(self) -> list[str]:
        """Names of all regions referenced by the trace, in first-use order."""
        seen: list[str] = []
        for access in self.accesses:
            if access.region not in seen:
                seen.append(access.region)
        return seen
