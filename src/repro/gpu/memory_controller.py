"""Memory controller with integrated (de)compressor and metadata cache.

As in Fig. 3 of the paper, the compressor, decompressor and metadata cache
(MDC) live in the memory controller.  Data travels to/from DRAM in compressed
form; the controller fetches only the number of MAG bursts recorded for the
block (falling back to the full block on an MDC miss) and decompresses on the
way to the L2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metadata_cache import MetadataCache
from repro.gpu.backends import CompressionBackend, StoredBlock
from repro.gpu.dram import DRAMChannel, GDDR5Timing


@dataclass
class MemoryControllerStats:
    """Traffic counters for one memory controller."""

    reads: int = 0
    writes: int = 0
    read_bursts: int = 0
    write_bursts: int = 0
    lossy_blocks: int = 0
    mdc_extra_bursts: int = 0
    compress_invocations: int = 0
    decompress_invocations: int = 0

    @property
    def total_bursts(self) -> int:
        """Bursts moved in either direction."""
        return self.read_bursts + self.write_bursts

    @property
    def bytes_transferred(self) -> int:
        """Bytes moved over the DRAM bus (bursts × 32 B)."""
        return self.total_bursts * 32


class MemoryController:
    """One memory partition: compression backend + MDC + GDDR5 channel."""

    def __init__(
        self,
        controller_id: int,
        backend: CompressionBackend,
        mag_bytes: int = 32,
        block_size_bytes: int = 128,
        mdc_entries: int = 8192,
        timing: GDDR5Timing | None = None,
    ) -> None:
        self.controller_id = controller_id
        self.backend = backend
        self.mag_bytes = mag_bytes
        self.block_size_bytes = block_size_bytes
        self.mdc = MetadataCache(
            capacity_entries=mdc_entries,
            max_bursts=max(block_size_bytes // mag_bytes, backend.max_bursts),
        )
        self.channel = DRAMChannel(timing=timing, mag_bytes=mag_bytes)
        self.stats = MemoryControllerStats()
        self._storage: dict[int, StoredBlock] = {}

    # ------------------------------------------------------------------ #
    # stores (host copies and kernel writebacks)

    def store_block(
        self,
        block_address: int,
        block: bytes,
        approximable: bool = True,
        count_traffic: bool = True,
    ) -> StoredBlock:
        """Compress and store a block.

        Args:
            block_address: global block address.
            block: raw block contents.
            approximable: whether the block's region is safe to approximate.
            count_traffic: whether to charge write bursts and DRAM busy time
                (host-to-device copies before the kernel are not charged).
        """
        stored = self.backend.store(block, approximable=approximable)
        return self.record_stored(block_address, stored, count_traffic=count_traffic)

    def record_stored(
        self,
        block_address: int,
        stored: StoredBlock,
        count_traffic: bool = True,
    ) -> StoredBlock:
        """Book-keep a block whose compression was already decided.

        The batched store path analyzes a whole region at once
        (:meth:`~repro.gpu.backends.CompressionBackend.store_batch`) and then
        records each resulting :class:`StoredBlock` here; the accounting is
        identical to :meth:`store_block`.
        """
        self._storage[block_address] = stored
        self.mdc.update(block_address, stored.bursts)
        self.stats.compress_invocations += 1
        if stored.lossy:
            self.stats.lossy_blocks += 1
        if count_traffic:
            self.stats.writes += 1
            self.stats.write_bursts += stored.bursts
            self.channel.service(block_address * self.block_size_bytes, stored.bursts)
        return stored

    # ------------------------------------------------------------------ #
    # loads (L2 misses)

    def read_block(self, block_address: int) -> bytes:
        """Serve an L2 miss: fetch the recorded bursts and decompress.

        Blocks never written through this controller (e.g. constant data that
        the trace touches without a prior store) are treated as uncompressed.
        """
        stored = self._storage.get(block_address)
        mdc_bursts = self.mdc.bursts_to_fetch(block_address)
        if stored is None:
            actual_bursts = self.backend.max_bursts
            data = bytes(self.block_size_bytes)
        else:
            actual_bursts = stored.bursts
            data = stored.data
        # On an MDC miss the controller conservatively fetches the worst case.
        bursts = max(actual_bursts, mdc_bursts) if mdc_bursts else actual_bursts
        self.stats.mdc_extra_bursts += max(0, bursts - actual_bursts)
        self.mdc.update(block_address, actual_bursts)

        self.stats.reads += 1
        self.stats.read_bursts += bursts
        self.stats.decompress_invocations += 1
        self.channel.service(block_address * self.block_size_bytes, bursts)
        return data

    # ------------------------------------------------------------------ #
    # queries

    def stored_data(self, block_address: int) -> bytes | None:
        """The data currently stored for a block (possibly degraded), if any."""
        stored = self._storage.get(block_address)
        return stored.data if stored is not None else None

    def stored_items(self) -> "list[tuple[int, StoredBlock]]":
        """Every stored block with its address (for digests/inspection)."""
        return list(self._storage.items())

    @property
    def busy_memory_cycles(self) -> int:
        """DRAM-channel busy time in memory-clock cycles."""
        return self.channel.busy_cycles

    @property
    def stored_blocks(self) -> int:
        """Number of distinct blocks stored through this controller."""
        return len(self._storage)
