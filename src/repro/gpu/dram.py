"""GDDR5 DRAM channel model with row-buffer and burst timing.

Each memory controller owns one channel.  A channel serves block requests as
a number of MAG-sized bursts (1–4 for a 128 B block); each burst occupies the
data bus for ``burst_length / 2`` memory-clock cycles (double data rate), and
requests that miss the open row pay precharge + activate latency.  The model
tracks per-bank open rows so sequential (streaming) traffic enjoys row hits
while strided traffic pays more row misses — the first-order behaviour that
determines achievable bandwidth on real GDDR5.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GDDR5Timing:
    """Key GDDR5 timing parameters in memory-controller command-clock cycles.

    The bandwidth figures of Table II (192.4 GB/s over six controllers at
    1002 MHz) imply that each controller moves one 32 B MAG burst per command
    cycle (a 64-bit partition at quad data rate), so ``burst_cycles`` defaults
    to 1; the row-management latencies are standard GDDR5 values.
    """

    #: column-to-column delay (back-to-back bursts to an open row)
    t_ccd: int = 1
    #: row-to-column delay (activate to read); bank-level parallelism hides
    #: part of the nominal latency, so an effective value is used
    t_rcd: int = 8
    #: row precharge (effective, see ``t_rcd``)
    t_rp: int = 8
    #: data-bus cycles per MAG burst at the command clock
    burst_cycles: int = 1
    #: number of banks per channel
    num_banks: int = 16
    #: row (page) size per bank in bytes
    row_bytes: int = 2048


@dataclass
class DRAMStats:
    """Counters accumulated by a DRAM channel."""

    requests: int = 0
    bursts: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_cycles: int = 0

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit rate."""
        total = self.row_hits + self.row_misses
        if not total:
            return 0.0
        return self.row_hits / total

    @property
    def bytes_transferred(self) -> int:
        """Total bytes moved over the data bus (bursts × 32 B)."""
        return self.bursts * 32


class DRAMChannel:
    """One GDDR5 channel (attached to one memory controller)."""

    def __init__(self, timing: GDDR5Timing | None = None, mag_bytes: int = 32) -> None:
        self.timing = timing or GDDR5Timing()
        self.mag_bytes = mag_bytes
        self.stats = DRAMStats()
        # Per-bank currently open row (None = bank precharged).
        self._open_rows: dict[int, int | None] = {
            bank: None for bank in range(self.timing.num_banks)
        }

    def _bank_and_row(self, byte_address: int) -> tuple[int, int]:
        row = byte_address // self.timing.row_bytes
        bank = row % self.timing.num_banks
        return bank, row

    def service(self, byte_address: int, bursts: int) -> int:
        """Serve a block request of ``bursts`` MAG bursts.

        Returns:
            The number of memory-clock cycles the channel was busy with this
            request (row management plus data transfer).
        """
        if bursts <= 0:
            raise ValueError("bursts must be positive")
        bank, row = self._bank_and_row(byte_address)
        cycles = 0
        open_row = self._open_rows[bank]
        if open_row == row:
            self.stats.row_hits += 1
        else:
            self.stats.row_misses += 1
            if open_row is not None:
                cycles += self.timing.t_rp
            cycles += self.timing.t_rcd
            self._open_rows[bank] = row
        cycles += bursts * max(self.timing.burst_cycles, self.timing.t_ccd)
        self.stats.requests += 1
        self.stats.bursts += bursts
        self.stats.busy_cycles += cycles
        return cycles

    def reset_rows(self) -> None:
        """Precharge all banks (e.g. between kernels)."""
        for bank in self._open_rows:
            self._open_rows[bank] = None

    @property
    def busy_cycles(self) -> int:
        """Total busy cycles accumulated so far."""
        return self.stats.busy_cycles
