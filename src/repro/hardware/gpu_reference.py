"""Reference die area / power figures used to put the SLC overhead in context."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUReference:
    """Published area/power figures of a reference design."""

    name: str
    area_mm2: float
    power_w: float


#: NVIDIA GTX580 (GF110, 40 nm): 520 mm² die, 244 W TDP.  The paper reports
#: the SLC overhead as a percentage of this GPU.
GTX580_REFERENCE = GPUReference(name="GTX580", area_mm2=520.0, power_w=244.0)

#: Area of the E2MC compression hardware the paper extends.  Derived from the
#: paper's statement that TSLC adds 5.6 % of the area of E2MC while the TSLC
#: compressor itself is 0.0083 mm².
E2MC_REFERENCE = GPUReference(name="E2MC", area_mm2=0.148, power_w=0.030)
