"""Per-scheme hardware cost estimates for the all-scheme tournament.

The tournament study ranks every compression scheme on compression ratio,
application error and speedup — and on what the scheme costs in silicon.
This module provides that last axis: one :class:`HardwareCost` per campaign
scheme label.

E2MC's cost is the published reference figure (:data:`E2MC_REFERENCE`); the
TSLC variants add the analytically synthesized compressor/decompressor
overheads of :mod:`repro.hardware.synthesis` on top of it.  The classic
lossless schemes (BDI, FPC, C-Pack, BPC) have no figure in the paper, so
they are counted here with the same NAND2-equivalent gate model: each
``synthesize_*`` function models the *combined* compress + decompress
datapath of one memory-controller instance at a 1 GHz clock target.  These
are order-of-magnitude estimates for ranking schemes against each other, not
Design-Compiler reproductions — their value is that all schemes are costed
with one consistent library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gates import GateCount, GateLibrary
from repro.hardware.gpu_reference import E2MC_REFERENCE
from repro.hardware.synthesis import (
    SynthesisResult,
    synthesize_tslc_compressor,
    synthesize_tslc_decompressor,
)

#: clock target assumed for the classic-scheme datapaths [GHz]
_CLASSIC_FREQUENCY_GHZ = 1.0

#: average switching activity assumed for the power estimates
_CLASSIC_ACTIVITY = 0.5

_WORD_BITS = 32


@dataclass(frozen=True)
class HardwareCost:
    """Area/power/gate cost of one compression scheme's controller hardware."""

    scheme: str
    area_mm2: float
    power_mw: float
    gate_count: float

    def area_percent_of_e2mc(self) -> float:
        """Area relative to the E2MC reference hardware (percent)."""
        return self.area_mm2 / E2MC_REFERENCE.area_mm2 * 100.0


def _classic_result(
    unit: str, count: GateCount, activity: float
) -> SynthesisResult:
    return SynthesisResult(
        unit=unit,
        frequency_ghz=_CLASSIC_FREQUENCY_GHZ,
        area_mm2=count.area_mm2(),
        power_mw=count.power_mw(_CLASSIC_FREQUENCY_GHZ, activity=activity),
        gate_count=count.gates,
    )


def synthesize_bdi(
    block_size_bytes: int = 128,
    library: GateLibrary | None = None,
    activity: float = _CLASSIC_ACTIVITY,
) -> SynthesisResult:
    """BDI compress + decompress datapath (Pekhimenko et al., PACT 2012).

    Compression runs all six (base, delta) encodings in parallel: per
    encoding a subtractor array against the two bases plus range comparators
    on every delta; decompression is one adder array of the widest encoding.
    """
    library = library or GateLibrary()
    count = GateCount(library)
    block_bits = block_size_bytes * 8
    for base_bytes, delta_bytes in ((8, 1), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1)):
        words = block_size_bytes // base_bytes
        # two candidate bases (first word and zero) → one subtractor array
        # plus per-word range checks on both deltas
        count.add_adder(base_bytes * 8, count=words)
        count.add_comparator(delta_bytes * 8, count=2 * words)
    # encoding selection: pick the smallest fitting encoding
    count.add_priority_encoder(8)
    count.add_mux(block_bits, inputs=8)
    # decompression adders: widest encoding is 16 × 64-bit base + delta
    count.add_adder(64, count=block_size_bytes // 8)
    # input/output staging registers for both directions
    count.add_registers(block_bits, count=2)
    count.add_raw_gates(300)
    return _classic_result("bdi", count, activity)


def synthesize_fpc(
    block_size_bytes: int = 128,
    library: GateLibrary | None = None,
    activity: float = _CLASSIC_ACTIVITY,
) -> SynthesisResult:
    """FPC compress + decompress datapath (Alameldeen & Wood, 2004).

    Every 32-bit word passes seven parallel pattern detectors (sign-extension
    ranges, zero halves, repeated bytes); a priority encoder picks the first
    match and a shifter/mux packs the literal bits.
    """
    library = library or GateLibrary()
    count = GateCount(library)
    block_bits = block_size_bytes * 8
    words = block_size_bytes // 4
    # pattern detectors: range comparators on the full word, the halves and
    # the repeated-byte equality, per word
    count.add_comparator(_WORD_BITS, count=3 * words)
    count.add_comparator(16, count=2 * words)
    count.add_comparator(8, count=2 * words)
    count.add_priority_encoder(7, count=words)
    # literal packing / unpacking muxes (compress + decompress)
    count.add_mux(_WORD_BITS, inputs=7, count=2 * words)
    count.add_registers(block_bits, count=2)
    count.add_raw_gates(200)
    return _classic_result("fpc", count, activity)


def synthesize_cpack(
    block_size_bytes: int = 128,
    library: GateLibrary | None = None,
    activity: float = _CLASSIC_ACTIVITY,
) -> SynthesisResult:
    """C-Pack compress + decompress datapath (Chen et al., TVLSI 2010).

    Dominated by the 16-entry 32-bit FIFO dictionary (kept on both sides)
    and its full/partial match comparators; the paper's design processes two
    words per cycle, so the match logic is doubled.
    """
    library = library or GateLibrary()
    count = GateCount(library)
    block_bits = block_size_bytes * 8
    lanes = 2  # words processed per cycle
    entries = 16
    # dictionary registers on the compress and decompress sides
    count.add_registers(entries * _WORD_BITS, count=2)
    # per-lane: full (32-bit), 24-bit and 16-bit prefix comparators per entry
    count.add_comparator(_WORD_BITS, count=lanes * entries)
    count.add_comparator(24, count=lanes * entries)
    count.add_comparator(16, count=lanes * entries)
    count.add_priority_encoder(entries, count=lanes)
    # code/literal packing and dictionary read muxes, both directions
    count.add_mux(_WORD_BITS, inputs=entries, count=2 * lanes)
    count.add_registers(block_bits, count=2)
    count.add_raw_gates(400)
    return _classic_result("cpack", count, activity)


def synthesize_bpc(
    block_size_bytes: int = 128,
    library: GateLibrary | None = None,
    activity: float = _CLASSIC_ACTIVITY,
) -> SynthesisResult:
    """BPC compress + decompress datapath (Kim et al., ISCA 2016).

    Delta transform over consecutive words, a bit-plane transpose network
    (pure wiring plus staging muxes), the DBX XOR stage and per-plane
    run-length/pattern encoders; the decompressor mirrors the transform.
    """
    library = library or GateLibrary()
    count = GateCount(library)
    block_bits = block_size_bytes * 8
    words = block_size_bytes // 4
    delta_bits = 33
    # delta subtractors (compress) and inverse adders (decompress)
    count.add_adder(delta_bits, count=2 * (words - 1))
    # transpose staging: the delta matrix is held while planes stream out
    count.add_registers(delta_bits * (words - 1))
    # DBX XOR plus per-plane zero/all-ones/single-one detectors
    count.add_raw_gates(delta_bits * (words - 1))  # XOR network
    count.add_comparator(words - 1, count=3 * delta_bits)
    count.add_priority_encoder(delta_bits)
    count.add_mux(words - 1, inputs=4, count=delta_bits)
    count.add_registers(block_bits, count=2)
    count.add_raw_gates(300)
    return _classic_result("bpc", count, activity)


def _e2mc_cost(library: GateLibrary) -> HardwareCost:
    return HardwareCost(
        scheme="E2MC",
        area_mm2=E2MC_REFERENCE.area_mm2,
        power_mw=E2MC_REFERENCE.power_w * 1000.0,
        gate_count=E2MC_REFERENCE.area_mm2 / library.nand2_area_mm2,
    )


def scheme_hardware_cost(
    scheme: str,
    block_size_bytes: int = 128,
    library: GateLibrary | None = None,
) -> HardwareCost:
    """Hardware cost of one campaign scheme label (case-insensitive).

    * ``E2MC`` — the published reference figures.
    * ``TSLC-SIMP`` — E2MC plus the truncation compressor addition (no extra
      tree nodes, no decompressor change: simple truncation needs none).
    * ``TSLC-PRED`` — E2MC plus the compressor addition and the predicted-
      symbol decompressor addition.
    * ``TSLC-OPT`` — E2MC plus the staggered-tree compressor (extra nodes)
      and the decompressor addition.
    * ``BDI`` / ``FPC`` / ``CPACK`` / ``BPC`` — the standalone gate-model
      estimates of the ``synthesize_*`` functions above.
    """
    library = library or GateLibrary()
    key = scheme.upper()
    if key == "E2MC":
        return _e2mc_cost(library)
    if key.startswith("TSLC-"):
        base = _e2mc_cost(library)
        if key == "TSLC-SIMP":
            additions = [synthesize_tslc_compressor(extra_nodes={}, library=library)]
        elif key == "TSLC-PRED":
            additions = [
                synthesize_tslc_compressor(extra_nodes={}, library=library),
                synthesize_tslc_decompressor(library=library),
            ]
        elif key == "TSLC-OPT":
            additions = [
                synthesize_tslc_compressor(library=library),
                synthesize_tslc_decompressor(library=library),
            ]
        else:
            raise KeyError(f"unknown TSLC variant {scheme!r}")
        return HardwareCost(
            scheme=key,
            area_mm2=base.area_mm2 + sum(r.area_mm2 for r in additions),
            power_mw=base.power_mw + sum(r.power_mw for r in additions),
            gate_count=base.gate_count + sum(r.gate_count for r in additions),
        )
    classic = {
        "BDI": synthesize_bdi,
        "FPC": synthesize_fpc,
        "CPACK": synthesize_cpack,
        "BPC": synthesize_bpc,
    }
    if key not in classic:
        raise KeyError(
            f"no hardware cost model for scheme {scheme!r}; "
            f"known: E2MC, TSLC-SIMP, TSLC-PRED, TSLC-OPT, {', '.join(classic)}"
        )
    result = classic[key](block_size_bytes=block_size_bytes, library=library)
    return HardwareCost(
        scheme=key,
        area_mm2=result.area_mm2,
        power_mw=result.power_mw,
        gate_count=result.gate_count,
    )
