"""Analytic synthesis of the TSLC compressor/decompressor additions (Table I).

``synthesize_tslc_compressor`` counts the hardware that TSLC adds on top of
the E2MC compressor (Fig. 5): the parallel adder tree over the per-symbol
code lengths, the per-node ≥ comparators, the per-level priority encoders,
the sub-block selection mux and the pipeline registers.  The decompressor
addition is only the predicted-symbol index generation (Section III-E).

Frequency is estimated from the critical path in gate delays assuming
carry-lookahead adders; area and power come from the NAND2-equivalent counts
of :mod:`repro.hardware.gates`.  The absolute values land in the range of the
paper's Design-Compiler numbers, and the headline conclusions — the overhead
is a vanishing fraction of a GTX580 and a few percent of E2MC — are
reproduced exactly by construction of the comparison helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.gates import GateCount, GateLibrary
from repro.hardware.gpu_reference import E2MC_REFERENCE, GTX580_REFERENCE, GPUReference

#: gate delay assumed for the 32 nm library, including average wire load [ps]
GATE_DELAY_PS = 24.0


@dataclass(frozen=True)
class SynthesisResult:
    """Frequency, area and power of one synthesized unit."""

    unit: str
    frequency_ghz: float
    area_mm2: float
    power_mw: float
    gate_count: float

    def area_percent_of(self, reference: GPUReference) -> float:
        """Area as a percentage of a reference design."""
        return self.area_mm2 / reference.area_mm2 * 100.0

    def power_percent_of(self, reference: GPUReference) -> float:
        """Power as a percentage of a reference design's power budget."""
        return self.power_mw / (reference.power_w * 1000.0) * 100.0


def _critical_path_ghz(levels: int, operand_bits: int) -> float:
    """Achievable frequency of the selection pipeline.

    The critical stage contains one carry-lookahead adder (≈ log2(width) + 4
    gate delays), the ≥ comparator (≈ log2(width) + 2), the per-level priority
    encoder (≈ 2·log2(inputs)), the final selection mux and register overhead.
    """
    adder_delay = math.log2(max(2, operand_bits)) + 4
    comparator_delay = math.log2(max(2, operand_bits)) + 2
    priority_encoder_delay = 2 * max(1, levels - 1)
    mux_delay = 3
    register_overhead = 3
    stage_delay_ps = (
        adder_delay
        + comparator_delay
        + priority_encoder_delay
        + mux_delay
        + register_overhead
    ) * GATE_DELAY_PS
    return 1000.0 / stage_delay_ps


def synthesize_tslc_compressor(
    n_symbols: int = 64,
    code_length_bits: int = 5,
    extra_nodes: dict[int, int] | None = None,
    library: GateLibrary | None = None,
    activity: float = 0.5,
) -> SynthesisResult:
    """Cost of the TSLC addition to the E2MC compressor.

    Args:
        n_symbols: symbols per block (64 for 128 B blocks and 16-bit symbols).
        code_length_bits: width of one code-length table entry.
        extra_nodes: TSLC-OPT extra nodes per level ({level: count}).
        library: gate library constants.
        activity: average switching activity used for the power estimate.
    """
    if n_symbols <= 0 or n_symbols & (n_symbols - 1):
        raise ValueError("n_symbols must be a power of two")
    library = library or GateLibrary()
    extra_nodes = extra_nodes if extra_nodes is not None else {2: 8, 3: 4}
    count = GateCount(library)

    levels = int(math.log2(n_symbols))
    max_sum_bits = code_length_bits + levels  # the root sums n_symbols lengths

    # Adder tree: n/2 + n/4 + ... + 1 adders, operand width grows per level.
    total_nodes = 0
    for level in range(1, levels + 1):
        nodes = n_symbols >> level
        width = code_length_bits + level
        count.add_adder(width, count=nodes)
        total_nodes += nodes
    # TSLC-OPT extra (staggered) nodes: each is an adder over 2**level leaves,
    # implemented as a small adder chain of that level's width.
    for level, extras in extra_nodes.items():
        width = code_length_bits + level
        count.add_adder(width, count=extras)
        total_nodes += extras

    # One ≥ comparator per node (the comparison stage of Fig. 5).
    count.add_comparator(max_sum_bits, count=total_nodes)
    # Per-level priority encoders over that level's (nodes + extras) outputs.
    for level in range(1, levels + 1):
        inputs = (n_symbols >> level) + extra_nodes.get(level, 0)
        count.add_priority_encoder(inputs)
    # Final selection stage: pick the lowest level's winning sub-block index.
    index_bits = int(math.ceil(math.log2(n_symbols)))
    count.add_mux(index_bits, inputs=levels)
    # Pipeline registers: the code lengths fetched from the table plus the
    # comparison bit-vector and the selected index.
    count.add_registers(n_symbols * code_length_bits)
    count.add_registers(total_nodes + index_bits + levels)
    # Control FSM and budget/threshold logic (Fig. 4).
    count.add_comparator(max_sum_bits, count=3)
    count.add_raw_gates(200)

    frequency = _critical_path_ghz(levels, max_sum_bits)
    return SynthesisResult(
        unit="tslc-compressor",
        frequency_ghz=frequency,
        area_mm2=count.area_mm2(),
        power_mw=count.power_mw(frequency, activity=activity),
        gate_count=count.gates,
    )


def synthesize_tslc_decompressor(
    n_symbols: int = 64,
    library: GateLibrary | None = None,
    activity: float = 0.5,
) -> SynthesisResult:
    """Cost of the TSLC addition to the E2MC decompressor.

    Only the index of the predicted (first non-truncated) symbol has to be
    generated and the truncated range substituted, so the logic is tiny —
    exactly the point the paper makes.
    """
    library = library or GateLibrary()
    count = GateCount(library)
    index_bits = int(math.ceil(math.log2(max(2, n_symbols))))

    # Header decode registers (mode, start symbol, length).
    count.add_registers(1 + index_bits + 4)
    # Range comparison: is the current symbol index inside the truncated run?
    count.add_comparator(index_bits, count=2)
    # Adder producing start + length and the predicted-symbol index.
    count.add_adder(index_bits, count=2)
    # Substitution mux on the 16-bit symbol path, one per decoding way (4).
    count.add_mux(16, inputs=2, count=4)
    # Output register per decoding way.
    count.add_registers(16, count=4)
    count.add_raw_gates(60)

    # The decompressor sits on the (slower) decode pipeline; its clock target
    # in the paper is 0.8 GHz, which a couple of gate levels easily meet.
    frequency = min(0.80, _critical_path_ghz(1, index_bits) * 2)
    return SynthesisResult(
        unit="tslc-decompressor",
        frequency_ghz=frequency,
        area_mm2=count.area_mm2(),
        power_mw=count.power_mw(frequency, activity=activity),
        gate_count=count.gates,
    )


def table1(
    library: GateLibrary | None = None,
) -> dict[str, SynthesisResult]:
    """Regenerate Table I: frequency, area and power of the SLC hardware."""
    return {
        "compressor": synthesize_tslc_compressor(library=library),
        "decompressor": synthesize_tslc_decompressor(library=library),
    }


def overhead_summary(library: GateLibrary | None = None) -> dict[str, float]:
    """The paper's headline overhead percentages (Section III-H)."""
    results = table1(library=library)
    total_area = sum(r.area_mm2 for r in results.values())
    total_power_mw = sum(r.power_mw for r in results.values())
    return {
        "area_mm2": total_area,
        "power_mw": total_power_mw,
        "area_percent_of_gtx580": total_area / GTX580_REFERENCE.area_mm2 * 100.0,
        "power_percent_of_gtx580": total_power_mw / (GTX580_REFERENCE.power_w * 1000.0) * 100.0,
        "area_percent_of_e2mc": total_area / E2MC_REFERENCE.area_mm2 * 100.0,
    }
