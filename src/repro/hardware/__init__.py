"""Analytic 32 nm hardware cost model for the SLC logic (Table I)."""

from repro.hardware.costs import (
    HardwareCost,
    scheme_hardware_cost,
    synthesize_bdi,
    synthesize_bpc,
    synthesize_cpack,
    synthesize_fpc,
)
from repro.hardware.gates import GateLibrary, GateCount
from repro.hardware.gpu_reference import E2MC_REFERENCE, GTX580_REFERENCE, GPUReference
from repro.hardware.synthesis import (
    SynthesisResult,
    overhead_summary,
    synthesize_tslc_compressor,
    synthesize_tslc_decompressor,
    table1,
)

__all__ = [
    "overhead_summary",
    "GateLibrary",
    "GateCount",
    "GPUReference",
    "GTX580_REFERENCE",
    "E2MC_REFERENCE",
    "HardwareCost",
    "SynthesisResult",
    "scheme_hardware_cost",
    "synthesize_bdi",
    "synthesize_bpc",
    "synthesize_cpack",
    "synthesize_fpc",
    "synthesize_tslc_compressor",
    "synthesize_tslc_decompressor",
    "table1",
]
