"""Gate-level primitives of the 32 nm cost model.

The paper synthesized RTL with Synopsys Design Compiler at 32 nm and reports
only aggregate frequency/area/power (Table I).  To reproduce those aggregates
without a commercial tool flow, the hardware here is counted in NAND2-
equivalent gates with per-gate area and switching-power constants typical of
a 32 nm standard-cell library; the constants are calibrated so the totals of
the TSLC compressor/decompressor land in the range Table I reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GateLibrary:
    """Per-gate constants of a 32 nm standard-cell library."""

    #: area of one NAND2-equivalent gate [mm²]
    nand2_area_mm2: float = 1.0e-6
    #: dynamic + leakage power of one gate at 1 GHz with typical activity [mW]
    nand2_power_mw_per_ghz: float = 2.2e-4
    #: gates per full adder (sum + carry logic)
    gates_per_full_adder: float = 6.0
    #: gates per flip-flop / register bit
    gates_per_register_bit: float = 8.0
    #: gates per comparator bit (greater-or-equal)
    gates_per_comparator_bit: float = 3.5
    #: gates per 2:1 multiplexer bit
    gates_per_mux_bit: float = 3.0
    #: gates per priority-encoder input
    gates_per_priority_encoder_input: float = 4.0


@dataclass
class GateCount:
    """Accumulates gate counts for one synthesized unit."""

    library: GateLibrary
    gates: float = 0.0

    def add_adder(self, width_bits: int, count: int = 1) -> None:
        """Add ripple/carry-save adders of the given operand width."""
        self.gates += self.library.gates_per_full_adder * width_bits * count

    def add_registers(self, bits: int, count: int = 1) -> None:
        """Add register bits (pipeline/output registers)."""
        self.gates += self.library.gates_per_register_bit * bits * count

    def add_comparator(self, width_bits: int, count: int = 1) -> None:
        """Add ≥ comparators of the given width."""
        self.gates += self.library.gates_per_comparator_bit * width_bits * count

    def add_mux(self, width_bits: int, inputs: int, count: int = 1) -> None:
        """Add an ``inputs``:1 multiplexer of the given data width."""
        two_to_one = max(1, inputs - 1)
        self.gates += self.library.gates_per_mux_bit * width_bits * two_to_one * count

    def add_priority_encoder(self, inputs: int, count: int = 1) -> None:
        """Add a priority encoder over ``inputs`` request lines."""
        self.gates += self.library.gates_per_priority_encoder_input * inputs * count

    def add_raw_gates(self, gates: float) -> None:
        """Add miscellaneous control logic counted directly in gates."""
        self.gates += gates

    # ------------------------------------------------------------------ #
    # conversions

    def area_mm2(self) -> float:
        """Total cell area in mm²."""
        return self.gates * self.library.nand2_area_mm2

    def power_mw(self, frequency_ghz: float, activity: float = 1.0) -> float:
        """Power at the given clock frequency and switching activity [mW]."""
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if not 0 < activity <= 1:
            raise ValueError("activity must lie in (0, 1]")
        return self.gates * self.library.nand2_power_mw_per_ghz * frequency_ghz * activity
