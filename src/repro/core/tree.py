"""The parallel adder tree of TSLC (Fig. 5 of the paper).

The tree sums the per-symbol code lengths of a block level by level: level 1
holds sums of symbol pairs, level 2 of groups of four, and so on up to the
root, which holds the total compressed payload size.  When the lossy mode is
chosen, the *extra bits* above the bit budget are compared in parallel with
every intermediate sum; priority encoders pick, per level, the first sub-block
whose sum is at least the extra bits, and the lowest such level wins because
it approximates the fewest symbols.

TSLC-OPT (Section III-F) adds a few extra nodes at the middle levels; here
they are modelled as additional *staggered* windows of the same size, offset
by half a sub-block, which gives the finer selection granularity the paper
describes while keeping the fixed-latency parallel structure.
"""

from __future__ import annotations

from dataclasses import dataclass


def extra_node_starts(n_symbols: int, level: int, count: int) -> list[int]:
    """Start symbols of the TSLC-OPT staggered windows at ``level``.

    The layout is purely geometric (independent of the code lengths): windows
    of ``2**level`` symbols offset by half a window, spaced so at most
    ``count`` of them fit before the end of the block.  Shared by the scalar
    :class:`AdderTree` and the batched kernel in :mod:`repro.kernels.tree` so
    the two paths can never disagree about where the extra nodes sit.
    """
    if count <= 0:
        return []
    window = 1 << level
    offset = window // 2
    max_start = n_symbols - window
    if max_start < offset:
        return []
    stride = max(window, (max_start - offset) // count + 1)
    starts: list[int] = []
    start = offset
    while start <= max_start and len(starts) < count:
        starts.append(start)
        start += stride
    return starts


@dataclass(frozen=True)
class TreeNode:
    """One node of the adder tree: a window of symbols and its summed size."""

    level: int
    index: int
    start_symbol: int
    symbol_count: int
    sum_bits: int
    is_extra: bool = False


@dataclass(frozen=True)
class SubBlockSelection:
    """The sub-block chosen for approximation."""

    level: int
    start_symbol: int
    symbol_count: int
    bits_removed: int
    used_extra_node: bool = False


class AdderTree:
    """Parallel adder tree over per-symbol code lengths.

    Args:
        code_lengths: per-symbol code lengths in bits (one entry per symbol,
            length must be a power of two — 64 for the paper's configuration).
        extra_nodes: optional mapping ``{level: count}`` of additional
            staggered nodes per level (the TSLC-OPT optimization).
    """

    def __init__(
        self,
        code_lengths: list[int],
        extra_nodes: dict[int, int] | None = None,
    ) -> None:
        n = len(code_lengths)
        if n == 0 or n & (n - 1):
            raise ValueError(f"number of symbols must be a power of two, got {n}")
        if any(length < 0 for length in code_lengths):
            raise ValueError("code lengths must be non-negative")
        self.code_lengths = list(code_lengths)
        self.n_symbols = n
        self.n_levels = n.bit_length() - 1
        self._levels = self._build_levels()
        self._extra = self._build_extra_nodes(extra_nodes or {})

    # ------------------------------------------------------------------ #
    # construction

    def _build_levels(self) -> list[list[int]]:
        """Level ``l`` (1-based) holds sums over windows of ``2**l`` symbols."""
        levels: list[list[int]] = [list(self.code_lengths)]
        current = self.code_lengths
        while len(current) > 1:
            current = [current[i] + current[i + 1] for i in range(0, len(current), 2)]
            levels.append(list(current))
        return levels

    def _build_extra_nodes(self, extra_nodes: dict[int, int]) -> dict[int, list[TreeNode]]:
        extras: dict[int, list[TreeNode]] = {}
        for level, count in extra_nodes.items():
            if not 1 <= level <= self.n_levels:
                raise ValueError(
                    f"extra-node level {level} outside valid range 1..{self.n_levels}"
                )
            window = 1 << level
            nodes = []
            for index, start in enumerate(extra_node_starts(self.n_symbols, level, count)):
                sum_bits = sum(self.code_lengths[start:start + window])
                nodes.append(
                    TreeNode(
                        level=level,
                        index=index,
                        start_symbol=start,
                        symbol_count=window,
                        sum_bits=sum_bits,
                        is_extra=True,
                    )
                )
            if nodes:
                extras[level] = nodes
        return extras

    # ------------------------------------------------------------------ #
    # queries

    @property
    def comp_size_bits(self) -> int:
        """Total compressed payload size (the root of the tree)."""
        return self._levels[-1][0]

    def level_sums(self, level: int) -> list[int]:
        """Aligned window sums at ``level`` (1-based; level ``l`` = ``2**l`` symbols)."""
        if not 1 <= level <= self.n_levels:
            raise ValueError(f"level must be in 1..{self.n_levels}, got {level}")
        return list(self._levels[level])

    def nodes_at_level(self, level: int) -> list[TreeNode]:
        """All nodes (aligned plus any extra staggered ones) at ``level``."""
        window = 1 << level
        nodes = [
            TreeNode(
                level=level,
                index=index,
                start_symbol=index * window,
                symbol_count=window,
                sum_bits=sum_bits,
            )
            for index, sum_bits in enumerate(self._levels[level])
        ]
        nodes.extend(self._extra.get(level, []))
        nodes.sort(key=lambda node: node.start_symbol)
        return nodes

    def extra_node_count(self, level: int) -> int:
        """Number of TSLC-OPT extra nodes instantiated at ``level``."""
        return len(self._extra.get(level, []))

    def select_subblock(
        self,
        required_bits: int,
        max_symbols: int | None = None,
    ) -> SubBlockSelection | None:
        """Pick the sub-block to truncate.

        Scans levels from the lowest upwards (fewest symbols first); within a
        level the first window (priority encoder) whose sum is at least
        ``required_bits`` wins.  Returns ``None`` if no window of at most
        ``max_symbols`` symbols can cover the required bits.
        """
        if required_bits <= 0:
            raise ValueError(f"required_bits must be positive, got {required_bits}")
        for level in range(1, self.n_levels + 1):
            window = 1 << level
            if max_symbols is not None and window > max_symbols:
                return None
            for node in self.nodes_at_level(level):
                if node.sum_bits >= required_bits:
                    return SubBlockSelection(
                        level=level,
                        start_symbol=node.start_symbol,
                        symbol_count=node.symbol_count,
                        bits_removed=node.sum_bits,
                        used_extra_node=node.is_extra,
                    )
        return None

    def overshoot_bits(self, selection: SubBlockSelection, required_bits: int) -> int:
        """Bits approximated beyond what was strictly needed (Section III-F)."""
        return max(0, selection.bits_removed - required_bits)
