"""The SLC compressor: MAG-aware selection between lossless and lossy modes.

This module implements the decision flow of Fig. 4 and the TSLC mechanism of
Section III on top of the E2MC baseline:

1. compute the losslessly compressed size (sum of per-symbol code lengths
   plus the compressed-block header),
2. derive the bit budget (the largest MAG multiple not exceeding the
   compressed size, clamped to [one MAG, block size]),
3. if the size already matches the budget — or the block is incompressible,
   smaller than one MAG, not safe to approximate, or more than ``threshold``
   bits above the budget — store it losslessly,
4. otherwise use the adder tree to pick the smallest sub-block of symbols
   whose summed code lengths cover the extra bits, truncate it, and store the
   block losslessly-coded-minus-that-sub-block so it fits the lower budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressedBlock, CompressionError
from repro.compression.e2mc import E2MCCompressor
from repro.compression.stats import bursts_for_size
from repro.core.config import SLCConfig, SLCMode, SLCVariant
from repro.core.header import header_size_bits
from repro.core.prediction import predict_truncated_symbols
from repro.core.tree import AdderTree, SubBlockSelection
from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.blocks import block_to_symbols, symbols_to_block


@dataclass(frozen=True)
class SLCDecision:
    """Lightweight outcome of the SLC mode decision for one block.

    Produced by :meth:`SLCCompressor.analyze`; carries everything the memory
    controller and the error model need (mode, stored size, burst count and
    the truncated symbol range) without materializing the encoded bitstream,
    which keeps trace-driven simulation fast.
    """

    mode: SLCMode
    comp_size_bits: int
    stored_size_bits: int
    bit_budget_bits: int
    extra_bits: int
    bursts: int
    approx_start: int = 0
    approx_count: int = 0
    bits_removed: int = 0
    used_extra_node: bool = False

    @property
    def is_lossy(self) -> bool:
        """Whether symbols were truncated for this block."""
        return self.mode is SLCMode.LOSSY

    @property
    def overshoot_bits(self) -> int:
        """Bits approximated beyond the strictly required extra bits."""
        if not self.is_lossy:
            return 0
        return max(0, self.bits_removed - self.extra_bits)


@dataclass(frozen=True)
class SLCBlock(CompressedBlock):
    """Result of compressing one block with SLC.

    Extends :class:`CompressedBlock` with the SLC mode decision, the MAG
    accounting and the approximation bookkeeping needed to reconstruct the
    block and to drive the memory-controller model.
    """

    mode: SLCMode = SLCMode.LOSSLESS
    variant: SLCVariant = SLCVariant.OPT
    bit_budget_bits: int = 0
    extra_bits: int = 0
    approx_start: int = 0
    approx_count: int = 0
    bits_removed: int = 0
    bursts: int = 0
    mag_bytes: int = 32

    @property
    def stored_size_bits(self) -> int:
        """Bits actually stored for this block (header + payload)."""
        return self.compressed_size_bits

    @property
    def effective_size_bytes(self) -> int:
        """Bytes fetched from memory for this block (bursts × MAG)."""
        return self.bursts * self.mag_bytes

    @property
    def is_lossy(self) -> bool:
        """Whether symbols were truncated."""
        return self.mode is SLCMode.LOSSY

    @property
    def overshoot_bits(self) -> int:
        """Bits approximated beyond the strictly required extra bits."""
        if not self.is_lossy:
            return 0
        return max(0, self.bits_removed - self.extra_bits)


class SLCCompressor:
    """Selective lossy compressor built on an E2MC lossless baseline.

    Args:
        config: SLC parameters (MAG, threshold, variant, ...).
        baseline: an optional pre-configured/pre-trained :class:`E2MCCompressor`.
            When omitted, one matching ``config`` is created; call
            :meth:`train` before compressing.
    """

    name = "slc"

    def __init__(self, config: SLCConfig | None = None, baseline: E2MCCompressor | None = None) -> None:
        self.config = config or SLCConfig()
        if baseline is None:
            baseline = E2MCCompressor(
                block_size_bytes=self.config.block_size_bytes,
                symbol_bytes=self.config.symbol_bytes,
                num_pdw=self.config.num_pdw,
            )
        if baseline.block_size_bytes != self.config.block_size_bytes:
            raise CompressionError(
                "baseline compressor block size does not match the SLC config"
            )
        if baseline.symbol_bytes != self.config.symbol_bytes:
            raise CompressionError(
                "baseline compressor symbol size does not match the SLC config"
            )
        self.baseline = baseline

    # ------------------------------------------------------------------ #
    # training / introspection

    def train(self, blocks: list[bytes]) -> None:
        """Train the underlying E2MC probability model on sample blocks."""
        self.baseline.train(blocks)

    @property
    def trained(self) -> bool:
        """Whether the baseline E2MC model has been trained."""
        return self.baseline.trained

    @property
    def block_size_bytes(self) -> int:
        """Block size in bytes."""
        return self.config.block_size_bytes

    @property
    def block_size_bits(self) -> int:
        """Block size in bits."""
        return self.config.block_size_bits

    def build_tree(self, block: bytes) -> AdderTree:
        """Build the TSLC adder tree for a block (exposed for tests/analysis)."""
        lengths = self.baseline.symbol_code_lengths(block)
        extra = self.config.opt_extra_nodes if self.config.uses_optimized_tree else None
        return AdderTree(lengths, extra_nodes=extra)

    # ------------------------------------------------------------------ #
    # mode decision helpers (Fig. 4)

    def bit_budget(self, comp_size_bits: int) -> int:
        """Largest MAG multiple ≤ the compressed size, clamped to [MAG, block]."""
        mag_bits = self.config.mag_bits
        if comp_size_bits >= self.config.block_size_bits:
            return self.config.block_size_bits
        if comp_size_bits <= mag_bits:
            return mag_bits
        return (comp_size_bits // mag_bits) * mag_bits

    # ------------------------------------------------------------------ #
    # compression

    def compress(self, block: bytes, approximable: bool = True) -> SLCBlock:
        """Compress one block.

        Args:
            block: the raw block bytes.
            approximable: whether the block belongs to a programmer-annotated
                safe-to-approximate memory region.  Blocks outside such
                regions always use the lossless path.
        """
        if len(block) != self.config.block_size_bytes:
            raise CompressionError(
                f"expected a {self.config.block_size_bytes}-byte block, got {len(block)} bytes"
            )
        symbols = block_to_symbols(block, self.config.symbol_bytes)
        lengths = [self.baseline.model.code_length(s) for s in symbols]
        lossless_header = header_size_bits(
            False, self.config.block_size_bytes, self.config.num_pdw
        )
        lossy_header = header_size_bits(
            True, self.config.block_size_bytes, self.config.num_pdw
        )
        payload_bits = sum(lengths)
        comp_size_bits = payload_bits + lossless_header

        # Incompressible block: stored raw, full budget, no header.
        if not self.trained or comp_size_bits >= self.config.block_size_bits:
            return self._store_uncompressed(block)

        budget_bits = self.bit_budget(comp_size_bits)
        extra_bits = max(0, comp_size_bits - budget_bits)

        if extra_bits == 0 or not approximable:
            return self._store_lossless(block, symbols, payload_bits, budget_bits, extra_bits)
        if extra_bits > self.config.lossy_threshold_bits:
            return self._store_lossless(block, symbols, payload_bits, budget_bits, extra_bits)

        # Lossy path: the truncated sub-block must also absorb the larger
        # lossy header so that the stored size actually fits the budget.
        required_bits = extra_bits + (lossy_header - lossless_header)
        tree = AdderTree(
            lengths,
            extra_nodes=self.config.opt_extra_nodes if self.config.uses_optimized_tree else None,
        )
        selection = tree.select_subblock(
            required_bits, max_symbols=self.config.max_approx_symbols
        )
        if selection is None:
            return self._store_lossless(block, symbols, payload_bits, budget_bits, extra_bits)
        return self._store_lossy(
            block, symbols, payload_bits, budget_bits, extra_bits, selection, lossy_header
        )

    # ------------------------------------------------------------------ #
    # fast, size-only analysis for trace-driven simulation

    def analyze(self, block: bytes, approximable: bool = True) -> SLCDecision:
        """Run the SLC mode decision without producing the encoded bitstream.

        Returns a :class:`SLCDecision` with the same mode, sizes and burst
        counts :meth:`compress` would produce, but skips the (slow) bit-level
        encoding.  Use :meth:`apply_decision` to obtain the degraded block a
        lossy decision implies.
        """
        if len(block) != self.config.block_size_bytes:
            raise CompressionError(
                f"expected a {self.config.block_size_bytes}-byte block, got {len(block)} bytes"
            )
        symbols = block_to_symbols(block, self.config.symbol_bytes)
        lengths = [self.baseline.model.code_length(s) for s in symbols]
        lossless_header = header_size_bits(
            False, self.config.block_size_bytes, self.config.num_pdw
        )
        lossy_header = header_size_bits(
            True, self.config.block_size_bytes, self.config.num_pdw
        )
        payload_bits = sum(lengths)
        comp_size_bits = payload_bits + lossless_header

        if not self.trained or comp_size_bits >= self.config.block_size_bits:
            return SLCDecision(
                mode=SLCMode.UNCOMPRESSED,
                comp_size_bits=self.config.block_size_bits,
                stored_size_bits=self.config.block_size_bits,
                bit_budget_bits=self.config.block_size_bits,
                extra_bits=0,
                bursts=self.config.max_bursts,
            )

        budget_bits = self.bit_budget(comp_size_bits)
        extra_bits = max(0, comp_size_bits - budget_bits)

        lossless_decision = SLCDecision(
            mode=SLCMode.LOSSLESS,
            comp_size_bits=comp_size_bits,
            stored_size_bits=comp_size_bits,
            bit_budget_bits=budget_bits,
            extra_bits=extra_bits,
            bursts=self._bursts(comp_size_bits),
        )
        if extra_bits == 0 or not approximable:
            return lossless_decision
        if extra_bits > self.config.lossy_threshold_bits:
            return lossless_decision

        required_bits = extra_bits + (lossy_header - lossless_header)
        tree = AdderTree(
            lengths,
            extra_nodes=self.config.opt_extra_nodes if self.config.uses_optimized_tree else None,
        )
        selection = tree.select_subblock(
            required_bits, max_symbols=self.config.max_approx_symbols
        )
        if selection is None:
            return lossless_decision
        stored_bits = payload_bits - selection.bits_removed + lossy_header
        return SLCDecision(
            mode=SLCMode.LOSSY,
            comp_size_bits=comp_size_bits,
            stored_size_bits=stored_bits,
            bit_budget_bits=budget_bits,
            extra_bits=extra_bits,
            bursts=max(1, budget_bits // self.config.mag_bits),
            approx_start=selection.start_symbol,
            approx_count=selection.symbol_count,
            bits_removed=selection.bits_removed,
            used_extra_node=selection.used_extra_node,
        )

    def analyze_batch(
        self,
        blocks: "list[bytes]",
        approximable: bool = True,
    ) -> list[SLCDecision]:
        """Run the SLC mode decision for many blocks at once.

        The batched path (:mod:`repro.kernels`) computes code lengths through
        a dense LUT gather and the Fig. 4 decision — bit budget, threshold,
        adder-tree sub-block search, burst accounting — as array operations
        over all blocks simultaneously.  Results are bit-exact against
        per-block :meth:`analyze`, which remains the n = 1 reference (and the
        fallback for geometries the kernels do not cover: symbols wider than
        2 bytes or a non-power-of-two symbol count).

        Args:
            blocks: the raw blocks, as a list of ``block_size_bytes`` chunks
                or a pre-built :class:`~repro.kernels.symbols.BatchSymbolView`.
            approximable: whether the blocks' region is safe to approximate.
        """
        view = self.symbol_view(blocks)
        if view is None:
            return [self.analyze(block, approximable=approximable) for block in blocks]
        return self.analyze_batch_arrays(view, approximable=approximable).to_decisions()

    def batch_geometry_supported(self) -> bool:
        """Whether the batch kernels/codec cover this configuration.

        The dense LUTs need symbols of at most 2 bytes and the batched adder
        tree a power-of-two symbol count; other geometries use the scalar
        per-block paths.
        """
        spb = self.config.symbols_per_block
        return self.config.symbol_bytes <= 2 and not (spb & (spb - 1))

    def symbol_view(self, blocks) -> "object | None":
        """Coerce blocks into a :class:`BatchSymbolView`, or ``None``.

        Returns ``None`` for geometries the batch kernels do not cover, in
        which case callers fall back to the scalar per-block path (``blocks``
        is iterable either way).
        """
        from repro.kernels.symbols import as_symbol_view

        if not self.batch_geometry_supported():
            return None
        return as_symbol_view(
            blocks, self.config.block_size_bytes, self.config.symbol_bytes
        )

    def analyze_batch_arrays(self, blocks, approximable: bool = True):
        """The batched Fig. 4 decision as raw arrays (one entry per block).

        Same decision data as :meth:`analyze_batch` but returned as a
        :class:`~repro.kernels.decision.BatchDecisions` array-of-structs,
        which the batched payload codec and backends consume without
        materializing per-block :class:`SLCDecision` objects.  Only valid
        for geometries where :meth:`batch_geometry_supported` holds.
        """
        from repro.kernels.decision import analyze_code_lengths
        from repro.kernels.symbols import as_symbol_view

        view = as_symbol_view(
            blocks, self.config.block_size_bytes, self.config.symbol_bytes
        )
        lengths = self.baseline.model.code_length_table().lengths(view.symbols)
        return analyze_code_lengths(
            self.config,
            lengths,
            trained=self.trained,
            approximable=approximable,
            plan=self._tree_plan(),
        )

    def _tree_plan(self):
        """Cached static adder-tree layout for the batched kernels."""
        from repro.kernels.tree import BatchTreePlan

        plan = getattr(self, "_tree_plan_cache", None)
        if plan is None:
            plan = BatchTreePlan(
                self.config.symbols_per_block,
                extra_nodes=(
                    self.config.opt_extra_nodes
                    if self.config.uses_optimized_tree
                    else None
                ),
                max_symbols=self.config.max_approx_symbols,
            )
            self._tree_plan_cache = plan
        return plan

    def apply_decision(self, block: bytes, decision: SLCDecision) -> bytes:
        """Return the block as it would read back after the given decision.

        Lossless and uncompressed decisions return the block unchanged; lossy
        decisions replace the truncated symbols with zeros (TSLC-SIMP) or the
        block's first non-truncated symbol (TSLC-PRED / TSLC-OPT).
        """
        if not decision.is_lossy:
            return bytes(block)
        symbols = block_to_symbols(block, self.config.symbol_bytes)
        kept = (
            symbols[: decision.approx_start]
            + symbols[decision.approx_start + decision.approx_count:]
        )
        reconstructed = predict_truncated_symbols(
            kept,
            decision.approx_start,
            decision.approx_count,
            self.config.symbols_per_block,
            use_prediction=self.config.uses_prediction,
            element_symbols=self.config.element_symbols,
        )
        return symbols_to_block(reconstructed, self.config.symbol_bytes)

    # ------------------------------------------------------------------ #
    # batched payload codec

    @staticmethod
    def _decision_arrays(decisions) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(lossy, approx_start, approx_count) arrays from either form."""
        from repro.kernels.decision import BatchDecisions

        if isinstance(decisions, BatchDecisions):
            return decisions.lossy_mask, decisions.approx_start, decisions.approx_count
        n = len(decisions)
        lossy = np.fromiter((d.is_lossy for d in decisions), np.bool_, n)
        start = np.fromiter((d.approx_start for d in decisions), np.int64, n)
        count = np.fromiter((d.approx_count for d in decisions), np.int64, n)
        return lossy, start, count

    def apply_decision_batch(self, blocks, decisions) -> list[bytes]:
        """Batched :meth:`apply_decision`: degraded bytes for a whole region.

        Args:
            blocks: the raw blocks (list of ``block_size_bytes`` chunks or a
                :class:`~repro.kernels.symbols.BatchSymbolView`).
            decisions: matching per-block decisions — a list of
                :class:`SLCDecision` or the
                :class:`~repro.kernels.decision.BatchDecisions` arrays from
                :meth:`analyze_batch_arrays`.

        Returns:
            One ``bytes`` object per block, identical to calling
            :meth:`apply_decision` per block: lossless/uncompressed blocks
            unchanged, lossy blocks with their truncated symbols zero-filled
            (TSLC-SIMP) or predicted (TSLC-PRED/OPT).
        """
        from repro.kernels.codec import reconstruct_rows

        view = self.symbol_view(blocks)
        if view is None:
            from repro.kernels.decision import BatchDecisions

            if isinstance(decisions, BatchDecisions):
                decisions = decisions.to_decisions()
            blocks = list(blocks)
            if len(decisions) != len(blocks):
                raise CompressionError(
                    f"got {len(decisions)} decisions for {len(blocks)} blocks"
                )
            return [
                self.apply_decision(block, decision)
                for block, decision in zip(blocks, decisions)
            ]
        lossy, start, count = self._decision_arrays(decisions)
        if len(lossy) != view.n_blocks:
            raise CompressionError(
                f"got {len(lossy)} decisions for {view.n_blocks} blocks"
            )
        data = [view.block_bytes(i) for i in range(view.n_blocks)]
        rows = np.nonzero(lossy)[0]
        if rows.size:
            degraded = reconstruct_rows(
                view.symbols[rows],
                start[rows],
                count[rows],
                use_prediction=self.config.uses_prediction,
                element_symbols=self.config.element_symbols,
            )
            for index, row in enumerate(rows.tolist()):
                data[row] = degraded[index].tobytes()
        return data

    def compress_batch(self, blocks, approximable: bool = True) -> list[SLCBlock]:
        """Batched :meth:`compress`: encoded payloads for a whole region.

        Runs the vectorized Fig. 4 decision, then Huffman-encodes every
        compressed block's (kept) symbols in one bulk bit-packing pass.
        Results — payload bytes, bit counts, metadata, MAG accounting — are
        identical to per-block :meth:`compress`, which remains the n = 1
        oracle (and the fallback for unsupported geometries).
        """
        view = self.symbol_view(blocks)
        if view is None:
            return [self.compress(block, approximable=approximable) for block in blocks]
        decisions = self.analyze_batch_arrays(view, approximable=approximable)
        from repro.kernels.decision import MODE_LOSSY, MODE_UNCOMPRESSED

        lossless_header = header_size_bits(
            False, self.config.block_size_bytes, self.config.num_pdw
        )
        lossy_header = header_size_bits(
            True, self.config.block_size_bytes, self.config.num_pdw
        )
        results: list[SLCBlock | None] = [None] * view.n_blocks
        coded = np.nonzero(decisions.mode != MODE_UNCOMPRESSED)[0]
        for row in np.nonzero(decisions.mode == MODE_UNCOMPRESSED)[0].tolist():
            results[row] = self._store_uncompressed(view.block_bytes(row))
        if coded.size:
            # Every coded block keeps its symbols outside the (possibly
            # empty) truncated range; encode all kept runs in one pass.
            columns = np.arange(self.config.symbols_per_block, dtype=np.int64)
            start = decisions.approx_start[coded, None]
            count = decisions.approx_count[coded, None]
            keep = ~((columns >= start) & (columns < start + count))
            codec = self.baseline.model.codec_table()
            packed, row_bits = codec.encode_rows(
                view.symbols[coded][keep], keep.sum(axis=1)
            )
            payloads = codec.payloads_from_rows(packed, row_bits)
            for index, row in enumerate(coded.tolist()):
                data, encoded_bits = payloads[index]
                if decisions.mode[row] == MODE_LOSSY:
                    approx_count = int(decisions.approx_count[row])
                    results[row] = SLCBlock(
                        algorithm=self.name,
                        original_size_bits=self.config.block_size_bits,
                        compressed_size_bits=encoded_bits + lossy_header,
                        payload=(
                            data,
                            encoded_bits,
                            int(decisions.approx_start[row]),
                            approx_count,
                        ),
                        lossless=False,
                        metadata={
                            "header_bits": lossy_header,
                            "used_extra_node": bool(decisions.used_extra_node[row]),
                            "tree_level": approx_count.bit_length() - 1,
                        },
                        mode=SLCMode.LOSSY,
                        variant=self.config.variant,
                        bit_budget_bits=int(decisions.bit_budget_bits[row]),
                        extra_bits=int(decisions.extra_bits[row]),
                        approx_start=int(decisions.approx_start[row]),
                        approx_count=approx_count,
                        bits_removed=int(decisions.bits_removed[row]),
                        bursts=int(decisions.bursts[row]),
                        mag_bytes=self.config.mag_bytes,
                    )
                else:
                    results[row] = SLCBlock(
                        algorithm=self.name,
                        original_size_bits=self.config.block_size_bits,
                        compressed_size_bits=encoded_bits + lossless_header,
                        payload=(data, encoded_bits, 0, 0),
                        lossless=True,
                        metadata={"header_bits": lossless_header},
                        mode=SLCMode.LOSSLESS,
                        variant=self.config.variant,
                        bit_budget_bits=int(decisions.bit_budget_bits[row]),
                        extra_bits=int(decisions.extra_bits[row]),
                        bursts=int(decisions.bursts[row]),
                        mag_bytes=self.config.mag_bytes,
                    )
        return results

    def decompress_batch(self, compressed: list[SLCBlock]) -> list[bytes]:
        """Batched :meth:`decompress`: reconstruct many blocks at once.

        Huffman payloads decode in lockstep; truncated symbol ranges are
        rebuilt with the vectorized predictor.  Identical results to
        per-block :meth:`decompress`.
        """
        if not self.batch_geometry_supported():
            return [self.decompress(block) for block in compressed]
        from repro.kernels.codec import reconstruct_rows
        from repro.kernels.symbols import SYMBOL_DTYPES

        spb = self.config.symbols_per_block
        results: list[bytes | None] = [None] * len(compressed)
        coded_rows: list[int] = []
        payloads: list[bytes] = []
        bit_lengths: list[int] = []
        starts: list[int] = []
        counts: list[int] = []
        for row, block in enumerate(compressed):
            if block.mode is SLCMode.UNCOMPRESSED:
                results[row] = bytes(block.payload)
                continue
            data, payload_bits, approx_start, approx_count = block.payload
            coded_rows.append(row)
            payloads.append(data)
            bit_lengths.append(payload_bits)
            starts.append(approx_start)
            counts.append(approx_count)
        if coded_rows:
            start = np.asarray(starts, dtype=np.int64)
            count = np.asarray(counts, dtype=np.int64)
            kept = self.baseline.model.codec_table().decode_rows(
                payloads, np.asarray(bit_lengths, dtype=np.int64), spb - count
            )
            if kept.shape[1] == 0:
                # Every coded row truncated its whole block (nothing kept);
                # widen so the gather below stays legal — the values are
                # garbage and fully overwritten by the reconstruction.
                kept = np.zeros((len(coded_rows), 1), dtype=np.int64)
            # Spread each kept run back to its block positions: symbols
            # before the truncated range stay put, symbols after it shift
            # right by the truncated count.  The range itself reads garbage
            # here and is immediately overwritten by the reconstruction.
            columns = np.arange(spb, dtype=np.int64)
            source = np.where(columns < start[:, None], columns, columns - count[:, None])
            symbols = np.take_along_axis(
                kept, np.clip(source, 0, kept.shape[1] - 1), axis=1
            )
            symbols = reconstruct_rows(
                symbols,
                start,
                count,
                use_prediction=self.config.uses_prediction,
                element_symbols=self.config.element_symbols,
            )
            raw = symbols.astype(SYMBOL_DTYPES[self.config.symbol_bytes])
            for index, row in enumerate(coded_rows):
                results[row] = raw[index].tobytes()
        return results

    # ------------------------------------------------------------------ #
    # decompression

    def decompress(self, compressed: SLCBlock) -> bytes:
        """Reconstruct the (possibly approximated) block."""
        if compressed.mode is SLCMode.UNCOMPRESSED:
            return bytes(compressed.payload)
        data, payload_bits, approx_start, approx_count = compressed.payload
        reader = BitReader(data, bit_length=payload_bits)
        kept = self.config.symbols_per_block - approx_count
        kept_symbols = [self.baseline.model.decode_symbol(reader) for _ in range(kept)]
        symbols = predict_truncated_symbols(
            kept_symbols,
            approx_start,
            approx_count,
            self.config.symbols_per_block,
            use_prediction=self.config.uses_prediction,
            element_symbols=self.config.element_symbols,
        )
        return symbols_to_block(symbols, self.config.symbol_bytes)

    def roundtrip(self, block: bytes, approximable: bool = True) -> bytes:
        """Compress then decompress (identity for lossless-mode blocks)."""
        return self.decompress(self.compress(block, approximable=approximable))

    # ------------------------------------------------------------------ #
    # storage helpers

    def _encode_symbols(self, symbols: list[int]) -> tuple[bytes, int]:
        writer = BitWriter()
        for symbol in symbols:
            self.baseline.model.encode_symbol(writer, symbol)
        return writer.getvalue(), writer.bit_length

    def _bursts(self, stored_bits: int) -> int:
        stored_bytes = min((stored_bits + 7) // 8, self.config.block_size_bytes)
        return bursts_for_size(stored_bytes, self.config.mag_bytes)

    def _store_uncompressed(self, block: bytes) -> SLCBlock:
        return SLCBlock(
            algorithm=self.name,
            original_size_bits=self.config.block_size_bits,
            compressed_size_bits=self.config.block_size_bits,
            payload=bytes(block),
            lossless=True,
            metadata={"uncompressed": True},
            mode=SLCMode.UNCOMPRESSED,
            variant=self.config.variant,
            bit_budget_bits=self.config.block_size_bits,
            extra_bits=0,
            bursts=self.config.max_bursts,
            mag_bytes=self.config.mag_bytes,
        )

    def _store_lossless(
        self,
        block: bytes,
        symbols: list[int],
        payload_bits: int,
        budget_bits: int,
        extra_bits: int,
    ) -> SLCBlock:
        data, encoded_bits = self._encode_symbols(symbols)
        header_bits = header_size_bits(
            False, self.config.block_size_bytes, self.config.num_pdw
        )
        stored_bits = encoded_bits + header_bits
        return SLCBlock(
            algorithm=self.name,
            original_size_bits=self.config.block_size_bits,
            compressed_size_bits=stored_bits,
            payload=(data, encoded_bits, 0, 0),
            lossless=True,
            metadata={"header_bits": header_bits},
            mode=SLCMode.LOSSLESS,
            variant=self.config.variant,
            bit_budget_bits=budget_bits,
            extra_bits=extra_bits,
            bursts=self._bursts(stored_bits),
            mag_bytes=self.config.mag_bytes,
        )

    def _store_lossy(
        self,
        block: bytes,
        symbols: list[int],
        payload_bits: int,
        budget_bits: int,
        extra_bits: int,
        selection: SubBlockSelection,
        lossy_header_bits: int,
    ) -> SLCBlock:
        start = selection.start_symbol
        count = selection.symbol_count
        kept_symbols = symbols[:start] + symbols[start + count:]
        data, encoded_bits = self._encode_symbols(kept_symbols)
        stored_bits = encoded_bits + lossy_header_bits
        return SLCBlock(
            algorithm=self.name,
            original_size_bits=self.config.block_size_bits,
            compressed_size_bits=stored_bits,
            payload=(data, encoded_bits, start, count),
            lossless=False,
            metadata={
                "header_bits": lossy_header_bits,
                "used_extra_node": selection.used_extra_node,
                "tree_level": selection.level,
            },
            mode=SLCMode.LOSSY,
            variant=self.config.variant,
            bit_budget_bits=budget_bits,
            extra_bits=extra_bits,
            approx_start=start,
            approx_count=count,
            bits_removed=selection.bits_removed,
            bursts=max(1, budget_bits // self.config.mag_bits),
            mag_bytes=self.config.mag_bytes,
        )
