"""Structure of a compressed block's header (Fig. 6 of the paper).

The header consists of a 1-bit compression mode flag (lossless / lossy), a
6-bit index of the first approximated symbol, a 4-bit count of approximated
symbols and ``num_pdw - 1`` parallel decoding pointers of N bits each, where
``2**N`` is the block size in bytes.  Uncompressed blocks carry no header (as
in the E2MC baseline); losslessly compressed blocks do not need the ``ss`` and
``len`` fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitstream import BitReader, BitWriter

_MODE_BITS = 1
_START_SYMBOL_BITS = 6
_LENGTH_BITS = 4


def pdp_pointer_bits(block_size_bytes: int) -> int:
    """Width of one parallel decoding pointer (N bits with 2**N = block bytes)."""
    if block_size_bytes <= 0:
        raise ValueError("block size must be positive")
    return max(1, (block_size_bytes - 1).bit_length())


@dataclass(frozen=True)
class SLCHeader:
    """Decoded header of a compressed block.

    Attributes:
        lossy: the ``m`` bit — whether the block was stored with truncated
            symbols.
        approx_start: index of the first approximated symbol (``ss``).
        approx_count: number of approximated symbols (``len``); the paper
            observes at most 16, hence 4 bits storing ``count - 1``.
        pdp: parallel decoding pointers (bit offsets of the other decoding
            ways within the compressed payload).
        block_size_bytes: block geometry, needed to size the pointers.
        num_pdw: number of parallel decoding ways.
    """

    lossy: bool
    approx_start: int = 0
    approx_count: int = 0
    pdp: tuple[int, ...] = ()
    block_size_bytes: int = 128
    num_pdw: int = 4

    def __post_init__(self) -> None:
        max_symbols = 1 << _START_SYMBOL_BITS
        if not 0 <= self.approx_start < max_symbols:
            raise ValueError(
                f"approx_start must fit in {_START_SYMBOL_BITS} bits, got {self.approx_start}"
            )
        if self.lossy and not 1 <= self.approx_count <= (1 << _LENGTH_BITS):
            raise ValueError(
                f"a lossy block must approximate 1..{1 << _LENGTH_BITS} symbols, "
                f"got {self.approx_count}"
            )
        if not self.lossy and self.approx_count:
            raise ValueError("a lossless block cannot have approximated symbols")
        if len(self.pdp) > self.num_pdw - 1:
            raise ValueError(
                f"at most {self.num_pdw - 1} decoding pointers allowed, got {len(self.pdp)}"
            )

    @property
    def size_bits(self) -> int:
        """Size of this header in bits."""
        return header_size_bits(self.lossy, self.block_size_bytes, self.num_pdw)

    def pack(self) -> bytes:
        """Serialize the header to bytes (MSB-first bit packing)."""
        writer = BitWriter()
        writer.write(1 if self.lossy else 0, _MODE_BITS)
        if self.lossy:
            writer.write(self.approx_start, _START_SYMBOL_BITS)
            writer.write(self.approx_count - 1, _LENGTH_BITS)
        pointer_bits = pdp_pointer_bits(self.block_size_bytes)
        pointers = list(self.pdp) + [0] * (self.num_pdw - 1 - len(self.pdp))
        for pointer in pointers:
            writer.write(pointer, pointer_bits)
        return writer.getvalue()

    @classmethod
    def unpack(
        cls,
        data: bytes,
        block_size_bytes: int = 128,
        num_pdw: int = 4,
    ) -> "SLCHeader":
        """Parse a header previously produced by :meth:`pack`."""
        reader = BitReader(data)
        lossy = bool(reader.read(_MODE_BITS))
        approx_start = 0
        approx_count = 0
        if lossy:
            approx_start = reader.read(_START_SYMBOL_BITS)
            approx_count = reader.read(_LENGTH_BITS) + 1
        pointer_bits = pdp_pointer_bits(block_size_bytes)
        pdp = tuple(reader.read(pointer_bits) for _ in range(num_pdw - 1))
        return cls(
            lossy=lossy,
            approx_start=approx_start,
            approx_count=approx_count,
            pdp=pdp,
            block_size_bytes=block_size_bytes,
            num_pdw=num_pdw,
        )


def header_size_bits(
    lossy: bool, block_size_bytes: int = 128, num_pdw: int = 4
) -> int:
    """Header size in bits for a compressed block (lossless or lossy)."""
    pointer_bits = pdp_pointer_bits(block_size_bytes)
    bits = _MODE_BITS + (num_pdw - 1) * pointer_bits
    if lossy:
        bits += _START_SYMBOL_BITS + _LENGTH_BITS
    return bits
