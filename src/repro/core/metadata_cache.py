"""Metadata cache (MDC) holding per-block burst counts.

The memory controller must know how many MAG-sized bursts to fetch for each
compressed block *before* reading it from DRAM.  As in the paper (and the
prior work it follows), a small metadata cache in the memory controller stores
a 2-bit entry per block encoding 1–4 bursts; on an MDC miss the controller
conservatively fetches the full uncompressed block and refills the entry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class MDCStats:
    """Hit/miss counters of the metadata cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    updates: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate over all lookups (1.0 when there were no lookups)."""
        if not self.accesses:
            return 1.0
        return self.hits / self.accesses


@dataclass
class MetadataCache:
    """Fully-associative LRU cache of 2-bit burst-count entries.

    Args:
        capacity_entries: number of block entries the MDC can hold.  The
            default (8192 entries ≈ 2 KiB of 2-bit entries per memory
            controller) follows the sizing of the prior work the paper cites.
        max_bursts: largest representable burst count (4 ⇒ 2-bit entries).
    """

    capacity_entries: int = 8192
    max_bursts: int = 4
    stats: MDCStats = field(default_factory=MDCStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_entries <= 0:
            raise ValueError("MDC capacity must be positive")
        if self.max_bursts <= 0:
            raise ValueError("max_bursts must be positive")

    @property
    def entry_bits(self) -> int:
        """Bits per entry (2 bits encode burst counts 1..4)."""
        return max(1, (self.max_bursts - 1).bit_length())

    @property
    def size_bytes(self) -> float:
        """Total MDC storage in bytes."""
        return self.capacity_entries * self.entry_bits / 8.0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, block_address: int) -> int | None:
        """Return the stored burst count for ``block_address`` or ``None`` on a miss."""
        if block_address in self._entries:
            self._entries.move_to_end(block_address)
            self.stats.hits += 1
            return self._entries[block_address]
        self.stats.misses += 1
        return None

    def update(self, block_address: int, bursts: int) -> None:
        """Record the burst count of a block (on writeback or MDC refill)."""
        if not 1 <= bursts <= self.max_bursts:
            raise ValueError(
                f"burst count must be 1..{self.max_bursts}, got {bursts}"
            )
        if block_address not in self._entries and len(self._entries) >= self.capacity_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[block_address] = bursts
        self._entries.move_to_end(block_address)
        self.stats.updates += 1

    def bursts_to_fetch(self, block_address: int) -> int:
        """Burst count to use for a read: the MDC entry, or the worst case on a miss."""
        stored = self.lookup(block_address)
        if stored is None:
            return self.max_bursts
        return stored

    def flush(self) -> None:
        """Drop all entries (keeps statistics)."""
        self._entries.clear()
