"""The paper's contribution: MAG-aware Selective Lossy Compression (SLC).

SLC sits on top of the E2MC lossless compressor.  For every block it computes
the losslessly compressed size, the MAG-aligned *bit budget* and the *extra
bits* above that budget; when the extra bits are at most a user threshold (and
the block belongs to a programmer-annotated safe-to-approximate region) a
sub-block of symbols is truncated so the block fits the lower budget.  The
sub-block is picked by a parallel adder tree over the per-symbol code lengths
(TSLC); truncated symbols are reconstructed as zeros (TSLC-SIMP) or with a
value-similarity predictor (TSLC-PRED); TSLC-OPT adds extra tree nodes at the
middle levels to reduce over-approximation.
"""

from repro.core.config import SLCConfig, SLCMode, SLCVariant
from repro.core.header import SLCHeader
from repro.core.metadata_cache import MetadataCache
from repro.core.prediction import predict_truncated_symbols
from repro.core.slc import SLCBlock, SLCCompressor, SLCDecision
from repro.core.tree import AdderTree, SubBlockSelection

__all__ = [
    "SLCConfig",
    "SLCMode",
    "SLCVariant",
    "SLCHeader",
    "MetadataCache",
    "predict_truncated_symbols",
    "SLCBlock",
    "SLCCompressor",
    "SLCDecision",
    "AdderTree",
    "SubBlockSelection",
]
