"""Configuration objects and enumerations for SLC."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SLCMode(Enum):
    """How a particular block ended up being stored."""

    #: stored losslessly compressed (E2MC codewords only)
    LOSSLESS = "lossless"
    #: a sub-block of symbols was truncated to fit the lower MAG multiple
    LOSSY = "lossy"
    #: the compressed size exceeded the original size; stored raw
    UNCOMPRESSED = "uncompressed"


class SLCVariant(Enum):
    """The three TSLC variants evaluated in the paper (Section V)."""

    #: truncate, reconstruct truncated symbols as zeros
    SIMP = "tslc-simp"
    #: truncate, reconstruct with the value-similarity predictor
    PRED = "tslc-pred"
    #: prediction + extra adder-tree nodes at the middle levels
    OPT = "tslc-opt"


#: Extra tree nodes added by TSLC-OPT: {tree level: number of extra nodes}.
#: The paper adds 8 extra nodes at the level that originally has 16 nodes and
#: 4 extra nodes at the level with 8 nodes (Section III-F).  With 64 symbols
#: per block those are the 4-symbol and 8-symbol levels (levels 2 and 3 when
#: level *l* aggregates 2**l symbols).
DEFAULT_OPT_EXTRA_NODES = {2: 8, 3: 4}


@dataclass(frozen=True)
class SLCConfig:
    """Parameters of the SLC scheme.

    Attributes:
        block_size_bytes: memory block size (128 B in current GPUs).
        mag_bytes: memory access granularity (32 B for GDDR5/5X/6).
        lossy_threshold_bytes: maximum number of extra bytes above a MAG
            multiple that may be approximated away (the paper's default is
            16 B, i.e. half a MAG).
        variant: which TSLC variant to use.
        symbol_bytes: E2MC symbol width (2 bytes in the paper).
        element_bytes: width of one data element of the workload (4 bytes for
            the float/int data of the benchmarks); the value-similarity
            predictor is lane-aware over elements of this width.
        max_approx_symbols: cap on the number of truncated symbols per block.
            The paper observes a maximum of 16 (the header's 4-bit ``len``
            field); blocks that would need more fall back to lossless mode.
        num_pdw: number of E2MC parallel decoding ways (4 in the paper).
        opt_extra_nodes: extra adder-tree nodes per level for TSLC-OPT.
    """

    block_size_bytes: int = 128
    mag_bytes: int = 32
    lossy_threshold_bytes: int = 16
    variant: SLCVariant = SLCVariant.OPT
    symbol_bytes: int = 2
    element_bytes: int = 4
    max_approx_symbols: int = 16
    num_pdw: int = 4
    opt_extra_nodes: dict = field(default_factory=lambda: dict(DEFAULT_OPT_EXTRA_NODES))

    def __post_init__(self) -> None:
        if self.block_size_bytes <= 0:
            raise ValueError("block_size_bytes must be positive")
        if self.mag_bytes <= 0 or self.block_size_bytes % self.mag_bytes:
            raise ValueError(
                f"MAG ({self.mag_bytes} B) must divide the block size "
                f"({self.block_size_bytes} B)"
            )
        if not 0 <= self.lossy_threshold_bytes <= self.mag_bytes:
            raise ValueError(
                "lossy_threshold_bytes must lie between 0 and one MAG "
                f"({self.mag_bytes} B), got {self.lossy_threshold_bytes}"
            )
        if self.block_size_bytes % self.symbol_bytes:
            raise ValueError("symbol_bytes must divide block_size_bytes")
        if self.element_bytes % self.symbol_bytes:
            raise ValueError("symbol_bytes must divide element_bytes")
        if self.max_approx_symbols <= 0:
            raise ValueError("max_approx_symbols must be positive")

    @property
    def block_size_bits(self) -> int:
        """Block size in bits."""
        return self.block_size_bytes * 8

    @property
    def mag_bits(self) -> int:
        """MAG in bits."""
        return self.mag_bytes * 8

    @property
    def lossy_threshold_bits(self) -> int:
        """Lossy threshold in bits."""
        return self.lossy_threshold_bytes * 8

    @property
    def symbols_per_block(self) -> int:
        """Number of symbols in one block."""
        return self.block_size_bytes // self.symbol_bytes

    @property
    def element_symbols(self) -> int:
        """Symbols per data element (2 for 32-bit elements, 16-bit symbols)."""
        return self.element_bytes // self.symbol_bytes

    @property
    def max_bursts(self) -> int:
        """Bursts needed for an uncompressed block (4 for 128 B / 32 B MAG)."""
        return self.block_size_bytes // self.mag_bytes

    @property
    def uses_prediction(self) -> bool:
        """Whether truncated symbols are reconstructed by the predictor."""
        return self.variant in (SLCVariant.PRED, SLCVariant.OPT)

    @property
    def uses_optimized_tree(self) -> bool:
        """Whether the adder tree carries the extra middle-level nodes."""
        return self.variant is SLCVariant.OPT

    def with_variant(self, variant: SLCVariant) -> "SLCConfig":
        """Return a copy of this config with a different TSLC variant."""
        return SLCConfig(
            block_size_bytes=self.block_size_bytes,
            mag_bytes=self.mag_bytes,
            lossy_threshold_bytes=self.lossy_threshold_bytes,
            variant=variant,
            symbol_bytes=self.symbol_bytes,
            element_bytes=self.element_bytes,
            max_approx_symbols=self.max_approx_symbols,
            num_pdw=self.num_pdw,
            opt_extra_nodes=dict(self.opt_extra_nodes),
        )

    def with_mag(self, mag_bytes: int, lossy_threshold_bytes: int | None = None) -> "SLCConfig":
        """Return a copy with a different MAG (and threshold, default MAG/2).

        The paper's MAG-sensitivity study (Fig. 9) sets the lossy threshold to
        half the MAG, because a fixed threshold is not meaningful across MAGs.
        """
        if lossy_threshold_bytes is None:
            lossy_threshold_bytes = mag_bytes // 2
        return SLCConfig(
            block_size_bytes=self.block_size_bytes,
            mag_bytes=mag_bytes,
            lossy_threshold_bytes=lossy_threshold_bytes,
            variant=self.variant,
            symbol_bytes=self.symbol_bytes,
            element_bytes=self.element_bytes,
            max_approx_symbols=self.max_approx_symbols,
            num_pdw=self.num_pdw,
            opt_extra_nodes=dict(self.opt_extra_nodes),
        )
