"""Value-similarity based prediction of truncated symbols (Section III-E).

TSLC truncates the selected symbols during compression; during decompression
TSLC-SIMP replaces them with zeros while TSLC-PRED / TSLC-OPT replace them
with the value of the nearest non-truncated symbol, exploiting the high value
similarity between adjacent GPU threads.  Only the index of the predictor
symbol needs to be generated in hardware, which is why the paper calls the
scheme "very simple" and essentially free.

Interpretation note: the paper predicts with "the first non-truncated symbol
of the block".  With 16-bit symbols over 32-bit data elements, adjacent
*elements* are similar but the two halves of an element are not, so the
predictor here is lane-aware: a truncated symbol is predicted by the nearest
kept symbol at the same offset within a data element (the same prediction the
adjacent-thread value similarity argument of the paper justifies, at the same
negligible hardware cost).  Setting ``element_symbols=1`` recovers the
literal single-predictor behaviour.
"""

from __future__ import annotations


def predictor_symbol_index(
    target_index: int,
    approx_start: int,
    approx_count: int,
    n_symbols: int,
    element_symbols: int = 2,
) -> int | None:
    """Index of the kept symbol that predicts truncated symbol ``target_index``.

    Prefers the nearest preceding kept symbol at the same within-element
    offset, then the nearest following one; returns ``None`` when every
    symbol of the block was truncated (cannot happen in practice because SLC
    truncates at most a sub-block).
    """
    if element_symbols <= 0:
        raise ValueError("element_symbols must be positive")
    if approx_count >= n_symbols:
        return None
    approx_end = approx_start + approx_count
    lane = target_index % element_symbols
    candidate = approx_start - element_symbols + lane
    while candidate >= 0:
        if candidate < approx_start:
            return candidate
        candidate -= element_symbols
    candidate = approx_end + lane
    while candidate < n_symbols:
        if candidate >= approx_end:
            return candidate
        candidate += element_symbols
    # Fall back to any kept symbol (different lane) rather than giving up.
    if approx_start > 0:
        return approx_start - 1
    if approx_end < n_symbols:
        return approx_end
    return None


def predict_truncated_symbols(
    kept_symbols: list[int],
    approx_start: int,
    approx_count: int,
    n_symbols: int,
    use_prediction: bool,
    element_symbols: int = 2,
) -> list[int]:
    """Reconstruct the full symbol list from the kept symbols.

    Args:
        kept_symbols: the symbols that survived truncation, in block order.
        approx_start: index of the first truncated symbol.
        approx_count: number of truncated symbols.
        n_symbols: total symbols per block.
        use_prediction: ``True`` for TSLC-PRED/OPT (value-similarity
            prediction), ``False`` for TSLC-SIMP (zero fill).
        element_symbols: symbols per data element (2 for 32-bit elements and
            16-bit symbols); used by the lane-aware predictor.

    Returns:
        The reconstructed list of ``n_symbols`` symbols.
    """
    if approx_count < 0 or approx_start < 0:
        raise ValueError("approximation range must be non-negative")
    if approx_start + approx_count > n_symbols:
        raise ValueError(
            f"approximated range [{approx_start}, {approx_start + approx_count}) "
            f"exceeds block of {n_symbols} symbols"
        )
    if len(kept_symbols) != n_symbols - approx_count:
        raise ValueError(
            f"expected {n_symbols - approx_count} kept symbols, got {len(kept_symbols)}"
        )

    if approx_count == 0:
        return list(kept_symbols)

    # Rebuild the block with placeholders for the truncated run.
    reconstructed: list[int | None] = list(kept_symbols[:approx_start])
    reconstructed.extend([None] * approx_count)
    reconstructed.extend(kept_symbols[approx_start:])

    for offset in range(approx_count):
        index = approx_start + offset
        if not use_prediction or not kept_symbols:
            reconstructed[index] = 0
            continue
        predictor = predictor_symbol_index(
            index, approx_start, approx_count, n_symbols, element_symbols
        )
        reconstructed[index] = 0 if predictor is None else reconstructed[predictor]
    return [0 if value is None else int(value) for value in reconstructed]
