"""Bridging workload regions and the approximation registry."""

from __future__ import annotations

from repro.approx.regions import ApproxAllocation, ApproxRegionRegistry
from repro.workloads.base import Region


def annotate_regions(
    regions: dict[str, Region],
    threshold_bytes: int = 16,
    registry: ApproxRegionRegistry | None = None,
) -> ApproxRegionRegistry:
    """Register a workload's regions with an :class:`ApproxRegionRegistry`.

    Each region becomes one allocation via the extended ``cudaMalloc`` with
    its ``approximable`` flag and the given lossy threshold, mirroring how a
    programmer would annotate the benchmark (Section IV-C).
    """
    registry = registry or ApproxRegionRegistry(default_threshold_bytes=threshold_bytes)
    for name, region in regions.items():
        registry.malloc(
            name=name,
            size_bytes=max(1, region.size_bytes),
            safe_to_approx=region.approximable,
            threshold_bytes=threshold_bytes,
        )
    return registry
