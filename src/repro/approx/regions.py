"""The paper's programmer-facing approximation model (Section IV-C).

Instead of annotating individual loads, the programmer marks whole memory
allocations as safe to approximate through an extended ``cudaMalloc``::

    cudaMalloc(void** devPtr, size_t size, bool safeToApprox, size_t threshold)

The registry below models exactly that: allocations register an address
range, the safety flag and the per-allocation lossy threshold; the memory
controller consults the registry per block address to decide whether the
lossy path may be used and with which threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ApproxAllocation:
    """One device allocation made through the extended ``cudaMalloc``."""

    name: str
    base_address: int
    size_bytes: int
    safe_to_approx: bool = False
    threshold_bytes: int = 16

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("allocation size must be positive")
        if self.base_address < 0:
            raise ValueError("base address must be non-negative")
        if self.threshold_bytes < 0:
            raise ValueError("threshold must be non-negative")

    @property
    def end_address(self) -> int:
        """One past the last byte of the allocation."""
        return self.base_address + self.size_bytes

    def contains(self, byte_address: int) -> bool:
        """Whether a byte address falls inside this allocation."""
        return self.base_address <= byte_address < self.end_address


class ApproxRegionRegistry:
    """Tracks device allocations and answers per-address safety queries."""

    def __init__(self, default_threshold_bytes: int = 16) -> None:
        self.default_threshold_bytes = default_threshold_bytes
        self._allocations: list[ApproxAllocation] = []
        self._next_address = 0

    def __len__(self) -> int:
        return len(self._allocations)

    def malloc(
        self,
        name: str,
        size_bytes: int,
        safe_to_approx: bool = False,
        threshold_bytes: int | None = None,
        alignment: int = 128,
    ) -> ApproxAllocation:
        """Allocate a region (the extended ``cudaMalloc``).

        Returns the allocation record, whose ``base_address`` plays the role
        of the device pointer.
        """
        if size_bytes <= 0:
            raise ValueError("allocation size must be positive")
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        base = -(-self._next_address // alignment) * alignment
        allocation = ApproxAllocation(
            name=name,
            base_address=base,
            size_bytes=size_bytes,
            safe_to_approx=safe_to_approx,
            threshold_bytes=(
                self.default_threshold_bytes if threshold_bytes is None else threshold_bytes
            ),
        )
        self._allocations.append(allocation)
        self._next_address = base + size_bytes
        return allocation

    def free(self, allocation: ApproxAllocation) -> None:
        """Release an allocation (addresses are not recycled)."""
        self._allocations.remove(allocation)

    def find(self, byte_address: int) -> ApproxAllocation | None:
        """The allocation containing ``byte_address``, if any."""
        for allocation in self._allocations:
            if allocation.contains(byte_address):
                return allocation
        return None

    def is_safe_to_approx(self, byte_address: int) -> bool:
        """Whether a load from ``byte_address`` may use the lossy path.

        Addresses outside every known allocation are never approximable —
        approximating them could cause the catastrophic failures the paper
        explicitly excludes (e.g. segmentation faults through corrupted
        pointers).
        """
        allocation = self.find(byte_address)
        return bool(allocation and allocation.safe_to_approx)

    def threshold_for(self, byte_address: int) -> int:
        """Lossy threshold (bytes) for the allocation containing the address."""
        allocation = self.find(byte_address)
        if allocation is None or not allocation.safe_to_approx:
            return 0
        return allocation.threshold_bytes

    def approximable_count(self) -> int:
        """Number of allocations marked safe to approximate (Table III #AR)."""
        return sum(1 for a in self._allocations if a.safe_to_approx)

    def allocations(self) -> list[ApproxAllocation]:
        """All live allocations in allocation order."""
        return list(self._allocations)
