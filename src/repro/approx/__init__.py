"""Safe-to-approximate memory-region model (the extended ``cudaMalloc``)."""

from repro.approx.regions import ApproxAllocation, ApproxRegionRegistry
from repro.approx.annotations import annotate_regions

__all__ = ["ApproxAllocation", "ApproxRegionRegistry", "annotate_regions"]
