"""Simulation-backed figure studies (Fig. 7, Fig. 8, Fig. 9).

All three ride the campaign engine through :class:`SLCSweepStudy`-shaped
grids; Fig. 9's threshold is coupled to the MAG (MAG/2), so its grid is a
union of per-MAG sub-specs (:func:`repro.campaign.spec.expand_specs`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.spec import (
    BASELINE_SCHEME,
    CampaignSpec,
    Job,
    Overrides,
    expand_specs,
)
from repro.campaign.store import JobRecord
from repro.core.config import SLCVariant
from repro.studies.base import Study, StudyResult
from repro.studies.compression import FIG9_MAGS
from repro.studies.registry import register_study
from repro.studies.slc import (
    BASELINE_LABEL,
    VARIANT_LABELS,
    SLCStudy,
    SLCSweepStudy,
    slc_study_from_records,
)
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

# --------------------------------------------------------------------- #
# Fig. 7


@dataclass(frozen=True)
class Fig7Row:
    """Speedup/error of one (benchmark, TSLC variant) pair."""

    workload: str
    scheme: str
    speedup: float
    error_percent: float


def fig7_rows(study: SLCStudy) -> list[Fig7Row]:
    """The Fig. 7 rows (per benchmark plus GM) of an existing study."""
    rows: list[Fig7Row] = []
    schemes = [s for s in study.schemes() if s != study.baseline_label]
    for workload in study.workloads():
        for scheme in schemes:
            rows.append(
                Fig7Row(
                    workload=workload,
                    scheme=scheme,
                    speedup=study.speedup(workload, scheme),
                    error_percent=study.error_percent(workload, scheme),
                )
            )
    for scheme in schemes:
        rows.append(
            Fig7Row(
                workload="GM",
                scheme=scheme,
                speedup=study.geomean("speedup", scheme),
                error_percent=float("nan"),
            )
        )
    return rows


def format_fig7(rows: list[Fig7Row]) -> str:
    """Render the Fig. 7 data as a text table."""
    lines = [
        "Fig. 7 — speedup and error of TSLC vs. E2MC "
        f"(baseline = {BASELINE_LABEL}, threshold 16 B, MAG 32 B)",
        f"{'benchmark':<9} {'scheme':<10} {'speedup':>8} {'error %':>9}",
    ]
    for row in rows:
        error = "-" if row.error_percent != row.error_percent else f"{row.error_percent:.4f}"
        lines.append(
            f"{row.workload:<9} {row.scheme:<10} {row.speedup:>8.3f} {error:>9}"
        )
    return "\n".join(lines)


@register_study
@dataclass
class Fig7Study(Study):
    """Fig. 7 — speedup and application error of the TSLC variants vs. E2MC.

    16 B lossy threshold, 32 B MAG; speedups are normalized to the E2MC
    lossless baseline and the error uses each benchmark's Table III metric.
    """

    name = "fig7"
    title = "Fig. 7 — TSLC speedup and application error vs. E2MC"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    lossy_threshold_bytes: int = 16
    mag_bytes: int | None = None
    scale: float | None = None
    seed: int = 2019
    config_overrides: Overrides = ()

    def spec(self) -> CampaignSpec:
        # One grid definition for every SLC-sweep-shaped study: delegate to
        # SLCSweepStudy so the axes can't drift apart between figures.
        return SLCSweepStudy(
            workloads=tuple(self.workloads),
            lossy_threshold_bytes=self.lossy_threshold_bytes,
            mag_bytes=self.mag_bytes,
            scale=self.scale,
            seed=self.seed,
            compute_error=True,
            config_overrides=tuple(self.config_overrides),
        ).spec()

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        study = slc_study_from_records(records, list(self.workloads))
        rows = fig7_rows(study)
        flat = [
            {
                "workload": row.workload,
                "scheme": row.scheme,
                "speedup": row.speedup,
                "error_percent": row.error_percent,
            }
            for row in rows
        ]
        return self.make_result(flat, data={"rows": rows, "study": study})

    def format(self, result: StudyResult) -> str:
        return format_fig7(result.data["rows"])


# --------------------------------------------------------------------- #
# Fig. 8


@dataclass(frozen=True)
class Fig8Row:
    """Normalized bandwidth/energy/EDP of one (benchmark, variant) pair."""

    workload: str
    scheme: str
    normalized_bandwidth: float
    normalized_energy: float
    normalized_edp: float


def fig8_rows(study: SLCStudy) -> list[Fig8Row]:
    """The Fig. 8 rows (per benchmark plus GM) of an existing study."""
    schemes = [s for s in study.schemes() if s != study.baseline_label]
    rows: list[Fig8Row] = []
    for workload in study.workloads():
        for scheme in schemes:
            rows.append(
                Fig8Row(
                    workload=workload,
                    scheme=scheme,
                    normalized_bandwidth=study.normalized_bandwidth(workload, scheme),
                    normalized_energy=study.normalized_energy(workload, scheme),
                    normalized_edp=study.normalized_edp(workload, scheme),
                )
            )
    for scheme in schemes:
        rows.append(
            Fig8Row(
                workload="GM",
                scheme=scheme,
                normalized_bandwidth=study.geomean("bandwidth", scheme),
                normalized_energy=study.geomean("energy", scheme),
                normalized_edp=study.geomean("edp", scheme),
            )
        )
    return rows


def format_fig8(rows: list[Fig8Row]) -> str:
    """Render the Fig. 8 data as a text table."""
    lines = [
        "Fig. 8 — bandwidth, energy and EDP of TSLC normalized to E2MC",
        f"{'benchmark':<9} {'scheme':<10} {'bandwidth':>10} {'energy':>8} {'EDP':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.workload:<9} {row.scheme:<10} {row.normalized_bandwidth:>10.3f} "
            f"{row.normalized_energy:>8.3f} {row.normalized_edp:>8.3f}"
        )
    return "\n".join(lines)


@register_study
@dataclass
class Fig8Study(Study):
    """Fig. 8 — off-chip bandwidth, energy and EDP of TSLC normalized to E2MC.

    Timing-only (no application error), so its grid cells are served from
    Fig. 7's error-computing twins when both share a store.
    """

    name = "fig8"
    title = "Fig. 8 — normalized bandwidth, energy and EDP"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    lossy_threshold_bytes: int = 16
    mag_bytes: int | None = None
    scale: float | None = None
    seed: int = 2019
    config_overrides: Overrides = ()

    def spec(self) -> CampaignSpec:
        return SLCSweepStudy(
            workloads=tuple(self.workloads),
            lossy_threshold_bytes=self.lossy_threshold_bytes,
            mag_bytes=self.mag_bytes,
            scale=self.scale,
            seed=self.seed,
            compute_error=False,
            config_overrides=tuple(self.config_overrides),
        ).spec()

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        study = slc_study_from_records(records, list(self.workloads))
        rows = fig8_rows(study)
        flat = [
            {
                "workload": row.workload,
                "scheme": row.scheme,
                "normalized_bandwidth": row.normalized_bandwidth,
                "normalized_energy": row.normalized_energy,
                "normalized_edp": row.normalized_edp,
            }
            for row in rows
        ]
        return self.make_result(flat, data={"rows": rows, "study": study})

    def format(self, result: StudyResult) -> str:
        return format_fig8(result.data["rows"])


# --------------------------------------------------------------------- #
# Fig. 9


@dataclass(frozen=True)
class Fig9Row:
    """Speedup/error of TSLC-OPT at one MAG for one benchmark."""

    workload: str
    mag_bytes: int
    speedup: float
    error_percent: float


def format_fig9(rows: list[Fig9Row]) -> str:
    """Render the Fig. 9 data as a text table."""
    lines = [
        "Fig. 9 — TSLC-OPT speedup and error across MAGs (threshold = MAG/2)",
        f"{'benchmark':<9} {'MAG (B)':>8} {'speedup':>8} {'error %':>9}",
    ]
    for row in rows:
        error = "-" if row.error_percent != row.error_percent else f"{row.error_percent:.4f}"
        lines.append(
            f"{row.workload:<9} {row.mag_bytes:>8} {row.speedup:>8.3f} {error:>9}"
        )
    return "\n".join(lines)


@register_study
@dataclass
class Fig9Study(Study):
    """Fig. 9 / Section V-C — sensitivity of SLC to the access granularity.

    TSLC-OPT at MAG ∈ {16, 32, 64} B with the lossy threshold tied to MAG/2
    (the paper's choice) — a coupled grid, expanded as one sub-spec per MAG.
    """

    name = "fig9"
    title = "Fig. 9 — TSLC-OPT speedup and error across MAGs"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    mags: tuple[int, ...] = FIG9_MAGS
    scale: float | None = None
    seed: int = 2019
    config_overrides: Overrides = ()

    def _sub_spec(self, mag: int) -> CampaignSpec:
        return SLCSweepStudy(
            workloads=tuple(self.workloads),
            schemes=(BASELINE_SCHEME, VARIANT_LABELS[SLCVariant.OPT]),
            lossy_threshold_bytes=mag // 2,
            mag_bytes=mag,
            scale=self.scale,
            seed=self.seed,
            compute_error=True,
            config_overrides=tuple(self.config_overrides),
        ).spec()

    def jobs(self) -> list[Job]:
        return expand_specs([self._sub_spec(mag) for mag in self.mags])

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        opt_label = VARIANT_LABELS[SLCVariant.OPT]
        rows: list[Fig9Row] = []
        studies: dict[int, SLCStudy] = {}
        for mag in self.mags:
            per_mag = [r for r in records if r.job.mag_bytes == mag]
            study = slc_study_from_records(per_mag, list(self.workloads))
            studies[mag] = study
            for workload in study.workloads():
                rows.append(
                    Fig9Row(
                        workload=workload,
                        mag_bytes=mag,
                        speedup=study.speedup(workload, opt_label),
                        error_percent=study.error_percent(workload, opt_label),
                    )
                )
            rows.append(
                Fig9Row(
                    workload="GM",
                    mag_bytes=mag,
                    speedup=study.geomean("speedup", opt_label),
                    error_percent=float("nan"),
                )
            )
        flat = [
            {
                "workload": row.workload,
                "mag_bytes": row.mag_bytes,
                "speedup": row.speedup,
                "error_percent": row.error_percent,
            }
            for row in rows
        ]
        return self.make_result(flat, data={"rows": rows, "studies": studies})

    def format(self, result: StudyResult) -> str:
        return format_fig9(result.data["rows"])
