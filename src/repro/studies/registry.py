"""Registry mapping study names to :class:`~repro.studies.base.Study` classes.

Studies register themselves with the :func:`register_study` decorator at
import time; ``repro study list|run|export`` and programmatic callers resolve
them by name through :func:`get_study` / :func:`study_class`.
"""

from __future__ import annotations

from repro.studies.base import Study

_REGISTRY: dict[str, type[Study]] = {}


def register_study(cls: type[Study]) -> type[Study]:
    """Class decorator: add a study class to the registry (name must be new)."""
    name = cls.name
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"study name {name!r} already registered by {existing!r}")
    _REGISTRY[name] = cls
    return cls


def study_class(name: str) -> type[Study]:
    """The registered class for a study name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown study {name!r}; available: {', '.join(available_studies())}"
        ) from None


def get_study(name: str, **params) -> Study:
    """Instantiate a registered study with the given knob overrides."""
    return study_class(name)(**params)


def available_studies() -> list[str]:
    """Registered study names, in registration order."""
    return list(_REGISTRY)
