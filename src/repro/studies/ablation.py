"""Threshold-ablation study: what the lossy threshold buys and costs.

Not a paper figure — this quantifies the central SLC mechanism by sweeping
the lossy threshold for one workload/scheme through the full simulator (the
grid the ablation benchmark under ``benchmarks/`` rides).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import JobRecord
from repro.studies.base import Study, StudyResult
from repro.studies.registry import register_study

#: the default threshold axis (0 disables the lossy path entirely)
ABLATION_THRESHOLDS = (0, 4, 8, 16, 24, 32)


@register_study
@dataclass
class ThresholdAblationStudy(Study):
    """Lossy-threshold sweep: converted-block fraction vs. DRAM bursts.

    A higher threshold can only convert more blocks to the lossy path and
    never costs bursts; ``aggregate`` exposes both monotonic series.
    """

    name = "ablation-threshold"
    title = "Ablation — lossy threshold vs. converted blocks and DRAM bursts"

    workload: str = "FWT"
    scheme: str = "TSLC-OPT"
    thresholds: tuple[int, ...] = ABLATION_THRESHOLDS
    scale: float | None = None
    seed: int = 2019

    def spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="threshold-ablation",
            workloads=(self.workload,),
            schemes=(self.scheme,),
            lossy_thresholds=tuple(self.thresholds),
            scales=(self.scale,),
            seeds=(self.seed,),
            compute_error=False,
        )

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        by_threshold: dict[int, tuple[float, int]] = {}
        for record in records:
            result = record.result
            by_threshold[record.job.lossy_threshold_bytes] = (
                result.lossy_blocks / result.stored_blocks,
                result.total_bursts,
            )
        rows = [
            {
                "lossy_threshold_bytes": threshold,
                "lossy_fraction": fraction,
                "total_bursts": bursts,
            }
            for threshold, (fraction, bursts) in sorted(by_threshold.items())
        ]
        return self.make_result(rows, data=by_threshold)
