"""``repro study`` — run, list and export declarative studies.

Subcommands (registered into the main ``repro`` parser)::

    repro study list            registered studies and their knobs
    repro study run NAME        run a study (parallel, cached) and print it
    repro study export NAME     run a study and flatten its rows to CSV

Study knobs are overridden with repeated ``--set field=value`` flags; values
are coerced to the field's type (comma-separated for tuple fields), so e.g.
``--set workloads=BS,NN --set scale=0.001`` works for every study.
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import sys

from repro.campaign.store import STORE_BACKENDS
from repro.obs.cli import enable_observability, finish_trace
from repro.obs.log import get_logger
from repro.studies.base import Study
from repro.studies.registry import available_studies, study_class

_log = get_logger("study")

#: sentinel: tuple fields whose default is empty still coerce elements
_AUTO = object()


def _fraction(raw: str) -> float:
    """Parse ``"a/b"`` as a float (``scale=1/2048`` beats counting zeros)."""
    numerator, _, denominator = raw.partition("/")
    denom = float(denominator)
    if denom == 0:
        raise ValueError(f"fraction {raw!r} has a zero denominator")
    return float(numerator) / denom


def _coerce_scalar(raw: str, default) -> object:
    """Coerce one CLI string to the type of a field's default value."""
    if isinstance(default, bool):
        if raw.lower() in ("1", "true", "yes", "on"):
            return True
        if raw.lower() in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"expected a boolean, got {raw!r}")
    if isinstance(default, int) and not isinstance(default, bool):
        return int(raw)
    if isinstance(default, float):
        return _fraction(raw) if "/" in raw else float(raw)
    if isinstance(default, str):
        return raw
    # None or unknown: best effort — int, fraction, float, then the raw string
    try:
        return int(raw)
    except ValueError:
        pass
    if "/" in raw:
        try:
            return _fraction(raw)
        except ValueError:
            return raw
    try:
        return float(raw)
    except ValueError:
        return raw


def coerce_param(cls: type[Study], key: str, raw: str) -> object:
    """Coerce ``--set key=raw`` to the type of the study field's default."""
    fields = {f.name: f for f in dataclasses.fields(cls)}
    if key not in fields:
        raise KeyError(
            f"study {cls.name!r} has no knob {key!r}; "
            f"available: {', '.join(fields)}"
        )
    field = fields[key]
    if field.default is not dataclasses.MISSING:
        default = field.default
    elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        default = field.default_factory()  # type: ignore[misc]
    else:
        default = None
    if isinstance(default, tuple):
        element = default[0] if default else _AUTO
        items = [item.strip() for item in raw.split(",") if item.strip()]
        return tuple(
            _coerce_scalar(item, None if element is _AUTO else element)
            for item in items
        )
    return _coerce_scalar(raw, default)


def build_study(name: str, assignments: list[str]) -> Study:
    """Instantiate a registered study from ``--set key=value`` assignments."""
    cls = study_class(name)
    params = {}
    for assignment in assignments or []:
        key, sep, raw = assignment.partition("=")
        if not sep:
            raise ValueError(f"--set expects key=value, got {assignment!r}")
        params[key.strip()] = coerce_param(cls, key.strip(), raw.strip())
    return cls(**params)


def _knobs(cls: type[Study]) -> str:
    parts = []
    for field in dataclasses.fields(cls):
        default = field.default
        if default is dataclasses.MISSING and field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            default = field.default_factory()  # type: ignore[misc]
        parts.append(f"{field.name}={default!r}")
    return ", ".join(parts)


def cmd_list(args: argparse.Namespace) -> int:
    """``study list``: every registered study, its title and its knobs."""
    for name in available_studies():
        cls = study_class(name)
        print(f"{name:<20} {cls.title}")
        if args.verbose:
            print(f"{'':<20} knobs: {_knobs(cls)}")
    return 0


def _build_study_or_none(args: argparse.Namespace) -> Study | None:
    """Build the study; bad names/knob values print ``error:`` and yield None.

    Only construction gets the friendly error path — an exception out of the
    run itself is an internal failure whose traceback must survive.
    """
    try:
        return build_study(args.study, args.set)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        _log.error("error: %s", message)
        return None


def _execute_study(study: Study, args: argparse.Namespace):
    from repro.campaign.cli import ProgressReporter  # late: avoids import cycle

    enable_observability(args)

    # Attach progress to anything grid-backed without expanding the grid
    # here — Study.run expands it once, and content-hashing thousands of
    # cells twice is real time on a large surface.  Grid-backed means the
    # study declares a spec or overrides jobs().
    grid_backed = study.spec() is not None or type(study).jobs is not Study.jobs
    progress = None
    if not args.quiet and grid_backed:
        progress = ProgressReporter(workers=args.workers)
    return study.run(
        store=args.dir,
        workers=args.workers,
        progress=progress,
        store_backend=args.store_backend,
    )


def cmd_run(args: argparse.Namespace) -> int:
    """``study run``: execute a study and print its formatted table."""
    study = _build_study_or_none(args)
    if study is None:
        return 2
    result = _execute_study(study, args)
    print(study.format(result))
    if result.meta.get("n_jobs"):
        print(
            f"\nstudy '{study.name}': {result.meta['n_jobs']} jobs — "
            f"{result.meta.get('n_cached', 0)} cached, "
            f"{result.meta.get('n_executed', 0)} executed",
            file=sys.stderr,
        )
    finish_trace(args)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """``study export``: execute a study and write its rows as CSV."""
    study = _build_study_or_none(args)
    if study is None:
        return 2
    result = _execute_study(study, args)
    rows = study.export(result)
    columns = result.columns()
    handle = sys.stdout if args.csv == "-" else open(args.csv, "w", newline="")
    try:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    finally:
        if handle is not sys.stdout:
            handle.close()
    if args.csv != "-":
        print(f"wrote {len(rows)} rows to {args.csv}")
    finish_trace(args)
    return 0


def add_study_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``study`` subcommand tree on the main ``repro`` parser."""
    study = sub.add_parser("study", help="run and export declarative studies")
    study_sub = study.add_subparsers(dest="subcommand", required=True)

    list_parser = study_sub.add_parser("list", help="list registered studies")
    list_parser.add_argument(
        "-v", "--verbose", action="store_true", help="also show each study's knobs"
    )
    list_parser.set_defaults(func=cmd_list)

    def add_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("study", help="registered study name (see 'study list')")
        parser.add_argument(
            "--set",
            action="append",
            metavar="KEY=VALUE",
            help="override a study knob (repeatable; comma-separated tuples)",
        )
        parser.add_argument(
            "--dir", default=None, help="result store for the study's grid cells"
        )
        parser.add_argument(
            "--store-backend",
            choices=STORE_BACKENDS,
            default=None,
            help="force the store backend (default: inferred from the path)",
        )
        parser.add_argument("--workers", type=int, default=1, help="worker processes")
        parser.add_argument(
            "--quiet", action="store_true", help="suppress per-job progress"
        )
        parser.add_argument(
            "--trace",
            default=None,
            metavar="OUT.json",
            help="collect per-phase spans and write a Chrome trace-event file",
        )

    run_parser = study_sub.add_parser("run", help="run a study and print its table")
    add_common(run_parser)
    run_parser.set_defaults(func=cmd_run)

    export_parser = study_sub.add_parser("export", help="run a study and export CSV")
    add_common(export_parser)
    export_parser.add_argument("--csv", default="-", help="output path, or '-' for stdout")
    export_parser.set_defaults(func=cmd_export)
