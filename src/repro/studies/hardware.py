"""Table I — frequency, area and power of the SLC hardware additions.

Analysis-only: the numbers come from the 32 nm analytic cost model in
:mod:`repro.hardware.synthesis`, not from simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.store import JobRecord
from repro.hardware.synthesis import SynthesisResult, overhead_summary, table1
from repro.studies.base import Study, StudyResult
from repro.studies.registry import register_study


def format_table1(results: dict[str, SynthesisResult] | None = None) -> str:
    """Render Table I plus the overhead summary as text."""
    results = results or table1()
    summary = overhead_summary()
    lines = [
        "Table I — frequency, area and power of SLC (32 nm analytic model)",
        f"{'unit':<14} {'freq (GHz)':>11} {'area (mm^2)':>12} {'power (mW)':>11}",
    ]
    for label in ("compressor", "decompressor"):
        result = results[label]
        lines.append(
            f"{label:<14} {result.frequency_ghz:>11.2f} {result.area_mm2:>12.5f} "
            f"{result.power_mw:>11.3f}"
        )
    lines.append(
        "overhead: "
        f"{summary['area_percent_of_gtx580']:.4f}% of GTX580 area, "
        f"{summary['power_percent_of_gtx580']:.4f}% of GTX580 power, "
        f"{summary['area_percent_of_e2mc']:.1f}% of E2MC area"
    )
    return "\n".join(lines)


@register_study
@dataclass
class Table1Study(Study):
    """Table I — synthesis results of the SLC compressor/decompressor."""

    name = "table1"
    title = "Table I — SLC hardware frequency, area and power"

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        results = table1()
        summary = overhead_summary()
        rows = [
            {
                "unit": label,
                "frequency_ghz": result.frequency_ghz,
                "area_mm2": result.area_mm2,
                "power_mw": result.power_mw,
            }
            for label, result in results.items()
        ]
        for key, value in summary.items():
            rows.append(
                {"unit": key, "frequency_ghz": None, "area_mm2": None, "power_mw": value}
            )
        return self.make_result(rows, data={"results": results, "summary": summary})

    def format(self, result: StudyResult) -> str:
        return format_table1(result.data["results"])
