"""The all-scheme tournament: every compression scheme on every axis at once.

The paper compares schemes one axis at a time (ratio in Fig. 1, speedup and
error in Figs. 7–9, hardware in Table I).  The tournament study runs the
full cross of registry schemes × benchmarks × MAGs through the simulator and
ranks the schemes on all four axes together — geomean speedup, geomean raw
compression ratio, worst-case application error and estimated hardware cost
(:mod:`repro.hardware.costs`) — exporting per-cell rows plus a per-MAG
Pareto frontier of the non-dominated schemes.

Like Fig. 9, the grid couples the TSLC lossy threshold to the MAG (MAG/2),
so it expands as one sub-spec per MAG; the purely lossless schemes ignore
the threshold by job normalization and contribute one cell per MAG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.campaign.spec import (
    KNOWN_SCHEMES,
    CampaignSpec,
    Job,
    Overrides,
    expand_specs,
    overrides_to_config,
)
from repro.campaign.store import JobRecord
from repro.compression.stats import geometric_mean
from repro.hardware.costs import scheme_hardware_cost
from repro.studies.base import Study, StudyResult
from repro.studies.compression import FIG9_MAGS
from repro.studies.registry import register_study
from repro.studies.slc import SLCStudy, slc_study_from_records
from repro.workloads.registry import PAPER_WORKLOAD_ORDER


def pareto_frontier(points: dict[str, tuple[float, ...]]) -> list[str]:
    """Non-dominated keys under (speedup↑, ratio↑, error↓, area↓).

    A point dominates another when it is at least as good on every axis and
    strictly better on at least one; the frontier is every point no other
    point dominates.  Insertion order of ``points`` is preserved.
    """

    def dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
        no_worse = a[0] >= b[0] and a[1] >= b[1] and a[2] <= b[2] and a[3] <= b[3]
        better = a[0] > b[0] or a[1] > b[1] or a[2] < b[2] or a[3] < b[3]
        return no_worse and better

    return [
        key
        for key, point in points.items()
        if not any(dominates(other, point) for other in points.values())
    ]


def _finite(value: float, fallback: float = 0.0) -> float:
    return value if math.isfinite(value) else fallback


@register_study
@dataclass
class TournamentStudy(Study):
    """All schemes × benchmarks × MAGs, ranked on four axes at once.

    Per (MAG, benchmark, scheme) cell: speedup over the E2MC baseline, raw
    compression ratio of the final stored state and application error.  Per
    (MAG, scheme): the geomean speedup/ratio, the worst-case error, the
    hardware cost estimate and whether the scheme sits on that MAG's Pareto
    frontier.
    """

    name = "tournament"
    title = "Tournament — ratio, error, speedup and hardware cost of all schemes"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    schemes: tuple[str, ...] = KNOWN_SCHEMES
    mags: tuple[int, ...] = FIG9_MAGS
    scale: float | None = None
    seed: int = 2019
    compute_error: bool = True
    config_overrides: Overrides = ()

    def __post_init__(self) -> None:
        self.schemes = tuple(s.upper() for s in self.schemes)
        if "E2MC" not in self.schemes:
            raise ValueError(
                "schemes must include the E2MC baseline "
                "(speedups are normalized to it)"
            )

    def _sub_spec(self, mag: int) -> CampaignSpec:
        return CampaignSpec(
            name="tournament",
            workloads=tuple(self.workloads),
            schemes=self.schemes,
            lossy_thresholds=(mag // 2,),
            mags=(mag,),
            scales=(self.scale,),
            seeds=(self.seed,),
            compute_error=self.compute_error,
            config_overrides=tuple(self.config_overrides),
        )

    def jobs(self) -> list[Job]:
        return expand_specs([self._sub_spec(mag) for mag in self.mags])

    # ------------------------------------------------------------------ #
    # aggregation

    def _compression_ratio(self, result) -> float:
        """Raw compression ratio of a run's final stored state."""
        stored_bits = result.extra_metrics.get("stored_bits")
        if not stored_bits or not result.stored_blocks:
            return float("nan")
        block_bits = overrides_to_config(self.config_overrides).block_size_bytes * 8
        return result.stored_blocks * block_bits / stored_bits

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        rows: list[dict] = []
        studies: dict[int, SLCStudy] = {}
        frontier: dict[int, list[str]] = {}
        costs = {scheme: scheme_hardware_cost(scheme) for scheme in self.schemes}

        for mag in self.mags:
            per_mag = [r for r in records if r.job.mag_bytes == mag]
            study = slc_study_from_records(per_mag, list(self.workloads))
            studies[mag] = study
            per_scheme: dict[str, dict[str, list[float]]] = {}
            for workload in study.workloads():
                for scheme in study.schemes():
                    result = study.results[workload][scheme]
                    speedup = study.speedup(workload, scheme)
                    ratio = self._compression_ratio(result)
                    error = result.error_percent
                    rows.append(
                        {
                            "mag_bytes": mag,
                            "workload": workload,
                            "scheme": scheme,
                            "speedup": speedup,
                            "compression_ratio": ratio,
                            "error_percent": error,
                            "pareto": None,
                        }
                    )
                    bucket = per_scheme.setdefault(
                        scheme, {"speedup": [], "ratio": [], "error": []}
                    )
                    bucket["speedup"].append(speedup)
                    bucket["ratio"].append(_finite(ratio, 1.0))
                    bucket["error"].append(_finite(error))

            points: dict[str, tuple[float, ...]] = {}
            gm_rows: list[dict] = []
            for scheme, bucket in per_scheme.items():
                cost = costs[scheme]
                gm_speedup = geometric_mean(bucket["speedup"])
                gm_ratio = geometric_mean(bucket["ratio"])
                max_error = max(bucket["error"], default=0.0)
                points[scheme] = (gm_speedup, gm_ratio, max_error, cost.area_mm2)
                gm_rows.append(
                    {
                        "mag_bytes": mag,
                        "workload": "GM",
                        "scheme": scheme,
                        "speedup": gm_speedup,
                        "compression_ratio": gm_ratio,
                        "error_percent": max_error,
                        "area_mm2": cost.area_mm2,
                        "power_mw": cost.power_mw,
                        "pareto": False,
                    }
                )
            frontier[mag] = pareto_frontier(points)
            for row in gm_rows:
                row["pareto"] = row["scheme"] in frontier[mag]
            rows.extend(gm_rows)

        return self.make_result(
            rows, data={"studies": studies, "frontier": frontier, "costs": costs}
        )

    def format(self, result: StudyResult) -> str:
        lines = [result.format(), ""]
        for mag, winners in result.data["frontier"].items():
            lines.append(
                f"Pareto frontier @ MAG {mag} B "
                "(speedup x ratio x error x area): " + ", ".join(winners)
            )
        return "\n".join(lines)
