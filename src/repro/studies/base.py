"""The declarative Study framework: grid + reduction + export in one object.

A :class:`Study` describes one evaluation artefact (a paper figure, a table,
a sweep) through three declarative hooks:

* :meth:`Study.spec` — the parameter grid as a
  :class:`~repro.campaign.CampaignSpec` (or ``jobs()`` for coupled grids no
  cross product can express, or nothing at all for analysis-only studies
  that never touch the simulator);
* :meth:`Study.aggregate` — the reduction from the grid's
  :class:`~repro.campaign.JobRecord` list to a :class:`StudyResult`
  (normalized metrics, geomeans, per-seed statistics);
* :meth:`Study.export` — the result flattened to plain rows for CSV.

:meth:`Study.run` drives the pipeline on the campaign engine, so every study
inherits parallel execution (``workers=``), persistent caching (``store=``,
any :class:`~repro.campaign.ResultStore` backend) and per-job failure
capture without writing any orchestration code.  Studies are dataclasses:
their fields are the tuning knobs (workloads, scale, seed, sweep axes) the
``repro study`` CLI exposes as ``--set field=value``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar

from repro.campaign.executor import ProgressFn, run_jobs
from repro.campaign.spec import CampaignSpec, Job
from repro.campaign.store import JobRecord, ResultStore


@dataclass
class StudyResult:
    """What one study run produced.

    ``rows`` is the flat, CSV-ready view (one dict per row, plain scalars);
    ``data`` is the study-specific payload (typed row objects, an
    :class:`~repro.studies.slc.SLCStudy`, a distribution …) for callers that
    want more than the table.
    """

    study: str
    title: str
    rows: list[dict] = field(default_factory=list)
    data: Any = None
    #: run bookkeeping (cells simulated/cached, …), not part of the table
    meta: dict = field(default_factory=dict)

    def columns(self) -> list[str]:
        """Union of row keys, in first-seen order."""
        columns: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                columns.setdefault(key, None)
        return list(columns)

    def format(self) -> str:
        """The rows as an aligned text table (generic fallback renderer)."""
        columns = self.columns()
        if not columns:
            return self.title
        cells = [[_format_cell(row.get(c, "")) for c in columns] for row in self.rows]
        widths = [
            max(len(c), *(len(line[i]) for line in cells)) if cells else len(c)
            for i, c in enumerate(columns)
        ]
        lines = [self.title, "  ".join(c.ljust(w) for c, w in zip(columns, widths))]
        for line in cells:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(line, widths)))
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


class Study(ABC):
    """Base class of every declarative study (see the module docstring).

    Subclasses are dataclasses whose fields are the study's knobs, declare a
    unique ``name`` (the CLI identifier) and a human ``title``, and implement
    at least :meth:`aggregate`.  Simulation-backed studies override
    :meth:`spec` (or :meth:`jobs` when the grid couples axes); analysis-only
    studies override neither and do their computation in :meth:`aggregate`.
    """

    #: CLI identifier, unique across the registry
    name: ClassVar[str]
    #: one-line human description (shown by ``repro study list``)
    title: ClassVar[str]

    # ------------------------------------------------------------------ #
    # declarative hooks

    def spec(self) -> CampaignSpec | None:
        """The study's parameter grid; None for analysis-only studies."""
        return None

    def jobs(self) -> list[Job]:
        """The grid as explicit jobs (override for coupled axes)."""
        spec = self.spec()
        return spec.expand() if spec is not None else []

    @abstractmethod
    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        """Reduce the grid's records (empty for analysis-only studies)."""

    def export(self, result: StudyResult) -> list[dict]:
        """The result as flat CSV rows (defaults to ``result.rows``)."""
        return result.rows

    def format(self, result: StudyResult) -> str:
        """Render the result as text (defaults to the generic table)."""
        return result.format()

    # ------------------------------------------------------------------ #
    # the driver

    def run(
        self,
        store: ResultStore | str | Path | None = None,
        workers: int = 1,
        progress: ProgressFn | None = None,
        store_backend: str | None = None,
    ) -> StudyResult:
        """Execute the study on the campaign engine and aggregate.

        Args:
            store: result store (or a path to open one); grid cells already
                stored are served from it instead of simulating.
            workers: worker processes for the grid (1 = in-process).
            progress: per-job campaign progress hook.
            store_backend: forces ``"jsonl"``/``"sqlite"`` when ``store`` is
                a path (otherwise the path suffix decides).
        """
        jobs = self.jobs()
        records: list[JobRecord] = []
        meta: dict = {"n_jobs": len(jobs)}
        if jobs:
            if isinstance(store, (str, Path)):
                store = ResultStore(store, store_backend)
            outcome = run_jobs(
                self.spec(), jobs, store=store, workers=workers, progress=progress
            )
            outcome.raise_for_failures()
            records = [record for _, record in outcome.iter_records()]
            meta.update(n_cached=outcome.n_cached, n_executed=outcome.n_executed)
        result = self.aggregate(records)
        result.meta.update(meta)
        return result

    def make_result(self, rows: list[dict], data: Any = None) -> StudyResult:
        """A :class:`StudyResult` stamped with this study's name and title."""
        return StudyResult(study=self.name, title=self.title, rows=rows, data=data)
