"""The sweep-shaped studies the campaign engine makes tractable.

Three studies beyond the paper's figures (ROADMAP follow-ups):

* :class:`ResponseSurfaceStudy` — the full MAG × lossy-threshold response
  surface per TSLC scheme (Fig. 9 samples only the threshold = MAG/2
  diagonal of this surface);
* :class:`SeedVarianceStudy` — per-seed variance bands for every Fig. 7/8
  metric (the paper reports single-seed point estimates);
* :class:`GPUScalingStudy` — how the TSLC speedup scales with SM count and
  off-chip bandwidth (coupled grid: one sub-spec per scaling point).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.campaign.spec import (
    BASELINE_SCHEME,
    SCHEME_VARIANTS,
    CampaignSpec,
    Job,
    Overrides,
    config_to_overrides,
    expand_specs,
)
from repro.campaign.store import JobRecord
from repro.compression.stats import geometric_mean
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimulationResult
from repro.studies.base import Study, StudyResult
from repro.studies.registry import register_study
from repro.studies.slc import SLCStudy, slc_study_from_records
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

#: the Fig. 7/8 metrics the variance and surface studies aggregate
SWEEP_METRICS = ("speedup", "error_percent", "bandwidth", "energy", "edp")


def _metric_value(study: SLCStudy, metric: str, workload: str, scheme: str) -> float:
    if metric == "error_percent":
        return study.error_percent(workload, scheme)
    return study.metric(metric, workload, scheme)


def _reject_baseline_scheme(schemes: tuple[str, ...]) -> None:
    """The sweep studies add the baseline implicitly; catch it in the knob
    at construction time, not as a KeyError after the grid has simulated."""
    if BASELINE_SCHEME in schemes:
        raise ValueError(
            f"schemes lists the TSLC variants only; the {BASELINE_SCHEME} "
            "baseline is simulated implicitly (every metric is normalized to it)"
        )


# --------------------------------------------------------------------- #
# MAG × threshold response surface


@register_study
@dataclass
class ResponseSurfaceStudy(Study):
    """Full MAG × lossy-threshold response surface per TSLC scheme.

    One grid cell per (workload, scheme, MAG, threshold); the E2MC baseline
    is threshold-independent, so each MAG contributes exactly one baseline
    cell per workload (the spec's cross product aliases the rest away).
    Aggregates to geomean speedup/bandwidth (and error statistics when
    ``compute_error``) over the workloads at every surface point.
    """

    name = "response-surface"
    title = "Response surface — geomean metrics over MAG × lossy threshold"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    schemes: tuple[str, ...] = tuple(SCHEME_VARIANTS)
    mags: tuple[int, ...] = (16, 32, 64)
    thresholds: tuple[int, ...] = (4, 8, 16, 24, 32)
    scale: float | None = None
    seed: int = 2019
    compute_error: bool = True

    def __post_init__(self) -> None:
        # jobs normalize scheme labels to uppercase; match them here so CLI
        # overrides like --set schemes=tslc-opt address the right records
        self.schemes = tuple(s.upper() for s in self.schemes)
        _reject_baseline_scheme(self.schemes)

    def spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="response-surface",
            workloads=tuple(self.workloads),
            schemes=(BASELINE_SCHEME, *self.schemes),
            lossy_thresholds=tuple(self.thresholds),
            mags=tuple(self.mags),
            scales=(self.scale,),
            seeds=(self.seed,),
            compute_error=self.compute_error,
        )

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        results: dict[tuple, SimulationResult] = {}
        baselines: dict[tuple, SimulationResult] = {}
        for record in records:
            job = record.job
            if job.scheme == BASELINE_SCHEME:
                baselines[(job.workload, job.mag_bytes)] = record.result
            else:
                key = (job.scheme, job.mag_bytes, job.lossy_threshold_bytes, job.workload)
                results[key] = record.result

        surface: dict[tuple, dict] = {}
        rows: list[dict] = []
        for scheme in self.schemes:
            for mag in self.mags:
                for threshold in self.thresholds:
                    speedups, bandwidths, errors = [], [], []
                    for workload in self.workloads:
                        cell = results[(scheme, mag, threshold, workload.upper())]
                        baseline = baselines[(workload.upper(), mag)]
                        speedups.append(cell.speedup_over(baseline))
                        bandwidths.append(cell.bandwidth_ratio_over(baseline))
                        errors.append(cell.error_percent)
                    point = {
                        "scheme": scheme,
                        "mag_bytes": mag,
                        "lossy_threshold_bytes": threshold,
                        "gm_speedup": geometric_mean(speedups),
                        "gm_bandwidth": geometric_mean(bandwidths),
                    }
                    if self.compute_error:
                        # A timing-only surface has no error measurement;
                        # emitting the simulator's 0.0 placeholder would read
                        # as "zero application error" in an exported CSV.
                        point["mean_error_percent"] = sum(errors) / len(errors)
                        point["max_error_percent"] = max(errors)
                    surface[(scheme, mag, threshold)] = point
                    rows.append(point)
        return self.make_result(rows, data=surface)


# --------------------------------------------------------------------- #
# per-seed variance bands


@register_study
@dataclass
class SeedVarianceStudy(Study):
    """Per-seed variance bands for the Fig. 7/8 metrics.

    Every (workload, scheme) cell is simulated once per seed — workload data
    generation is seeded, so this measures how sensitive the paper's point
    estimates are to the input data draw.  Each seed's metrics are
    normalized to *that seed's* E2MC baseline; the bands (mean, sample std,
    min, max) are taken across seeds, including a GM band per scheme.
    """

    name = "seed-variance"
    title = "Seed variance — per-seed bands for speedup/error/bandwidth/energy/EDP"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    schemes: tuple[str, ...] = tuple(SCHEME_VARIANTS)
    lossy_threshold_bytes: int = 16
    mag_bytes: int | None = None
    scale: float | None = None
    seeds: tuple[int, ...] = (2019, 2020, 2021, 2022, 2023)
    compute_error: bool = True

    def __post_init__(self) -> None:
        self.schemes = tuple(s.upper() for s in self.schemes)
        _reject_baseline_scheme(self.schemes)

    def spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="seed-variance",
            workloads=tuple(self.workloads),
            schemes=(BASELINE_SCHEME, *self.schemes),
            lossy_thresholds=(self.lossy_threshold_bytes,),
            mags=(self.mag_bytes,),
            scales=(self.scale,),
            seeds=tuple(self.seeds),
            compute_error=self.compute_error,
        )

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        studies: dict[int, SLCStudy] = {}
        for seed in self.seeds:
            per_seed = [r for r in records if r.job.seed == seed]
            studies[seed] = slc_study_from_records(per_seed, list(self.workloads))

        metrics = [
            m for m in SWEEP_METRICS if self.compute_error or m != "error_percent"
        ]
        per_seed_values: dict[tuple, list[float]] = {}
        rows: list[dict] = []
        any_study = studies[self.seeds[0]]
        for workload in any_study.workloads():
            for scheme in self.schemes:
                for metric in metrics:
                    values = [
                        _metric_value(studies[seed], metric, workload, scheme)
                        for seed in self.seeds
                    ]
                    per_seed_values[(workload, scheme, metric)] = values
                    rows.append(_band_row(workload, scheme, metric, values))
        # geometric-mean bands (the headline numbers of Fig. 7/8)
        for scheme in self.schemes:
            for metric in ("speedup", "bandwidth", "energy", "edp"):
                values = [studies[seed].geomean(metric, scheme) for seed in self.seeds]
                per_seed_values[("GM", scheme, metric)] = values
                rows.append(_band_row("GM", scheme, metric, values))
        return self.make_result(
            rows, data={"per_seed": per_seed_values, "studies": studies}
        )


def _band_row(workload: str, scheme: str, metric: str, values: list[float]) -> dict:
    mean = sum(values) / len(values)
    if len(values) > 1:
        std = math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))
    else:
        std = 0.0
    return {
        "workload": workload,
        "scheme": scheme,
        "metric": metric,
        "mean": mean,
        "std": std,
        "min": min(values),
        "max": max(values),
        "n_seeds": len(values),
    }


# --------------------------------------------------------------------- #
# GPU-config scaling curves


@register_study
@dataclass
class GPUScalingStudy(Study):
    """TSLC speedup vs. GPU configuration (SM count and off-chip bandwidth).

    Two one-dimensional sweeps sharing their default-config point: SM counts
    at the Table II bandwidth, and bandwidth scalings at the Table II SM
    count.  Each point is its own ``config_overrides`` (a coupled axis), so
    the grid is a union of per-point sub-specs; the speedup at every point
    is normalized to the E2MC baseline *of that configuration*.
    """

    name = "gpu-scaling"
    title = "GPU scaling — TSLC speedup across SM counts and bandwidths"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    scheme: str = "TSLC-OPT"
    sm_counts: tuple[int, ...] = (8, 16, 32)
    bandwidth_scales: tuple[float, ...] = (0.5, 1.0, 2.0)
    lossy_threshold_bytes: int = 16
    scale: float | None = None
    seed: int = 2019

    def __post_init__(self) -> None:
        self.scheme = self.scheme.upper()
        _reject_baseline_scheme((self.scheme,))

    def points(self) -> list[tuple[str, float, Overrides]]:
        """The scaling points as (axis, value, config overrides)."""
        default = GPUConfig()
        points: list[tuple[str, float, Overrides]] = []
        for sms in self.sm_counts:
            overrides = config_to_overrides(default.scaled(num_sms=sms))
            points.append(("num_sms", sms, overrides))
        for factor in self.bandwidth_scales:
            # Off-chip bandwidth is memory clock x bus width x burst rate, so
            # a bandwidth scaling is a memory-clock scaling; the GB/s figure
            # is kept consistent (the energy/DRAM models read the clock).
            gbps = default.memory_bandwidth_gbps * factor
            overrides = config_to_overrides(
                default.scaled(
                    memory_clock_mhz=default.memory_clock_mhz * factor,
                    memory_bandwidth_gbps=gbps,
                )
            )
            points.append(("memory_bandwidth_gbps", gbps, overrides))
        return points

    def _sub_spec(self, overrides: Overrides) -> CampaignSpec:
        return CampaignSpec(
            name="gpu-scaling",
            workloads=tuple(self.workloads),
            schemes=(BASELINE_SCHEME, self.scheme),
            lossy_thresholds=(self.lossy_threshold_bytes,),
            scales=(self.scale,),
            seeds=(self.seed,),
            compute_error=False,
            config_overrides=overrides,
        )

    def jobs(self) -> list[Job]:
        # The default-config point appears on both axes; expand_specs dedups
        # it, so it simulates once and both curves share the cell.
        return expand_specs([self._sub_spec(o) for _, _, o in self.points()])

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        by_overrides: dict[Overrides, list[JobRecord]] = {}
        for record in records:
            by_overrides.setdefault(record.job.config_overrides, []).append(record)

        rows: list[dict] = []
        studies: dict[tuple[str, float], SLCStudy] = {}
        for axis, value, overrides in self.points():
            study = slc_study_from_records(
                by_overrides.get(overrides, []), list(self.workloads)
            )
            studies[(axis, value)] = study
            for workload in study.workloads():
                result = study.results[workload][self.scheme]
                baseline = study.results[workload][study.baseline_label]
                rows.append(
                    {
                        "axis": axis,
                        "value": value,
                        "workload": workload,
                        "speedup": study.speedup(workload, self.scheme),
                        "exec_time_s": result.exec_time_s,
                        "baseline_exec_time_s": baseline.exec_time_s,
                        "memory_bound_fraction": result.memory_bound_fraction,
                    }
                )
            rows.append(
                {
                    "axis": axis,
                    "value": value,
                    "workload": "GM",
                    "speedup": study.geomean("speedup", self.scheme),
                    "exec_time_s": None,
                    "baseline_exec_time_s": None,
                    "memory_bound_fraction": None,
                }
            )
        return self.make_result(rows, data={"studies": studies})
