"""The fidelity study: the statistical-fidelity panel over every family.

Runs schemes × workload families × MAGs through the campaign engine (the
Fig. 9 coupling: lossy threshold = MAG/2) with error computation on, and
exports one row per cell carrying the paper's application error *and* the
statistical fidelity panel — Pearson correlation, two-sample KS statistic
and IQR-normalized mean/max error of the degraded approximable data
(:mod:`repro.metrics.fidelity`) — plus the speedup over the E2MC baseline.
The default workload set is every registry family: the nine paper kernels
(``family=paper``) and the extended WEATHER/DNNACT families.

Lossless schemes store the data bit-exactly by construction (job
normalization even skips their error pass), so their panel is synthesized
as perfect fidelity: Pearson 1, KS 0, IQR errors 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.campaign.spec import (
    ALL_WORKLOADS,
    BASELINE_SCHEME,
    LOSSLESS_SCHEMES,
    PAPER_SCHEMES,
    CampaignSpec,
    Job,
    Overrides,
    expand_specs,
)
from repro.campaign.store import JobRecord
from repro.compression.stats import geometric_mean
from repro.studies.base import Study, StudyResult
from repro.studies.compression import FIG9_MAGS
from repro.studies.registry import register_study
from repro.studies.slc import slc_study_from_records
from repro.workloads.registry import workload_family

#: extra_metrics keys of the per-run fidelity panel, in export order
FIDELITY_KEYS = (
    "fidelity_pearson",
    "fidelity_ks",
    "fidelity_iqr_mean",
    "fidelity_iqr_max",
)

#: the panel of an undamaged (lossless) run
PERFECT_FIDELITY = {
    "fidelity_pearson": 1.0,
    "fidelity_ks": 0.0,
    "fidelity_iqr_mean": 0.0,
    "fidelity_iqr_max": 0.0,
}


def _is_lossless(scheme: str) -> bool:
    return scheme == BASELINE_SCHEME or scheme in LOSSLESS_SCHEMES


@register_study
@dataclass
class FidelityStudy(Study):
    """Schemes × families × MAGs with the full fidelity metric panel."""

    name = "fidelity"
    title = "Fidelity — Pearson / KS / IQR panel over all workload families"

    workloads: tuple[str, ...] = ALL_WORKLOADS
    schemes: tuple[str, ...] = PAPER_SCHEMES
    mags: tuple[int, ...] = FIG9_MAGS
    scale: float | None = None
    seed: int = 2019
    config_overrides: Overrides = ()

    def __post_init__(self) -> None:
        self.schemes = tuple(s.upper() for s in self.schemes)
        if BASELINE_SCHEME not in self.schemes:
            raise ValueError(
                "schemes must include the E2MC baseline "
                "(speedups are normalized to it)"
            )

    def _sub_spec(self, mag: int) -> CampaignSpec:
        # Fig. 9 coupling: the lossy threshold scales with the MAG.  Error
        # computation stays on — the fidelity panel rides the degraded-input
        # pass; job normalization turns it off for the lossless cells.
        return CampaignSpec(
            name="fidelity",
            workloads=tuple(self.workloads),
            schemes=self.schemes,
            lossy_thresholds=(mag // 2,),
            mags=(mag,),
            scales=(self.scale,),
            seeds=(self.seed,),
            compute_error=True,
            config_overrides=tuple(self.config_overrides),
        )

    def jobs(self) -> list[Job]:
        return expand_specs([self._sub_spec(mag) for mag in self.mags])

    # ------------------------------------------------------------------ #
    # aggregation

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        rows: list[dict] = []
        for mag in self.mags:
            per_mag = [r for r in records if r.job.mag_bytes == mag]
            study = slc_study_from_records(per_mag, list(self.workloads))
            per_scheme: dict[str, dict[str, list[float]]] = {}
            for workload in study.workloads():
                family = workload_family(workload)
                for scheme in study.schemes():
                    result = study.results[workload][scheme]
                    panel = (
                        dict(PERFECT_FIDELITY)
                        if _is_lossless(scheme)
                        else {
                            key: result.extra_metrics.get(key, float("nan"))
                            for key in FIDELITY_KEYS
                        }
                    )
                    speedup = study.speedup(workload, scheme)
                    rows.append(
                        {
                            "mag_bytes": mag,
                            "workload": workload,
                            "family": family,
                            "scheme": scheme,
                            "error_percent": result.error_percent,
                            "pearson": panel["fidelity_pearson"],
                            "ks_stat": panel["fidelity_ks"],
                            "iqr_mean_error": panel["fidelity_iqr_mean"],
                            "iqr_max_error": panel["fidelity_iqr_max"],
                            "speedup": speedup,
                        }
                    )
                    bucket = per_scheme.setdefault(
                        scheme,
                        {"speedup": [], "pearson": [], "ks": [], "iqr_mean": [],
                         "iqr_max": [], "error": []},
                    )
                    bucket["speedup"].append(speedup)
                    bucket["pearson"].append(panel["fidelity_pearson"])
                    bucket["ks"].append(panel["fidelity_ks"])
                    bucket["iqr_mean"].append(panel["fidelity_iqr_mean"])
                    bucket["iqr_max"].append(panel["fidelity_iqr_max"])
                    bucket["error"].append(result.error_percent)

            # summary row per scheme: worst-case panel, geomean speedup
            for scheme, bucket in per_scheme.items():
                rows.append(
                    {
                        "mag_bytes": mag,
                        "workload": "WORST",
                        "family": "summary",
                        "scheme": scheme,
                        "error_percent": max(bucket["error"], default=0.0),
                        "pearson": min(bucket["pearson"], default=1.0),
                        "ks_stat": max(bucket["ks"], default=0.0),
                        "iqr_mean_error": max(bucket["iqr_mean"], default=0.0),
                        "iqr_max_error": max(bucket["iqr_max"], default=0.0),
                        "speedup": geometric_mean(bucket["speedup"]),
                    }
                )
        return self.make_result(rows)

    def format(self, result: StudyResult) -> str:
        lines = [result.format(), ""]
        worst = [row for row in result.rows if row["workload"] == "WORST"]
        for row in worst:
            if math.isfinite(row["pearson"]):
                lines.append(
                    f"worst case @ MAG {row['mag_bytes']} B, {row['scheme']}: "
                    f"pearson {row['pearson']:.4f}, KS {row['ks_stat']:.4f}, "
                    f"IQR mean {row['iqr_mean_error']:.4f}"
                )
        return "\n".join(lines)
