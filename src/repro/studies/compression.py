"""Compression-ratio studies (Fig. 1, Fig. 2, Section V-C ratios).

These are analysis-only studies: they compress every block of each
workload's data directly instead of simulating the GPU, so their
:meth:`~repro.studies.base.Study.spec` is None and all computation happens
in :meth:`~repro.studies.base.Study.aggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.store import JobRecord
from repro.compression.registry import FIG1_COMPRESSORS, get_compressor
from repro.compression.stats import CompressionStats, geometric_mean
from repro.studies.base import Study, StudyResult
from repro.studies.registry import register_study
from repro.utils.blocks import array_to_blocks
from repro.utils.sampling import sample_evenly
from repro.workloads.registry import PAPER_WORKLOAD_ORDER, get_workload

#: MAGs evaluated in Fig. 9 / Section V-C
FIG9_MAGS = (16, 32, 64)


def workload_blocks(
    name: str, scale: float | None = None, seed: int = 2019, block_size_bytes: int = 128
) -> list[bytes]:
    """All input-region blocks of one benchmark (the data Fig. 1/2 compress)."""
    kwargs = {"seed": seed}
    if scale is not None:
        kwargs["scale"] = scale
    workload = get_workload(name, **kwargs)
    regions = workload.generate()
    blocks: list[bytes] = []
    for region in regions.values():
        blocks.extend(array_to_blocks(region.array, block_size_bytes))
    return blocks


def compression_stats_for_blocks(
    blocks: list[bytes],
    compressor_name: str,
    mag_bytes: int = 32,
    block_size_bytes: int = 128,
    train_samples: int = 1024,
) -> CompressionStats:
    """Compress ``blocks`` with one technique and accumulate MAG statistics.

    Sizes come from the compressor's batched analysis — vectorized kernels
    for every registry scheme (E2MC's LUT gather, :mod:`repro.kernels.lossless`
    for BDI/FPC/C-Pack/BPC), bit-exact against per-block :meth:`compress`.
    """
    compressor = get_compressor(compressor_name, block_size_bytes=block_size_bytes)
    compressor.train(sample_evenly(blocks, train_samples))
    stats = CompressionStats(block_size_bytes=block_size_bytes, mag_bytes=mag_bytes)
    stats.add_blocks(compressor.analyze_batch(blocks))
    return stats


# --------------------------------------------------------------------- #
# Fig. 1


@dataclass(frozen=True)
class Fig1Row:
    """Raw/effective ratio of one (benchmark, compressor) pair."""

    workload: str
    compressor: str
    raw_ratio: float
    effective_ratio: float

    @property
    def effective_loss_percent(self) -> float:
        """How much the effective ratio falls short of the raw ratio."""
        return (1.0 - self.effective_ratio / self.raw_ratio) * 100.0


def fig1_rows(
    workload_names: list[str],
    compressors: list[str],
    mag_bytes: int = 32,
    scale: float | None = None,
    seed: int = 2019,
) -> list[Fig1Row]:
    """The per-benchmark bars of Fig. 1 plus the GM bars."""
    rows: list[Fig1Row] = []
    per_compressor_raw: dict[str, list[float]] = {c: [] for c in compressors}
    per_compressor_eff: dict[str, list[float]] = {c: [] for c in compressors}

    for name in workload_names:
        blocks = workload_blocks(name, scale=scale, seed=seed)
        for compressor_name in compressors:
            stats = compression_stats_for_blocks(blocks, compressor_name, mag_bytes)
            rows.append(
                Fig1Row(
                    workload=name,
                    compressor=compressor_name,
                    raw_ratio=stats.raw_ratio,
                    effective_ratio=stats.effective_ratio,
                )
            )
            per_compressor_raw[compressor_name].append(stats.raw_ratio)
            per_compressor_eff[compressor_name].append(stats.effective_ratio)

    for compressor_name in compressors:
        rows.append(
            Fig1Row(
                workload="GM",
                compressor=compressor_name,
                raw_ratio=geometric_mean(per_compressor_raw[compressor_name]),
                effective_ratio=geometric_mean(per_compressor_eff[compressor_name]),
            )
        )
    return rows


def format_fig1(rows: list[Fig1Row]) -> str:
    """Render the Fig. 1 data as a text table."""
    lines = [
        "Fig. 1 — raw vs. effective compression ratio (MAG = 32 B)",
        f"{'benchmark':<8} {'scheme':<7} {'raw':>6} {'effective':>10} {'loss %':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row.workload:<8} {row.compressor:<7} {row.raw_ratio:>6.2f} "
            f"{row.effective_ratio:>10.2f} {row.effective_loss_percent:>7.1f}"
        )
    return "\n".join(lines)


@register_study
@dataclass
class Fig1Study(Study):
    """Fig. 1 — raw vs. effective compression ratio of BDI/FPC/C-PACK/E2MC.

    The raw ratio ignores MAG while the effective ratio rounds every
    compressed size up to the next MAG multiple; the paper's headline is
    that the effective geometric mean is 18–23 % below the raw one.
    """

    name = "fig1"
    title = "Fig. 1 — raw vs. effective compression ratio"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    compressors: tuple[str, ...] = tuple(FIG1_COMPRESSORS)
    mag_bytes: int = 32
    scale: float | None = None
    seed: int = 2019

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        rows = fig1_rows(
            list(self.workloads),
            list(self.compressors),
            mag_bytes=self.mag_bytes,
            scale=self.scale,
            seed=self.seed,
        )
        flat = [
            {
                "workload": row.workload,
                "compressor": row.compressor,
                "raw_ratio": row.raw_ratio,
                "effective_ratio": row.effective_ratio,
                "effective_loss_percent": row.effective_loss_percent,
            }
            for row in rows
        ]
        return self.make_result(flat, data=rows)

    def format(self, result: StudyResult) -> str:
        return format_fig1(result.data)


# --------------------------------------------------------------------- #
# Fig. 2


@dataclass
class Fig2Distribution:
    """Per-benchmark histograms of bytes-above-MAG (fractions of all blocks)."""

    mag_bytes: int = 32
    per_workload: dict[str, dict[int, float]] = field(default_factory=dict)

    def heatmap(self, bin_width: int = 4) -> tuple[list[str], list[int], list[list[float]]]:
        """The Fig. 2 heat map: benchmarks × byte bins → fraction of blocks.

        Returns (workload names, bin lower edges, matrix of fractions).
        """
        edges = list(range(0, self.mag_bytes + bin_width, bin_width))
        matrix: list[list[float]] = []
        names = list(self.per_workload)
        for name in names:
            histogram = self.per_workload[name]
            row = [0.0] * len(edges)
            for extra_bytes, fraction in histogram.items():
                bin_index = min(len(edges) - 1, extra_bytes // bin_width)
                row[bin_index] += fraction
            matrix.append(row)
        return names, edges, matrix

    def fraction_within_threshold(self, workload: str, threshold_bytes: int) -> float:
        """Fraction of blocks at most ``threshold_bytes`` above a MAG multiple.

        Blocks exactly on a multiple (the 0 B bin) are excluded: they need no
        approximation.  This is the share of blocks SLC can convert to the
        lower budget with the given lossy threshold.
        """
        histogram = self.per_workload[workload]
        return sum(
            fraction
            for extra, fraction in histogram.items()
            if 0 < extra <= threshold_bytes
        )


def format_fig2(distribution: Fig2Distribution, bin_width: int = 4) -> str:
    """Render the Fig. 2 heat map as a text table (percent of blocks)."""
    names, edges, matrix = distribution.heatmap(bin_width=bin_width)
    header = "bytes above MAG:" + "".join(f"{edge:>7}" for edge in edges)
    lines = [
        f"Fig. 2 — distribution of compressed blocks above MAG (MAG = {distribution.mag_bytes} B)",
        header,
    ]
    for name, row in zip(names, matrix):
        cells = "".join(f"{100.0 * value:>7.1f}" for value in row)
        lines.append(f"{name:<16}{cells}")
    return "\n".join(lines)


@register_study
@dataclass
class Fig2Study(Study):
    """Fig. 2 — distribution of compressed blocks above MAG multiples (E2MC).

    Blocks are binned by how many bytes their compressed size lies above the
    largest MAG multiple below it; a significant share sits only a few bytes
    above a multiple — the opportunity SLC exploits.
    """

    name = "fig2"
    title = "Fig. 2 — compressed-block distribution above MAG multiples"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    mag_bytes: int = 32
    scale: float | None = None
    seed: int = 2019

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        distribution = Fig2Distribution(mag_bytes=self.mag_bytes)
        for name in self.workloads:
            blocks = workload_blocks(name, scale=self.scale, seed=self.seed)
            stats = compression_stats_for_blocks(blocks, "e2mc", self.mag_bytes)
            distribution.per_workload[name] = stats.extra_byte_distribution()
        rows = [
            {"workload": name, "extra_bytes": extra, "fraction": fraction}
            for name, histogram in distribution.per_workload.items()
            for extra, fraction in sorted(histogram.items())
        ]
        return self.make_result(rows, data=distribution)

    def format(self, result: StudyResult) -> str:
        return format_fig2(result.data)


# --------------------------------------------------------------------- #
# Section V-C — E2MC effective ratio per MAG


def effective_ratio_by_mag(
    workload_names: list[str] | None = None,
    mags: tuple[int, ...] = FIG9_MAGS,
    scale: float | None = None,
    seed: int = 2019,
) -> dict[int, dict[str, float]]:
    """Section V-C: E2MC raw and effective compression ratio per MAG.

    Returns ``{mag: {"raw": gm_raw, "effective": gm_effective}}``; the raw
    geometric mean is identical across MAGs by construction.
    """
    workload_names = list(workload_names or PAPER_WORKLOAD_ORDER)
    results: dict[int, dict[str, float]] = {}
    per_workload_blocks = {
        name: workload_blocks(name, scale=scale, seed=seed) for name in workload_names
    }
    for mag in mags:
        raw_values = []
        effective_values = []
        for name in workload_names:
            stats = compression_stats_for_blocks(per_workload_blocks[name], "e2mc", mag)
            raw_values.append(stats.raw_ratio)
            effective_values.append(stats.effective_ratio)
        results[mag] = {
            "raw": geometric_mean(raw_values),
            "effective": geometric_mean(effective_values),
        }
    return results
