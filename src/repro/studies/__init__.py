"""Declarative studies: every evaluation artefact as grid + reduction + export.

A :class:`Study` couples a campaign grid (:meth:`~Study.spec` /
:meth:`~Study.jobs`), a reduction over the grid's records
(:meth:`~Study.aggregate`) and a flat export (:meth:`~Study.export`); the
campaign engine supplies parallel execution, persistent caching (JSONL or
SQLite result stores) and failure capture.  All paper figures/tables are
registered studies, as are the sweep-shaped studies beyond the paper
(response surface, seed variance, GPU scaling).  ``repro study
list|run|export`` drives them from the command line.
"""

from repro.studies.ablation import ThresholdAblationStudy
from repro.studies.base import Study, StudyResult
from repro.studies.compression import (
    Fig1Row,
    Fig1Study,
    Fig2Distribution,
    Fig2Study,
    effective_ratio_by_mag,
    workload_blocks,
)
from repro.studies.fidelity import FidelityStudy
from repro.studies.hardware import Table1Study
from repro.studies.performance import (
    Fig7Row,
    Fig7Study,
    Fig8Row,
    Fig8Study,
    Fig9Row,
    Fig9Study,
)
from repro.studies.registry import (
    available_studies,
    get_study,
    register_study,
    study_class,
)
from repro.studies.slc import SLCStudy, SLCSweepStudy, run_slc_study
from repro.studies.sweeps import (
    GPUScalingStudy,
    ResponseSurfaceStudy,
    SeedVarianceStudy,
)
from repro.studies.tournament import TournamentStudy, pareto_frontier

__all__ = [
    "Study",
    "StudyResult",
    "register_study",
    "get_study",
    "study_class",
    "available_studies",
    "SLCStudy",
    "SLCSweepStudy",
    "run_slc_study",
    "Fig1Study",
    "Fig1Row",
    "Fig2Study",
    "Fig2Distribution",
    "Table1Study",
    "Fig7Study",
    "Fig7Row",
    "Fig8Study",
    "Fig8Row",
    "Fig9Study",
    "Fig9Row",
    "ThresholdAblationStudy",
    "ResponseSurfaceStudy",
    "SeedVarianceStudy",
    "GPUScalingStudy",
    "FidelityStudy",
    "TournamentStudy",
    "pareto_frontier",
    "effective_ratio_by_mag",
    "workload_blocks",
]
