"""The (workload × scheme) SLC simulation sweep every figure study rides.

:class:`SLCStudy` is the results container of the paper's evaluation — for
each benchmark the E2MC lossless baseline plus TSLC variants on the same
workload data — exposing the normalized metrics of Figs. 7–9 (speedup,
application error, bandwidth, energy, EDP) and their geometric means.

:class:`SLCSweepStudy` is the declarative study producing it: its grid is
one :class:`~repro.campaign.CampaignSpec`, its aggregation groups the
records back into an :class:`SLCStudy`.  :func:`run_slc_study` (the
historical entry point re-exported by :mod:`repro.experiments.runner`) is a
thin wrapper over it and returns identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.spec import (
    BASELINE_SCHEME,
    SCHEME_VARIANTS,
    CampaignSpec,
    Overrides,
    config_to_overrides,
)
from repro.campaign.store import JobRecord
from repro.compression.stats import geometric_mean
from repro.core.config import SLCVariant
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimulationResult
from repro.studies.base import Study, StudyResult
from repro.studies.registry import register_study
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

#: backend label used for the lossless baseline in every study
BASELINE_LABEL = BASELINE_SCHEME

#: the three TSLC variants of Fig. 7/8, in plotting order
VARIANT_LABELS = {variant: label for label, variant in SCHEME_VARIANTS.items()}


@dataclass
class SLCStudy:
    """Results of simulating all benchmarks under the baseline and variants.

    ``results[workload][scheme]`` holds the :class:`SimulationResult` of one
    (workload, scheme) pair; ``scheme`` is :data:`BASELINE_LABEL` or one of
    the variant labels.
    """

    baseline_label: str = BASELINE_LABEL
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)

    def workloads(self) -> list[str]:
        """Benchmarks in the order they were simulated."""
        return list(self.results)

    def schemes(self) -> list[str]:
        """Union of scheme labels across all workloads (baseline first)."""
        labels: list[str] = []
        for per_scheme in self.results.values():
            for label in per_scheme:
                if label not in labels:
                    labels.append(label)
        if self.baseline_label in labels:
            labels.remove(self.baseline_label)
            labels.insert(0, self.baseline_label)
        return labels

    # ------------------------------------------------------------------ #
    # normalized metrics (the y-axes of Figs. 7–9)

    def speedup(self, workload: str, scheme: str) -> float:
        """Execution-time speedup of ``scheme`` over the baseline."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].speedup_over(baseline)

    def error_percent(self, workload: str, scheme: str) -> float:
        """Application error of ``scheme`` in percent."""
        return self.results[workload][scheme].error_percent

    def normalized_bandwidth(self, workload: str, scheme: str) -> float:
        """Off-chip traffic normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].bandwidth_ratio_over(baseline)

    def normalized_energy(self, workload: str, scheme: str) -> float:
        """Energy normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].energy_ratio_over(baseline)

    def normalized_edp(self, workload: str, scheme: str) -> float:
        """EDP normalized to the baseline (lower is better)."""
        baseline = self.results[workload][self.baseline_label]
        return self.results[workload][scheme].edp_ratio_over(baseline)

    def metric(self, metric: str, workload: str, scheme: str) -> float:
        """One normalized metric by name (the keys of :meth:`geomean`)."""
        return self._getters()[metric](workload, scheme)

    def geomean(self, metric: str, scheme: str) -> float:
        """Geometric mean of a normalized metric over all benchmarks."""
        getter = self._getters()[metric]
        return geometric_mean([getter(w, scheme) for w in self.workloads()])

    def _getters(self):
        return {
            "speedup": self.speedup,
            "bandwidth": self.normalized_bandwidth,
            "energy": self.normalized_energy,
            "edp": self.normalized_edp,
        }


def slc_study_from_records(
    records: list[JobRecord], workload_names: list[str] | None = None
) -> SLCStudy:
    """Group campaign records back into an :class:`SLCStudy`.

    ``workload_names`` restores the caller's spelling (jobs normalize
    workload names to uppercase internally), so e.g. a study over ``["bs"]``
    keys its results by ``"bs"``.
    """
    names_by_upper: dict[str, str] = {}
    for name in workload_names or []:
        names_by_upper.setdefault(name.upper(), name)
    study = SLCStudy()
    for record in records:
        job = record.job
        name = names_by_upper.get(job.workload, job.workload)
        study.results.setdefault(name, {})[job.scheme] = record.result
    return study


@register_study
@dataclass
class SLCSweepStudy(Study):
    """The generic (workload × scheme) sweep behind ``run_slc_study``.

    One grid cell per (workload, scheme) at a single threshold/MAG/seed;
    aggregates into an :class:`SLCStudy` (``result.data``) plus flat rows of
    every normalized metric.
    """

    name = "slc-sweep"
    title = "SLC sweep — per-(workload, scheme) normalized metrics"

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    schemes: tuple[str, ...] = (BASELINE_SCHEME, *SCHEME_VARIANTS)
    lossy_threshold_bytes: int = 16
    mag_bytes: int | None = None
    scale: float | None = None
    seed: int = 2019
    compute_error: bool = True
    config_overrides: Overrides = ()

    def __post_init__(self) -> None:
        self.schemes = tuple(s.upper() for s in self.schemes)
        # Every metric is normalized to the baseline; catch its absence at
        # construction time, not as a KeyError after the grid has simulated.
        if BASELINE_SCHEME not in self.schemes:
            raise ValueError(
                f"schemes must include the {BASELINE_SCHEME} baseline "
                "(every metric is normalized to it)"
            )

    def spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="slc-study",
            workloads=tuple(self.workloads),
            schemes=tuple(self.schemes),
            lossy_thresholds=(self.lossy_threshold_bytes,),
            mags=(self.mag_bytes,),
            scales=(self.scale,),
            seeds=(self.seed,),
            compute_error=self.compute_error,
            config_overrides=tuple(self.config_overrides),
        )

    def aggregate(self, records: list[JobRecord]) -> StudyResult:
        study = slc_study_from_records(records, list(self.workloads))
        rows: list[dict] = []
        schemes = [s for s in study.schemes() if s != study.baseline_label]
        for workload in study.workloads():
            for scheme in schemes:
                rows.append(
                    {
                        "workload": workload,
                        "scheme": scheme,
                        "speedup": study.speedup(workload, scheme),
                        "error_percent": study.error_percent(workload, scheme),
                        "normalized_bandwidth": study.normalized_bandwidth(
                            workload, scheme
                        ),
                        "normalized_energy": study.normalized_energy(workload, scheme),
                        "normalized_edp": study.normalized_edp(workload, scheme),
                    }
                )
        for scheme in schemes:
            rows.append(
                {
                    "workload": "GM",
                    "scheme": scheme,
                    "speedup": study.geomean("speedup", scheme),
                    "error_percent": None,
                    "normalized_bandwidth": study.geomean("bandwidth", scheme),
                    "normalized_energy": study.geomean("energy", scheme),
                    "normalized_edp": study.geomean("edp", scheme),
                }
            )
        return self.make_result(rows, data=study)


def run_slc_study(
    workload_names: list[str] | None = None,
    variants: list[SLCVariant] | None = None,
    lossy_threshold_bytes: int = 16,
    mag_bytes: int | None = None,
    scale: float | None = None,
    seed: int = 2019,
    config: GPUConfig | None = None,
    compute_error: bool = True,
    workers: int = 1,
    store_dir: str | Path | None = None,
) -> SLCStudy:
    """Simulate every benchmark under E2MC and the requested TSLC variants.

    Args:
        workload_names: benchmarks to include (default: all nine, paper order).
        variants: TSLC variants to simulate (default: SIMP, PRED, OPT).
        lossy_threshold_bytes: the SLC lossy threshold (16 B in Fig. 7/8).
        mag_bytes: memory access granularity (default: the GPU config's 32 B).
        scale: workload input scale (default: each workload's default).
        seed: RNG seed for data generation.
        config: GPU configuration (Table II defaults).
        compute_error: whether to re-run kernels on degraded inputs to obtain
            the application error (disable for timing-only studies).
        workers: worker processes for the sweep (1 = in-process, serial).
        store_dir: optional campaign directory; when set, already-computed
            (workload, scheme) cells are served from the persistent store.
    """
    workload_names = list(workload_names or PAPER_WORKLOAD_ORDER)
    variants = list(variants or [SLCVariant.SIMP, SLCVariant.PRED, SLCVariant.OPT])
    study = SLCSweepStudy(
        workloads=tuple(workload_names),
        schemes=(BASELINE_SCHEME, *(VARIANT_LABELS[v] for v in variants)),
        lossy_threshold_bytes=lossy_threshold_bytes,
        mag_bytes=mag_bytes,
        scale=scale,
        seed=seed,
        compute_error=compute_error,
        config_overrides=config_to_overrides(config),
    )
    return study.run(store=store_dir, workers=workers).data
